//! Flow misconfiguration must surface as typed [`FlowError`] variants
//! — never panics — and the pluggable engines must be interchangeable:
//! serial and sharded runs of the same flow produce equal reports.

use occ_atpg::AtpgOptions;
use occ_core::ClockingMode;
use occ_flow::{EngineChoice, FaultKind, FlowError, Stage, TestFlow};
use occ_fsim::ClockBinding;
use occ_netlist::{Logic, NetlistBuilder};
use occ_soc::{generate, SocConfig};

/// Fast ATPG options for misconfiguration paths that still run.
fn quick() -> AtpgOptions {
    AtpgOptions {
        random_patterns: 32,
        backtrack_limit: 12,
        ..AtpgOptions::default()
    }
}

#[test]
fn zero_domain_model_is_a_typed_error() {
    // A purely combinational netlist with an empty binding: the model
    // binds fine but has no clock domain to pulse.
    let mut b = NetlistBuilder::new("compass");
    let a = b.input("a");
    let y = b.not(a);
    b.output("y", y);
    let nl = b.finish().unwrap();

    let err = TestFlow::over(&nl, ClockBinding::new())
        .atpg(quick())
        .run()
        .unwrap_err();
    assert_eq!(err, FlowError::NoDomains);
}

#[test]
fn missing_scan_chains_is_a_typed_error() {
    // All flops are plain (non-scan) DFFs: nothing can be scan-loaded.
    let mut b = NetlistBuilder::new("noscan");
    let clk = b.input("clk");
    let d = b.input("d");
    let f0 = b.dff(d, clk);
    let f1 = b.dff(f0, clk);
    b.output("q", f1);
    let nl = b.finish().unwrap();
    let mut binding = ClockBinding::new();
    binding.add_domain("a", clk);

    let err = TestFlow::over(&nl, binding)
        .atpg(quick())
        .run()
        .unwrap_err();
    assert_eq!(err, FlowError::NoScanChains);
}

#[test]
fn zero_threads_is_a_typed_error() {
    let soc = generate(&SocConfig::tiny(3));
    let err = TestFlow::new(&soc)
        .engine(EngineChoice::Sharded { threads: 0 })
        .atpg(quick())
        .run()
        .unwrap_err();
    assert_eq!(err, FlowError::ZeroThreads);
}

#[test]
fn impossible_clocking_combination_is_a_typed_error() {
    let soc = generate(&SocConfig::tiny(3));
    for mode in [
        ClockingMode::ExternalClock { max_pulses: 1 },
        ClockingMode::EnhancedCpf { max_pulses: 1 },
        ClockingMode::ConstrainedExternal { max_pulses: 0 },
    ] {
        let err = TestFlow::new(&soc)
            .clocking(mode)
            .fault_model(FaultKind::Transition)
            .atpg(quick())
            .run()
            .unwrap_err();
        match err {
            FlowError::UnsupportedClocking {
                mode: m,
                fault_model,
                ..
            } => {
                assert_eq!(m, mode);
                assert_eq!(fault_model, FaultKind::Transition);
            }
            other => panic!("expected UnsupportedClocking, got {other:?}"),
        }
    }
}

#[test]
fn model_binding_failure_is_wrapped() {
    // Constraining a gate (not an input port) is a ModelError; the flow
    // surfaces it as FlowError::Model instead of unwrapping.
    let mut b = NetlistBuilder::new("badbind");
    let clk = b.input("clk");
    let se = b.input("se");
    let si = b.input("si");
    let d = b.input("d");
    let g = b.and2(d, d);
    let ff = b.sdff(g, clk, se, si);
    b.output("q", ff);
    let nl = b.finish().unwrap();
    let mut binding = ClockBinding::new();
    binding.add_domain("a", clk);
    binding.constrain(g, Logic::Zero);

    let err = TestFlow::over(&nl, binding)
        .atpg(quick())
        .run()
        .unwrap_err();
    assert!(matches!(err, FlowError::Model(_)), "got {err:?}");
    // The source chain is preserved for callers that walk it.
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn serial_and_sharded_reports_are_equal() {
    // The acceptance test of the engine redesign: the same flow run
    // through the serial engine and through the sharded trait object
    // yields the same coverage, efficiency, patterns and stats.
    let soc = generate(&SocConfig::tiny(9));
    let run = |engine: EngineChoice| {
        TestFlow::new(&soc)
            .clocking(ClockingMode::EnhancedCpf { max_pulses: 3 })
            .fault_model(FaultKind::Transition)
            .mask_bidi(true)
            .engine(engine)
            .atpg(quick())
            .run()
            .expect("valid flow configuration")
    };
    let serial = run(EngineChoice::Serial);
    let sharded = run(EngineChoice::Sharded { threads: 8 });

    assert_eq!(serial.coverage, sharded.coverage);
    assert_eq!(serial.stats(), sharded.stats());
    assert_eq!(serial.patterns(), sharded.patterns());
    assert_eq!(serial.procedures, sharded.procedures);
    assert!(serial.coverage_pct() > 0.0);
    assert_eq!(serial.threads, 1);
    assert_eq!(sharded.threads, 8);
    assert_eq!(serial.engine, "serial");
    assert_eq!(sharded.engine, "sharded");
    for (fault, status) in serial.result.faults.iter() {
        assert_eq!(status, sharded.result.faults.status(fault), "fault {fault}");
    }
}

#[test]
fn report_serializes_to_json_and_csv() {
    let soc = generate(&SocConfig::tiny(5));
    let report = TestFlow::new(&soc)
        .clocking(ClockingMode::SimpleCpf)
        .fault_model(FaultKind::Transition)
        .mask_bidi(true)
        .atpg(quick())
        .run()
        .expect("valid flow configuration");

    let json = report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"clocking\":\"simple-cpf\""), "{json}");
    assert!(json.contains("\"fault_model\":\"transition\""), "{json}");
    assert!(json.contains("\"stages\":["), "{json}");
    assert!(json.contains("\"stage\":\"atpg\""), "{json}");

    let mut csv = Vec::new();
    report.write_csv(&mut csv).unwrap();
    let csv = String::from_utf8(csv).unwrap();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    let row = lines.next().unwrap();
    assert_eq!(
        header.split(',').count(),
        row.split(',').count(),
        "header/row column mismatch:\n{header}\n{row}"
    );
    assert!(row.contains("simple-cpf"));

    // Stage accounting: every stage ran, totals add up.
    for stage in [
        Stage::BindModel,
        Stage::Procedures,
        Stage::FaultUniverse,
        Stage::Atpg,
        Stage::Classify,
    ] {
        assert!(report.stage_seconds(stage) >= 0.0);
    }
    assert!(report.total_seconds() >= report.stage_seconds(Stage::Atpg));
}
