//! Algebra laws and structural invariants of the netlist kernel.
//!
//! The 4-valued logic domain is tiny, so instead of sampled property
//! tests the laws are checked **exhaustively** over all operand
//! combinations (4^3 triples at most). Structural invariants of
//! randomly built netlists use a deterministic seeded op stream — same
//! shape as the original property tests, but reproducible offline.

use occ_netlist::{CellKind, Logic, NetlistBuilder};

#[test]
fn and_or_comm_assoc_exhaustive() {
    for a in Logic::ALL {
        for b in Logic::ALL {
            assert_eq!(a & b, b & a, "and comm {a} {b}");
            assert_eq!(a | b, b | a, "or comm {a} {b}");
            for c in Logic::ALL {
                assert_eq!((a & b) & c, a & (b & c), "and assoc {a} {b} {c}");
                assert_eq!((a | b) | c, a | (b | c), "or assoc {a} {b} {c}");
            }
        }
    }
}

#[test]
fn xor_comm_assoc_exhaustive() {
    for a in Logic::ALL {
        for b in Logic::ALL {
            assert_eq!(a ^ b, b ^ a, "xor comm {a} {b}");
            for c in Logic::ALL {
                assert_eq!((a ^ b) ^ c, a ^ (b ^ c), "xor assoc {a} {b} {c}");
            }
        }
    }
}

#[test]
fn demorgan_exhaustive() {
    for a in Logic::ALL {
        for b in Logic::ALL {
            assert_eq!(!(a & b), !a | !b, "demorgan-and {a} {b}");
            assert_eq!(!(a | b), !a & !b, "demorgan-or {a} {b}");
        }
    }
}

#[test]
fn double_negation_drives_exhaustive() {
    for a in Logic::ALL {
        assert_eq!(!!a, a.drive(), "double negation {a}");
    }
}

#[test]
fn nary_eval_matches_fold_exhaustive() {
    // All operand vectors of length 2 and 3 over the full domain
    // (4^3 = 64 cases), plus a length-5 seeded sweep.
    let mut cases: Vec<Vec<Logic>> = Vec::new();
    for a in Logic::ALL {
        for b in Logic::ALL {
            cases.push(vec![a, b]);
            for c in Logic::ALL {
                cases.push(vec![a, b, c]);
            }
        }
    }
    let mut rng = XorShift(0x0CC5EED);
    for _ in 0..200 {
        cases.push(
            (0..5)
                .map(|_| Logic::ALL[(rng.next() % 4) as usize])
                .collect(),
        );
    }
    for vals in &cases {
        let and = CellKind::And.eval_comb(vals).unwrap();
        assert_eq!(and, Logic::and_all(vals.iter().copied()));
        let nor = CellKind::Nor.eval_comb(vals).unwrap();
        assert_eq!(nor, !Logic::or_all(vals.iter().copied()));
        let xnor = CellKind::Xnor.eval_comb(vals).unwrap();
        assert_eq!(xnor, !Logic::xor_all(vals.iter().copied()));
    }
}

#[test]
fn mux_definite_select_exhaustive() {
    for d0 in Logic::ALL {
        for d1 in Logic::ALL {
            assert_eq!(Logic::mux2(Logic::Zero, d0, d1), d0.drive());
            assert_eq!(Logic::mux2(Logic::One, d0, d1), d1.drive());
        }
    }
}

/// Deterministic 64-bit xorshift* stream (self-contained; no deps).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Builds a random DAG of gates over `n_in` inputs using the op stream,
/// returning the builder (all ops reference already-created cells, so the
/// result must always validate).
fn random_dag(n_in: usize, ops: &[(u8, usize, usize)]) -> NetlistBuilder {
    let mut b = NetlistBuilder::new("rand");
    let mut sigs = Vec::new();
    for i in 0..n_in {
        sigs.push(b.input(&format!("i{i}")));
    }
    for &(op, x, y) in ops {
        let a = sigs[x % sigs.len()];
        let c = sigs[y % sigs.len()];
        let id = match op % 6 {
            0 => b.and2(a, c),
            1 => b.or2(a, c),
            2 => b.xor2(a, c),
            3 => b.nand2(a, c),
            4 => b.not(a),
            _ => b.mux2(a, c, a),
        };
        sigs.push(id);
    }
    let last = *sigs.last().unwrap();
    b.output("o", last);
    b
}

/// One generated op stream: `(opcode, operand index, operand index)`.
type OpStream = Vec<(u8, usize, usize)>;

/// Seeded replacement for proptest's generator: arbitrary op streams
/// of 1..=max_ops instructions over 1..=4 inputs.
fn arb_cases(seed: u64, count: usize, max_ops: usize) -> Vec<(usize, OpStream)> {
    let mut rng = XorShift(seed | 1);
    (0..count)
        .map(|_| {
            let n_in = 1 + (rng.next() % 4) as usize;
            let n_ops = 1 + (rng.next() as usize % max_ops);
            let ops = (0..n_ops)
                .map(|_| (rng.next() as u8, rng.next() as usize, rng.next() as usize))
                .collect();
            (n_in, ops)
        })
        .collect()
}

#[test]
fn random_dags_validate_and_levelize() {
    for (n_in, ops) in arb_cases(0xDA6_2005, 120, 60) {
        let nl = random_dag(n_in, &ops).finish().unwrap();
        let lev = nl.levelization();
        for (id, cell) in nl.iter() {
            if cell.kind().is_combinational() && !cell.inputs().is_empty() {
                for &src in cell.inputs() {
                    assert!(lev.level(src) < lev.level(id), "level order violated");
                }
            }
        }
        // Fanout symmetry: every input edge appears in the driver's list.
        for (id, cell) in nl.iter() {
            for &src in cell.inputs() {
                assert!(nl.fanouts(src).contains(&id), "missing fanout edge");
            }
        }
    }
}

#[test]
fn writers_are_total() {
    for (n_in, ops) in arb_cases(0x17E6_2005, 60, 30) {
        let nl = random_dag(n_in, &ops).finish().unwrap();
        let v = nl.to_verilog();
        assert!(v.contains("module"));
        assert!(v.trim_end().ends_with("endmodule"));
        let d = nl.to_dot();
        assert!(d.starts_with("digraph"));
    }
}
