//! # occ-dft — design-for-test infrastructure
//!
//! The scan substrate under the paper's experiments:
//!
//! * [`insert_scan`] — mux-scan insertion and balanced chain stitching
//!   (the paper's device uses "357 balanced internal scan chains ...
//!   with 36 external scan channels, implemented for multiplexed scan
//!   cells");
//! * [`EdtCodec`] — an EDT-style linear decompressor (ring generator +
//!   phase shifter) with a GF(2) solver that maps care bits back to
//!   channel data, plus an XOR space compactor for unload;
//! * [`AteCostModel`] — tester cycle / vector-memory accounting, used to
//!   report the pattern-count impact Table 1 shows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edt;
mod protocol;
mod scan;

pub use edt::{EdtCodec, EdtConfig, EdtError};
pub use protocol::{AteCostModel, TestSetCost};
pub use scan::{insert_scan, ScanChains, ScanConfig, ScanError};
