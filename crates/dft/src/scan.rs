//! Mux-scan insertion and balanced chain stitching.

use occ_netlist::{CellId, CellKind, Netlist, NetlistBuilder};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Configuration for scan insertion.
///
/// # Examples
///
/// ```
/// use occ_dft::ScanConfig;
/// let cfg = ScanConfig::new(4).skip_named(&["u_sync0"]);
/// assert_eq!(cfg.chains(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ScanConfig {
    chains: usize,
    skip_names: Vec<String>,
    scan_enable_name: String,
}

impl ScanConfig {
    /// Scan insertion with the given number of chains.
    ///
    /// # Panics
    ///
    /// Panics if `chains` is zero.
    pub fn new(chains: usize) -> Self {
        assert!(chains > 0, "need at least one scan chain");
        ScanConfig {
            chains,
            skip_names: Vec::new(),
            scan_enable_name: "scan_en".to_owned(),
        }
    }

    /// Number of chains to stitch.
    pub fn chains(&self) -> usize {
        self.chains
    }

    /// Excludes the named flops from scan (they stay plain DFFs — the
    /// "non-scan cells" whose initialization the paper's multi-pulse
    /// CPF enhancement addresses).
    pub fn skip_named(mut self, names: &[&str]) -> Self {
        self.skip_names
            .extend(names.iter().map(|s| (*s).to_owned()));
        self
    }

    /// Renames the scan-enable port (default `scan_en`).
    pub fn scan_enable_name(mut self, name: &str) -> Self {
        self.scan_enable_name = name.to_owned();
        self
    }
}

/// Error from scan insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanError {
    /// The design has no flops to stitch.
    NoFlops,
    /// A skip name does not exist in the design.
    UnknownSkip {
        /// The missing instance name.
        name: String,
    },
    /// The rewritten netlist failed validation (internal bug).
    Rebuild(String),
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::NoFlops => f.write_str("design has no flip-flops to stitch"),
            ScanError::UnknownSkip { name } => write!(f, "skip name '{name}' not found"),
            ScanError::Rebuild(e) => write!(f, "scan rewrite failed: {e}"),
        }
    }
}

impl Error for ScanError {}

/// The result of scan insertion: the rewritten netlist plus chain
/// metadata.
#[derive(Debug, Clone)]
pub struct ScanChains {
    netlist: Netlist,
    chains: Vec<Vec<CellId>>,
    scan_enable: CellId,
    scan_ins: Vec<CellId>,
    scan_outs: Vec<CellId>,
    non_scan: Vec<CellId>,
}

impl ScanChains {
    /// The scan-inserted netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consumes self, returning the netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Chains as flop lists in shift order: `chains()[c][0]` is the flop
    /// next to scan-in (last to receive its load bit... the *head*);
    /// the final element drives scan-out.
    pub fn chains(&self) -> &[Vec<CellId>] {
        &self.chains
    }

    /// The scan-enable input port.
    pub fn scan_enable(&self) -> CellId {
        self.scan_enable
    }

    /// Scan-in ports, one per chain.
    pub fn scan_ins(&self) -> &[CellId] {
        &self.scan_ins
    }

    /// Scan-out ports, one per chain.
    pub fn scan_outs(&self) -> &[CellId] {
        &self.scan_outs
    }

    /// Flops intentionally left out of the chains.
    pub fn non_scan(&self) -> &[CellId] {
        &self.non_scan
    }

    /// Length of the longest chain — the shift-cycle count per load.
    pub fn max_chain_len(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// For a desired per-flop load state, the bit sequence to feed each
    /// scan-in port, in shift-cycle order (first element shifted first).
    ///
    /// With `L` shift cycles, the bit shifted first ends up in the flop
    /// furthest from scan-in (the chain tail).
    pub fn load_sequence<F>(&self, mut value_of: F) -> Vec<Vec<occ_netlist::Logic>>
    where
        F: FnMut(CellId) -> occ_netlist::Logic,
    {
        self.chains
            .iter()
            .map(|chain| {
                // Shift-in order: tail value first.
                chain.iter().rev().map(|&ff| value_of(ff)).collect()
            })
            .collect()
    }
}

/// Replaces (non-skipped) flops with mux-scan flops and stitches them
/// into `cfg.chains()` balanced chains, adding `scan_en`, per-chain
/// `scan_in<i>` ports and `scan_out<i>` outputs.
///
/// Chains are balanced to within one flop of each other. Flops are
/// grouped by their clock net before assignment so most chains are
/// single-domain, as a physical implementation would prefer.
///
/// # Errors
///
/// See [`ScanError`].
pub fn insert_scan(netlist: &Netlist, cfg: &ScanConfig) -> Result<ScanChains, ScanError> {
    let skip: HashSet<CellId> = cfg
        .skip_names
        .iter()
        .map(|n| {
            netlist
                .find(n)
                .ok_or_else(|| ScanError::UnknownSkip { name: n.clone() })
        })
        .collect::<Result<_, _>>()?;

    // Collect candidate flops grouped by clock net for domain locality.
    let mut flops: Vec<(CellId, CellId)> = Vec::new(); // (flop, clock net)
    let mut non_scan = Vec::new();
    for (id, cell) in netlist.iter() {
        if !cell.kind().is_flop() {
            continue;
        }
        if skip.contains(&id) {
            non_scan.push(id);
            continue;
        }
        flops.push((id, cell.clock()));
    }
    if flops.is_empty() && non_scan.is_empty() {
        return Err(ScanError::NoFlops);
    }
    flops.sort_by_key(|&(id, clk)| (clk, id));

    // Balanced split: chain c gets every chains-th flop of the
    // clock-sorted list, keeping same-clock flops adjacent.
    let n_chains = cfg.chains.min(flops.len().max(1));
    let mut chains: Vec<Vec<CellId>> = vec![Vec::new(); n_chains];
    let per = flops.len().div_ceil(n_chains);
    for (i, &(id, _)) in flops.iter().enumerate() {
        chains[(i / per).min(n_chains - 1)].push(id);
    }
    chains.retain(|c| !c.is_empty());

    let mut b = NetlistBuilder::from_netlist(netlist);
    let se = b.input(&cfg.scan_enable_name);
    let mut scan_ins = Vec::new();
    let mut scan_outs = Vec::new();

    for (ci, chain) in chains.iter().enumerate() {
        let si_port = b.input(&format!("scan_in{ci}"));
        scan_ins.push(si_port);
        let mut si = si_port;
        for &ff in chain {
            let kind = b.kind(ff);
            let ins = b.inputs(ff).to_vec();
            let (new_kind, new_ins) = match kind {
                CellKind::Dff => (CellKind::Sdff, vec![ins[0], ins[1], se, si]),
                CellKind::DffRl => (CellKind::SdffRl, vec![ins[0], ins[1], se, si, ins[2]]),
                // Active-high-reset and already-scan flops: wrap as
                // SdffRl is not available for DffRh; convert to plain
                // Sdff and drop the reset (documented limitation) —
                // generators avoid DffRh in functional logic.
                CellKind::DffRh => (CellKind::Sdff, vec![ins[0], ins[1], se, si]),
                CellKind::Sdff | CellKind::SdffRl => (kind, ins),
                _ => unreachable!("non-flop in chain"),
            };
            b.replace_cell(ff, new_kind, new_ins);
            si = ff;
        }
        scan_outs.push(b.output(&format!("scan_out{ci}"), si));
    }

    let netlist = b.finish().map_err(|e| ScanError::Rebuild(e.to_string()))?;
    Ok(ScanChains {
        netlist,
        chains,
        scan_enable: se,
        scan_ins,
        scan_outs,
        non_scan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_netlist::{Logic, NetlistBuilder};

    fn plain_design(n_flops: usize) -> Netlist {
        let mut b = NetlistBuilder::new("d");
        let clk = b.input("clk");
        let d = b.input("d");
        let mut prev = d;
        for i in 0..n_flops {
            let ff = b.dff(prev, clk);
            b.name_cell(ff, &format!("ff{i}"));
            prev = ff;
        }
        b.output("q", prev);
        b.finish().unwrap()
    }

    #[test]
    fn all_flops_become_scan() {
        let nl = plain_design(10);
        let sc = insert_scan(&nl, &ScanConfig::new(3)).unwrap();
        let scan_count = sc
            .netlist()
            .flops()
            .filter(|(_, c)| c.kind().is_scan_flop())
            .count();
        assert_eq!(scan_count, 10);
        assert_eq!(sc.chains().len(), 3);
        assert_eq!(sc.scan_ins().len(), 3);
        assert_eq!(sc.scan_outs().len(), 3);
    }

    #[test]
    fn chains_are_balanced() {
        let nl = plain_design(10);
        let sc = insert_scan(&nl, &ScanConfig::new(3)).unwrap();
        let lens: Vec<usize> = sc.chains().iter().map(Vec::len).collect();
        assert_eq!(lens.iter().sum::<usize>(), 10);
        let max = *lens.iter().max().unwrap();
        let min = *lens.iter().min().unwrap();
        assert!(max - min <= 2, "unbalanced: {lens:?}");
        assert_eq!(sc.max_chain_len(), max);
    }

    #[test]
    fn skip_keeps_non_scan() {
        let nl = plain_design(5);
        let sc = insert_scan(&nl, &ScanConfig::new(2).skip_named(&["ff2"])).unwrap();
        assert_eq!(sc.non_scan().len(), 1);
        let ff2 = sc.netlist().find("ff2").unwrap();
        assert!(!sc.netlist().cell(ff2).kind().is_scan_flop());
        let stitched: usize = sc.chains().iter().map(Vec::len).sum();
        assert_eq!(stitched, 4);
    }

    #[test]
    fn unknown_skip_is_an_error() {
        let nl = plain_design(3);
        let err = insert_scan(&nl, &ScanConfig::new(1).skip_named(&["nope"])).unwrap_err();
        assert!(matches!(err, ScanError::UnknownSkip { .. }));
    }

    #[test]
    fn chain_wiring_is_sequential() {
        let nl = plain_design(6);
        let sc = insert_scan(&nl, &ScanConfig::new(2)).unwrap();
        for (ci, chain) in sc.chains().iter().enumerate() {
            let mut expect_si = sc.scan_ins()[ci];
            for &ff in chain {
                let cell = sc.netlist().cell(ff);
                assert_eq!(cell.scan_in(), expect_si, "chain {ci} broken at {ff}");
                assert_eq!(cell.scan_enable(), sc.scan_enable());
                expect_si = ff;
            }
            // Tail drives the scan-out port.
            let tail = *chain.last().unwrap();
            let po = sc.scan_outs()[ci];
            assert_eq!(sc.netlist().cell(po).inputs()[0], tail);
        }
    }

    #[test]
    fn load_sequence_is_reversed_chain() {
        let nl = plain_design(4);
        let sc = insert_scan(&nl, &ScanConfig::new(1)).unwrap();
        let chain = &sc.chains()[0];
        let head = chain[0];
        let seq = sc.load_sequence(|id| if id == head { Logic::One } else { Logic::Zero });
        // The head flop's value is shifted in LAST.
        assert_eq!(*seq[0].last().unwrap(), Logic::One);
        assert!(seq[0][..seq[0].len() - 1].iter().all(|&v| v == Logic::Zero));
    }

    #[test]
    fn reset_flops_keep_reset_through_scan() {
        let mut b = NetlistBuilder::new("d");
        let clk = b.input("clk");
        let rstn = b.input("rstn");
        let d = b.input("d");
        let ff = b.dff_rl(d, clk, rstn);
        b.output("q", ff);
        let nl = b.finish().unwrap();
        let sc = insert_scan(&nl, &ScanConfig::new(1)).unwrap();
        let cell = sc.netlist().cell(ff);
        assert_eq!(cell.kind(), CellKind::SdffRl);
        assert_eq!(cell.reset(), Some(rstn));
    }
}
