//! Pseudo-random pattern generation: LFSR + phase shifter.

use crate::SplitMix;

/// A pseudo-random pattern generator: a Fibonacci LFSR whose state
/// feeds one XOR phase-shifter tap set per chain, the standard LBIST
/// scan-load source. Deterministic from the seed — the same seed
/// always produces the same pattern sequence, which is what makes a
/// signature comparable across runs.
#[derive(Debug, Clone)]
pub struct Prpg {
    state: Vec<bool>,
    feedback: Vec<usize>,
    phase: Vec<Vec<usize>>,
}

impl Prpg {
    /// Builds the generator hardware for `chains` chains.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry (`lfsr_len < 8` or zero chains).
    pub fn new(lfsr_len: usize, chains: usize, seed: u64) -> Self {
        assert!(lfsr_len >= 8, "PRPG LFSR too short");
        assert!(chains > 0, "need at least one chain");
        let mut rng = SplitMix::new(seed);
        let mut feedback = vec![lfsr_len - 1];
        for _ in 0..4 {
            feedback.push(rng.below(lfsr_len - 1));
        }
        feedback.sort_unstable();
        feedback.dedup();
        let phase = (0..chains)
            .map(|_| {
                let mut taps: Vec<usize> = (0..3).map(|_| rng.below(lfsr_len)).collect();
                taps.sort_unstable();
                taps.dedup();
                taps
            })
            .collect();
        // Non-zero initial state from the seed stream (an all-zero
        // LFSR never leaves zero).
        let mut state: Vec<bool> = (0..lfsr_len).map(|_| rng.next() & 1 == 1).collect();
        if state.iter().all(|&b| !b) {
            state[0] = true;
        }
        Prpg {
            state,
            feedback,
            phase,
        }
    }

    fn advance(&mut self) {
        let fb = self
            .feedback
            .iter()
            .fold(false, |acc, &t| acc ^ self.state[t]);
        for i in (1..self.state.len()).rev() {
            self.state[i] = self.state[i - 1];
        }
        self.state[0] = fb;
    }

    /// One LFSR step returning a raw state bit — used to fill
    /// primary-input values (delivered by the tester's own PRPG
    /// channel in hardware, modeled from the same stream here).
    pub fn next_bit(&mut self) -> bool {
        self.advance();
        self.state[0] ^ self.state[self.state.len() / 2]
    }

    /// The next scan load: `shift_len` cycles of per-chain
    /// phase-shifter outputs, `[chain][shift-cycle]` like
    /// [`occ_dft::EdtCodec::expand`].
    pub fn next_load(&mut self, shift_len: usize) -> Vec<Vec<bool>> {
        let mut out = vec![vec![false; shift_len]; self.phase.len()];
        for cycle in 0..shift_len {
            for (taps, row) in self.phase.iter().zip(&mut out) {
                let mut v = false;
                for &t in taps {
                    v ^= self.state[t];
                }
                row[cycle] = v;
            }
            self.advance();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Prpg::new(32, 4, 7);
        let mut b = Prpg::new(32, 4, 7);
        let mut c = Prpg::new(32, 4, 8);
        let la = a.next_load(10);
        assert_eq!(la, b.next_load(10));
        assert_ne!(la, c.next_load(10));
        // Successive loads differ (the LFSR keeps running).
        assert_ne!(la, a.next_load(10));
    }

    #[test]
    fn loads_are_not_degenerate() {
        let mut p = Prpg::new(64, 8, 0xB157);
        let load = p.next_load(20);
        let ones: usize = load.iter().flat_map(|c| c.iter()).filter(|&&b| b).count();
        // Roughly balanced fill, not stuck at a constant.
        assert!(ones > 20 && ones < 140, "ones = {ones}");
    }
}
