//! Scalar good/faulty dual simulation — PODEM's value engines.
//!
//! Unlike the packed PPSFP simulator (which only reports detection),
//! PODEM needs to *inspect* intermediate values: the fault-site value
//! per frame, unjustified objectives, X nodes and difference nodes.
//! Two engines provide that view for a single candidate pattern:
//!
//! * [`DualSim`] — the retained reference engine: full good and faulty
//!   value arrays re-allocated and re-evaluated from scratch on every
//!   call (the oracle the compiled engine is checked against);
//! * [`DualGraphSim`] — the compiled engine riding the
//!   [`SimGraph`](occ_fsim::SimGraph) (CSR fanin/fanout edges, dense
//!   [`OpCode`](occ_fsim::OpCode)s, flattened levelization): frame
//!   values live in flat reusable arrays, and when a PODEM decision
//!   flips a single scan bit or PI only the changed cone is
//!   re-simulated event-wise, frame by frame. Values are identical to
//!   [`DualSim`] by construction (deterministic function composition —
//!   a cell re-evaluates only after a fanin changed), which is what
//!   makes [`CompiledPodem`](crate::CompiledPodem) decision-for-
//!   decision identical to [`ReferencePodem`](crate::ReferencePodem).
//!
//! Both engines implement the workspace-wide reset contract (see
//! `occ_fsim::FaultSim::capture_flop`, "reset semantics"): the **good**
//! machine applies asynchronous resets every frame, while the
//! **faulty** state of a flop whose domain is not pulsed in a frame
//! carries its entering state iff the fault involves the flop
//! (entering-state difference or a differing input-pin driver) and
//! otherwise tracks the good machine — matching the packed PPSFP
//! engines' sparse-difference representation bit-for-bit, including
//! designs whose reset nets are driven by internal logic.

use occ_fault::{Fault, FaultModel, FaultSite, Polarity};
use occ_fsim::{CaptureModel, FrameSpec, OpCode, Pattern, SimGraph, NO_RESET};
use occ_netlist::{CellId, CellKind, Logic};

/// Scalar dual-machine simulation state for one pattern and one fault.
#[derive(Debug)]
pub struct DualSim<'m, 'a> {
    model: &'m CaptureModel<'a>,
    /// Good node values per frame (frame k at index k-1).
    pub good: Vec<Vec<Logic>>,
    /// Faulty node values per frame.
    pub faulty: Vec<Vec<Logic>>,
    /// Good flop states (index 0 = load).
    pub good_state: Vec<Vec<Logic>>,
    /// Faulty flop states.
    pub faulty_state: Vec<Vec<Logic>>,
}

impl<'m, 'a> DualSim<'m, 'a> {
    /// Creates an empty simulator for the model.
    pub fn new(model: &'m CaptureModel<'a>) -> Self {
        DualSim {
            model,
            good: Vec::new(),
            faulty: Vec::new(),
            good_state: Vec::new(),
            faulty_state: Vec::new(),
        }
    }

    /// The bound capture model.
    pub fn model(&self) -> &'m CaptureModel<'a> {
        self.model
    }

    /// Runs both machines for `pattern` under `spec` with `fault`
    /// injected in its active frames.
    pub fn simulate(&mut self, spec: &FrameSpec, pattern: &Pattern, fault: Fault) {
        let frames = spec.frames();
        self.good.clear();
        self.faulty.clear();
        self.good_state.clear();
        self.faulty_state.clear();

        let n_flops = self.model.flops().len();
        let mut gs0 = vec![Logic::X; n_flops];
        for (si, &fi) in self.model.scan_flops().iter().enumerate() {
            gs0[fi as usize] = pattern.scan_load[si];
        }
        self.good_state.push(gs0.clone());
        self.faulty_state.push(gs0);

        for k in 1..=frames {
            let active = match fault.model() {
                FaultModel::StuckAt => true,
                FaultModel::Transition => k == frames,
            };
            let gvals = self.eval_frame(spec, pattern, k, &self.good_state[k - 1], None);
            let fvals = self.eval_frame(
                spec,
                pattern,
                k,
                &self.faulty_state[k - 1],
                active.then_some(fault),
            );
            let gnext = self.next_state_good(spec, k, &gvals, &self.good_state[k - 1]);
            let fnext = self.next_state_faulty(
                spec,
                k,
                &fvals,
                &gvals,
                &self.faulty_state[k - 1],
                &self.good_state[k - 1],
                &gnext,
            );
            self.good.push(gvals);
            self.faulty.push(fvals);
            self.good_state.push(gnext);
            self.faulty_state.push(fnext);
        }
    }

    fn eval_frame(
        &self,
        spec: &FrameSpec,
        pattern: &Pattern,
        frame: usize,
        state: &[Logic],
        fault: Option<Fault>,
    ) -> Vec<Logic> {
        let nl = self.model.netlist();
        let mut vals = vec![Logic::X; nl.len()];
        for (id, cell) in nl.iter() {
            match cell.kind() {
                CellKind::Tie0 => vals[id.index()] = Logic::Zero,
                CellKind::Tie1 => vals[id.index()] = Logic::One,
                _ => {}
            }
        }
        for &(c, v) in self.model.forced() {
            vals[c.index()] = v;
        }
        for &c in self.model.masked() {
            vals[c.index()] = Logic::X;
        }
        let _ = spec;
        for (i, &pi) in self.model.free_pis().iter().enumerate() {
            vals[pi.index()] = pattern.pis_for_frame(frame)[i];
        }
        for (fi, info) in self.model.flops().iter().enumerate() {
            vals[info.cell.index()] = state[fi];
        }
        if let Some(f) = fault {
            if let FaultSite::Output(c) = f.site() {
                vals[c.index()] = polarity_logic(f.polarity());
            }
        }
        for &id in nl.levelization().order() {
            if let Some(f) = fault {
                if f.site() == FaultSite::Output(id) {
                    vals[id.index()] = polarity_logic(f.polarity());
                    continue;
                }
            }
            let cell = nl.cell(id);
            let mut ins: Vec<Logic> = cell.inputs().iter().map(|&s| vals[s.index()]).collect();
            if let Some(f) = fault {
                if let FaultSite::Input { cell: fc, pin } = f.site() {
                    if fc == id {
                        ins[pin as usize] = polarity_logic(f.polarity());
                    }
                }
            }
            vals[id.index()] = cell.kind().eval_comb(&ins).unwrap_or(Logic::X);
        }
        vals
    }

    /// Samples one pulsed flop from `vals` and applies its
    /// asynchronous-reset handling (also from `vals`).
    fn sample_and_reset(&self, cell_id: CellId, vals: &[Logic]) -> Logic {
        let nl = self.model.netlist();
        let cell = nl.cell(cell_id);
        let mut next = match cell.kind() {
            CellKind::Sdff | CellKind::SdffRl => {
                let d = vals[cell.inputs()[0].index()];
                let se = vals[cell.inputs()[2].index()];
                let si = vals[cell.inputs()[3].index()];
                Logic::mux2(se, d, si)
            }
            _ => vals[cell.inputs()[0].index()].drive(),
        };
        if let Some(rpin) = cell.reset() {
            let r = vals[rpin.index()].drive();
            let act = match cell.kind() {
                CellKind::DffRh => r == Logic::One,
                _ => r == Logic::Zero,
            };
            if act {
                next = Logic::Zero;
            } else if !r.is_definite() && next != Logic::Zero {
                next = Logic::X;
            }
        }
        next
    }

    /// The good machine's next state after 1-based `frame`: pulsed
    /// flops sample (then apply reset handling), and asynchronous
    /// resets additionally act on *every* flop every frame — a reset
    /// pin is asynchronous, so it does not wait for a pulse. This is
    /// `simulate_good`'s rule in the workspace reset contract
    /// (`occ_fsim::FaultSim::capture_flop`, "reset semantics").
    fn next_state_good(
        &self,
        spec: &FrameSpec,
        frame: usize,
        vals: &[Logic],
        prev: &[Logic],
    ) -> Vec<Logic> {
        let nl = self.model.netlist();
        let cycle = &spec.cycles()[frame - 1];
        let mut next = prev.to_vec();
        for (fi, info) in self.model.flops().iter().enumerate() {
            if cycle.pulses_domain(info.domain) {
                next[fi] = self.sample_and_reset(info.cell, vals);
                continue;
            }
            if let Some(rpin) = nl.cell(info.cell).reset() {
                let r = vals[rpin.index()].drive();
                let act = match nl.cell(info.cell).kind() {
                    CellKind::DffRh => r == Logic::One,
                    _ => r == Logic::Zero,
                };
                if act {
                    next[fi] = Logic::Zero;
                } else if !r.is_definite() && next[fi] != Logic::Zero {
                    next[fi] = Logic::X;
                }
            }
        }
        next
    }

    /// The faulty machine's next state after 1-based `frame`,
    /// mirroring the packed PPSFP engines' sparse-difference rule
    /// (the workspace reset contract,
    /// `occ_fsim::FaultSim::capture_flop`): a pulsed flop samples and
    /// applies reset handling from the faulty values; a *non-pulsed*
    /// flop carries its entering state **iff the fault involves it**
    /// (its entering state differs from the good machine, or some
    /// input-pin driver settled to a different faulty value this
    /// frame) — a faulty reset net active in a non-pulsed frame is
    /// not propagated into the flop. A non-pulsed flop the fault does
    /// not involve tracks the good machine exactly (including the
    /// good machine's own asynchronous-reset action).
    #[allow(clippy::too_many_arguments)]
    fn next_state_faulty(
        &self,
        spec: &FrameSpec,
        frame: usize,
        fvals: &[Logic],
        gvals: &[Logic],
        fprev: &[Logic],
        gprev: &[Logic],
        gnext: &[Logic],
    ) -> Vec<Logic> {
        let nl = self.model.netlist();
        let cycle = &spec.cycles()[frame - 1];
        let mut next = fprev.to_vec();
        for (fi, info) in self.model.flops().iter().enumerate() {
            if cycle.pulses_domain(info.domain) {
                next[fi] = self.sample_and_reset(info.cell, fvals);
                continue;
            }
            let involved = fprev[fi] != gprev[fi]
                || nl
                    .cell(info.cell)
                    .inputs()
                    .iter()
                    .any(|&s| fvals[s.index()] != gvals[s.index()]);
            next[fi] = if involved { fprev[fi] } else { gnext[fi] };
        }
        next
    }

    /// The good value of the fault site's driving node in 1-based
    /// `frame`.
    pub fn site_good(&self, fault: Fault, frame: usize) -> Logic {
        let node = self.site_node(fault.site());
        self.good[frame - 1][node.index()]
    }

    /// The node carrying the site value (driver for input-pin faults).
    pub fn site_node(&self, site: FaultSite) -> CellId {
        match site {
            FaultSite::Output(c) => c,
            FaultSite::Input { cell, pin } => {
                self.model.netlist().cell(cell).inputs()[pin as usize]
            }
        }
    }

    /// Whether the current pattern detects the fault (same criterion as
    /// the packed fault simulator: launch condition for transition
    /// faults, definite difference at an observed point).
    pub fn detected(&self, spec: &FrameSpec, fault: Fault) -> bool {
        let frames = spec.frames();
        if fault.model() == FaultModel::Transition {
            if frames < 2 {
                return false;
            }
            let node = self.site_node(fault.site());
            let before = self.good[frames - 2][node.index()];
            let after = self.good[frames - 1][node.index()];
            let ok = match fault.polarity() {
                Polarity::P0 => before == Logic::Zero && after == Logic::One,
                Polarity::P1 => before == Logic::One && after == Logic::Zero,
            };
            if !ok {
                return false;
            }
        }
        for &k in spec.po_observe_frames() {
            for &po in self.model.primary_outputs() {
                let g = self.good[k - 1][po.index()];
                let f = self.faulty[k - 1][po.index()];
                if g.is_definite() && f.is_definite() && g != f {
                    return true;
                }
            }
        }
        for &fi in self.model.scan_flops() {
            let g = self.good_state[frames][fi as usize];
            let mut f = self.faulty_state[frames][fi as usize];
            if fault.model() == FaultModel::StuckAt {
                if let FaultSite::Output(c) = fault.site() {
                    if c == self.model.flops()[fi as usize].cell {
                        f = polarity_logic(fault.polarity());
                    }
                }
            }
            if g.is_definite() && f.is_definite() && g != f {
                return true;
            }
        }
        false
    }
}

pub(crate) fn polarity_logic(p: Polarity) -> Logic {
    match p {
        Polarity::P0 => Logic::Zero,
        Polarity::P1 => Logic::One,
    }
}

/// Which of the two machines an internal pass operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Machine {
    Good,
    Faulty,
}

/// The good-machine arrays of one full simulation of the **all-X**
/// pattern under one procedure spec.
///
/// PODEM opens every run with `Pattern::empty` (all scan bits and PIs
/// at `X`), so the good machine's opening full simulation depends on
/// the spec alone — when ATPG targets thousands of faults under the
/// same handful of procedures, every run after the first can *seed*
/// its arrays from this snapshot (good and faulty both start as the
/// good baseline) and inject only the fault incrementally, instead of
/// re-evaluating every cell of every frame from scratch.
#[derive(Debug)]
struct SpecBaseline {
    /// The spec the arrays reflect (compared by [`FrameSpec`]
    /// equality).
    spec: FrameSpec,
    /// Good frame values, `frames * cells`.
    good: Vec<Logic>,
    /// Good flop states, `(frames + 1) * flops`.
    good_state: Vec<Logic>,
}

/// True for opcodes the levelized propagation re-evaluates — the cells
/// an input-pin fault can be seeded into. Sources, ties and state
/// cells never sit in the worklist buckets.
#[inline]
fn is_comb_op(op: OpCode) -> bool {
    matches!(
        op,
        OpCode::Buf
            | OpCode::Not
            | OpCode::And
            | OpCode::Nand
            | OpCode::Or
            | OpCode::Nor
            | OpCode::Xor
            | OpCode::Xnor
            | OpCode::Mux2
    )
}

/// True when every scan bit and every PI of the pattern is `X` —
/// exactly the shape `Pattern::empty` produces.
fn pattern_is_all_x(pattern: &Pattern) -> bool {
    pattern.scan_load.iter().all(|&v| v == Logic::X)
        && pattern
            .pis
            .iter()
            .all(|frame| frame.iter().all(|&v| v == Logic::X))
}

/// Compiled dual-machine value engine for PODEM, riding the
/// [`SimGraph`] of the bound model.
///
/// The engine keeps both machines' node values for every frame in flat
/// reusable arrays (`frame * cell` and `frame * flop` indexed — no
/// per-call `Vec<Vec<Logic>>`). A run starts with one full simulation
/// ([`DualGraphSim::begin`]); afterwards each PODEM decision notes the
/// changed variable ([`DualGraphSim::note_scan`] /
/// [`DualGraphSim::note_pi`]) and [`DualGraphSim::resimulate`] updates
/// only the affected cone: changed sources are seeded into levelized
/// worklist buckets, cells re-evaluate in level order, fanouts are
/// notified only when a value actually moved, and flop captures
/// recompute only for flops whose sample cone or entering state
/// changed — carrying the dirt frame to frame.
///
/// Values are bit-identical to [`DualSim`] for the same (spec,
/// pattern, fault): every cell is a pure function of its fanins, so
/// re-evaluating exactly the changed cone reproduces the full
/// re-evaluation. The equivalence sweep in `tests/atpg_equivalence.rs`
/// checks this transitively through whole ATPG runs.
///
/// Reset semantics follow [`DualSim`] and the packed engines (the
/// good machine resets every frame; a non-pulsed faulty flop carries
/// iff fault-involved, else tracks the good machine); see
/// `occ_fsim::FaultSim::capture_flop` for the contract shared by all
/// engines. Because the faulty capture reads *good*-machine values,
/// the good pass always runs to completion before the faulty pass and
/// records which flops it re-captured per frame; the faulty capture
/// then recomputes its own touched set merged with that record — the
/// union covers every capture input that can have changed, keeping
/// both passes fully incremental.
#[derive(Debug)]
pub struct DualGraphSim<'m, 'a> {
    model: &'m CaptureModel<'a>,
    graph: &'m SimGraph,
    /// Constant tie values, precomputed as scalars.
    ties: Vec<(u32, Logic)>,
    /// Bound frame count (0 until the first [`DualGraphSim::begin`]).
    frames: usize,
    /// Frame values, `(k-1) * cells + cell` (k 1-based).
    good: Vec<Logic>,
    faulty: Vec<Logic>,
    /// Flop states, `k * flops + fi` (k 0-based; 0 is the load state).
    good_state: Vec<Logic>,
    faulty_state: Vec<Logic>,
    /// The fault the arrays currently reflect.
    cur_fault: Option<Fault>,
    // Event-driven re-evaluation scratch (shared by both machines,
    // used one frame at a time).
    buckets: Vec<Vec<u32>>,
    enq: Vec<u32>,
    flop_stamp: Vec<u32>,
    gen: u32,
    touched: Vec<u32>,
    // Decision-variable changes noted since the last (re)simulation.
    dirty_scan: Vec<u32>,
    dirty_pi: Vec<(u32, u32)>,
    // `(frame - 1, cell)` pairs whose value moved (either machine)
    // during the most recent `resimulate` — the feed for the search
    // engine's D-frontier candidate maintenance.
    changed: Vec<(u32, u32)>,
    // Entering-state dirt, double-buffered across frames.
    sdirty: Vec<u32>,
    sdirty_next: Vec<u32>,
    // Flops the good pass re-captured, per frame (index k-1). The
    // faulty capture reads good values/states, so its incremental
    // sweep is its own touched set merged with this one.
    good_flop_touched: Vec<Vec<u32>>,
    // Per-spec snapshots of the all-X good machine; `begin` seeds from
    // a matching snapshot instead of running a full simulation.
    baselines: Vec<SpecBaseline>,
    // Work counters.
    events: u64,
    incremental_resims: u64,
    full_resims: u64,
    seeded_sims: u64,
}

impl<'m, 'a> DualGraphSim<'m, 'a> {
    /// Creates an engine bound to the model's compiled graph. Scratch
    /// arrays are sized lazily on the first [`DualGraphSim::begin`].
    pub fn new(model: &'m CaptureModel<'a>) -> Self {
        let graph = model.graph();
        let ties: Vec<(u32, Logic)> = model
            .netlist()
            .iter()
            .filter_map(|(id, cell)| match cell.kind() {
                CellKind::Tie0 => Some((id.index() as u32, Logic::Zero)),
                CellKind::Tie1 => Some((id.index() as u32, Logic::One)),
                _ => None,
            })
            .collect();
        DualGraphSim {
            model,
            graph,
            ties,
            frames: 0,
            good: Vec::new(),
            faulty: Vec::new(),
            good_state: Vec::new(),
            faulty_state: Vec::new(),
            cur_fault: None,
            buckets: vec![Vec::new(); graph.bucket_count()],
            enq: vec![0; graph.cells()],
            flop_stamp: vec![0; graph.flop_count()],
            gen: 0,
            touched: Vec::new(),
            dirty_scan: Vec::new(),
            dirty_pi: Vec::new(),
            changed: Vec::new(),
            sdirty: Vec::new(),
            sdirty_next: Vec::new(),
            good_flop_touched: Vec::new(),
            baselines: Vec::new(),
            events: 0,
            incremental_resims: 0,
            full_resims: 0,
            seeded_sims: 0,
        }
    }

    /// The bound capture model.
    pub fn model(&self) -> &'m CaptureModel<'a> {
        self.model
    }

    /// Cell evaluations plus flop-capture computations performed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Incremental (changed-cone) re-simulations performed.
    pub fn incremental_resims(&self) -> u64 {
        self.incremental_resims
    }

    /// Full from-scratch simulations performed (one per PODEM run).
    pub fn full_resims(&self) -> u64 {
        self.full_resims
    }

    /// PODEM runs whose opening simulation was seeded from the
    /// per-spec all-X baseline instead of evaluated from scratch.
    pub fn seeded_sims(&self) -> u64 {
        self.seeded_sims
    }

    /// Good value of `cell` in 1-based `frame`.
    #[inline]
    pub fn good(&self, frame: usize, cell: CellId) -> Logic {
        self.good[(frame - 1) * self.graph.cells() + cell.index()]
    }

    /// Faulty value of `cell` in 1-based `frame`.
    #[inline]
    pub fn faulty(&self, frame: usize, cell: CellId) -> Logic {
        self.faulty[(frame - 1) * self.graph.cells() + cell.index()]
    }

    /// Good state of flop `fi` after cycle `k` (`k = 0` is the load).
    #[inline]
    pub fn good_state(&self, k: usize, fi: usize) -> Logic {
        self.good_state[k * self.graph.flop_count() + fi]
    }

    /// Faulty state of flop `fi` after cycle `k`.
    #[inline]
    pub fn faulty_state(&self, k: usize, fi: usize) -> Logic {
        self.faulty_state[k * self.graph.flop_count() + fi]
    }

    /// The node carrying the site value (driver for input-pin faults).
    pub fn site_node(&self, site: FaultSite) -> CellId {
        match site {
            FaultSite::Output(c) => c,
            FaultSite::Input { cell, pin } => {
                self.model.netlist().cell(cell).inputs()[pin as usize]
            }
        }
    }

    /// Starts a PODEM run: full dual simulation of `pattern` with
    /// `fault` injected in its active frames. Subsequent
    /// [`DualGraphSim::resimulate`] calls update incrementally.
    pub fn begin(&mut self, spec: &FrameSpec, pattern: &Pattern, fault: Fault) {
        self.bind(spec);
        self.cur_fault = Some(fault);
        self.dirty_scan.clear();
        self.dirty_pi.clear();

        let frames = spec.frames();
        let n = self.graph.cells();
        let nf = self.graph.flop_count();
        let all_x = pattern_is_all_x(pattern);

        // PODEM always opens with the all-X pattern, whose good
        // machine depends on the spec alone: seed both machines from
        // the cached baseline and inject only the fault incrementally.
        if all_x {
            let DualGraphSim {
                baselines,
                good,
                faulty,
                good_state,
                faulty_state,
                ..
            } = self;
            if let Some(b) = baselines.iter().find(|b| &b.spec == spec) {
                good[..frames * n].copy_from_slice(&b.good);
                faulty[..frames * n].copy_from_slice(&b.good);
                good_state[..(frames + 1) * nf].copy_from_slice(&b.good_state);
                faulty_state[..(frames + 1) * nf].copy_from_slice(&b.good_state);
                self.seeded_sims += 1;
                self.inject_fault_incremental(spec, fault);
                return;
            }
        }

        self.full_resims += 1;
        self.good[..frames * n].fill(Logic::X);
        self.faulty[..frames * n].fill(Logic::X);
        self.good_state[..(frames + 1) * nf].fill(Logic::X);
        self.faulty_state[..(frames + 1) * nf].fill(Logic::X);

        for (si, &fi) in self.model.scan_flops().iter().enumerate() {
            let v = pattern.scan_load[si];
            self.good_state[fi as usize] = v;
            self.faulty_state[fi as usize] = v;
        }

        for k in 1..=frames {
            let active = fault_active(fault, k, frames);
            self.eval_frame_full(Machine::Good, pattern, k, None);
            self.eval_frame_full(Machine::Faulty, pattern, k, active.then_some(fault));
            // Good next-state first: the faulty capture reads it.
            self.next_state_full_good(spec, k);
            self.next_state_full_faulty(spec, k);
        }

        if all_x {
            self.baselines.push(SpecBaseline {
                spec: spec.clone(),
                good: self.good[..frames * n].to_vec(),
                good_state: self.good_state[..(frames + 1) * nf].to_vec(),
            });
        }
    }

    /// Faulty-machine-only incremental pass over all frames, used when
    /// [`DualGraphSim::begin`] seeded both machines from a
    /// [`SpecBaseline`]: the good arrays are already exact, so only the
    /// fault's difference cone needs evaluation. Mirrors the faulty
    /// half of [`DualGraphSim::machine_pass`] with the fault site (and,
    /// for input-pin faults, the faulted cell) as the only seeds.
    ///
    /// `good_flop_touched` is left stale on purpose: `resimulate`
    /// always runs its good pass (which rewrites the per-frame records)
    /// before the faulty pass reads them, and nothing else consumes
    /// them. The change log is likewise untouched — the search engine
    /// rebuilds its candidate set from scratch after `begin`.
    fn inject_fault_incremental(&mut self, spec: &FrameSpec, fault: Fault) {
        let DualGraphSim {
            graph,
            frames,
            good,
            faulty,
            good_state,
            faulty_state,
            buckets,
            enq,
            flop_stamp,
            gen,
            touched,
            sdirty,
            sdirty_next,
            events,
            ..
        } = self;
        let graph: &SimGraph = graph;
        let frames = *frames;
        let n = graph.cells();
        let nf = graph.flop_count();

        sdirty.clear();
        for k in 1..=frames {
            *gen = gen.wrapping_add(1);
            if *gen == 0 {
                enq.fill(0);
                flop_stamp.fill(0);
                *gen = 1;
            }
            touched.clear();
            let active = fault_active(fault, k, frames);
            let (out_site, in_site, forced) = decode_fault(active.then_some(fault));
            {
                let vals = &mut faulty[(k - 1) * n..k * n];

                // Seed 1: flops whose entering faulty state diverged in
                // an earlier frame.
                for &fi in sdirty.iter() {
                    let fi = fi as usize;
                    if flop_stamp[fi] != *gen {
                        flop_stamp[fi] = *gen;
                        touched.push(fi as u32);
                    }
                    let ci = graph.flop_meta(fi).cell as usize;
                    if out_site == Some(ci) {
                        continue;
                    }
                    let v = faulty_state[(k - 1) * nf + fi];
                    if vals[ci] != v {
                        vals[ci] = v;
                        push_fanouts(graph, ci, *gen, enq, buckets, flop_stamp, touched);
                    }
                }

                // Seed 2: the fault site itself.
                if let Some(ci) = out_site {
                    if vals[ci] != forced {
                        vals[ci] = forced;
                        push_fanouts(graph, ci, *gen, enq, buckets, flop_stamp, touched);
                    }
                }
                if let Some((ci, _)) = in_site {
                    // Only combinational cells may enter the worklist;
                    // a faulted pin on a source/state cell cannot
                    // change that cell's own value anyway.
                    if is_comb_op(graph.op(ci)) && enq[ci] != *gen {
                        enq[ci] = *gen;
                        buckets[graph.level_of(ci) as usize].push(ci as u32);
                    }
                }

                // Propagate level by level; only moved values notify.
                for lvl in 0..buckets.len() {
                    while let Some(raw) = buckets[lvl].pop() {
                        let ci = raw as usize;
                        if out_site == Some(ci) {
                            continue;
                        }
                        let pin_fault = match in_site {
                            Some((cell, pin)) if cell == ci => Some((pin, forced)),
                            _ => None,
                        };
                        *events += 1;
                        let v = eval_logic(graph, ci, vals, pin_fault);
                        if v != vals[ci] {
                            vals[ci] = v;
                            push_fanouts(graph, ci, *gen, enq, buckets, flop_stamp, touched);
                        }
                    }
                }
            }

            // Capture recompute for touched flops only. An untouched
            // flop's entering state and sample cone equal the good
            // machine's, so its capture equals the good capture — which
            // is exactly the copied value.
            sdirty_next.clear();
            let cycle = &spec.cycles()[k - 1];
            let fvals = &faulty[(k - 1) * n..k * n];
            let gvals = &good[(k - 1) * n..k * n];
            let gprev = &good_state[(k - 1) * nf..k * nf];
            let gnext = &good_state[k * nf..(k + 1) * nf];
            let (fprev_all, fnext_all) = faulty_state.split_at_mut(k * nf);
            let fprev = &fprev_all[(k - 1) * nf..];
            let fnext = &mut fnext_all[..nf];
            for &fi in touched.iter() {
                let fi = fi as usize;
                *events += 1;
                let pulsed = cycle.pulses_domain(graph.flop_meta(fi).domain as usize);
                let v = capture_faulty(
                    graph, fi, pulsed, fvals, gvals, fprev[fi], gprev[fi], gnext[fi],
                );
                if v != fnext[fi] {
                    fnext[fi] = v;
                    sdirty_next.push(fi as u32);
                }
            }
            std::mem::swap(sdirty, sdirty_next);
        }
    }

    /// Notes that scan-load bit `si` changed since the last simulation.
    #[inline]
    pub fn note_scan(&mut self, si: usize) {
        self.dirty_scan.push(si as u32);
    }

    /// Notes that free-PI `pi` of pattern frame `pframe` changed.
    #[inline]
    pub fn note_pi(&mut self, pi: usize, pframe: usize) {
        self.dirty_pi.push((pi as u32, pframe as u32));
    }

    /// Re-simulates after the noted decision-variable changes,
    /// re-evaluating only the affected cones of both machines.
    ///
    /// # Panics
    ///
    /// Panics if called before [`DualGraphSim::begin`].
    pub fn resimulate(&mut self, spec: &FrameSpec, pattern: &Pattern) {
        assert!(self.cur_fault.is_some(), "resimulate before begin");
        self.changed.clear();
        if self.dirty_scan.is_empty() && self.dirty_pi.is_empty() {
            return; // arrays already reflect the pattern
        }
        self.incremental_resims += 1;
        self.machine_pass(Machine::Good, spec, pattern);
        self.machine_pass(Machine::Faulty, spec, pattern);
        self.dirty_scan.clear();
        self.dirty_pi.clear();
    }

    /// Takes the `(frame - 1, cell)` change log of the most recent
    /// [`DualGraphSim::resimulate`] (both machines, duplicates
    /// possible). The caller returns the buffer through
    /// [`DualGraphSim::restore_changed`] so its capacity is reused.
    pub(crate) fn take_changed(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.changed)
    }

    /// Hands a drained change-log buffer back for reuse.
    pub(crate) fn restore_changed(&mut self, mut buf: Vec<(u32, u32)>) {
        buf.clear();
        self.changed = buf;
    }

    /// Sizes the flat arrays for the spec (grow-only).
    fn bind(&mut self, spec: &FrameSpec) {
        let frames = spec.frames();
        self.frames = frames;
        let n = self.graph.cells();
        let nf = self.graph.flop_count();
        if self.good.len() < frames * n {
            self.good.resize(frames * n, Logic::X);
            self.faulty.resize(frames * n, Logic::X);
        }
        if self.good_state.len() < (frames + 1) * nf {
            self.good_state.resize((frames + 1) * nf, Logic::X);
            self.faulty_state.resize((frames + 1) * nf, Logic::X);
        }
        if self.good_flop_touched.len() < frames {
            self.good_flop_touched.resize(frames, Vec::new());
        }
    }

    /// Full evaluation of one machine's frame `k`, mirroring
    /// [`DualSim::simulate`]'s `eval_frame` over the graph.
    fn eval_frame_full(
        &mut self,
        machine: Machine,
        pattern: &Pattern,
        k: usize,
        fault: Option<Fault>,
    ) {
        let graph = self.graph;
        let model = self.model;
        let n = graph.cells();
        let nf = graph.flop_count();
        let (vals_all, state_all) = match machine {
            Machine::Good => (&mut self.good, &self.good_state),
            Machine::Faulty => (&mut self.faulty, &self.faulty_state),
        };
        let vals = &mut vals_all[(k - 1) * n..k * n];
        let state = &state_all[(k - 1) * nf..k * nf];

        for &(c, v) in &self.ties {
            vals[c as usize] = v;
        }
        for &(c, v) in model.forced() {
            vals[c.index()] = v;
        }
        for &c in model.masked() {
            vals[c.index()] = Logic::X;
        }
        let pis = pattern.pis_for_frame(k);
        for (i, &pi) in model.free_pis().iter().enumerate() {
            vals[pi.index()] = pis[i];
        }
        for (fi, &s) in state.iter().enumerate() {
            vals[graph.flop_meta(fi).cell as usize] = s;
        }
        let (out_site, in_site, forced) = decode_fault(fault);
        if let Some(ci) = out_site {
            vals[ci] = forced;
        }
        let mut events = 0u64;
        for &c in graph.comb_order() {
            let ci = c as usize;
            if out_site == Some(ci) {
                vals[ci] = forced;
                continue;
            }
            let pin_fault = match in_site {
                Some((cell, pin)) if cell == ci => Some((pin, forced)),
                _ => None,
            };
            events += 1;
            vals[ci] = eval_logic(graph, ci, vals, pin_fault);
        }
        self.events += events;
    }

    /// Full good-machine next-state computation after frame `k`,
    /// mirroring [`DualSim::simulate`]'s `next_state_good`.
    fn next_state_full_good(&mut self, spec: &FrameSpec, k: usize) {
        let graph = self.graph;
        let n = graph.cells();
        let nf = graph.flop_count();
        let vals = &self.good[(k - 1) * n..k * n];
        let (prev_all, next_all) = self.good_state.split_at_mut(k * nf);
        let prev = &prev_all[(k - 1) * nf..];
        let next = &mut next_all[..nf];
        let cycle = &spec.cycles()[k - 1];
        let mut events = 0u64;
        for fi in 0..nf {
            events += 1;
            let pulsed = cycle.pulses_domain(graph.flop_meta(fi).domain as usize);
            next[fi] = capture_logic(graph, fi, pulsed, vals, prev[fi]);
        }
        self.events += events;
    }

    /// Full faulty-machine next-state computation after frame `k`,
    /// mirroring [`DualSim::simulate`]'s `next_state_faulty`. Must run
    /// after [`DualGraphSim::next_state_full_good`] for the same frame
    /// — the non-pulsed rule reads the good machine's values, entering
    /// state and next state.
    fn next_state_full_faulty(&mut self, spec: &FrameSpec, k: usize) {
        let graph = self.graph;
        let n = graph.cells();
        let nf = graph.flop_count();
        let fvals = &self.faulty[(k - 1) * n..k * n];
        let gvals = &self.good[(k - 1) * n..k * n];
        let gprev = &self.good_state[(k - 1) * nf..k * nf];
        let gnext = &self.good_state[k * nf..(k + 1) * nf];
        let (fprev_all, fnext_all) = self.faulty_state.split_at_mut(k * nf);
        let fprev = &fprev_all[(k - 1) * nf..];
        let fnext = &mut fnext_all[..nf];
        let cycle = &spec.cycles()[k - 1];
        let mut events = 0u64;
        for fi in 0..nf {
            events += 1;
            let pulsed = cycle.pulses_domain(graph.flop_meta(fi).domain as usize);
            fnext[fi] = capture_faulty(
                graph, fi, pulsed, fvals, gvals, fprev[fi], gprev[fi], gnext[fi],
            );
        }
        self.events += events;
    }

    /// One machine's incremental pass over all frames: seed the changed
    /// sources, propagate level by level, recompute touched captures,
    /// carry state dirt forward.
    fn machine_pass(&mut self, machine: Machine, spec: &FrameSpec, pattern: &Pattern) {
        let DualGraphSim {
            model,
            graph,
            frames,
            good,
            faulty,
            good_state,
            faulty_state,
            cur_fault,
            buckets,
            enq,
            flop_stamp,
            gen,
            touched,
            dirty_scan,
            dirty_pi,
            changed,
            sdirty,
            sdirty_next,
            good_flop_touched,
            events,
            ..
        } = self;
        let graph: &SimGraph = graph;
        let frames = *frames;
        let n = graph.cells();
        let nf = graph.flop_count();
        let fault = cur_fault.expect("machine_pass before begin");
        let hold = pattern.pis.len() == 1;

        // Load-state changes seed frame 1's entering-state dirt.
        sdirty.clear();
        {
            let state_all = match machine {
                Machine::Good => &mut good_state[..],
                Machine::Faulty => &mut faulty_state[..],
            };
            for &si in dirty_scan.iter() {
                let fi = model.scan_flops()[si as usize] as usize;
                let v = pattern.scan_load[si as usize];
                if state_all[fi] != v {
                    state_all[fi] = v;
                    sdirty.push(fi as u32);
                }
            }
        }

        for k in 1..=frames {
            *gen = gen.wrapping_add(1);
            if *gen == 0 {
                enq.fill(0);
                flop_stamp.fill(0);
                *gen = 1;
            }
            touched.clear();
            let active = fault_active(fault, k, frames);
            let (out_site, in_site, forced) = decode_fault(match machine {
                Machine::Good => None,
                Machine::Faulty => active.then_some(fault),
            });
            {
                let (vals_all, state_all) = match machine {
                    Machine::Good => (&mut good[..], &good_state[..]),
                    Machine::Faulty => (&mut faulty[..], &faulty_state[..]),
                };
                let vals = &mut vals_all[(k - 1) * n..k * n];

                // Seed 1: changed PIs applying to this frame.
                for &(pi, pf) in dirty_pi.iter() {
                    if !hold && pf as usize != k - 1 {
                        continue;
                    }
                    let ci = model.free_pis()[pi as usize].index();
                    if out_site == Some(ci) {
                        continue; // forced site never changes
                    }
                    let v = pattern.pis_for_frame(k)[pi as usize];
                    if vals[ci] != v {
                        vals[ci] = v;
                        changed.push(((k - 1) as u32, ci as u32));
                        push_fanouts(graph, ci, *gen, enq, buckets, flop_stamp, touched);
                    }
                }

                // Seed 2: flops whose entering state changed — their
                // node value moves, and their capture must recompute
                // even when holding.
                for &fi in sdirty.iter() {
                    let fi = fi as usize;
                    if flop_stamp[fi] != *gen {
                        flop_stamp[fi] = *gen;
                        touched.push(fi as u32);
                    }
                    let ci = graph.flop_meta(fi).cell as usize;
                    if out_site == Some(ci) {
                        continue;
                    }
                    let v = state_all[(k - 1) * nf + fi];
                    if vals[ci] != v {
                        vals[ci] = v;
                        changed.push(((k - 1) as u32, ci as u32));
                        push_fanouts(graph, ci, *gen, enq, buckets, flop_stamp, touched);
                    }
                }

                // Propagate level by level; only moved values notify.
                for lvl in 0..buckets.len() {
                    while let Some(raw) = buckets[lvl].pop() {
                        let ci = raw as usize;
                        if out_site == Some(ci) {
                            continue;
                        }
                        let pin_fault = match in_site {
                            Some((cell, pin)) if cell == ci => Some((pin, forced)),
                            _ => None,
                        };
                        *events += 1;
                        let v = eval_logic(graph, ci, vals, pin_fault);
                        if v != vals[ci] {
                            vals[ci] = v;
                            changed.push(((k - 1) as u32, ci as u32));
                            push_fanouts(graph, ci, *gen, enq, buckets, flop_stamp, touched);
                        }
                    }
                }
            }

            // Capture phase; changed next states carry the dirt into
            // frame k+1. The good machine recomputes only the touched
            // captures (and records them); the faulty machine's
            // non-pulsed rule reads the good machine's values, entering
            // state and next state, so it recomputes its own touched
            // set merged with the flops the good pass re-captured this
            // frame — the union covers every input of `capture_faulty`
            // that can have changed.
            sdirty_next.clear();
            let cycle = &spec.cycles()[k - 1];
            match machine {
                Machine::Good => {
                    let vals = &good[(k - 1) * n..k * n];
                    let (prev_all, next_all) = good_state.split_at_mut(k * nf);
                    let prev = &prev_all[(k - 1) * nf..];
                    let next = &mut next_all[..nf];
                    for &fi in touched.iter() {
                        let fi = fi as usize;
                        *events += 1;
                        let pulsed = cycle.pulses_domain(graph.flop_meta(fi).domain as usize);
                        let v = capture_logic(graph, fi, pulsed, vals, prev[fi]);
                        if v != next[fi] {
                            next[fi] = v;
                            sdirty_next.push(fi as u32);
                        }
                    }
                    let record = &mut good_flop_touched[k - 1];
                    record.clear();
                    record.extend_from_slice(touched);
                }
                Machine::Faulty => {
                    for &fi in &good_flop_touched[k - 1] {
                        if flop_stamp[fi as usize] != *gen {
                            flop_stamp[fi as usize] = *gen;
                            touched.push(fi);
                        }
                    }
                    let fvals = &faulty[(k - 1) * n..k * n];
                    let gvals = &good[(k - 1) * n..k * n];
                    let gprev = &good_state[(k - 1) * nf..k * nf];
                    let gnext = &good_state[k * nf..(k + 1) * nf];
                    let (fprev_all, fnext_all) = faulty_state.split_at_mut(k * nf);
                    let fprev = &fprev_all[(k - 1) * nf..];
                    let fnext = &mut fnext_all[..nf];
                    for &fi in touched.iter() {
                        let fi = fi as usize;
                        *events += 1;
                        let pulsed = cycle.pulses_domain(graph.flop_meta(fi).domain as usize);
                        let v = capture_faulty(
                            graph, fi, pulsed, fvals, gvals, fprev[fi], gprev[fi], gnext[fi],
                        );
                        if v != fnext[fi] {
                            fnext[fi] = v;
                            sdirty_next.push(fi as u32);
                        }
                    }
                }
            }
            std::mem::swap(sdirty, sdirty_next);
        }
    }

    /// Whether the current pattern detects the fault — same criterion
    /// as [`DualSim::detected`].
    pub fn detected(&self, spec: &FrameSpec, fault: Fault) -> bool {
        let frames = spec.frames();
        if fault.model() == FaultModel::Transition {
            if frames < 2 {
                return false;
            }
            let node = self.site_node(fault.site());
            let before = self.good(frames - 1, node);
            let after = self.good(frames, node);
            let ok = match fault.polarity() {
                Polarity::P0 => before == Logic::Zero && after == Logic::One,
                Polarity::P1 => before == Logic::One && after == Logic::Zero,
            };
            if !ok {
                return false;
            }
        }
        for &k in spec.po_observe_frames() {
            for &po in self.model.primary_outputs() {
                let g = self.good(k, po);
                let f = self.faulty(k, po);
                if g.is_definite() && f.is_definite() && g != f {
                    return true;
                }
            }
        }
        for &fi in self.model.scan_flops() {
            let g = self.good_state(frames, fi as usize);
            let mut f = self.faulty_state(frames, fi as usize);
            if fault.model() == FaultModel::StuckAt {
                if let FaultSite::Output(c) = fault.site() {
                    if c == self.model.flops()[fi as usize].cell {
                        f = polarity_logic(fault.polarity());
                    }
                }
            }
            if g.is_definite() && f.is_definite() && g != f {
                return true;
            }
        }
        false
    }
}

/// Whether the fault is injected in 1-based frame `k` of `frames`.
#[inline]
fn fault_active(fault: Fault, k: usize, frames: usize) -> bool {
    match fault.model() {
        FaultModel::StuckAt => true,
        FaultModel::Transition => k == frames,
    }
}

/// Splits an optional injected fault into (forced output cell, forced
/// input pin, forced value).
#[inline]
fn decode_fault(fault: Option<Fault>) -> (Option<usize>, Option<(usize, u8)>, Logic) {
    match fault {
        None => (None, None, Logic::X),
        Some(f) => {
            let forced = polarity_logic(f.polarity());
            match f.site() {
                FaultSite::Output(c) => (Some(c.index()), None, forced),
                FaultSite::Input { cell, pin } => (None, Some((cell.index(), pin)), forced),
            }
        }
    }
}

/// Scalar evaluation of one combinational cell over the graph —
/// exactly [`CellKind::eval_comb`] per op code, reading fanins from
/// `vals` with an optional forced pin.
#[inline]
fn eval_logic(
    graph: &SimGraph,
    ci: usize,
    vals: &[Logic],
    pin_fault: Option<(u8, Logic)>,
) -> Logic {
    let fanins = graph.fanins(ci);
    let read = |pin: usize| -> Logic {
        match pin_fault {
            Some((p, v)) if p as usize == pin => v,
            _ => vals[fanins[pin] as usize],
        }
    };
    match graph.op(ci) {
        OpCode::Buf => read(0).drive(),
        OpCode::Not => !read(0),
        OpCode::And => Logic::and_all((0..fanins.len()).map(read)),
        OpCode::Nand => !Logic::and_all((0..fanins.len()).map(read)),
        OpCode::Or => Logic::or_all((0..fanins.len()).map(read)),
        OpCode::Nor => !Logic::or_all((0..fanins.len()).map(read)),
        OpCode::Xor => Logic::xor_all((0..fanins.len()).map(read)),
        OpCode::Xnor => !Logic::xor_all((0..fanins.len()).map(read)),
        OpCode::Mux2 => Logic::mux2(read(0), read(1), read(2)),
        // Sources, ties and state never sit in the levelized order.
        _ => Logic::X,
    }
}

/// Scalar capture of one **good-machine** flop — exactly
/// [`DualSim`]'s `next_state_good` for a single flop: sample on
/// pulse, hold otherwise, then asynchronous-reset handling every
/// frame (the good machine's rule in the workspace reset contract,
/// `occ_fsim::FaultSim::capture_flop`).
#[inline]
fn capture_logic(graph: &SimGraph, fi: usize, pulsed: bool, vals: &[Logic], prev: Logic) -> Logic {
    let meta = graph.flop_meta(fi);
    let mut next = prev;
    if pulsed {
        next = if meta.mux_scan {
            Logic::mux2(
                vals[meta.se as usize],
                vals[meta.d as usize],
                vals[meta.si as usize],
            )
        } else {
            vals[meta.d as usize].drive()
        };
    }
    if meta.reset != NO_RESET {
        let r = vals[meta.reset as usize].drive();
        let act = if meta.reset_high {
            r == Logic::One
        } else {
            r == Logic::Zero
        };
        if act {
            next = Logic::Zero;
        } else if !r.is_definite() && next != Logic::Zero {
            next = Logic::X;
        }
    }
    next
}

/// Scalar capture of one **faulty-machine** flop — exactly
/// [`DualSim`]'s `next_state_faulty` for a single flop, mirroring the
/// packed engines' sparse-difference rule (the workspace reset
/// contract, `occ_fsim::FaultSim::capture_flop`): pulsed flops sample
/// and reset from the faulty values; a non-pulsed flop carries its
/// entering state iff the fault involves it (entering-state
/// difference or a differing input-pin driver value), and otherwise
/// tracks the good machine (whose own reset action is in `gnext`).
#[inline]
#[allow(clippy::too_many_arguments)]
fn capture_faulty(
    graph: &SimGraph,
    fi: usize,
    pulsed: bool,
    fvals: &[Logic],
    gvals: &[Logic],
    fprev: Logic,
    gprev: Logic,
    gnext: Logic,
) -> Logic {
    let meta = graph.flop_meta(fi);
    if pulsed {
        return capture_logic(graph, fi, true, fvals, fprev);
    }
    let involved = fprev != gprev
        || graph
            .fanins(meta.cell as usize)
            .iter()
            .any(|&s| fvals[s as usize] != gvals[s as usize]);
    if involved {
        fprev
    } else {
        gnext
    }
}

/// Enqueues the propagation fanouts of `ci`: combinational sinks into
/// the levelized buckets, flop sinks into the touched list.
#[inline]
fn push_fanouts(
    graph: &SimGraph,
    ci: usize,
    gen: u32,
    enq: &mut [u32],
    buckets: &mut [Vec<u32>],
    flop_stamp: &mut [u32],
    touched: &mut Vec<u32>,
) {
    for &e in graph.prop_fanouts(ci) {
        if e & occ_fsim::FLOP_TAG != 0 {
            let fi = (e & !occ_fsim::FLOP_TAG) as usize;
            if flop_stamp[fi] != gen {
                flop_stamp[fi] = gen;
                touched.push(fi as u32);
            }
        } else {
            let f = e as usize;
            if enq[f] != gen {
                enq[f] = gen;
                buckets[graph.level_of(f) as usize].push(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_fsim::{ClockBinding, CycleSpec, FaultSim};

    #[test]
    fn dual_sim_detection_matches_ppsfp() {
        // Small circuit, all faults, fixed patterns: the scalar dual
        // simulator and the packed engine must agree.
        let mut b = occ_netlist::NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let f0 = b.sdff(d, clk, se, si);
        let inv = b.not(f0);
        let g = b.and2(inv, d);
        let f1 = b.sdff(g, clk, se, f0);
        b.output("q", f1);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        binding.constrain(se, Logic::Zero);
        binding.mask(si);
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("loc", vec![CycleSpec::pulsing(&[0]); 2])
            .hold_pi(true)
            .observe_po(false);
        let uni = occ_fault::FaultUniverse::transition(&nl);

        let mut ds = DualSim::new(&model);
        let mut fsim = FaultSim::new(&model);
        for load0 in [Logic::Zero, Logic::One] {
            for dval in [Logic::Zero, Logic::One] {
                let mut p = Pattern::empty(&model, &spec, 0);
                p.scan_load = vec![load0, Logic::Zero];
                p.pis[0] = vec![dval];
                let good = occ_fsim::simulate_good(&model, &spec, &[p.clone()]);
                for &fault in uni.faults() {
                    ds.simulate(&spec, &p, fault);
                    let scalar = ds.detected(&spec, fault);
                    let packed = fsim.detect(&spec, &good, fault) & 1 == 1;
                    assert_eq!(scalar, packed, "fault {fault} load {load0} d {dval}");
                }
            }
        }
    }
}
