//! Zero-delay cycle simulation with structural clock-path resolution.

use occ_netlist::{CellId, CellKind, Logic, Netlist};
use std::collections::HashMap;

/// A zero-delay, clock-edge-at-a-time simulator.
///
/// Between calls to [`CycleSim::pulse`] all clocks are conceptually low;
/// a pulse is a rising edge applied at one or more clock *ports*. The
/// simulator resolves each flip-flop's clock pin back to a port
/// **structurally through the live netlist** — buffers, clock-gating
/// cells (pass when the settled enable is `1`) and 2-to-1 muxes (follow
/// the settled select) — so a flop behind a CPF really only captures
/// when the CPF lets the pulse through. This mirrors how the paper's
/// ATE protocol interacts with the on-chip clock generation.
///
/// # Examples
///
/// ```
/// use occ_netlist::{NetlistBuilder, Logic};
/// use occ_sim::CycleSim;
///
/// # fn main() -> Result<(), occ_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("t");
/// let clk = b.input("clk");
/// let d = b.input("d");
/// let q = b.dff(d, clk);
/// b.output("q", q);
/// let nl = b.finish()?;
///
/// let mut sim = CycleSim::new(&nl);
/// sim.set(d, Logic::One);
/// sim.settle();
/// sim.pulse(&[clk]);
/// assert_eq!(sim.value(q), Logic::One);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CycleSim<'a> {
    netlist: &'a Netlist,
    values: Vec<Logic>,
    ram: HashMap<CellId, RamBox>,
}

#[derive(Debug, Default)]
struct RamBox {
    mem: HashMap<u64, Vec<Logic>>,
    poisoned: bool,
}

impl<'a> CycleSim<'a> {
    /// Creates a simulator; all state starts at `X`, ties at their
    /// constants.
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut values = vec![Logic::X; netlist.len()];
        let mut ram = HashMap::new();
        for (id, cell) in netlist.iter() {
            match cell.kind() {
                CellKind::Tie0 => values[id.index()] = Logic::Zero,
                CellKind::Tie1 => values[id.index()] = Logic::One,
                CellKind::Ram { .. } => {
                    ram.insert(id, RamBox::default());
                }
                _ => {}
            }
        }
        CycleSim {
            netlist,
            values,
            ram,
        }
    }

    /// Sets a primary input value (takes effect at the next
    /// [`CycleSim::settle`]).
    ///
    /// # Panics
    ///
    /// Panics if `pi` is not a primary input.
    pub fn set(&mut self, pi: CellId, v: Logic) {
        assert_eq!(
            self.netlist.cell(pi).kind(),
            CellKind::Input,
            "set() target must be a primary input"
        );
        self.values[pi.index()] = v;
    }

    /// Directly overwrites a flip-flop's state (scan-load shortcut used
    /// by tests and the protocol driver).
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a flip-flop.
    pub fn set_flop(&mut self, ff: CellId, v: Logic) {
        assert!(
            self.netlist.cell(ff).kind().is_flop(),
            "set_flop() target must be a flop"
        );
        self.values[ff.index()] = v;
    }

    /// Current value of any signal.
    pub fn value(&self, id: CellId) -> Logic {
        self.values[id.index()]
    }

    /// Evaluates combinational logic (and transparent latches, RAM read
    /// ports and asynchronous resets) to a fixpoint.
    ///
    /// # Panics
    ///
    /// Panics if latch feedback fails to converge within a small bound
    /// (indicates an oscillating latch loop in the design).
    pub fn settle(&mut self) {
        for _round in 0..8 {
            let mut changed = false;

            // Combinational cells in topological order.
            for &id in self.netlist.levelization().order() {
                let cell = self.netlist.cell(id);
                let ins: Vec<Logic> = cell
                    .inputs()
                    .iter()
                    .map(|&i| self.values[i.index()])
                    .collect();
                let v = cell
                    .kind()
                    .eval_comb(&ins)
                    .expect("levelization order holds combinational cells");
                if self.values[id.index()] != v {
                    self.values[id.index()] = v;
                    changed = true;
                }
            }

            // Latches, RAM read ports, async resets: level-sensitive.
            for (id, cell) in self.netlist.iter() {
                let v = match cell.kind() {
                    CellKind::LatchLow => {
                        let d = self.values[cell.inputs()[0].index()].drive();
                        let en = self.values[cell.inputs()[1].index()].drive();
                        match en {
                            Logic::Zero => d,
                            Logic::One => continue,
                            _ => {
                                if d == self.values[id.index()] && d.is_definite() {
                                    continue;
                                }
                                Logic::X
                            }
                        }
                    }
                    CellKind::ClockGate => {
                        // Clocks idle low between pulses.
                        Logic::Zero
                    }
                    CellKind::RamOut { bit } => self.read_ram_bit(id, bit),
                    k if k.is_flop() => match self.reset_state(id) {
                        ResetState::Active => Logic::Zero,
                        ResetState::Unknown => {
                            if self.values[id.index()] == Logic::Zero {
                                continue;
                            }
                            Logic::X
                        }
                        ResetState::Inactive => continue,
                    },
                    _ => continue,
                };
                if self.values[id.index()] != v {
                    self.values[id.index()] = v;
                    changed = true;
                }
            }

            if !changed {
                return;
            }
        }
        panic!("cycle simulation failed to settle (oscillating latch loop?)");
    }

    /// Applies one rising edge at the given clock ports: every flop (and
    /// RAM) whose resolved clock root is one of `ports` captures, all
    /// captures commit simultaneously, then the netlist settles.
    pub fn pulse(&mut self, ports: &[CellId]) {
        self.settle();

        let mut updates: Vec<(CellId, Logic)> = Vec::new();
        let mut ram_writes: Vec<CellId> = Vec::new();

        for (id, cell) in self.netlist.iter() {
            match cell.kind() {
                k if k.is_flop() => {
                    let Some(root) = self.clock_root(cell.clock()) else {
                        continue;
                    };
                    if !ports.contains(&root) {
                        continue;
                    }
                    if self.reset_state(id) == ResetState::Active {
                        updates.push((id, Logic::Zero));
                        continue;
                    }
                    let sample = match cell.kind() {
                        CellKind::Sdff | CellKind::SdffRl => {
                            let d = self.values[cell.inputs()[0].index()];
                            let se = self.values[cell.inputs()[2].index()];
                            let si = self.values[cell.inputs()[3].index()];
                            Logic::mux2(se, d, si)
                        }
                        _ => self.values[cell.inputs()[0].index()].drive(),
                    };
                    updates.push((id, sample));
                }
                CellKind::Ram { .. } => {
                    let Some(root) = self.clock_root(cell.inputs()[0]) else {
                        continue;
                    };
                    if ports.contains(&root) {
                        ram_writes.push(id);
                    }
                }
                _ => {}
            }
        }

        // RAM writes sample the same pre-edge values the flops do, so
        // they must commit before the flop updates land (a RAM whose
        // we/addr/data are driven by flops clocked on the same edge
        // would otherwise see post-edge values).
        for id in ram_writes {
            self.write_ram(id);
        }
        for (id, v) in updates {
            self.values[id.index()] = v;
        }
        self.settle();
    }

    /// Resolves a clock pin back to the primary-input port that drives
    /// it, following buffers, enabled clock gates and settled muxes.
    /// Returns `None` when the path is blocked (disabled gate, unknown
    /// mux select) or goes through unsupported logic.
    pub fn clock_root(&self, mut cur: CellId) -> Option<CellId> {
        for _ in 0..64 {
            let cell = self.netlist.cell(cur);
            match cell.kind() {
                CellKind::Input => return Some(cur),
                CellKind::Buf | CellKind::Output => cur = cell.inputs()[0],
                CellKind::ClockGate => {
                    let en = self.values[cell.inputs()[1].index()].drive();
                    if en == Logic::One {
                        cur = cell.inputs()[0];
                    } else {
                        return None;
                    }
                }
                CellKind::Mux2 => {
                    let sel = self.values[cell.inputs()[0].index()].drive();
                    match sel {
                        Logic::Zero => cur = cell.inputs()[1],
                        Logic::One => cur = cell.inputs()[2],
                        _ => return None,
                    }
                }
                _ => return None,
            }
        }
        None
    }

    fn reset_state(&self, ff: CellId) -> ResetState {
        let cell = self.netlist.cell(ff);
        let Some(rpin) = cell.reset() else {
            return ResetState::Inactive;
        };
        let r = self.values[rpin.index()].drive();
        let active = match cell.kind() {
            CellKind::DffRl | CellKind::SdffRl => r == Logic::Zero,
            CellKind::DffRh => r == Logic::One,
            _ => false,
        };
        if active {
            ResetState::Active
        } else if r.is_definite() {
            ResetState::Inactive
        } else {
            ResetState::Unknown
        }
    }

    fn write_ram(&mut self, ram: CellId) {
        let cell = self.netlist.cell(ram);
        let CellKind::Ram {
            addr_bits,
            data_bits,
        } = cell.kind()
        else {
            return;
        };
        let we = self.values[cell.inputs()[1].index()].drive();
        if we == Logic::Zero {
            return;
        }
        let mut addr = 0u64;
        let mut known = we == Logic::One;
        for k in 0..addr_bits as usize {
            match self.values[cell.inputs()[2 + k].index()].drive() {
                Logic::One => addr |= 1 << k,
                Logic::Zero => {}
                _ => known = false,
            }
        }
        let din: Vec<Logic> = (0..data_bits as usize)
            .map(|k| self.values[cell.inputs()[2 + addr_bits as usize + k].index()].drive())
            .collect();
        let state = self.ram.get_mut(&ram).expect("ram state exists");
        if known {
            state.mem.insert(addr, din);
        } else {
            state.poisoned = true;
        }
    }

    fn read_ram_bit(&self, port: CellId, bit: u8) -> Logic {
        let ram = self.netlist.cell(port).inputs()[0];
        let rc = self.netlist.cell(ram);
        let CellKind::Ram { addr_bits, .. } = rc.kind() else {
            return Logic::X;
        };
        let state = &self.ram[&ram];
        if state.poisoned {
            return Logic::X;
        }
        let mut addr = 0u64;
        for k in 0..addr_bits as usize {
            match self.values[rc.inputs()[2 + k].index()].drive() {
                Logic::One => addr |= 1 << k,
                Logic::Zero => {}
                _ => return Logic::X,
            }
        }
        state
            .mem
            .get(&addr)
            .and_then(|w| w.get(bit as usize).copied())
            .unwrap_or(Logic::X)
    }
}

enum ResetState {
    Active,
    Inactive,
    Unknown,
}

impl PartialEq for ResetState {
    fn eq(&self, other: &Self) -> bool {
        matches!(
            (self, other),
            (ResetState::Active, ResetState::Active)
                | (ResetState::Inactive, ResetState::Inactive)
                | (ResetState::Unknown, ResetState::Unknown)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_netlist::NetlistBuilder;

    #[test]
    fn shift_register_advances_one_per_pulse() {
        let mut b = NetlistBuilder::new("sr");
        let clk = b.input("clk");
        let si = b.input("si");
        let f0 = b.dff(si, clk);
        let f1 = b.dff(f0, clk);
        let f2 = b.dff(f1, clk);
        b.output("so", f2);
        let nl = b.finish().unwrap();
        let mut sim = CycleSim::new(&nl);
        sim.set(si, Logic::One);
        sim.pulse(&[clk]);
        sim.set(si, Logic::Zero);
        sim.pulse(&[clk]);
        sim.pulse(&[clk]);
        assert_eq!(sim.value(f2), Logic::One);
        assert_eq!(sim.value(f1), Logic::Zero);
        assert_eq!(sim.value(f0), Logic::Zero);
    }

    #[test]
    fn gated_clock_blocks_capture() {
        let mut b = NetlistBuilder::new("g");
        let clk = b.input("clk");
        let en = b.input("en");
        let d = b.input("d");
        let g = b.clock_gate(clk, en);
        let ff = b.dff(d, g);
        b.output("q", ff);
        let nl = b.finish().unwrap();
        let mut sim = CycleSim::new(&nl);
        sim.set(d, Logic::One);
        sim.set(en, Logic::Zero);
        sim.pulse(&[clk]);
        assert_eq!(sim.value(ff), Logic::X); // never captured
        sim.set(en, Logic::One);
        sim.pulse(&[clk]);
        assert_eq!(sim.value(ff), Logic::One);
    }

    #[test]
    fn muxed_clock_follows_select() {
        let mut b = NetlistBuilder::new("m");
        let cka = b.input("cka");
        let ckb = b.input("ckb");
        let sel = b.input("sel");
        let d = b.input("d");
        let mx = b.mux2(sel, cka, ckb);
        let ff = b.dff(d, mx);
        b.output("q", ff);
        let nl = b.finish().unwrap();
        let mut sim = CycleSim::new(&nl);
        sim.set(d, Logic::One);
        sim.set(sel, Logic::Zero); // clock = cka
        sim.pulse(&[ckb]);
        assert_eq!(sim.value(ff), Logic::X);
        sim.pulse(&[cka]);
        assert_eq!(sim.value(ff), Logic::One);
    }

    #[test]
    fn simultaneous_capture_uses_old_values() {
        // Two flops swapping values must exchange, not duplicate.
        let mut b = NetlistBuilder::new("swap");
        let clk = b.input("clk");
        let f0 = b.dff_uninit(clk);
        let f1 = b.dff_uninit(clk);
        b.set_flop_d(f0, f1);
        b.set_flop_d(f1, f0);
        b.output("a", f0);
        b.output("b", f1);
        let nl = b.finish().unwrap();
        let mut sim = CycleSim::new(&nl);
        sim.set_flop(f0, Logic::One);
        sim.set_flop(f1, Logic::Zero);
        sim.pulse(&[clk]);
        assert_eq!(sim.value(f0), Logic::Zero);
        assert_eq!(sim.value(f1), Logic::One);
        sim.pulse(&[clk]);
        assert_eq!(sim.value(f0), Logic::One);
        assert_eq!(sim.value(f1), Logic::Zero);
    }

    #[test]
    fn async_reset_applies_without_clock() {
        let mut b = NetlistBuilder::new("r");
        let clk = b.input("clk");
        let d = b.input("d");
        let rstn = b.input("rstn");
        let ff = b.dff_rl(d, clk, rstn);
        b.output("q", ff);
        let nl = b.finish().unwrap();
        let mut sim = CycleSim::new(&nl);
        sim.set(d, Logic::One);
        sim.set(rstn, Logic::One);
        sim.pulse(&[clk]);
        assert_eq!(sim.value(ff), Logic::One);
        sim.set(rstn, Logic::Zero);
        sim.settle();
        assert_eq!(sim.value(ff), Logic::Zero);
    }

    #[test]
    fn scan_path_shift_through_sdff() {
        let mut b = NetlistBuilder::new("scan");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let d0 = b.input("d0");
        let d1 = b.input("d1");
        let f0 = b.sdff(d0, clk, se, si);
        let f1 = b.sdff(d1, clk, se, f0);
        b.output("so", f1);
        let nl = b.finish().unwrap();
        let mut sim = CycleSim::new(&nl);
        sim.set(se, Logic::One);
        sim.set(si, Logic::One);
        sim.set(d0, Logic::Zero);
        sim.set(d1, Logic::Zero);
        sim.pulse(&[clk]);
        sim.pulse(&[clk]);
        assert_eq!(sim.value(f1), Logic::One);
        // Functional capture overrides the scan path when se drops.
        sim.set(se, Logic::Zero);
        sim.pulse(&[clk]);
        assert_eq!(sim.value(f0), Logic::Zero);
        assert_eq!(sim.value(f1), Logic::Zero);
    }

    #[test]
    fn ram_write_samples_pre_edge_flop_values() {
        // we/addr/data come from flops clocked on the same edge whose
        // functional D is constant 0: the RAM must capture the flops'
        // pre-edge (scan-loaded) values, not the post-edge zeros.
        let mut b = NetlistBuilder::new("ram_ff");
        let clk = b.input("clk");
        let z = b.tie0();
        let we_ff = b.dff(z, clk);
        let a_ff = b.dff(z, clk);
        let d_ff = b.dff(z, clk);
        let (_h, outs) = b.ram(clk, we_ff, &[a_ff], &[d_ff]);
        b.output("q", outs[0]);
        let nl = b.finish().unwrap();
        let mut sim = CycleSim::new(&nl);
        sim.set_flop(we_ff, Logic::One);
        sim.set_flop(a_ff, Logic::One);
        sim.set_flop(d_ff, Logic::One);
        sim.pulse(&[clk]); // writes 1 to address 1; flops fall to 0
        assert_eq!(sim.value(we_ff), Logic::Zero, "flop took its D");
        sim.set_flop(a_ff, Logic::One);
        sim.settle();
        assert_eq!(sim.value(outs[0]), Logic::One, "pre-edge write landed");
    }

    #[test]
    fn ram_macro_write_read_cycle() {
        let mut b = NetlistBuilder::new("ram");
        let clk = b.input("clk");
        let we = b.input("we");
        let a0 = b.input("a0");
        let a1 = b.input("a1");
        let d0 = b.input("d0");
        let (_h, outs) = b.ram(clk, we, &[a0, a1], &[d0]);
        b.output("q", outs[0]);
        let nl = b.finish().unwrap();
        let mut sim = CycleSim::new(&nl);
        // Write 1 to address 2.
        sim.set(we, Logic::One);
        sim.set(a0, Logic::Zero);
        sim.set(a1, Logic::One);
        sim.set(d0, Logic::One);
        sim.pulse(&[clk]);
        assert_eq!(sim.value(outs[0]), Logic::One);
        // Read address 0: never written -> X.
        sim.set(we, Logic::Zero);
        sim.set(a1, Logic::Zero);
        sim.settle();
        assert_eq!(sim.value(outs[0]), Logic::X);
    }
}
