//! Deterministic chaos suite: the daemon under injected failures.
//!
//! Every scenario arms a seeded [`FaultPlan`] and asserts the
//! robustness invariants the serving layer promises:
//!
//! * the artifact cache never poisons — an injected builder panic or
//!   error leaves no `Building` tombstone, waiters retry, and the
//!   build-once dedup still holds afterwards;
//! * reports stay **byte-identical** — a cold/warm pair served across
//!   injected worker panics, torn writes and dropped connections
//!   matches a clean run exactly (modulo wall-clock members);
//! * the daemon keeps serving — after every injected failure a
//!   subsequent `ping` and flow job succeed.
//!
//! Determinism: `Nth` triggers count calls and `Probability` triggers
//! draw from per-site seeded xorshift streams, so a failing seed
//! reproduces exactly; the suite sweeps a fixed seed list.

use occ_server::{
    request, serve, FaultAction, FaultPlan, FlowService, Json, ServerConfig, Trigger,
};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const FLOW: &str = r#"{"op":"flow","design":{"preset":"tiny","seed":9},"clocking":"simple-cpf","mask_bidi":true,"random_patterns":32,"backtrack_limit":12}"#;

const VOLATILE: [&str; 2] = ["stages", "total_seconds"];

fn config_with(faults: FaultPlan) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_budget: 0,
        faults,
        ..ServerConfig::default()
    }
}

/// The flow report as a canonical string with wall-clock members
/// stripped — the byte-identity currency of this suite.
fn canonical_report(response: &str) -> String {
    let v = Json::parse(response).unwrap_or_else(|e| panic!("unparseable: {e:?}: {response}"));
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    v.get("report")
        .expect("flow response carries a report")
        .clone()
        .without_keys(&VOLATILE)
        .to_string()
}

/// The clean-run reference report, computed in-process once.
fn reference_report() -> String {
    let service = FlowService::new(0);
    let mut job = occ_server::JobSpec::new(occ_soc::SocConfig::tiny(9));
    job.clocking = occ_core::ClockingMode::SimpleCpf;
    job.mask_bidi = true;
    job.atpg.random_patterns = 32;
    job.atpg.backtrack_limit = 12;
    let outcome = service.submit(&job).expect("reference flow");
    Json::parse(&outcome.report.expect("report").to_json())
        .unwrap()
        .without_keys(&VOLATILE)
        .to_string()
}

/// After any injected failure the daemon must still answer a ping and
/// serve a cold/warm flow pair whose reports match `reference`.
fn assert_still_serving(addr: std::net::SocketAddr, reference: &str) {
    let pong = request(addr, r#"{"op":"ping"}"#).expect("ping after injected failure");
    assert!(pong.contains("\"ok\":true"), "{pong}");

    let cold_or_warm = request(addr, FLOW).expect("flow after injected failure");
    assert_eq!(canonical_report(&cold_or_warm), reference);
    let warm = request(addr, FLOW).expect("warm flow after injected failure");
    let v = Json::parse(&warm).unwrap();
    assert_eq!(
        v.get("warm").and_then(Json::as_bool),
        Some(true),
        "second identical job must be served warm: {warm}"
    );
    assert_eq!(canonical_report(&warm), reference);
}

#[test]
fn injected_builder_panic_does_not_poison_the_cache() {
    let reference = reference_report();
    for seed in [1u64, 2, 3] {
        let faults = FaultPlan::seeded(seed).inject(
            "cache.design.build",
            Trigger::Nth(1),
            FaultAction::Panic("injected builder panic".into()),
        );
        let mut server = serve(&config_with(faults.clone())).expect("bind");
        let addr = server.addr();

        // First job: its design-artifact build panics. The panic is
        // caught at the worker seam and surfaces as a typed internal
        // error carrying the payload — not a hung waiter, not a dead
        // daemon.
        let first = request(addr, FLOW).expect("response despite builder panic");
        let v = Json::parse(&first).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{first}");
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("internal"),
            "{first}"
        );
        assert!(
            v.get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .is_some_and(|m| m.contains("injected builder panic")),
            "panic payload must survive into the typed error: {first}"
        );
        assert_eq!(faults.fired("cache.design.build"), 1);

        // The shard is not poisoned: the next identical job rebuilds
        // (Nth(1) already fired), succeeds, and dedups from there on.
        assert_still_serving(addr, &reference);

        let stats = Json::parse(&request(addr, r#"{"op":"stats"}"#).unwrap()).unwrap();
        let design = stats.get("cache").unwrap().get("design").unwrap();
        assert_eq!(
            design.get("misses").and_then(Json::as_u64),
            Some(1),
            "build-once: the panicked build must not count as a miss, \
             and the rebuild must happen exactly once"
        );
        server.shutdown();
    }
}

#[test]
fn injected_builder_error_is_typed_and_transient() {
    let reference = reference_report();
    let faults = FaultPlan::seeded(4).inject(
        "cache.design.build",
        Trigger::Nth(1),
        FaultAction::Error("injected builder error".into()),
    );
    let mut server = serve(&config_with(faults)).expect("bind");
    let addr = server.addr();

    let first = request(addr, FLOW).expect("response despite builder error");
    let v = Json::parse(&first).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("internal"),
        "{first}"
    );
    assert!(first.contains("injected builder error"), "{first}");

    assert_still_serving(addr, &reference);
    server.shutdown();
}

#[test]
fn build_once_dedup_holds_after_injected_builder_panic() {
    // Hammer one cold key from many connections while the first build
    // panics: exactly one rebuild may happen (miss count 1), everyone
    // else either gets the typed internal error (they were waiting on
    // the doomed build) or the rebuilt artifact.
    let reference = reference_report();
    let faults = FaultPlan::seeded(5).inject(
        "cache.design.build",
        Trigger::Nth(1),
        FaultAction::Panic("injected builder panic".into()),
    );
    let mut config = config_with(faults);
    config.workers = 4;
    let mut server = serve(&config).expect("bind");
    let addr = server.addr();

    let handles: Vec<_> = (0..6)
        .map(|_| std::thread::spawn(move || request(addr, FLOW).expect("response")))
        .collect();
    let mut ok = 0usize;
    let mut internal = 0usize;
    for h in handles {
        let response = h.join().expect("client thread");
        let v = Json::parse(&response).unwrap();
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            assert_eq!(canonical_report(&response), reference);
            ok += 1;
        } else {
            assert!(response.contains("internal"), "{response}");
            internal += 1;
        }
    }
    assert_eq!(internal, 1, "exactly the doomed build's job fails");
    assert_eq!(ok, 5);

    let stats = Json::parse(&request(addr, r#"{"op":"stats"}"#).unwrap()).unwrap();
    let design = stats.get("cache").unwrap().get("design").unwrap();
    assert_eq!(
        design.get("misses").and_then(Json::as_u64),
        Some(1),
        "build-once dedup must hold across the injected panic"
    );
    server.shutdown();
}

#[test]
fn injected_worker_panics_surface_payload_and_spare_the_daemon() {
    let reference = reference_report();
    for seed in [6u64, 7] {
        let faults = FaultPlan::seeded(seed).inject(
            "worker.job",
            Trigger::Nth(1),
            FaultAction::Panic("injected worker panic".into()),
        );
        let mut server = serve(&config_with(faults)).expect("bind");
        let addr = server.addr();

        let first = request(addr, FLOW).expect("a panicking job still answers");
        let v = Json::parse(&first).unwrap();
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("internal"),
            "{first}"
        );
        assert!(
            first.contains("injected worker panic"),
            "panic payload must reach the client: {first}"
        );
        assert_still_serving(addr, &reference);
        server.shutdown();
    }
}

#[test]
fn torn_writes_and_dropped_connections_do_not_wound_the_daemon() {
    let reference = reference_report();
    for (seed, action) in [
        (8u64, FaultAction::TornWrite),
        (9u64, FaultAction::DropConn),
    ] {
        let faults = FaultPlan::seeded(seed).inject("tcp.write", Trigger::Nth(1), action.clone());
        let mut server = serve(&config_with(faults)).expect("bind");
        let addr = server.addr();

        // The first response is torn mid-line or never written; either
        // way the client sees a broken connection, not a daemon crash.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"{\"op\":\"ping\"}\n").expect("send");
        let mut got = String::new();
        let _ = BufReader::new(stream).read_to_string(&mut got);
        match action {
            FaultAction::TornWrite => assert!(
                !got.is_empty() && !got.ends_with('\n') && Json::parse(&got).is_err(),
                "a torn write is a strict prefix, not a parseable line: {got:?}"
            ),
            _ => assert!(got.is_empty(), "DropConn writes nothing: {got:?}"),
        }

        assert_still_serving(addr, &reference);
        server.shutdown();
    }
}

#[test]
fn probability_storm_sweep_keeps_reports_byte_identical() {
    // The full storm: every site armed probabilistically, a burst of
    // identical jobs fired through it, across a fixed seed sweep. Any
    // successful response must carry the exact reference report — a
    // failure may be injected, but a *wrong answer* never.
    let reference = reference_report();
    for seed in [21u64, 22, 23] {
        let faults = FaultPlan::seeded(seed)
            .inject(
                "cache.design.build",
                Trigger::Nth(1),
                FaultAction::Panic("storm builder panic".into()),
            )
            .inject(
                "worker.job",
                Trigger::Probability(0.2),
                FaultAction::Panic("storm worker panic".into()),
            )
            .inject(
                "tcp.write",
                Trigger::Probability(0.2),
                FaultAction::DropConn,
            );
        let mut config = config_with(faults.clone());
        config.workers = 4;
        let mut server = serve(&config).expect("bind");
        let addr = server.addr();

        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || request(addr, FLOW)))
            .collect();
        let mut successes = 0usize;
        for h in handles {
            // A dropped connection (Err) is a visible failure — fine.
            if let Ok(response) = h.join().expect("client thread") {
                let v = Json::parse(&response).unwrap();
                if v.get("ok").and_then(Json::as_bool) == Some(true) {
                    assert_eq!(
                        canonical_report(&response),
                        reference,
                        "seed {seed}: an injected failure must never \
                         corrupt a successful report"
                    );
                    successes += 1;
                } else {
                    assert!(response.contains("internal"), "seed {seed}: {response}");
                }
            }
        }
        // Disarm (clones share trigger state) so the post-storm probe
        // is not itself stormed, then: the daemon still serves,
        // byte-identically.
        let _ = faults
            .clone()
            .inject(
                "cache.design.build",
                Trigger::Probability(0.0),
                FaultAction::Panic("disarmed".into()),
            )
            .inject(
                "worker.job",
                Trigger::Probability(0.0),
                FaultAction::Panic("disarmed".into()),
            )
            .inject(
                "tcp.write",
                Trigger::Probability(0.0),
                FaultAction::DropConn,
            );
        assert_still_serving(addr, &reference);
        assert!(successes <= 8);
        server.shutdown();
    }
}

#[test]
fn cancelled_jobs_leave_scratch_engines_reusable() {
    // A deadline trips mid-flow; the next identical job on the same
    // daemon (same pooled scratch engines) must produce the exact
    // reference report — cancellation may truncate *that* job, never
    // the next one's state.
    let reference = reference_report();
    let faults =
        FaultPlan::seeded(31).inject("flow.stage", Trigger::Nth(1), FaultAction::DelayMs(5_000));
    let mut server = serve(&config_with(faults)).expect("bind");
    let addr = server.addr();

    let doomed = format!("{}{}", &FLOW[..FLOW.len() - 1], ",\"deadline_ms\":200}");
    let response = request(addr, &doomed).expect("deadline response");
    assert!(response.contains("deadline-exceeded"), "{response}");

    assert_still_serving(addr, &reference);
    server.shutdown();

    // And a paranoid settle: no background thread should still be
    // holding the injected delay when the test ends.
    std::thread::sleep(Duration::from_millis(10));
}
