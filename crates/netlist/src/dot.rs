//! Graphviz DOT export for schematics and architecture diagrams
//! (used by the Figure 1 / Figure 3 reproductions).

use crate::{CellKind, Netlist};
use std::fmt::Write as _;

impl Netlist {
    /// Renders the netlist as a Graphviz `digraph`.
    ///
    /// Inputs are drawn as triangles, outputs as inverted houses,
    /// sequential cells as boxes, combinational gates as ellipses.
    ///
    /// # Examples
    ///
    /// ```
    /// use occ_netlist::NetlistBuilder;
    /// # fn main() -> Result<(), occ_netlist::BuildError> {
    /// let mut b = NetlistBuilder::new("g");
    /// let a = b.input("a");
    /// let y = b.not(a);
    /// b.output("y", y);
    /// let dot = b.finish()?.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=LR;");
        for (id, cell) in self.iter() {
            let label = match cell.name() {
                Some(n) => format!("{n}\\n{}", cell.kind()),
                None => format!("{id}\\n{}", cell.kind()),
            };
            let shape = match cell.kind() {
                CellKind::Input => "triangle",
                CellKind::Output => "invhouse",
                k if k.is_flop() => "box",
                CellKind::LatchLow | CellKind::ClockGate => "box",
                CellKind::Ram { .. } => "box3d",
                _ => "ellipse",
            };
            let _ = writeln!(out, "  {id} [label=\"{label}\", shape={shape}];");
        }
        for (id, cell) in self.iter() {
            for (pin, &src) in cell.inputs().iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  {src} -> {id} [taillabel=\"\", headlabel=\"{pin}\"];"
                );
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::NetlistBuilder;

    #[test]
    fn dot_contains_every_cell_and_edge() {
        let mut b = NetlistBuilder::new("g");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.and2(a, c);
        b.output("y", g);
        let dot = b.finish().unwrap().to_dot();
        assert_eq!(dot.matches("->").count(), 3); // a->g, b->g, g->po
        assert!(dot.contains("triangle"));
        assert!(dot.contains("invhouse"));
        assert!(dot.ends_with("}\n"));
    }
}
