//! The shared job executor.
//!
//! One fixed pool of worker threads executes every job the daemon
//! accepts, regardless of which client connection submitted it — the
//! same shared-worker-budget design as
//! [`occ_fsim::ParallelFaultSim`]'s shard pool: a single `mpsc`
//! channel feeds workers that are spawned once and live for the pool's
//! lifetime, and dropping the pool closes the channel and joins them.
//! Connections stay thin (read a line, enqueue, wait for the result),
//! so a burst of clients queues work instead of oversubscribing the
//! machine.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size thread pool executing boxed jobs in submission order
/// (per-channel FIFO; completion order depends on worker availability).
#[derive(Debug)]
pub struct JobPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Jobs submitted but not yet finished (queued + running) — what
    /// admission control sheds on and what a graceful drain waits out.
    pending: Arc<AtomicUsize>,
}

impl JobPool {
    /// Spawns `threads` workers (at least one).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let pending = Arc::new(AtomicUsize::new(0));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let pending = Arc::clone(&pending);
                std::thread::Builder::new()
                    .name(format!("occ-job-{i}"))
                    .spawn(move || worker_loop(&rx, &pending))
                    .expect("spawn job worker")
            })
            .collect();
        JobPool {
            tx: Some(tx),
            workers,
            pending,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted but not yet finished (queued + running).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Enqueues a job. Results travel through whatever channel the
    /// closure captured (see [`crate::server`]'s per-request wiring).
    ///
    /// # Panics
    ///
    /// Panics if called after the pool started shutting down (the
    /// sender is only dropped in [`Drop`], so this cannot happen
    /// through the public API).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.tx
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(job))
            .expect("job workers exited early");
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, pending: &Arc<AtomicUsize>) {
    loop {
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a job panicked while dequeuing: give up
        };
        match job {
            Ok(job) => {
                // A panicking job must not take the worker (or the
                // whole daemon) down with it; the submitter's result
                // channel closes, which it observes as a failed job.
                let _ = catch_unwind(AssertUnwindSafe(job));
                pending.fetch_sub(1, Ordering::SeqCst);
            }
            Err(_) => return, // channel closed: pool is shutting down
        }
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the channel: workers drain + exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn executes_all_jobs_and_joins() {
        let pool = JobPool::new(3);
        assert_eq!(pool.threads(), 3);
        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for i in 0..20 {
            let done = Arc::clone(&done);
            let tx = tx.clone();
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
                tx.send(i).unwrap();
            });
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got.len(), 20);
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn survives_panicking_jobs() {
        let pool = JobPool::new(1);
        let (tx, rx) = mpsc::channel();
        pool.submit(|| panic!("job blew up"));
        pool.submit(move || tx.send(7u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn pending_counts_queued_plus_running_and_drains_to_zero() {
        let pool = JobPool::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap(); // hold the only worker
        });
        started_rx.recv().unwrap();
        pool.submit(|| {});
        assert_eq!(pool.pending(), 2, "one running + one queued");
        gate_tx.send(()).unwrap();
        // Both jobs finish; pending must reach zero (the drain signal).
        for _ in 0..200 {
            if pool.pending() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(pool.pending(), 0);
    }
}
