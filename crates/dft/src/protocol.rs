//! ATE protocol cost accounting.
//!
//! The paper's pattern-count discussion is ultimately about tester
//! economics: "increased pattern count requires a more extensive use of
//! an on-chip technique to reduce scan chain length. Only using this
//! technique the observed pattern count can be loaded into the ATE
//! vector memory without truncation." This module turns pattern counts
//! into tester cycles, test time and vector-memory bits, with and
//! without EDT-style compression.

/// Cost parameters of a scan test on a given tester/DFT configuration.
#[derive(Debug, Clone)]
pub struct AteCostModel {
    /// Shift clock frequency in MHz (the slow external scan clock).
    pub shift_clock_mhz: f64,
    /// Shift cycles per scan load (longest chain length).
    pub chain_len: usize,
    /// External scan channels driven by the ATE.
    pub channels: usize,
    /// Extra protocol cycles per pattern (capture cycles, scan-enable
    /// settling, the CPF trigger pulse...).
    pub overhead_cycles: usize,
}

impl AteCostModel {
    /// A typical low-cost-ATE setup: 20 MHz shift, 4 overhead cycles.
    pub fn low_cost(chain_len: usize, channels: usize) -> Self {
        AteCostModel {
            shift_clock_mhz: 20.0,
            chain_len,
            channels,
            overhead_cycles: 4,
        }
    }

    /// Cost of applying `patterns` scan loads.
    ///
    /// Loads and unloads of consecutive patterns overlap (standard scan
    /// pipelining), so the cycle count is `(patterns + 1) * chain_len +
    /// patterns * overhead`.
    pub fn cost(&self, patterns: usize) -> TestSetCost {
        let shift_cycles = (patterns + 1) * self.chain_len;
        let total_cycles = shift_cycles + patterns * self.overhead_cycles;
        let seconds = total_cycles as f64 / (self.shift_clock_mhz * 1e6);
        TestSetCost {
            patterns,
            total_cycles,
            test_time_ms: seconds * 1e3,
            vector_memory_bits: patterns * self.chain_len * self.channels * 2,
        }
    }
}

/// Cost of one test set on the ATE.
#[derive(Debug, Clone, PartialEq)]
pub struct TestSetCost {
    /// Number of scan loads.
    pub patterns: usize,
    /// Total tester cycles including overlap and overhead.
    pub total_cycles: usize,
    /// Wall-clock test time at the configured shift clock.
    pub test_time_ms: f64,
    /// Stimulus+response bits the ATE must store.
    pub vector_memory_bits: usize,
}

impl std::fmt::Display for TestSetCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} patterns, {} cycles, {:.3} ms, {} vector bits",
            self.patterns, self.total_cycles, self.test_time_ms, self.vector_memory_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_linearly_in_patterns() {
        let m = AteCostModel::low_cost(100, 8);
        let c1 = m.cost(100);
        let c2 = m.cost(200);
        assert!(c2.total_cycles > c1.total_cycles);
        assert_eq!(c2.vector_memory_bits, 2 * c1.vector_memory_bits);
        assert_eq!(c1.total_cycles, 101 * 100 + 100 * 4);
    }

    #[test]
    fn compression_cuts_memory_via_channels() {
        // Same chain length, fewer channels (EDT): memory shrinks.
        let uncompressed = AteCostModel::low_cost(100, 357).cost(1000);
        let compressed = AteCostModel::low_cost(100, 36).cost(1000);
        assert!(compressed.vector_memory_bits < uncompressed.vector_memory_bits / 9);
    }

    #[test]
    fn display_reports_all_figures() {
        let text = AteCostModel::low_cost(10, 2).cost(5).to_string();
        assert!(text.contains("5 patterns"));
        assert!(text.contains("vector bits"));
    }
}
