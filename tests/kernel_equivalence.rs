//! Equivalence of the three PPSFP engines on seeded random SOCs.
//!
//! The compiled zero-allocation kernel (`FaultSim`), the retained
//! pre-kernel engine (`ReferenceFaultSim`) and the sharded scheduler
//! (`ParallelFaultSim`) must produce **bit-identical** detection masks
//! for every fault, over both fault models and the capture procedures
//! of every clocking mode of the paper — plus a direct check that cone
//! pruning never drops a detectable fault.

use occ::core::{stuck_at_procedures, transition_procedures, ClockingMode};
use occ::fault::FaultUniverse;
use occ::fsim::{
    simulate_good, CaptureModel, FaultSim, FrameSpec, ParallelFaultSim, Pattern, ReferenceFaultSim,
};
use occ::netlist::Logic;
use occ::soc::{generate, SocConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All clocking modes of Table 1.
fn all_modes() -> [ClockingMode; 4] {
    [
        ClockingMode::ExternalClock { max_pulses: 3 },
        ClockingMode::SimpleCpf,
        ClockingMode::EnhancedCpf { max_pulses: 3 },
        ClockingMode::ConstrainedExternal { max_pulses: 3 },
    ]
}

fn random_patterns(
    model: &CaptureModel<'_>,
    spec: &FrameSpec,
    n: usize,
    seed: u64,
) -> Vec<Pattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut p = Pattern::empty(model, spec, 0);
            p.fill_x(|| Logic::from_bool(rng.gen_bool(0.5)));
            p
        })
        .collect()
}

/// Reference vs kernel vs sharded over one (SOC, spec, universe) cell.
fn check_spec(
    model: &CaptureModel<'_>,
    spec: &FrameSpec,
    universe: &FaultUniverse,
    seed: u64,
) -> usize {
    let patterns = random_patterns(model, spec, 16, seed);
    let good = simulate_good(model, spec, &patterns);
    let faults = universe.faults().to_vec();

    let reference = ReferenceFaultSim::new(model).detect_many(spec, &good, &faults);
    let kernel = FaultSim::new(model).detect_many(spec, &good, &faults);
    assert_eq!(
        reference, kernel,
        "kernel diverged from reference on spec '{spec}'"
    );
    for threads in [2usize, 5] {
        let sharded = ParallelFaultSim::with_threads(model, threads)
            .block_size(32)
            .detect_many(spec, &good, &faults);
        assert_eq!(
            reference, sharded,
            "sharded ({threads} threads) diverged on spec '{spec}'"
        );
    }
    reference.iter().filter(|&&m| m != 0).count()
}

#[test]
fn engines_bit_identical_across_socs_models_and_clocking_modes() {
    let mut total_detected = 0usize;
    let mut total_specs = 0usize;
    for seed in [3u64, 17] {
        let soc = generate(&SocConfig::tiny(seed));
        let model = CaptureModel::new(soc.netlist(), soc.binding(true)).unwrap();
        let n_domains = model.domain_count();
        let stuck = FaultUniverse::stuck_at(soc.netlist());
        let transition = FaultUniverse::transition(soc.netlist());

        for mode in all_modes() {
            for spec in transition_procedures(mode, n_domains) {
                total_detected += check_spec(&model, &spec, &transition, seed ^ 0xA5);
                total_specs += 1;
            }
            for spec in stuck_at_procedures(mode, n_domains) {
                total_detected += check_spec(&model, &spec, &stuck, seed ^ 0x5A);
                total_specs += 1;
            }
        }
    }
    assert!(total_specs >= 16, "expected a broad spec sweep");
    assert!(
        total_detected > 100,
        "degenerate sweep: only {total_detected} detections"
    );
}

#[test]
fn cone_pruning_never_drops_a_detectable_fault() {
    // For every fault the kernel prunes (effect cell outside the
    // observability cone), the reference engine must agree the fault is
    // undetected — on a PO-observing spec and on a PO-masked one.
    let soc = generate(&SocConfig::tiny(9));
    let model = CaptureModel::new(soc.netlist(), soc.binding(true)).unwrap();
    let graph = model.graph();
    let domains: Vec<usize> = (0..model.domain_count()).collect();
    let faults = FaultUniverse::stuck_at(soc.netlist()).faults().to_vec();

    let observing = FrameSpec::new("obs", vec![occ::fsim::CycleSpec::pulsing(&domains)]);
    let masked = FrameSpec::broadside("msk", &domains, 2)
        .hold_pi(true)
        .observe_po(false);

    for (spec, with_po) in [(&observing, true), (&masked, false)] {
        let patterns = random_patterns(&model, spec, 32, 0x0CC);
        let good = simulate_good(&model, spec, &patterns);
        let mut reference = ReferenceFaultSim::new(&model);
        let mut pruned = 0usize;
        for &fault in &faults {
            if !graph.observable(fault.site().effect_cell(), with_po) {
                pruned += 1;
                assert_eq!(
                    reference.detect(spec, &good, fault),
                    0,
                    "cone pruning would drop detectable fault {fault} \
                     (spec '{spec}')"
                );
            }
        }
        // The tiny SOC has masked bidi feedback and RAM surroundings,
        // so some faults must actually be prunable under scan-only
        // observation; the PO-observing cone may legitimately be full.
        if !with_po {
            assert!(pruned > 0, "no fault pruned — cone test is vacuous");
        }
    }
}
