//! Workspace integration test: the full flow from SOC generation
//! through scan insertion, CPF attachment and ATPG — driven entirely
//! through the `TestFlow` pipeline API — asserting the paper's
//! coverage ordering on a small instance.

use occ::atpg::AtpgOptions;
use occ::core::{ClockingMode, Pll, PllConfig};
use occ::flow::{EngineChoice, FaultKind, FlowReport, TestFlow};
use occ::soc::{assemble_device, generate, Soc, SocConfig};

fn quick() -> AtpgOptions {
    AtpgOptions {
        random_patterns: 128,
        backtrack_limit: 64,
        ..AtpgOptions::default()
    }
}

fn transition_flow(soc: &Soc, mode: ClockingMode, mask_bidi: bool) -> FlowReport {
    TestFlow::new(soc)
        .clocking(mode)
        .fault_model(FaultKind::Transition)
        .mask_bidi(mask_bidi)
        .atpg(quick())
        .run()
        .expect("standard flow configurations validate")
}

#[test]
fn coverage_ordering_matches_paper() {
    let soc = generate(&SocConfig::paper_like(99, 40));
    let ideal =
        transition_flow(&soc, ClockingMode::ExternalClock { max_pulses: 4 }, false).coverage_pct();
    let simple = transition_flow(&soc, ClockingMode::SimpleCpf, true).coverage_pct();
    let enhanced =
        transition_flow(&soc, ClockingMode::EnhancedCpf { max_pulses: 4 }, true).coverage_pct();

    assert!(
        simple + 1.0 < ideal,
        "simple CPF must lose noticeable coverage: {simple:.2} vs ideal {ideal:.2}"
    );
    assert!(
        enhanced > simple,
        "enhanced CPF must recover coverage: {enhanced:.2} vs {simple:.2}"
    );
    assert!(
        enhanced < ideal + 1e-9,
        "on-chip clocking cannot beat the unconstrained reference"
    );
}

#[test]
fn device_assembly_keeps_soc_function() {
    // The CPF splice must not change the SOC's logic structure: same
    // flop count (plus CPF internals), same POs, and every SOC flop
    // still clocked.
    let soc = generate(&SocConfig::tiny(5));
    let device = assemble_device(&soc, Pll::new(PllConfig::paper()));
    let soc_pos: Vec<_> = soc
        .netlist()
        .primary_outputs()
        .iter()
        .map(|&p| soc.netlist().cell(p).name().unwrap_or("").to_owned())
        .collect();
    for name in soc_pos {
        assert!(
            device.netlist().find(&name).is_some(),
            "PO {name} lost in device assembly"
        );
    }
    // 6 flops per paper CPF, two domains.
    assert_eq!(
        device.netlist().flops().count(),
        soc.netlist().flops().count() + 12
    );
}

#[test]
fn stuck_at_beats_transition_on_same_soc() {
    let soc = generate(&SocConfig::paper_like(123, 30));
    let run = |kind| {
        TestFlow::new(&soc)
            .clocking(ClockingMode::ExternalClock { max_pulses: 4 })
            .fault_model(kind)
            .atpg(quick())
            .run()
            .expect("external-clock flows validate")
    };
    let sa = run(FaultKind::StuckAt);
    let tf = run(FaultKind::Transition);
    // Same collapsed fault count — the paper points this out explicitly.
    assert_eq!(sa.coverage.total, tf.coverage.total);
    assert!(
        sa.coverage_pct() > tf.coverage_pct(),
        "stuck-at {:.2}% must exceed transition {:.2}%",
        sa.coverage_pct(),
        tf.coverage_pct()
    );
}

#[test]
fn engines_are_interchangeable_in_the_full_flow() {
    // Serial vs sharded through the facade: same coverage report.
    let soc = generate(&SocConfig::tiny(21));
    let run = |engine| {
        TestFlow::new(&soc)
            .clocking(ClockingMode::SimpleCpf)
            .fault_model(FaultKind::Transition)
            .mask_bidi(true)
            .engine(engine)
            .atpg(quick())
            .run()
            .expect("simple CPF flow validates")
    };
    let serial = run(EngineChoice::Serial);
    let sharded = run(EngineChoice::Sharded { threads: 3 });
    assert_eq!(serial.coverage, sharded.coverage);
    assert_eq!(serial.patterns(), sharded.patterns());
}
