//! Quick profiling helper for experiment runtimes.
use occ_bench::{run_experiment, ExperimentId, Table1Options};
use occ_soc::{generate, SocConfig};
use std::time::Instant;

fn main() {
    let cfg = SocConfig::tiny(1);
    let t0 = Instant::now();
    let soc = generate(&cfg);
    println!("gen: {:?} cells={}", t0.elapsed(), soc.netlist().len());
    let opts = Table1Options {
        flops_per_domain: 24,
        ..Table1Options::default()
    };
    for id in [ExperimentId::A, ExperimentId::B, ExperimentId::C] {
        let t = Instant::now();
        let row = run_experiment(&soc, id, &opts);
        println!(
            "{id}: {:?} cov={:.2}% eff={:.2}% pats={} targeted={} podem_calls={} aborted={} fsim_batches={}",
            t.elapsed(), row.coverage_pct, row.efficiency_pct, row.patterns,
            row.result.stats.targeted, row.result.stats.podem_calls,
            row.result.stats.aborted_calls, row.result.stats.fsim_batches
        );
    }
}
