//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, over a plain
//! TCP stream — trivially scriptable (`echo '{"op":"ping"}' | nc`).
//!
//! ## Requests
//!
//! ```json
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"health"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! {"op":"analyze","design":{"preset":"tiny","seed":3}}
//! {"op":"flow","design":{"preset":"paper_like","seed":7,"flops_per_domain":60},
//!  "clocking":"enhanced-cpf:4","fault_model":"transition",
//!  "engine":"serial","atpg_engine":"compiled",
//!  "backtrack_limit":48,"random_patterns":256,"compaction":true,
//!  "mask_bidi":true,"timing":true,"lint":"deny","format":"json",
//!  "pattern_source":"edt","deadline_ms":60000,"trace":true}
//! ```
//!
//! Every `flow`/`analyze` field except `design` is optional and
//! defaults to the [`TestFlow`](occ_flow::TestFlow) defaults.
//! `design.preset` is `tiny` or `paper_like`; `seed` and
//! `flops_per_domain` size it. `format` is `json` (the full
//! [`FlowReport`] embedded as an object) or
//! `csv` (header + row as a string). `pattern_source` is `external`
//! (default), `edt[:channels]` (auto-derived decompressor geometry) or
//! `lbist[:patterns]`.
//!
//! ## Responses
//!
//! Success: `{"ok":true,"op":...,...}` — flow responses carry
//! `design_hash`, `warm`, per-job `cache` hits and the `report`.
//! Failure: `{"ok":false,"error":{"code":...,"message":...}}` with
//! code one of `bad-request`, `unsupported-clocking`, `lint-denied`,
//! `model-error`, `flow-error`, `cancelled`, `deadline-exceeded`,
//! `overloaded` (plus a `retry_after_ms` hint), `shutting-down`,
//! `internal`. The README's robustness section tabulates them.

use crate::cache::{CacheStats, KindCounters};
use crate::hash::hex;
use crate::json::{write_escaped, Json};
use crate::service::{DesignAnalysis, FlowService, JobCacheStats, JobOutcome, JobSpec};
use occ_fault::FaultModel;
use occ_flow::{BistConfig, EdtConfig, FlowError, FlowReport, PatternSource};
use occ_soc::SocConfig;
use std::fmt::Write as _;

/// A protocol-level failure: a stable machine-readable code plus a
/// human-readable message, optionally carrying a retry hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable error code (`bad-request`, `unsupported-clocking`,
    /// `lint-denied`, `model-error`, `flow-error`, `cancelled`,
    /// `deadline-exceeded`, `overloaded`, `shutting-down`, `internal`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// For `overloaded`: how long the client should back off before
    /// retrying (the [`crate::server::request_with_retry`] helper
    /// honours this over its own backoff schedule).
    pub retry_after_ms: Option<u64>,
}

impl ProtoError {
    /// An error with the given code and message (no retry hint).
    #[must_use]
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// An `overloaded` load-shedding error carrying a retry-after hint.
    #[must_use]
    pub fn overloaded(message: impl Into<String>, retry_after_ms: u64) -> Self {
        ProtoError {
            code: "overloaded",
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }

    fn bad(message: impl Into<String>) -> Self {
        ProtoError::new("bad-request", message)
    }
}

impl From<FlowError> for ProtoError {
    /// Maps flow errors onto protocol codes. The catch-all arm keeps
    /// this total as `FlowError` (marked `non_exhaustive`) grows.
    fn from(e: FlowError) -> Self {
        let code = match &e {
            FlowError::UnsupportedClocking { .. } => "unsupported-clocking",
            FlowError::LintDenied { .. } => "lint-denied",
            FlowError::Model(_) => "model-error",
            FlowError::Cancelled => "cancelled",
            FlowError::DeadlineExceeded => "deadline-exceeded",
            FlowError::Internal(_) => "internal",
            _ => "flow-error",
        };
        ProtoError::new(code, e.to_string())
    }
}

/// A parsed request.
#[derive(Debug)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Cache counters and occupancy.
    Stats,
    /// Serving state, queue depth and worker budget (answers during a
    /// drain, unlike new jobs).
    Health,
    /// The full live metric catalog as Prometheus text exposition
    /// (answers during a drain, like `health`).
    Metrics,
    /// Stop the daemon: drain queued jobs under the drain deadline,
    /// then close (acknowledged before the listener closes).
    Shutdown,
    /// Run a job (flow or analyze-only, per [`JobSpec::analyze_only`]).
    Job {
        /// The job to run.
        spec: Box<JobSpec>,
        /// Report rendering for flow jobs.
        format: ReportFormat,
    },
}

/// How a flow response embeds its report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// The report's JSON object, spliced verbatim.
    Json,
    /// `FlowReport::csv_header()` + the row, as one escaped string.
    Csv,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a `bad-request` [`ProtoError`] naming the offending field.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let v = Json::parse(line).map_err(|e| ProtoError::bad(e.to_string()))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::bad("missing or non-string 'op'"))?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "health" => Ok(Request::Health),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "flow" | "analyze" => {
            let mut spec = JobSpec::new(parse_design(
                v.get("design")
                    .ok_or_else(|| ProtoError::bad("missing 'design'"))?,
            )?);
            spec.analyze_only = op == "analyze";
            if let Some(s) = opt_str(&v, "clocking")? {
                spec.clocking = s.parse().map_err(|e: occ_core::ParseClockingModeError| {
                    ProtoError::bad(e.to_string())
                })?;
            }
            if let Some(s) = opt_str(&v, "fault_model")? {
                spec.fault_model = match s {
                    "stuck-at" => FaultModel::StuckAt,
                    "transition" => FaultModel::Transition,
                    other => {
                        return Err(ProtoError::bad(format!(
                            "unknown fault model '{other}' (expected stuck-at or transition)"
                        )))
                    }
                };
            }
            if let Some(s) = opt_str(&v, "engine")? {
                spec.engine = s.parse().map_err(|e: occ_flow::ParseEngineChoiceError| {
                    ProtoError::bad(e.to_string())
                })?;
            }
            if let Some(s) = opt_str(&v, "atpg_engine")? {
                spec.atpg_engine =
                    s.parse()
                        .map_err(|e: occ_flow::ParseAtpgEngineChoiceError| {
                            ProtoError::bad(e.to_string())
                        })?;
            }
            if let Some(n) = opt_u64(&v, "backtrack_limit")? {
                spec.atpg.backtrack_limit = usize::try_from(n).expect("u64 fits usize");
            }
            if let Some(n) = opt_u64(&v, "random_patterns")? {
                spec.atpg.random_patterns = usize::try_from(n).expect("u64 fits usize");
            }
            if let Some(n) = opt_u64(&v, "fill_seed")? {
                spec.atpg.fill_seed = n;
            }
            if let Some(b) = opt_bool(&v, "compaction")? {
                spec.atpg.compaction = b;
            }
            if let Some(b) = opt_bool(&v, "mask_bidi")? {
                spec.mask_bidi = b;
            }
            if let Some(b) = opt_bool(&v, "timing")? {
                spec.timing = b;
            }
            if let Some(s) = opt_str(&v, "lint")? {
                spec.lint =
                    Some(s.parse().map_err(|e: occ_lint::ParseLintGateError| {
                        ProtoError::bad(e.to_string())
                    })?);
            }
            if let Some(s) = opt_str(&v, "pattern_source")? {
                spec.pattern_source = parse_pattern_source(s)?;
            }
            if let Some(n) = opt_u64(&v, "deadline_ms")? {
                spec.deadline_ms = Some(n);
            }
            if let Some(b) = opt_bool(&v, "trace")? {
                spec.trace = b;
            }
            let format = match opt_str(&v, "format")? {
                None | Some("json") => ReportFormat::Json,
                Some("csv") => ReportFormat::Csv,
                Some(other) => {
                    return Err(ProtoError::bad(format!(
                        "unknown format '{other}' (expected json or csv)"
                    )))
                }
            };
            Ok(Request::Job {
                spec: Box::new(spec),
                format,
            })
        }
        other => Err(ProtoError::bad(format!("unknown op '{other}'"))),
    }
}

fn opt_str<'v>(v: &'v Json, key: &str) -> Result<Option<&'v str>, ProtoError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s)),
        Some(_) => Err(ProtoError::bad(format!("'{key}' must be a string"))),
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtoError::bad(format!("'{key}' must be a non-negative integer"))),
    }
}

fn opt_bool(v: &Json, key: &str) -> Result<Option<bool>, ProtoError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(b) => b
            .as_bool()
            .map(Some)
            .ok_or_else(|| ProtoError::bad(format!("'{key}' must be a boolean"))),
    }
}

/// Parses a `pattern_source` value: `external`, `edt` (auto geometry),
/// `edt:<channels>`, `lbist` (default budget) or `lbist:<patterns>`.
fn parse_pattern_source(s: &str) -> Result<PatternSource, ProtoError> {
    let (head, arg) = match s.split_once(':') {
        Some((h, a)) => (h, Some(a)),
        None => (s, None),
    };
    let num = |what: &str| -> Result<Option<usize>, ProtoError> {
        arg.map(|a| {
            a.parse::<usize>().map_err(|_| {
                ProtoError::bad(format!(
                    "pattern source '{head}:{a}': {what} must be a number"
                ))
            })
        })
        .transpose()
    };
    match head {
        "external" => match arg {
            None => Ok(PatternSource::ExternalAtpg),
            Some(a) => Err(ProtoError::bad(format!(
                "pattern source 'external' takes no argument (got '{a}')"
            ))),
        },
        "edt" => {
            let mut cfg = EdtConfig::auto();
            if let Some(channels) = num("channel count")? {
                cfg.channels = channels;
            }
            Ok(PatternSource::Edt(cfg))
        }
        "lbist" => {
            let mut cfg = BistConfig::default();
            if let Some(patterns) = num("pattern budget")? {
                cfg.patterns = patterns;
            }
            Ok(PatternSource::Lbist(cfg))
        }
        other => Err(ProtoError::bad(format!(
            "unknown pattern source '{other}' (expected external, edt[:channels] or lbist[:patterns])"
        ))),
    }
}

fn parse_design(v: &Json) -> Result<SocConfig, ProtoError> {
    let preset = v
        .get("preset")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::bad("design needs a string 'preset' (tiny or paper_like)"))?;
    let seed = opt_u64(v, "seed")?.unwrap_or(1);
    let flops = opt_u64(v, "flops_per_domain")?;
    match preset {
        "tiny" => {
            let mut config = SocConfig::tiny(seed);
            if let Some(f) = flops {
                for d in &mut config.domains {
                    d.flops = usize::try_from(f).expect("u64 fits usize");
                }
            }
            Ok(config)
        }
        "paper_like" => Ok(SocConfig::paper_like(
            seed,
            usize::try_from(flops.unwrap_or(60)).expect("u64 fits usize"),
        )),
        other => Err(ProtoError::bad(format!(
            "unknown design preset '{other}' (expected tiny or paper_like)"
        ))),
    }
}

/// Renders a failure response line.
#[must_use]
pub fn error_line(e: &ProtoError) -> String {
    let mut out = String::from(r#"{"ok":false,"error":{"code":"#);
    write_escaped(e.code, &mut out);
    out.push_str(",\"message\":");
    write_escaped(&e.message, &mut out);
    if let Some(ms) = e.retry_after_ms {
        let _ = write!(out, r#","retry_after_ms":{ms}"#);
    }
    out.push_str("}}");
    out
}

/// Renders the `health` response line.
#[must_use]
pub fn health_line(state: &str, pending: usize, workers: usize) -> String {
    format!(
        r#"{{"ok":true,"op":"health","state":"{state}","pending":{pending},"workers":{workers}}}"#
    )
}

/// Renders the response line for a completed job.
#[must_use]
pub fn job_line(outcome: &JobOutcome, format: ReportFormat) -> String {
    let op = if outcome.report.is_some() {
        "flow"
    } else {
        "analyze"
    };
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        r#"{{"ok":true,"op":"{op}","design_hash":"{}","warm":{},"cache":{}"#,
        hex(outcome.design_hash),
        outcome.warm,
        cache_obj(&outcome.cache),
    );
    let _ = write!(out, r#","analysis":{}"#, analysis_obj(&outcome.analysis));
    if let Some(report) = &outcome.report {
        match format {
            ReportFormat::Json => {
                // The report's own serializer emits a complete JSON
                // object — spliced verbatim, so a served report is
                // byte-identical to an in-process `to_json()`.
                let _ = write!(out, r#","report":{}"#, report.to_json());
            }
            ReportFormat::Csv => {
                let csv = format!("{}\n{}", FlowReport::csv_header(), report.to_csv_row());
                out.push_str(",\"report_csv\":");
                write_escaped(&csv, &mut out);
            }
        }
    }
    out.push('}');
    out
}

fn cache_obj(c: &JobCacheStats) -> String {
    let opt = |v: Option<bool>| match v {
        None => "null".to_owned(),
        Some(b) => b.to_string(),
    };
    format!(
        r#"{{"design_hit":{},"procedures_hit":{},"delays_hit":{}}}"#,
        c.design_hit,
        opt(c.procedures_hit),
        opt(c.delays_hit),
    )
}

fn analysis_obj(a: &DesignAnalysis) -> String {
    let mut out = String::from(r#"{"design":"#);
    write_escaped(&a.design, &mut out);
    let _ = write!(
        out,
        r#","cells":{},"flops":{},"scan_flops":{},"domains":{},"graph_bytes":{}}}"#,
        a.cells, a.flops, a.scan_flops, a.domains, a.graph_bytes,
    );
    out
}

fn counters_obj(c: &KindCounters) -> String {
    format!(
        r#"{{"hits":{},"misses":{},"evictions":{}}}"#,
        c.hits, c.misses, c.evictions
    )
}

/// Renders the `stats` response line: cache counters plus cumulative
/// per-op request counts and error-code tallies since daemon start,
/// sourced from the global [`occ_obs`] metrics registry.
#[must_use]
pub fn stats_line(s: &CacheStats) -> String {
    let m = occ_obs::metrics();
    let mut ops = String::from("{");
    for (i, op) in occ_obs::OPS.iter().enumerate() {
        if i > 0 {
            ops.push(',');
        }
        let _ = write!(ops, r#""{op}":{}"#, m.requests[i].get());
    }
    ops.push('}');
    let mut errors = String::from("{");
    for (i, code) in occ_obs::ERROR_CODES.iter().enumerate() {
        if i > 0 {
            errors.push(',');
        }
        let _ = write!(errors, r#""{code}":{}"#, m.request_errors[i].get());
    }
    errors.push('}');
    format!(
        r#"{{"ok":true,"op":"stats","cache":{{"design":{},"procedures":{},"delays":{},"entries":{},"bytes":{}}},"ops":{ops},"errors":{errors}}}"#,
        counters_obj(&s.design),
        counters_obj(&s.procedures),
        counters_obj(&s.delays),
        s.entries,
        s.bytes,
    )
}

/// Renders the `metrics` response line: the full catalog as
/// Prometheus text exposition, JSON-escaped into one field.
#[must_use]
pub fn metrics_line() -> String {
    let exposition = occ_obs::metrics().registry.render();
    let mut out = String::with_capacity(exposition.len() + 64);
    out.push_str(r#"{"ok":true,"op":"metrics","exposition":"#);
    write_escaped(&exposition, &mut out);
    out.push('}');
    out
}

/// Executes one already-parsed request against the service and renders
/// the response line. `Shutdown` and `Ping` are handled by the caller
/// (the daemon needs to act on shutdown; ping needs no service).
#[must_use]
pub fn run_job(service: &FlowService, spec: &JobSpec, format: ReportFormat) -> String {
    run_job_with_cancel(service, spec, format, None)
}

/// [`run_job`] under an external cancel scope (the daemon's drain
/// token); the job's own deadline nests inside it.
#[must_use]
pub fn run_job_with_cancel(
    service: &FlowService,
    spec: &JobSpec,
    format: ReportFormat,
    parent: Option<&occ_flow::CancelToken>,
) -> String {
    match service.submit_with_cancel(spec, parent) {
        Ok(outcome) => job_line(&outcome, format),
        Err(e) => {
            let pe = ProtoError::from(e);
            let m = occ_obs::metrics();
            if let Some(c) = m.request_error(pe.code) {
                c.inc();
            }
            match pe.code {
                "deadline-exceeded" => m.cancellations[0].inc(),
                "cancelled" => m.cancellations[1].inc(),
                _ => {}
            }
            error_line(&pe)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_full_flow_requests() {
        let r = parse_request(r#"{"op":"flow","design":{"preset":"tiny","seed":9}}"#).unwrap();
        let Request::Job { spec, format } = r else {
            panic!("not a job")
        };
        assert!(!spec.analyze_only);
        assert_eq!(spec.design.seed, 9);
        assert_eq!(format, ReportFormat::Json);

        let r = parse_request(
            r#"{"op":"flow","design":{"preset":"paper_like","seed":7,"flops_per_domain":40},
               "clocking":"enhanced-cpf:3","fault_model":"stuck-at","engine":"sharded:2",
               "atpg_engine":"reference","backtrack_limit":9,"random_patterns":17,
               "compaction":false,"mask_bidi":true,"timing":true,"lint":"warn","format":"csv"}"#,
        )
        .unwrap();
        let Request::Job { spec, format } = r else {
            panic!("not a job")
        };
        assert_eq!(spec.design.domains[0].flops, 40);
        assert_eq!(
            spec.clocking,
            occ_core::ClockingMode::EnhancedCpf { max_pulses: 3 }
        );
        assert_eq!(spec.fault_model, FaultModel::StuckAt);
        assert_eq!(spec.atpg.backtrack_limit, 9);
        assert_eq!(spec.atpg.random_patterns, 17);
        assert!(!spec.atpg.compaction);
        assert!(spec.mask_bidi && spec.timing);
        assert_eq!(spec.lint, Some(occ_lint::LintGate::Warn));
        assert_eq!(format, ReportFormat::Csv);
    }

    #[test]
    fn parses_pattern_sources() {
        assert_eq!(
            parse_pattern_source("external").unwrap(),
            PatternSource::ExternalAtpg
        );
        let PatternSource::Edt(cfg) = parse_pattern_source("edt:4").unwrap() else {
            panic!("not edt");
        };
        assert_eq!(cfg.channels, 4);
        assert_eq!(cfg.chains, 0, "geometry stays auto-derived");
        assert_eq!(parse_pattern_source("edt").unwrap(), {
            PatternSource::Edt(EdtConfig::auto())
        });
        let PatternSource::Lbist(cfg) = parse_pattern_source("lbist:512").unwrap() else {
            panic!("not lbist");
        };
        assert_eq!(cfg.patterns, 512);
        for bad in ["prng", "edt:none", "lbist:-4", "external:2"] {
            assert_eq!(parse_pattern_source(bad).unwrap_err().code, "bad-request");
        }
    }

    #[test]
    fn rejects_bad_requests_with_codes() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"flow"}"#, "missing 'design'"),
            (
                r#"{"op":"flow","design":{"preset":"huge"}}"#,
                "unknown design preset",
            ),
            (
                r#"{"op":"flow","design":{"preset":"tiny"},"clocking":"warp"}"#,
                "unknown clocking mode",
            ),
            (
                r#"{"op":"flow","design":{"preset":"tiny"},"backtrack_limit":-1}"#,
                "non-negative",
            ),
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.code, "bad-request", "{line}");
            assert!(e.message.contains(needle), "{line}: {}", e.message);
        }
    }

    #[test]
    fn error_lines_are_valid_json() {
        let e = ProtoError::bad("field \"x\" broke\nbadly");
        let line = error_line(&e);
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").and_then(Json::as_str), Some("bad-request"));
        assert!(err.get("message").unwrap().as_str().unwrap().contains('\n'));
    }

    #[test]
    fn flow_error_codes_map() {
        assert_eq!(ProtoError::from(FlowError::NoDomains).code, "flow-error");
        assert_eq!(
            ProtoError::from(FlowError::LintDenied {
                errors: 1,
                first: "x".into()
            })
            .code,
            "lint-denied"
        );
    }
}
