//! Quickstart: generate the paper's Figure-3 clock pulse filter,
//! inspect it, simulate one capture episode, print the waveform —
//! then run the whole delay-test pipeline through the `TestFlow` API.
//!
//! Run with: `cargo run --release --example quickstart`

use occ::atpg::AtpgOptions;
use occ::core::{
    AteExpansion, AteTiming, ClockPulseFilter, ClockingMode, CpfBehavior, CpfConfig, Pll, PllConfig,
};
use occ::flow::{EngineChoice, FaultKind, TestFlow};
use occ::netlist::NetlistStats;
use occ::sim::{render_ascii, AsciiOptions, DelayModel, EventSim};
use occ::soc::{generate, SocConfig};

fn main() {
    // 1. The logic design: ten standard gates per clock domain.
    let cpf = ClockPulseFilter::generate(&CpfConfig::paper());
    println!("CPF gate count: {}", cpf.netlist().logic_gate_count());
    println!("{}", NetlistStats::of(cpf.netlist()));

    // 2. The functional PLL of the paper's device: 75/150 MHz domains.
    let pll = Pll::new(PllConfig::paper());
    println!(
        "PLL: domain 0 period {} ps, domain 1 period {} ps",
        pll.domain_period(0),
        pll.domain_period(1)
    );

    // 3. The ATE protocol: drop scan_en, apply one scan_clk trigger
    //    pulse, wait, re-assert. All edges on a slow tester grid.
    let behavior = CpfBehavior::new(cpf.config());
    let episode = AteExpansion::expand(&behavior, &pll, 1, &AteTiming::relaxed(), 200_000);
    println!(
        "expected at-speed pulses: {:?} (exactly {} of them)",
        episode.expected_pulses,
        behavior.pulse_count()
    );

    // 4. Event-driven simulation of the real gates.
    let nl = cpf.netlist();
    let ports = *cpf.ports();
    let mut sim = EventSim::new(nl, DelayModel::default());
    let clk_out = nl.find("cpf_clk_out").expect("output mux is named");
    sim.watch(ports.scan_en);
    sim.watch(ports.scan_clk);
    sim.watch(ports.pll_clk);
    sim.watch(clk_out);
    let end = episode.scan_en_rise + 50_000;
    sim.drive(ports.pll_clk, pll.domain_waveform(1, end));
    sim.drive(ports.scan_en, episode.scan_en_waveform());
    sim.drive(ports.scan_clk, episode.scan_clk_waveform());
    sim.run_until(end);

    let pulses = sim
        .trace()
        .rising_edges_in(clk_out, episode.scan_en_fall, episode.scan_en_rise);
    println!("simulated at-speed pulses: {pulses} (paper: exactly 2)\n");

    let from = episode.scan_en_fall - 10_000;
    let to = episode.expected_pulses[1] + 30_000;
    print!(
        "{}",
        render_ascii(
            sim.trace(),
            &[ports.scan_en, ports.scan_clk, ports.pll_clk, clk_out],
            &AsciiOptions::window(from, to, (to - from) / 150),
        )
    );
    assert_eq!(pulses, 2, "the CPF must release exactly two pulses");
    println!("\nok: gate-level CPF matches the paper's Figure 4 behaviour");

    // 5. The whole pipeline — SOC, scan, clocking mode, capture
    //    procedures, ATPG, fault simulation, report — as one TestFlow.
    let soc = generate(&SocConfig::tiny(1));
    let report = TestFlow::new(&soc)
        .clocking(ClockingMode::SimpleCpf)
        .fault_model(FaultKind::Transition)
        .engine(EngineChoice::Auto)
        .mask_bidi(true)
        .atpg(AtpgOptions {
            random_patterns: 64,
            backtrack_limit: 24,
            ..AtpgOptions::default()
        })
        .run()
        .expect("the quickstart flow validates");
    println!("\nTestFlow on a tiny SOC under the simple CPF:");
    println!("{report}");
    println!("\nas JSON: {}", report.to_json());
    assert!(report.coverage_pct() > 0.0);
    println!("\nok: the TestFlow pipeline reports end-to-end coverage");
}
