//! Cross-validation of the compiled STA:
//!
//! 1. against the **event-driven simulator**: on seeded glitch-free
//!    netlists (launch flop → gate chains with non-controlling
//!    constant side inputs), the STA arrival time of every chain cell
//!    must equal the time of the last waveform transition after the
//!    launch clock edge, under the same `DelayModel`;
//! 2. against the **naive reference STA** on the seeded Table-1 SOC
//!    (override-rich delay model);
//! 3. end-to-end: on the seeded SOC, the four transition-test clocking
//!    modes produce **distinct** SDQL / weighted-coverage values, with
//!    the at-speed CPF modes strictly ahead of the external ones.

use occ::fsim::{CaptureModel, ClockBinding};
use occ::netlist::{CellId, Logic, Netlist, NetlistBuilder};
use occ::sim::{DelayModel, EventSim, Time, Waveform};
use occ::timing::{reference_arrivals, CaptureTargets, Sta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The launch clock edge the event simulation applies.
const T_EDGE: Time = 10_000;

/// A seeded rig: one scan launch flop per chain, each feeding a random
/// glitch-free gate chain (side inputs tied non-controlling, so every
/// cell transitions exactly once after the clock edge, at exactly its
/// longest-path arrival).
struct Rig {
    nl: Netlist,
    dm: DelayModel,
    /// All chain cells (every one launched from a flop).
    cells: Vec<CellId>,
}

fn build_rig(seed: u64) -> Rig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new("timing_rig");
    let clk = b.input("clk");
    let se = b.input("se");
    let si = b.input("si");
    let d = b.input("d");
    let tie0 = b.tie0();
    let tie1 = b.tie1();
    let mut dm = DelayModel::default();
    let mut cells = Vec::new();

    let chains = rng.gen_range(2..=4usize);
    for c in 0..chains {
        let ff = b.sdff(d, clk, se, si);
        dm.set_cell(ff, rng.gen_range(20..50u64));
        cells.push(ff);
        let mut cur = ff;
        let len = rng.gen_range(4..=17usize);
        for _ in 0..len {
            // Side inputs are non-controlling constants: the launch
            // transition always propagates and nothing glitches.
            cur = match rng.gen_range(0..5u32) {
                0 => b.buf(cur),
                1 => b.not(cur),
                2 => b.and2(cur, tie1),
                3 => b.or2(cur, tie0),
                _ => b.xor2(cur, tie0),
            };
            dm.set_cell(cur, rng.gen_range(1..=25u64));
            cells.push(cur);
        }
        b.output(&format!("chain_{c}"), cur);
    }
    Rig {
        nl: b.finish().expect("rig validates"),
        dm,
        cells,
    }
}

#[test]
fn sta_arrivals_equal_event_sim_settle_times() {
    for seed in [1u64, 7, 42, 20050307] {
        let rig = build_rig(seed);
        let nl = &rig.nl;

        // Event-driven simulation: hold the data/control pins, fire
        // one clean clock edge, record every chain cell.
        let mut sim = EventSim::new(nl, rig.dm.clone());
        for &c in &rig.cells {
            sim.watch(c);
        }
        sim.drive(nl.find("se").unwrap(), Waveform::constant(Logic::Zero));
        sim.drive(nl.find("si").unwrap(), Waveform::constant(Logic::Zero));
        sim.drive(nl.find("d").unwrap(), Waveform::constant(Logic::One));
        sim.drive(
            nl.find("clk").unwrap(),
            Waveform::steps(&[(0, Logic::Zero), (T_EDGE, Logic::One)]),
        );
        sim.run_until(T_EDGE + 10_000);

        // Compiled STA over the same netlist and delay model.
        let mut binding = ClockBinding::new();
        binding.add_domain("a", nl.find("clk").unwrap());
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let model = CaptureModel::new(nl, binding).expect("rig binds");
        let table = rig.dm.compile(nl);
        let mut sta = Sta::new(model.graph().cells());
        sta.compute_arrivals(model.graph(), table.as_slice());

        for &c in &rig.cells {
            let edges = sim.trace().edges(c);
            let last = edges
                .last()
                .unwrap_or_else(|| panic!("seed {seed}: cell {c} never settled after the edge"));
            assert_eq!(
                sta.arrival(c.index()),
                last.time - T_EDGE,
                "seed {seed}: STA arrival vs event-sim settle at {c}",
            );
            // Glitch-free by construction: exactly one transition.
            assert_eq!(edges.len(), 1, "seed {seed}: cell {c} glitched");
        }

        // The reference STA agrees on the rig too.
        let oracle = reference_arrivals(nl, &rig.dm);
        assert_eq!(sta.arrivals(), oracle.as_slice(), "seed {seed}");
    }
}

#[test]
fn compiled_sta_matches_reference_on_the_soc() {
    use occ::netlist::CellKind;
    let soc = occ::soc::generate(&occ::soc::SocConfig::paper_like(20050307, 48));
    let model = CaptureModel::new(soc.netlist(), soc.binding(true)).expect("generated SOC binds");
    let mut dm = DelayModel::default();
    dm.set_kind(CellKind::Nand, 12)
        .set_kind(CellKind::Xor, 18)
        .set_kind(CellKind::Mux2, 16);
    for id in soc.netlist().ids().step_by(13) {
        dm.set_cell(id, 9);
    }
    let table = dm.compile(soc.netlist());
    let mut sta = Sta::new(model.graph().cells());
    sta.compute(
        model.graph(),
        table.as_slice(),
        &CaptureTargets::all(model.domain_count()),
    );
    let oracle = reference_arrivals(soc.netlist(), &dm);
    assert_eq!(sta.arrivals(), oracle.as_slice());
    // Departures are consistent with arrivals: any cell with both has
    // a path no longer than the global critical arrival.
    let max_arrival = sta.max_arrival();
    assert!(max_arrival > 0);
    for c in 0..model.graph().cells() {
        if let Some(p) = sta.path_through(c) {
            assert!(
                p <= max_arrival,
                "cell {c}: path {p} > critical {max_arrival}"
            );
        }
    }
}

#[test]
fn four_clocking_modes_produce_distinct_quality() {
    use occ::atpg::AtpgOptions;
    use occ::core::ClockingMode;
    use occ::flow::{EngineChoice, FaultKind, TestFlow};

    let soc = occ::soc::generate(&occ::soc::SocConfig::paper_like(20050307, 24));
    let quick = AtpgOptions {
        random_patterns: 64,
        backtrack_limit: 16,
        ..AtpgOptions::default()
    };
    let modes = [
        ClockingMode::ExternalClock { max_pulses: 4 },
        ClockingMode::SimpleCpf,
        ClockingMode::EnhancedCpf { max_pulses: 4 },
        ClockingMode::ConstrainedExternal { max_pulses: 4 },
    ];
    let reports: Vec<_> = modes
        .iter()
        .map(|&mode| {
            TestFlow::new(&soc)
                .clocking(mode)
                .fault_model(FaultKind::Transition)
                .mask_bidi(mode != ClockingMode::ExternalClock { max_pulses: 4 })
                .engine(EngineChoice::Serial)
                .atpg(quick.clone())
                .timing(DelayModel::default())
                .run()
                .expect("flow validates")
        })
        .collect();
    let quality: Vec<_> = reports
        .iter()
        .map(|r| r.delay_quality.as_ref().expect("timed"))
        .collect();

    // Pairwise distinct SDQL and weighted coverage.
    for i in 0..quality.len() {
        for j in i + 1..quality.len() {
            assert_ne!(
                quality[i].sdql, quality[j].sdql,
                "{} vs {}",
                modes[i], modes[j]
            );
            assert_ne!(
                quality[i].weighted_coverage_pct, quality[j].weighted_coverage_pct,
                "{} vs {}",
                modes[i], modes[j]
            );
        }
    }
    // The at-speed CPF modes beat both external modes on both axes.
    for cpf in [&quality[1], &quality[2]] {
        for ext in [&quality[0], &quality[3]] {
            assert!(cpf.sdql < ext.sdql);
            assert!(cpf.weighted_coverage_pct > ext.weighted_coverage_pct);
        }
    }
}
