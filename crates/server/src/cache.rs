//! The content-addressed compiled-artifact cache.
//!
//! Jobs on the same design repeat the same expensive compile work:
//! netlist generation + scan insertion + graph levelization, capture
//! procedure construction, delay-table compilation. This cache keys
//! each compiled artifact by a stable content hash
//! ([`crate::hash::Fnv64`] over the inputs that determine it) and
//! hands out `Arc` clones, so a warm job touches no compile stage at
//! all.
//!
//! ## Concurrency
//!
//! The map is split into [`SHARDS`] shards, each behind its own
//! `Mutex` — jobs on different designs hash to different shards (with
//! high probability) and never serialize on the cache. Within a shard,
//! a *build in progress* is represented explicitly: the first thread
//! to miss inserts a `Building` marker and compiles **outside the
//! lock**; concurrent requests for the same key block on the shard's
//! `Condvar` instead of duplicating the build. This keeps hit/miss
//! counters deterministic (one miss per distinct key, ever — asserted
//! by the concurrent stress tests) and bounds memory (never two copies
//! of one artifact). A build that fails or panics removes its marker
//! on unwind, so waiters see the slot empty and retry the build rather
//! than hanging.
//!
//! ## Eviction
//!
//! Each shard owns `budget / SHARDS` bytes. On insert, the shard
//! evicts its least-recently-used **ready** entries (never the one
//! just inserted, never a `Building` marker) until back under budget.
//! Because values are `Arc`s, eviction only drops the cache's
//! reference — jobs holding the artifact keep it alive and complete
//! unaffected; the bytes are reclaimed when the last job drops it.

use crate::design::DesignArtifact;
use occ_flow::FlowError;
use occ_fsim::FrameSpec;
use occ_sim::CompiledDelays;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shard count. A small power of two: enough that concurrent jobs on
/// different designs almost never share a lock, small enough that a
/// stats snapshot is cheap.
pub const SHARDS: usize = 8;

/// A cached compiled artifact (always an `Arc` — clones are pointer
/// copies).
#[derive(Debug, Clone)]
pub enum Artifact {
    /// Generated SOC + compiled simulation graph.
    Design(Arc<DesignArtifact>),
    /// Capture procedures for one (clocking, fault model, domain
    /// count) triple.
    Procedures(Arc<Vec<FrameSpec>>),
    /// Compiled per-cell delay table for one (design, delay model)
    /// pair.
    Delays(Arc<CompiledDelays>),
}

/// The artifact families the cache tracks counters for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// SOC + graph.
    Design,
    /// Capture procedures.
    Procedures,
    /// Compiled delay table.
    Delays,
}

impl ArtifactKind {
    /// Counter-array index (also the index into the global
    /// `occ_obs::metrics()` cache counter arrays — `CACHE_KINDS`
    /// order).
    fn idx(self) -> usize {
        match self {
            ArtifactKind::Design => 0,
            ArtifactKind::Procedures => 1,
            ArtifactKind::Delays => 2,
        }
    }

    /// Protocol / stats label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::Design => "design",
            ArtifactKind::Procedures => "procedures",
            ArtifactKind::Delays => "delays",
        }
    }
}

/// Hit/miss/eviction counters of one artifact kind (a snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounters {
    /// Requests served from a ready entry (including threads that
    /// waited out a concurrent build).
    pub hits: u64,
    /// Requests that performed the build.
    pub misses: u64,
    /// Entries evicted under byte-budget pressure.
    pub evictions: u64,
}

/// A full cache snapshot: per-kind counters plus occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// SOC + graph artifacts.
    pub design: KindCounters,
    /// Capture-procedure artifacts.
    pub procedures: KindCounters,
    /// Delay-table artifacts.
    pub delays: KindCounters,
    /// Ready entries currently resident.
    pub entries: usize,
    /// Approximate resident bytes.
    pub bytes: usize,
}

#[derive(Debug)]
enum Slot {
    /// A build is in flight on another thread; wait on the condvar.
    Building,
    Ready {
        value: Artifact,
        kind: ArtifactKind,
        bytes: usize,
        /// Last-touch stamp (global monotonic counter) — the LRU key.
        stamp: u64,
    },
}

#[derive(Debug, Default)]
struct Shard {
    slots: HashMap<u64, Slot>,
    bytes: usize,
}

#[derive(Debug, Default)]
struct ShardLock {
    shard: Mutex<Shard>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The sharded, byte-budgeted artifact cache. Shared across job
/// workers and client connections behind an `Arc` (all methods take
/// `&self`).
#[derive(Debug)]
pub struct ArtifactCache {
    shards: Vec<ShardLock>,
    /// Per-shard byte budget; 0 = unlimited.
    shard_budget: usize,
    stamp: AtomicU64,
    counters: [Counters; 3],
}

impl ArtifactCache {
    /// Creates a cache with a total byte budget (0 = unlimited). The
    /// budget is split evenly across shards.
    #[must_use]
    pub fn new(byte_budget: usize) -> Self {
        ArtifactCache {
            shards: (0..SHARDS).map(|_| ShardLock::default()).collect(),
            shard_budget: byte_budget / SHARDS,
            stamp: AtomicU64::new(0),
            counters: Default::default(),
        }
    }

    fn shard_of(&self, key: u64) -> &ShardLock {
        // High bits: FNV mixes low bits least.
        &self.shards[(key >> 56) as usize % SHARDS]
    }

    fn touch(&self) -> u64 {
        self.stamp.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up `key`, building (and caching) on miss. Returns the
    /// artifact plus whether this call was a hit. Concurrent callers
    /// with the same key build once: the rest block until the build
    /// completes and count as hits.
    ///
    /// # Errors
    ///
    /// Propagates the builder's [`FlowError`]; nothing is cached and
    /// waiting threads retry their own build.
    ///
    /// # Panics
    ///
    /// Panics if a lock was poisoned (a builder panicked while the
    /// cache itself held no lock — only eviction code runs locked).
    pub fn get_or_build(
        &self,
        kind: ArtifactKind,
        key: u64,
        build: impl FnOnce() -> Result<(Artifact, usize), FlowError>,
    ) -> Result<(Artifact, bool), FlowError> {
        let lock = self.shard_of(key);
        let mut shard = lock.shard.lock().expect("cache shard poisoned");
        loop {
            match shard.slots.get_mut(&key) {
                Some(Slot::Ready { value, stamp, .. }) => {
                    *stamp = self.touch();
                    let value = value.clone();
                    drop(shard);
                    self.counters[kind.idx()]
                        .hits
                        .fetch_add(1, Ordering::Relaxed);
                    occ_obs::metrics().cache_hits[kind.idx()].inc();
                    let mut hit_span = occ_obs::span("cache.hit");
                    hit_span.attr_str("kind", kind.label());
                    return Ok((value, true));
                }
                Some(Slot::Building) => {
                    shard = lock.ready.wait(shard).expect("cache shard poisoned");
                }
                None => {
                    shard.slots.insert(key, Slot::Building);
                    break;
                }
            }
        }
        drop(shard);

        // Build outside the lock; the guard clears the Building marker
        // on *any* exit that did not store a value (error or panic),
        // so waiters never deadlock on an abandoned build.
        let guard = BuildGuard {
            lock,
            key,
            armed: true,
        };
        let mut build_span = occ_obs::span("cache.build");
        build_span.attr_str("kind", kind.label());
        let (value, bytes) = build()?;
        build_span.attr_u64("bytes", bytes as u64);
        drop(build_span);
        self.store(kind, key, value.clone(), bytes, guard);
        self.counters[kind.idx()]
            .misses
            .fetch_add(1, Ordering::Relaxed);
        occ_obs::metrics().cache_misses[kind.idx()].inc();
        Ok((value, false))
    }

    fn store(
        &self,
        kind: ArtifactKind,
        key: u64,
        value: Artifact,
        bytes: usize,
        mut guard: BuildGuard<'_>,
    ) {
        let lock = guard.lock;
        let mut shard = lock.shard.lock().expect("cache shard poisoned");
        shard.slots.insert(
            key,
            Slot::Ready {
                value,
                kind,
                bytes,
                stamp: self.touch(),
            },
        );
        shard.bytes += bytes;
        guard.armed = false;

        // Evict LRU ready entries (never the one just inserted) until
        // back under budget.
        if self.shard_budget > 0 {
            while shard.bytes > self.shard_budget {
                let victim = shard
                    .slots
                    .iter()
                    .filter_map(|(&k, slot)| match slot {
                        Slot::Ready { stamp, .. } if k != key => Some((*stamp, k)),
                        _ => None,
                    })
                    .min();
                let Some((_, vk)) = victim else { break };
                if let Some(Slot::Ready { bytes, kind, .. }) = shard.slots.remove(&vk) {
                    shard.bytes -= bytes;
                    self.counters[kind.idx()]
                        .evictions
                        .fetch_add(1, Ordering::Relaxed);
                    occ_obs::metrics().cache_evictions[kind.idx()].inc();
                }
            }
        }
        drop(shard);
        lock.ready.notify_all();
    }

    /// A consistent-enough snapshot of counters and occupancy (shards
    /// are visited one at a time; counters are monotonic).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let take = |i: usize| KindCounters {
            hits: self.counters[i].hits.load(Ordering::Relaxed),
            misses: self.counters[i].misses.load(Ordering::Relaxed),
            evictions: self.counters[i].evictions.load(Ordering::Relaxed),
        };
        let mut entries = 0;
        let mut bytes = 0;
        for lock in &self.shards {
            let shard = lock.shard.lock().expect("cache shard poisoned");
            entries += shard
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            bytes += shard.bytes;
        }
        CacheStats {
            design: take(0),
            procedures: take(1),
            delays: take(2),
            entries,
            bytes,
        }
    }
}

/// Removes an in-flight `Building` marker if the build never stored a
/// value (builder error or panic) and wakes waiters so one of them
/// retries.
struct BuildGuard<'c> {
    lock: &'c ShardLock,
    key: u64,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut shard) = self.lock.shard.lock() {
                if matches!(shard.slots.get(&self.key), Some(Slot::Building)) {
                    shard.slots.remove(&self.key);
                }
            }
            self.lock.ready.notify_all();
        }
    }
}

/// Approximate resident bytes of a procedure list (cache accounting).
#[must_use]
pub fn procedures_bytes(procs: &[FrameSpec]) -> usize {
    procs
        .iter()
        .map(|spec| {
            spec.name().len()
                + spec
                    .cycles()
                    .iter()
                    .map(|c| c.pulses.len() * 8 + 24)
                    .sum::<usize>()
                + 64
        })
        .sum()
}

/// Approximate resident bytes of a compiled delay table.
#[must_use]
pub fn delays_bytes(table: &CompiledDelays) -> usize {
    table.len() * std::mem::size_of::<occ_sim::Time>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_fsim::CycleSpec;

    fn proc_artifact(name: &str) -> (Artifact, usize) {
        let procs = vec![FrameSpec::new(name, vec![CycleSpec::pulsing(&[0]); 2])];
        let bytes = procedures_bytes(&procs);
        (Artifact::Procedures(Arc::new(procs)), bytes)
    }

    #[test]
    fn caches_and_counts() {
        let cache = ArtifactCache::new(0);
        let (_, hit) = cache
            .get_or_build(ArtifactKind::Procedures, 1, || Ok(proc_artifact("p")))
            .unwrap();
        assert!(!hit);
        let (_, hit) = cache
            .get_or_build(ArtifactKind::Procedures, 1, || {
                panic!("must not rebuild on hit")
            })
            .unwrap();
        assert!(hit);
        let s = cache.stats();
        assert_eq!((s.procedures.hits, s.procedures.misses), (1, 1));
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn failed_build_is_not_cached_and_unblocks() {
        let cache = ArtifactCache::new(0);
        let r = cache.get_or_build(ArtifactKind::Procedures, 2, || Err(FlowError::NoDomains));
        assert!(r.is_err());
        // The slot is free again: a retry builds.
        let (_, hit) = cache
            .get_or_build(ArtifactKind::Procedures, 2, || Ok(proc_artifact("q")))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn evicts_lru_under_budget() {
        // Budget so small any second entry in one shard must evict the
        // first. Keys differing only below bit 56 land in one shard.
        let cache = ArtifactCache::new(SHARDS); // 1 byte per shard
        cache
            .get_or_build(ArtifactKind::Procedures, 10, || Ok(proc_artifact("a")))
            .unwrap();
        cache
            .get_or_build(ArtifactKind::Procedures, 11, || Ok(proc_artifact("b")))
            .unwrap();
        let s = cache.stats();
        assert!(s.procedures.evictions >= 1, "{s:?}");
        // The newest entry survives its own insertion.
        let (_, hit) = cache
            .get_or_build(ArtifactKind::Procedures, 11, || Ok(proc_artifact("b")))
            .unwrap();
        assert!(hit);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = Arc::new(ArtifactCache::new(0));
        let builds = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let builds = Arc::clone(&builds);
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_build(ArtifactKind::Procedures, 42, move || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        Ok(proc_artifact("once"))
                    })
                    .unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!(s.procedures.misses, 1);
        assert_eq!(s.procedures.hits, 7);
    }
}
