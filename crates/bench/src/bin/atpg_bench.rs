//! ATPG throughput benchmark and regression gate — the generation-side
//! sibling of `fsim_bench`.
//!
//! Runs the retained `ReferencePodem` and the compiled `CompiledPodem`
//! over a strided sample of the transition-fault universe of the
//! seeded Table-1 SOC (one broadside procedure), cross-checks that
//! every `PodemOutcome` is identical, and writes decisions/sec plus
//! allocation counts to `BENCH_atpg.json` so the perf trajectory is
//! tracked in-repo.
//!
//! ```text
//! atpg_bench [--flops N] [--faults N] [--limit B] [--reps N]
//!            [--out PATH] [--check BASELINE.json]
//! ```
//!
//! Three gates:
//!
//! * **Allocation** (hardware-independent, always on): the compiled
//!   engine must stay O(1) allocations per PODEM decision — measured
//!   with the shared counting allocator over the whole run loop
//!   (including per-fault pattern setup) and capped at
//!   [`MAX_ALLOCS_PER_DECISION`].
//! * **Lint-pruned identity** (hardware-independent, always on): the
//!   full lint → `run_atpg_preclassified` flow must skip at least one
//!   PODEM search on the SOC and still produce a pattern set
//!   byte-identical to the unpruned `run_atpg` (same procedure
//!   indices, scan loads, PI fills, coverage). The skipped-search
//!   count and both wall-clocks land in the JSON as the `lint` row.
//! * **Speedup ratio** (with `--check`): the compiled-vs-reference
//!   decisions/sec ratio — both engines make identical decisions, so
//!   the ratio cancels out machine speed — must not regress more than
//!   20% against the committed baseline. `ATPG_BENCH_SKIP_CHECK`
//!   bypasses it on cold machines; the outcome and identity
//!   cross-checks always run.

#[path = "../alloc_track.rs"]
mod alloc_track;

#[global_allocator]
static ALLOC: alloc_track::CountingAlloc = alloc_track::CountingAlloc;

use occ_atpg::{
    run_atpg, run_atpg_preclassified, AtpgEngine, AtpgOptions, AtpgResult, CompiledPodem,
    Observability, PodemOutcome, ReferencePodem,
};
use occ_core::ClockingMode;
use occ_fault::FaultUniverse;
use occ_fsim::{CaptureModel, FaultSim, FrameSpec};
use occ_lint::Linter;
use occ_soc::{generate, SocConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Allowed speedup-ratio drop vs the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Hard cap on compiled-engine allocations per PODEM decision. The
/// steady state is ~0 (scratch is stamped and reused); the budget
/// covers per-fault pattern construction and one-time warm-up growth.
const MAX_ALLOCS_PER_DECISION: f64 = 4.0;

struct Options {
    flops: usize,
    faults: usize,
    limit: usize,
    reps: usize,
    out: String,
    check: Option<String>,
}

struct EngineRow {
    engine: String,
    seconds: f64,
    decisions: u64,
    decisions_per_sec: f64,
    faults_per_sec: f64,
    allocs: u64,
    alloc_bytes: u64,
    events: u64,
    incremental_resims: u64,
}

/// Measurement of the lint → pre-classified ATPG flow vs the plain
/// run, gated on byte-identical pattern sets.
struct LintRow {
    untestable: usize,
    podem_skipped: usize,
    plain_seconds: f64,
    pruned_seconds: f64,
    patterns: usize,
    coverage_pct: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        flops: 96,
        faults: 600,
        limit: 48,
        reps: 2,
        out: "BENCH_atpg.json".to_owned(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--flops" => {
                opts.flops = value("--flops")?
                    .parse()
                    .map_err(|e| format!("--flops: {e}"))?;
            }
            "--faults" => {
                let n: usize = value("--faults")?
                    .parse()
                    .map_err(|e| format!("--faults: {e}"))?;
                if n == 0 {
                    return Err("--faults must be positive".to_owned());
                }
                opts.faults = n;
            }
            "--limit" => {
                opts.limit = value("--limit")?
                    .parse()
                    .map_err(|e| format!("--limit: {e}"))?;
            }
            "--reps" => {
                let n: usize = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if n == 0 {
                    return Err("--reps must be positive".to_owned());
                }
                opts.reps = n;
            }
            "--out" => opts.out = value("--out")?,
            "--check" => opts.check = Some(value("--check")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("atpg_bench: {e}");
            return ExitCode::from(2);
        }
    };

    let soc = generate(&SocConfig::paper_like(20050307, opts.flops));
    let model =
        CaptureModel::new(soc.netlist(), soc.binding(true)).expect("generated SOC always binds");
    let domains: Vec<usize> = (0..model.domain_count()).collect();
    let spec = FrameSpec::broadside("loc", &domains, 2)
        .hold_pi(true)
        .observe_po(false);
    let obs = Observability::compute(&model, &spec);

    // A strided sample of the universe, so the run touches cones from
    // every block of the design at any --faults budget.
    let universe = FaultUniverse::transition(soc.netlist());
    let all = universe.faults();
    let stride = (all.len() / opts.faults).max(1);
    let faults: Vec<occ_fault::Fault> = all.iter().copied().step_by(stride).collect();
    println!(
        "atpg_bench: {} — {} cells, {} of {} faults (stride {}), limit {}",
        soc.netlist().name(),
        soc.netlist().len(),
        faults.len(),
        all.len(),
        stride,
        opts.limit,
    );

    let mut rows: Vec<EngineRow> = Vec::new();
    let mut outcomes: Vec<(String, Vec<PodemOutcome>)> = Vec::new();

    // Reference (retained scalar) engine.
    {
        let mut engine = ReferencePodem::new(&model);
        let (row, outs) = run_engine("reference", &mut engine, &spec, &obs, &faults, &opts);
        rows.push(row);
        outcomes.push(("reference".to_owned(), outs));
    }

    // Compiled incremental engine.
    {
        let mut engine = CompiledPodem::new(&model);
        let (row, outs) = run_engine("compiled", &mut engine, &spec, &obs, &faults, &opts);
        rows.push(row);
        outcomes.push(("compiled".to_owned(), outs));
    }

    // Correctness gate: every outcome must be identical.
    if outcomes[1].1 != outcomes[0].1 {
        let at = outcomes[0]
            .1
            .iter()
            .zip(&outcomes[1].1)
            .position(|(a, b)| a != b);
        eprintln!(
            "atpg_bench: FATAL — compiled outcomes diverge from reference (first at sample {at:?})"
        );
        return ExitCode::FAILURE;
    }
    let tests_found = outcomes[0]
        .1
        .iter()
        .filter(|o| matches!(o, PodemOutcome::Test(_)))
        .count();

    let speedup = rows[1].decisions_per_sec / rows[0].decisions_per_sec.max(1e-9);
    for r in &rows {
        println!(
            "  {:<10} {:>8.3}s  {:>12.0} decisions/s  {:>9.0} faults/s  \
             {:>10} allocs  {:>12} bytes  {:>12} events",
            r.engine,
            r.seconds,
            r.decisions_per_sec,
            r.faults_per_sec,
            r.allocs,
            r.alloc_bytes,
            r.events,
        );
    }
    println!(
        "  compiled vs reference speedup: {speedup:.2}x ({} tests found, {} decisions)",
        tests_found, rows[1].decisions
    );

    // Allocation gate: O(1) per decision, hardware-independent.
    let allocs_per_decision = rows[1].allocs as f64 / (rows[1].decisions.max(1)) as f64;
    println!(
        "  compiled allocs/decision: {allocs_per_decision:.3} (cap {MAX_ALLOCS_PER_DECISION})"
    );
    if allocs_per_decision > MAX_ALLOCS_PER_DECISION {
        eprintln!(
            "atpg_bench: FATAL — compiled engine allocates {allocs_per_decision:.2} \
             per decision (cap {MAX_ALLOCS_PER_DECISION}); the zero-allocation \
             contract is broken"
        );
        return ExitCode::FAILURE;
    }

    // Lint-pruned identity gate: the lint → pre-classified flow must
    // skip searches without changing a single pattern byte.
    let lint = match run_lint_pruned(&soc, &model, &spec, &opts) {
        Ok(row) => row,
        Err(e) => {
            eprintln!("atpg_bench: FATAL — lint-pruned flow: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "  lint-pruned  plain {:.3}s  pruned {:.3}s  {} untestable, {} searches \
         skipped, {} patterns, {:.2}% coverage (pattern sets identical)",
        lint.plain_seconds,
        lint.pruned_seconds,
        lint.untestable,
        lint.podem_skipped,
        lint.patterns,
        lint.coverage_pct,
    );

    let peak_rss = alloc_track::peak_rss_kb();
    let json = to_json(
        &opts,
        &soc,
        faults.len(),
        tests_found,
        &rows,
        &lint,
        speedup,
        allocs_per_decision,
        peak_rss,
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("atpg_bench: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("  wrote {}", opts.out);

    if let Some(baseline) = &opts.check {
        return check_regression(baseline, faults.len(), speedup);
    }
    ExitCode::SUCCESS
}

/// Runs one engine over the fault sample `reps` times, keeping the
/// best wall-clock and the first rep's outcomes + allocation delta.
fn run_engine(
    name: &str,
    engine: &mut dyn AtpgEngine,
    spec: &FrameSpec,
    obs: &Observability,
    faults: &[occ_fault::Fault],
    opts: &Options,
) -> (EngineRow, Vec<PodemOutcome>) {
    let mut best = f64::INFINITY;
    let mut outcomes = Vec::new();
    let mut delta = alloc_track::AllocSnapshot::default();
    for rep in 0..opts.reps {
        let before = alloc_track::snapshot();
        let t0 = Instant::now();
        let outs: Vec<PodemOutcome> = faults
            .iter()
            .map(|&f| engine.run(spec, obs, f, opts.limit))
            .collect();
        best = best.min(t0.elapsed().as_secs_f64());
        if rep == 0 {
            delta = alloc_track::snapshot().since(before);
            outcomes = outs;
        }
    }
    let stats = engine.kernel_stats();
    let reps = opts.reps as u64;
    let decisions = stats.decisions / reps;
    let secs = best.max(1e-9);
    (
        EngineRow {
            engine: name.to_owned(),
            seconds: best,
            decisions,
            decisions_per_sec: decisions as f64 / secs,
            faults_per_sec: faults.len() as f64 / secs,
            allocs: delta.allocs,
            alloc_bytes: delta.bytes,
            events: stats.events / reps,
            incremental_resims: stats.incremental_resims / reps,
        },
        outcomes,
    )
}

/// Runs the full lint → `run_atpg_preclassified` flow next to the
/// plain `run_atpg` on the same universe, times both, and hard-gates
/// on identical results: the statically proven untestable set may
/// change how much work ATPG does, never what it produces.
fn run_lint_pruned(
    soc: &occ_soc::Soc,
    model: &CaptureModel<'_>,
    spec: &FrameSpec,
    opts: &Options,
) -> Result<LintRow, String> {
    let universe = FaultUniverse::transition(soc.netlist());
    let report = Linter::new(model)
        .mode(ClockingMode::EnhancedCpf { max_pulses: 2 })
        .chains(soc.chains())
        .run_with_universe(&universe);
    let options = AtpgOptions {
        random_patterns: 64,
        backtrack_limit: opts.limit,
        ..AtpgOptions::default()
    };
    let procedures = std::slice::from_ref(spec);

    let mut engine = FaultSim::new(model);
    let mut podem = CompiledPodem::new(model);
    let t0 = Instant::now();
    let plain = run_atpg(
        model,
        procedures,
        universe.clone(),
        &options,
        &mut engine,
        &mut podem,
    );
    let plain_seconds = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let pruned = run_atpg_preclassified(
        model,
        procedures,
        universe,
        &options,
        &mut engine,
        &mut podem,
        &report.untestable,
    );
    let pruned_seconds = t0.elapsed().as_secs_f64();

    if pruned.stats.lint_pruned == 0 {
        return Err("lint pre-classification skipped zero PODEM searches".to_owned());
    }
    check_identical(&pruned, &plain)?;
    Ok(LintRow {
        untestable: report.untestable.len(),
        podem_skipped: pruned.stats.lint_pruned,
        plain_seconds,
        pruned_seconds,
        patterns: pruned.patterns.len(),
        coverage_pct: pruned.report().coverage_pct(),
    })
}

/// Byte-level identity between the pruned and plain ATPG results.
fn check_identical(pruned: &AtpgResult, plain: &AtpgResult) -> Result<(), String> {
    if pruned.report().detected != plain.report().detected {
        return Err(format!(
            "detected counts diverge: pruned {} vs plain {}",
            pruned.report().detected,
            plain.report().detected
        ));
    }
    if pruned.patterns.len() != plain.patterns.len() {
        return Err(format!(
            "pattern counts diverge: pruned {} vs plain {}",
            pruned.patterns.len(),
            plain.patterns.len()
        ));
    }
    for (i, (a, b)) in pruned
        .patterns
        .patterns()
        .iter()
        .zip(plain.patterns.patterns())
        .enumerate()
    {
        if a.proc_index != b.proc_index || a.scan_load != b.scan_load || a.pis != b.pis {
            return Err(format!(
                "pattern {i} diverges between pruned and plain runs"
            ));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    opts: &Options,
    soc: &occ_soc::Soc,
    faults: usize,
    tests_found: usize,
    rows: &[EngineRow],
    lint: &LintRow,
    speedup: f64,
    allocs_per_decision: f64,
    peak_rss_kb: Option<u64>,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"design\":\"{}\",\"cells\":{},\"faults\":{},\"tests_found\":{},\
         \"flops_per_domain\":{},\"backtrack_limit\":{},",
        soc.netlist().name(),
        soc.netlist().len(),
        faults,
        tests_found,
        opts.flops,
        opts.limit,
    );
    match peak_rss_kb {
        Some(kb) => {
            let _ = write!(out, "\"peak_rss_kb\":{kb},");
        }
        None => {
            let _ = write!(out, "\"peak_rss_kb\":null,");
        }
    }
    let _ = write!(out, "\"engines\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"engine\":\"{}\",\"seconds\":{:.6},\"decisions\":{},\
             \"decisions_per_sec\":{:.1},\"faults_per_sec\":{:.1},\"allocs\":{},\
             \"alloc_bytes\":{},\"events\":{},\"incremental_resims\":{}}}",
            r.engine,
            r.seconds,
            r.decisions,
            r.decisions_per_sec,
            r.faults_per_sec,
            r.allocs,
            r.alloc_bytes,
            r.events,
            r.incremental_resims,
        );
    }
    let _ = write!(
        out,
        "],\"lint\":{{\"untestable\":{},\"podem_skipped\":{},\
         \"plain_seconds\":{:.6},\"pruned_seconds\":{:.6},\
         \"patterns\":{},\"coverage_pct\":{:.3},\
         \"patterns_identical\":true}},",
        lint.untestable,
        lint.podem_skipped,
        lint.plain_seconds,
        lint.pruned_seconds,
        lint.patterns,
        lint.coverage_pct,
    );
    let _ = writeln!(
        out,
        "\"allocs_per_decision\":{allocs_per_decision:.4},\
         \"speedup_compiled_vs_reference\":{speedup:.3}}}"
    );
    out
}

/// Compares the fresh speedup ratio against the committed baseline.
/// The ratio cancels out machine speed (both engines make identical
/// decisions on the same machine), so it trips only on a genuine
/// compiled-engine regression.
fn check_regression(path: &str, faults: usize, fresh_ratio: f64) -> ExitCode {
    let skip = std::env::var("ATPG_BENCH_SKIP_CHECK").is_ok_and(|v| !v.is_empty());
    if skip {
        println!("  regression check skipped (ATPG_BENCH_SKIP_CHECK set)");
        return ExitCode::SUCCESS;
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("atpg_bench: cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base_faults = extract_number(&text, "\"faults\":");
    if base_faults.is_some_and(|b| b as usize != faults) {
        println!(
            "  baseline {path} was produced with a different config \
             ({:?} vs {faults} faults) — regression check skipped; \
             regenerate the baseline",
            base_faults.map(|b| b as usize)
        );
        return ExitCode::SUCCESS;
    }
    let Some(base_ratio) = extract_number(&text, "\"speedup_compiled_vs_reference\":") else {
        eprintln!("atpg_bench: no speedup_compiled_vs_reference in baseline {path}");
        return ExitCode::FAILURE;
    };
    let floor = base_ratio * (1.0 - REGRESSION_TOLERANCE);
    println!(
        "  speedup ratio: fresh {fresh_ratio:.2}x vs baseline {base_ratio:.2}x \
         (floor {floor:.2}x)"
    );
    if fresh_ratio < floor {
        eprintln!(
            "atpg_bench: REGRESSION — compiled-vs-reference speedup dropped \
             more than {:.0}% below the committed baseline (set \
             ATPG_BENCH_SKIP_CHECK=1 to bypass on cold machines)",
            REGRESSION_TOLERANCE * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Parses the number following the first occurrence of `key`.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(key)? + key.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
