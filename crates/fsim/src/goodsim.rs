//! Batched (64-pattern) good-machine simulation of a capture procedure.
//!
//! Runs on the [`SimGraph`](crate::SimGraph) compiled into the capture
//! model: dense op-code evaluation over the levelized order, flop
//! capture through precomputed pin metadata (reset handling is skipped
//! entirely for flops without a reset pin), and two frame-level
//! optimizations for multi-frame procedures:
//!
//! * the packed primary-input frame is built **once** when the
//!   procedure holds PIs (instead of re-packing every slot of every
//!   pattern per frame);
//! * with held PIs, frames after the first are simulated
//!   **incrementally**: the previous frame's values are copied and only
//!   the cones of flops whose state changed are re-evaluated
//!   event-wise — identical values by construction, a fraction of the
//!   evaluations.

use crate::graph::{SimGraph, FLOP_TAG, NO_RESET};
use crate::pval::PVal;
use crate::{CaptureModel, FrameSpec, Pattern};
use occ_netlist::Logic;

/// Good-machine values for a batch of up to 64 patterns under one
/// capture procedure.
///
/// * `frames[k-1][cell]` — node values of combinational frame `k`
///   (1-based); flop nodes carry the state *entering* the frame.
/// * `states[k][flop]` — flop states after cycle `k`; `states[0]` is the
///   scan load (non-scan flops start `X`).
#[derive(Debug, Clone)]
pub struct GoodBatch {
    /// Number of real patterns in the batch (≤ 64).
    pub n_patterns: usize,
    /// Mask with one bit per real pattern.
    pub valid_mask: u64,
    /// Per-frame node values.
    pub frames: Vec<Vec<PVal>>,
    /// Flop states; index 0 is the load state.
    pub states: Vec<Vec<PVal>>,
}

/// Event-driven re-evaluation scratch for incremental frames.
struct Propagator {
    buckets: Vec<Vec<u32>>,
    enq: Vec<u32>,
    gen: u32,
}

impl Propagator {
    fn new(graph: &SimGraph) -> Self {
        Propagator {
            buckets: vec![Vec::new(); graph.bucket_count()],
            enq: vec![0; graph.cells()],
            gen: 0,
        }
    }

    /// Enqueues the combinational fanouts of `cell`.
    fn seed(&mut self, graph: &SimGraph, cell: usize) {
        for &e in graph.prop_fanouts(cell) {
            if e & FLOP_TAG == 0 {
                let f = e as usize;
                if self.enq[f] != self.gen {
                    self.enq[f] = self.gen;
                    self.buckets[graph.level_of(f) as usize].push(e);
                }
            }
        }
    }

    /// Re-evaluates enqueued cells in level order, propagating only
    /// where values actually change. Equivalent to a full re-eval of
    /// the frame (every cell is a pure function of PIs and flop nodes).
    fn run(&mut self, graph: &SimGraph, vals: &mut [PVal]) {
        for lvl in 0..self.buckets.len() {
            while let Some(raw) = self.buckets[lvl].pop() {
                let c = raw as usize;
                let v = graph.eval_cell(c, |_, src| vals[src as usize]);
                if v != vals[c] {
                    vals[c] = v;
                    self.seed(graph, c);
                }
            }
        }
    }

    fn next_gen(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.enq.fill(0);
            self.gen = 1;
        }
    }
}

/// Packs one frame's free-PI values across the batch.
fn pack_pis(model: &CaptureModel<'_>, patterns: &[Pattern], frame: usize, out: &mut Vec<PVal>) {
    out.clear();
    for (pi_idx, _) in model.free_pis().iter().enumerate() {
        let mut pv = PVal::XX;
        for (b, p) in patterns.iter().enumerate() {
            pv = pv.with_slot(b, p.pis_for_frame(frame)[pi_idx]);
        }
        out.push(pv);
    }
}

/// Simulates up to 64 patterns (all using procedure `spec`) and returns
/// the full good-machine view.
///
/// # Panics
///
/// Panics if more than 64 patterns are passed, or a pattern's shape does
/// not match the model/spec.
pub fn simulate_good(
    model: &CaptureModel<'_>,
    spec: &FrameSpec,
    patterns: &[Pattern],
) -> GoodBatch {
    assert!(patterns.len() <= 64, "PPSFP batch limit is 64 patterns");
    assert!(!patterns.is_empty(), "empty batch");
    let graph = model.graph();
    let n_cells = graph.cells();
    let n_flops = graph.flop_count();
    let valid_mask = if patterns.len() == 64 {
        !0u64
    } else {
        (1u64 << patterns.len()) - 1
    };

    // Load state.
    let mut state0 = vec![PVal::XX; n_flops];
    for (si, &fi) in model.scan_flops().iter().enumerate() {
        let mut pv = PVal::XX;
        for (b, p) in patterns.iter().enumerate() {
            pv = pv.with_slot(b, p.scan_load[si]);
        }
        state0[fi as usize] = pv;
    }

    // The frame-independent baseline: ties, constraints, masks.
    let mut base = vec![PVal::XX; n_cells];
    for &(c, v) in graph.tie_values() {
        base[c as usize] = v;
    }
    for &(c, v) in model.forced() {
        base[c.index()] = PVal::splat(v);
    }
    for &c in model.masked() {
        base[c.index()] = PVal::XX;
    }

    // Packed free-PI values; built once when the procedure holds PIs.
    let hold = spec.holds_pi();
    let mut pi_frame: Vec<PVal> = Vec::new();
    pack_pis(model, patterns, 1, &mut pi_frame);

    let mut states = vec![state0];
    let mut frames: Vec<Vec<PVal>> = Vec::with_capacity(spec.frames());
    let mut prop = Propagator::new(graph);

    for k in 1..=spec.frames() {
        let incremental = hold && k > 1;
        let mut vals = if incremental {
            // Base inputs are unchanged: start from the previous frame
            // and re-evaluate only the cones of changed flops.
            frames[k - 2].clone()
        } else {
            if k > 1 {
                pack_pis(model, patterns, k, &mut pi_frame);
            }
            let mut vals = base.clone();
            for (pi_idx, &pi) in model.free_pis().iter().enumerate() {
                vals[pi.index()] = pi_frame[pi_idx];
            }
            vals
        };

        // Flop nodes carry the entering state.
        if incremental {
            prop.next_gen();
            for (fi, &entering) in states[k - 1].iter().enumerate() {
                let cell = graph.flop_meta(fi).cell as usize;
                if vals[cell] != entering {
                    vals[cell] = entering;
                    prop.seed(graph, cell);
                }
            }
            prop.run(graph, &mut vals);
        } else {
            for (fi, &entering) in states[k - 1].iter().enumerate() {
                vals[graph.flop_meta(fi).cell as usize] = entering;
            }
            for &c in graph.comb_order() {
                let ci = c as usize;
                vals[ci] = graph.eval_cell(ci, |_, src| vals[src as usize]);
            }
        }

        // Next state: sample pulsed domains, apply resets where a reset
        // pin exists.
        let cycle = &spec.cycles()[k - 1];
        let mut next = states[k - 1].clone();
        for (fi, slot) in next.iter_mut().enumerate() {
            let meta = graph.flop_meta(fi);
            if cycle.pulses_domain(meta.domain as usize) {
                *slot = meta.sample(|src| vals[src as usize]);
            }
            if meta.reset != NO_RESET {
                *slot = meta.apply_reset(*slot, vals[meta.reset as usize]);
            }
        }
        states.push(next);
        frames.push(vals);
    }

    GoodBatch {
        n_patterns: patterns.len(),
        valid_mask,
        frames,
        states,
    }
}

/// Scalar (single-pattern) good simulation — the reference the packed
/// path is property-tested against, and the workhorse for PODEM's
/// final-pattern verification.
pub fn simulate_good_scalar(
    model: &CaptureModel<'_>,
    spec: &FrameSpec,
    pattern: &Pattern,
) -> (Vec<Vec<Logic>>, Vec<Vec<Logic>>) {
    let batch = simulate_good(model, spec, std::slice::from_ref(pattern));
    let frames = batch
        .frames
        .iter()
        .map(|f| f.iter().map(|p| p.slot(0)).collect())
        .collect();
    let states = batch
        .states
        .iter()
        .map(|s| s.iter().map(|p| p.slot(0)).collect())
        .collect();
    (frames, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockBinding, CycleSpec, FrameSpec};
    use occ_netlist::NetlistBuilder;

    /// Two-domain toy: dom-A flop feeds an inverter into dom-B flop.
    fn two_domain() -> (
        occ_netlist::Netlist,
        occ_netlist::CellId,
        occ_netlist::CellId,
    ) {
        let mut b = NetlistBuilder::new("t");
        let cka = b.input("cka");
        let ckb = b.input("ckb");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let fa = b.sdff(d, cka, se, si);
        let inv = b.not(fa);
        let fb = b.sdff(inv, ckb, se, fa);
        b.output("q", fb);
        b.name_cell(fa, "fa");
        b.name_cell(fb, "fb");
        (b.finish().unwrap(), cka, ckb)
    }

    fn model_of(
        nl: &occ_netlist::Netlist,
        cka: occ_netlist::CellId,
        ckb: occ_netlist::CellId,
    ) -> CaptureModel<'_> {
        let mut binding = ClockBinding::new();
        binding.add_domain("a", cka);
        binding.add_domain("b", ckb);
        let se = nl.find("se").unwrap();
        binding.constrain(se, Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        CaptureModel::new(nl, binding).unwrap()
    }

    #[test]
    fn scan_load_appears_in_frame_one() {
        let (nl, cka, ckb) = two_domain();
        let model = model_of(&nl, cka, ckb);
        let spec = FrameSpec::new("p", vec![CycleSpec::pulsing(&[0, 1])]);
        let mut p = Pattern::empty(&model, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::Zero];
        let g = simulate_good(&model, &spec, &[p]);
        let fa = nl.find("fa").unwrap();
        let fb = nl.find("fb").unwrap();
        assert_eq!(g.frames[0][fa.index()].slot(0), Logic::One);
        assert_eq!(g.frames[0][fb.index()].slot(0), Logic::Zero);
    }

    #[test]
    fn only_pulsed_domain_captures() {
        let (nl, cka, ckb) = two_domain();
        let model = model_of(&nl, cka, ckb);
        // Pulse only domain B: fb captures !fa, fa holds.
        let spec = FrameSpec::new("p", vec![CycleSpec::pulsing(&[1])]);
        let mut p = Pattern::empty(&model, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::One];
        p.pis[0] = vec![Logic::Zero]; // d
        let g = simulate_good(&model, &spec, &[p]);
        // states[1]: fa held (1), fb captured !1 = 0.
        assert_eq!(g.states[1][0].slot(0), Logic::One);
        assert_eq!(g.states[1][1].slot(0), Logic::Zero);
    }

    #[test]
    fn two_frames_chain_captures() {
        let (nl, cka, ckb) = two_domain();
        let model = model_of(&nl, cka, ckb);
        // Frame 1: pulse A (fa <- d); frame 2: pulse B (fb <- !fa).
        let spec = FrameSpec::new(
            "p",
            vec![CycleSpec::pulsing(&[0]), CycleSpec::pulsing(&[1])],
        )
        .hold_pi(true);
        let mut p = Pattern::empty(&model, &spec, 0);
        p.scan_load = vec![Logic::Zero, Logic::Zero];
        p.pis[0] = vec![Logic::One]; // d=1
        let g = simulate_good(&model, &spec, &[p]);
        assert_eq!(g.states[1][0].slot(0), Logic::One); // fa captured d
        assert_eq!(g.states[2][1].slot(0), Logic::Zero); // fb captured !fa
    }

    #[test]
    fn non_scan_flops_start_x() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let nf = b.dff(d, clk);
        let g = b.buf(nf);
        b.output("q", g);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("p", vec![CycleSpec::pulsing(&[0]); 2]);
        let mut p = Pattern::empty(&model, &spec, 0);
        for f in &mut p.pis {
            f[0] = Logic::One;
        }
        let gb = simulate_good(&model, &spec, &[p]);
        // Frame 1 sees X (uninitialized), frame 2 sees the captured 1.
        assert_eq!(gb.frames[0][nf.index()].slot(0), Logic::X);
        assert_eq!(gb.frames[1][nf.index()].slot(0), Logic::One);
    }

    #[test]
    fn batch_slots_are_independent() {
        let (nl, cka, ckb) = two_domain();
        let model = model_of(&nl, cka, ckb);
        let spec = FrameSpec::new("p", vec![CycleSpec::pulsing(&[0, 1])]);
        let mut p0 = Pattern::empty(&model, &spec, 0);
        p0.scan_load = vec![Logic::One, Logic::Zero];
        let mut p1 = Pattern::empty(&model, &spec, 0);
        p1.scan_load = vec![Logic::Zero, Logic::Zero];
        let g = simulate_good(&model, &spec, &[p0, p1]);
        assert_eq!(g.valid_mask, 0b11);
        let fa = nl.find("fa").unwrap();
        assert_eq!(g.frames[0][fa.index()].slot(0), Logic::One);
        assert_eq!(g.frames[0][fa.index()].slot(1), Logic::Zero);
    }

    #[test]
    fn incremental_hold_pi_frames_match_full_eval() {
        // The same multi-frame procedure with and without hold_pi, fed
        // identical per-frame PI values: the incremental path (hold_pi)
        // must produce exactly the frames of the full re-eval path.
        let (nl, cka, ckb) = two_domain();
        let model = model_of(&nl, cka, ckb);
        let hold = FrameSpec::new("h", vec![CycleSpec::pulsing(&[0, 1]); 3]).hold_pi(true);
        let free = FrameSpec::new("f", vec![CycleSpec::pulsing(&[0, 1]); 3]);

        let mut ph = Pattern::empty(&model, &hold, 0);
        ph.scan_load = vec![Logic::One, Logic::Zero];
        ph.pis[0] = vec![Logic::One];
        let mut pf = Pattern::empty(&model, &free, 0);
        pf.scan_load = vec![Logic::One, Logic::Zero];
        for f in &mut pf.pis {
            f[0] = Logic::One; // same value every frame
        }

        let gh = simulate_good(&model, &hold, &[ph]);
        let gf = simulate_good(&model, &free, &[pf]);
        assert_eq!(gh.frames, gf.frames);
        assert_eq!(gh.states, gf.states);
    }
}
