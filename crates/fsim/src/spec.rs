//! Capture-procedure frame specifications.
//!
//! A [`FrameSpec`] is the ATPG-facing contract of a *named capture
//! procedure* (paper §4): a short behavioural description of what the
//! on-chip clock generation will do after scan load — how many cycles,
//! which clock domains pulse in each cycle, whether primary inputs may
//! change between cycles and whether primary outputs are strobed.

use std::fmt;

/// Index of a functional clock domain (dense, assigned by the model).
pub type DomainId = usize;

/// One capture cycle: the set of domains that receive a clock pulse.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CycleSpec {
    /// Domains pulsed in this cycle (simultaneously, as synchronous
    /// domains driven from one PLL would be).
    pub pulses: Vec<DomainId>,
}

impl CycleSpec {
    /// A cycle pulsing exactly the given domains.
    pub fn pulsing(domains: &[DomainId]) -> Self {
        CycleSpec {
            pulses: domains.to_vec(),
        }
    }

    /// True if `domain` is pulsed in this cycle.
    pub fn pulses_domain(&self, domain: DomainId) -> bool {
        self.pulses.contains(&domain)
    }
}

/// A capture procedure: the cycles applied between scan load and scan
/// unload, plus the observation/constraint flags the clocking mode
/// imposes.
///
/// # Examples
///
/// ```
/// use occ_fsim::{FrameSpec, CycleSpec};
///
/// // The paper's simple CPF: exactly two pulses in one domain, outputs
/// // masked, inputs held.
/// let spec = FrameSpec::new("cpf_dom0_2pulse", vec![
///     CycleSpec::pulsing(&[0]),
///     CycleSpec::pulsing(&[0]),
/// ])
/// .hold_pi(true)
/// .observe_po(false);
/// assert_eq!(spec.frames(), 2);
/// assert_eq!(spec.capture_frame(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSpec {
    name: String,
    cycles: Vec<CycleSpec>,
    hold_pi: bool,
    observe_po: bool,
    po_observe_frames: Vec<usize>,
}

impl FrameSpec {
    /// Creates a procedure from its capture cycles (frame 1 first).
    ///
    /// Defaults: PIs free per frame, POs observed at every frame.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is empty.
    pub fn new(name: &str, cycles: Vec<CycleSpec>) -> Self {
        assert!(!cycles.is_empty(), "a capture procedure needs >=1 cycle");
        let n = cycles.len();
        FrameSpec {
            name: name.to_owned(),
            cycles,
            hold_pi: false,
            observe_po: true,
            po_observe_frames: (1..=n).collect(),
        }
    }

    /// Sets whether primary inputs are held constant across all frames
    /// (required whenever launch/capture run at speed — the ATE cannot
    /// switch pins between at-speed edges).
    pub fn hold_pi(mut self, hold: bool) -> Self {
        self.hold_pi = hold;
        self
    }

    /// Sets whether primary outputs are observable. When disabled the
    /// strobe list becomes empty (the "mask outputs" constraint of the
    /// on-chip clocking modes); when enabled POs are strobed at the
    /// final frame.
    pub fn observe_po(mut self, observe: bool) -> Self {
        self.observe_po = observe;
        self.po_observe_frames = if observe {
            vec![self.cycles.len()]
        } else {
            Vec::new()
        };
        self
    }

    /// Explicitly sets the frames (1-based) at which POs are strobed.
    ///
    /// # Panics
    ///
    /// Panics if any frame index is out of range.
    pub fn with_po_frames(mut self, frames: &[usize]) -> Self {
        for &fr in frames {
            assert!(fr >= 1 && fr <= self.cycles.len(), "PO frame out of range");
        }
        self.observe_po = !frames.is_empty();
        self.po_observe_frames = frames.to_vec();
        self
    }

    /// The procedure name (used in pattern files and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of capture cycles.
    pub fn frames(&self) -> usize {
        self.cycles.len()
    }

    /// The cycles in order (frame 1 first).
    pub fn cycles(&self) -> &[CycleSpec] {
        &self.cycles
    }

    /// The 1-based frame treated as the at-speed capture frame — always
    /// the last cycle; the launch frame is the one before it.
    pub fn capture_frame(&self) -> usize {
        self.cycles.len()
    }

    /// True when primary inputs must hold one value across all frames.
    pub fn holds_pi(&self) -> bool {
        self.hold_pi
    }

    /// True when any PO strobes exist.
    pub fn observes_po(&self) -> bool {
        self.observe_po
    }

    /// Frames (1-based) at which primary outputs are strobed.
    pub fn po_observe_frames(&self) -> &[usize] {
        &self.po_observe_frames
    }

    /// Convenience: a single cycle pulsing the given domains with free
    /// PIs and observed POs — the external-clock stuck-at procedure.
    pub fn external_stuck_at(domains: &[DomainId]) -> Self {
        FrameSpec::new("external_sa", vec![CycleSpec::pulsing(domains)])
    }

    /// Convenience: `n` cycles all pulsing the given domains.
    pub fn broadside(name: &str, domains: &[DomainId], n: usize) -> Self {
        assert!(n >= 2, "broadside needs at least launch + capture");
        FrameSpec::new(name, vec![CycleSpec::pulsing(domains); n])
    }
}

impl fmt::Display for FrameSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.name)?;
        for (i, c) in self.cycles.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{:?}", c.pulses)?;
        }
        write!(
            f,
            "]{}{}",
            if self.hold_pi { " hold-pi" } else { "" },
            if self.observe_po { "" } else { " mask-po" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_flags() {
        let s = FrameSpec::broadside("b", &[0, 1], 3)
            .hold_pi(true)
            .observe_po(false);
        assert_eq!(s.frames(), 3);
        assert!(s.holds_pi());
        assert!(!s.observes_po());
        assert!(s.po_observe_frames().is_empty());
        assert!(s.cycles()[2].pulses_domain(1));
    }

    #[test]
    fn stuck_at_default_observes_every_frame() {
        let s = FrameSpec::external_stuck_at(&[0]);
        assert_eq!(s.po_observe_frames(), &[1]);
        assert_eq!(s.capture_frame(), 1);
    }

    #[test]
    fn explicit_po_frames() {
        let s = FrameSpec::broadside("b", &[0], 4).with_po_frames(&[2, 4]);
        assert_eq!(s.po_observe_frames(), &[2, 4]);
        assert!(s.observes_po());
    }

    #[test]
    #[should_panic(expected = "PO frame out of range")]
    fn po_frame_bounds_checked() {
        let _ = FrameSpec::broadside("b", &[0], 2).with_po_frames(&[3]);
    }

    #[test]
    fn display_summarizes() {
        let s = FrameSpec::broadside("x", &[0], 2)
            .hold_pi(true)
            .observe_po(false);
        let text = s.to_string();
        assert!(text.contains("x ["));
        assert!(text.contains("hold-pi"));
        assert!(text.contains("mask-po"));
    }
}
