//! The per-cell timing view the timed PPSFP detect path reads.
//!
//! The fault simulator itself knows nothing about delay models or
//! static timing — `occ-timing` compiles a
//! [`DelayModel`](https://docs.rs/occ-sim) into a flat per-cell delay
//! table, runs its STA over the same [`SimGraph`](crate::SimGraph) and
//! hands the kernel this minimal read-only view: one propagation delay
//! and one good-machine settle (arrival) time per cell, both in
//! picoseconds.
//!
//! With a view attached (see [`FaultSim::attach_timing`]
//! (crate::FaultSim::attach_timing)), [`FaultSim::detect`]
//! (crate::FaultSim::detect) additionally records, per detected fault,
//! the longest sensitized propagation path — the latest arrival of the
//! fault difference at any detecting scan flop or observed primary
//! output. Detection masks are unaffected; the timed annotations are
//! strictly additive.

/// Picosecond timestamps, matching `occ_sim::Time`.
pub type TimePs = u64;

/// Flat per-cell propagation timing, indexed by cell index.
#[derive(Debug, Clone)]
pub struct SimTiming {
    delay_ps: Vec<TimePs>,
    arrival_ps: Vec<TimePs>,
}

impl SimTiming {
    /// Builds a view from a per-cell delay table and per-cell settle
    /// (arrival) times.
    ///
    /// # Panics
    ///
    /// Panics if the two tables disagree on the cell count.
    pub fn new(delay_ps: Vec<TimePs>, arrival_ps: Vec<TimePs>) -> Self {
        assert_eq!(
            delay_ps.len(),
            arrival_ps.len(),
            "delay and arrival tables must cover the same cells"
        );
        SimTiming {
            delay_ps,
            arrival_ps,
        }
    }

    /// Number of cells covered.
    #[inline]
    pub fn cells(&self) -> usize {
        self.delay_ps.len()
    }

    /// Propagation delay of one cell.
    #[inline]
    pub fn delay(&self, cell: usize) -> TimePs {
        self.delay_ps[cell]
    }

    /// Good-machine settle time of one cell's output, measured from the
    /// launch clock edge.
    #[inline]
    pub fn arrival(&self, cell: usize) -> TimePs {
        self.arrival_ps[cell]
    }
}
