//! # occ-core — on-chip test clock generation (the paper's contribution)
//!
//! Implements the logic design published in *Beck, Barondeau, Kaibel,
//! Poehl (Infineon), Lin, Press (Mentor) — "Logic Design for On-Chip
//! Test Clock Generation: Implementation Details and Impact on Delay
//! Test Quality", DATE 2005*:
//!
//! * [`ClockPulseFilter`] — the ten-gate CPF of the paper's Figure 3:
//!   a `scan_en`-cleared trigger flop, a five-bit shift register clocked
//!   by the PLL, a window decode and a glitch-free clock-gating cell,
//!   muxed with the slow external scan clock. After `scan_en` falls and
//!   one `scan_clk` trigger pulse is applied, **exactly two** at-speed
//!   PLL pulses reach `clk_out` (Figure 4).
//! * [`EnhancedCpf`] — the paper's experiment-(d) enhancement:
//!   programmable 2/3/4-pulse bursts and a start-offset that staggers
//!   two domains for inter-domain launch/capture.
//! * [`Pll`] — the functional PLL model that multiplies the slow
//!   reference clock into per-domain high-speed clocks.
//! * [`CpfBehavior`] — the cycle-level behavioural model of the CPF,
//!   checked against the gate-level implementation by simulation
//!   (the basis of *named capture procedures*).
//! * [`ClockingMode`] / [`transition_procedures`] — the named capture
//!   procedures each Table 1 experiment (a)–(e) offers to ATPG.
//! * [`AteExpansion`] — converts a capture procedure into the concrete
//!   `scan_en`/`scan_clk` pin waveforms the ATE applies (the paper:
//!   "when the patterns are saved for ATE, the internal clock pulses
//!   are converted to the corresponding primary input signals").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ate;
mod behavior;
mod clock;
mod cpf;
mod enhanced;
mod ncp;

pub use ate::{AteExpansion, AteTiming};
pub use behavior::CpfBehavior;
pub use clock::{ClockDomainSpec, Pll, PllConfig};
pub use cpf::{ClockPulseFilter, CpfConfig, CpfPorts};
pub use enhanced::{EnhancedCpf, EnhancedCpfConfig, EnhancedCpfPorts, PulseSelect};
pub use ncp::{
    at_speed_crossings, capture_window_ps, stuck_at_procedures, transition_procedures,
    AtSpeedCrossing, ClockingMode, ParseClockingModeError,
};
