//! ATPG engine equivalence sweep: [`ReferencePodem`] and
//! [`CompiledPodem`] must produce **identical** `PodemOutcome`s for
//! every fault, and identical end-to-end ATPG results (fault statuses,
//! pattern sets, coverage, run counters) on seeded SOCs across all
//! four clocking modes and both fault models.
//!
//! The compiled engine replaces only the value engine (incremental
//! [`occ::atpg::DualGraphSim`] instead of the re-allocating
//! `DualSim`) and the lookup tables — the search itself is a
//! line-for-line translation, so any divergence here is a bug, not a
//! heuristic difference.

use occ::atpg::{
    run_atpg, AtpgEngine, AtpgOptions, CompiledPodem, Observability, PodemOutcome, ReferencePodem,
};
use occ::core::ClockingMode;
use occ::fault::{FaultModel, FaultUniverse};
use occ::flow::{AtpgEngineChoice, EngineChoice, FaultKind, TestFlow};
use occ::fsim::{CaptureModel, FaultSim};
use occ::soc::{generate, SocConfig};

const MODES: [ClockingMode; 4] = [
    ClockingMode::ExternalClock { max_pulses: 4 },
    ClockingMode::SimpleCpf,
    ClockingMode::EnhancedCpf { max_pulses: 4 },
    ClockingMode::ConstrainedExternal { max_pulses: 4 },
];

/// Per-fault outcome identity: both engines run a strided sample of
/// the fault universe under every capture procedure of the mode, and
/// the outcomes (including the exact pattern bits of found tests) must
/// be equal. (Exhaustive per-fault identity on random circuits is
/// separately pinned by `crates/atpg/tests/brute_force.rs`; the stride
/// keeps this seeded-SOC sweep inside the tier-1 budget.)
const FAULT_STRIDE: usize = 8;

#[test]
fn per_fault_outcomes_identical() {
    let soc = generate(&SocConfig::tiny(5));
    for mode in MODES {
        for fault_model in [FaultKind::StuckAt, FaultKind::Transition] {
            let model =
                CaptureModel::new(soc.netlist(), soc.binding(true)).expect("generated SOC binds");
            let procedures = match fault_model {
                FaultModel::StuckAt => occ::core::stuck_at_procedures(mode, model.domain_count()),
                FaultModel::Transition => {
                    occ::core::transition_procedures(mode, model.domain_count())
                }
            };
            let universe = match fault_model {
                FaultModel::StuckAt => FaultUniverse::stuck_at(soc.netlist()),
                FaultModel::Transition => FaultUniverse::transition(soc.netlist()),
            };
            let mut reference = ReferencePodem::new(&model);
            let mut compiled = CompiledPodem::new(&model);
            let mut checked = 0usize;
            let mut found = 0usize;
            for spec in &procedures {
                let obs = Observability::compute(&model, spec);
                for &fault in universe.faults().iter().step_by(FAULT_STRIDE) {
                    let a = reference.run(spec, &obs, fault, 32);
                    let b = AtpgEngine::run(&mut compiled, spec, &obs, fault, 32);
                    assert_eq!(
                        a,
                        b,
                        "engines diverge: {mode:?} {fault_model:?} {} {fault}",
                        spec.name()
                    );
                    checked += 1;
                    if matches!(a, PodemOutcome::Test(_)) {
                        found += 1;
                    }
                }
            }
            assert!(checked > 0, "no faults checked for {mode:?}");
            assert!(
                found > 0 || procedures.is_empty(),
                "degenerate sweep: no tests found for {mode:?} {fault_model:?}"
            );
            // Identical outcomes imply identical decision counts.
            let ra = AtpgEngine::kernel_stats(&reference);
            let rb = AtpgEngine::kernel_stats(&compiled);
            assert_eq!(ra.decisions, rb.decisions, "{mode:?} {fault_model:?}");
            assert_eq!(ra.backtracks, rb.backtracks, "{mode:?} {fault_model:?}");
        }
    }
}

/// End-to-end identity through `run_atpg`: same coverage, same fault
/// statuses, same pattern sets, same run counters.
#[test]
fn full_atpg_runs_identical() {
    let soc = generate(&SocConfig::tiny(9));
    let model = CaptureModel::new(soc.netlist(), soc.binding(true)).expect("generated SOC binds");
    for mode in [
        ClockingMode::SimpleCpf,
        ClockingMode::EnhancedCpf { max_pulses: 4 },
    ] {
        let procedures = occ::core::transition_procedures(mode, model.domain_count());
        let universe = FaultUniverse::transition(soc.netlist());
        let options = AtpgOptions {
            random_patterns: 32,
            backtrack_limit: 24,
            ..AtpgOptions::default()
        };

        let mut fsim_a = FaultSim::new(&model);
        let mut ref_podem = ReferencePodem::new(&model);
        let a = run_atpg(
            &model,
            &procedures,
            universe.clone(),
            &options,
            &mut fsim_a,
            &mut ref_podem,
        );

        let mut fsim_b = FaultSim::new(&model);
        let mut comp_podem = CompiledPodem::new(&model);
        let b = run_atpg(
            &model,
            &procedures,
            universe,
            &options,
            &mut fsim_b,
            &mut comp_podem,
        );

        assert_eq!(a.report(), b.report(), "{mode:?}");
        assert_eq!(a.stats, b.stats, "{mode:?}");
        assert_eq!(a.patterns.len(), b.patterns.len(), "{mode:?}");
        for (pa, pb) in a.patterns.patterns().iter().zip(b.patterns.patterns()) {
            assert_eq!(pa, pb, "{mode:?}");
        }
        for (fault, status) in a.faults.iter() {
            assert_eq!(status, b.faults.status(fault), "{mode:?} fault {fault}");
        }
    }
}

/// The `TestFlow` surface: the `atpg_engine` selector changes only the
/// label and the kernel stats, never the report numbers — across all
/// four clocking modes and both fault models.
#[test]
fn flows_identical_across_atpg_engines() {
    let soc = generate(&SocConfig::tiny(3));
    let quick = AtpgOptions {
        random_patterns: 32,
        backtrack_limit: 16,
        ..AtpgOptions::default()
    };
    for mode in MODES {
        for fault_model in [FaultKind::StuckAt, FaultKind::Transition] {
            let run = |engine: AtpgEngineChoice| {
                TestFlow::new(&soc)
                    .clocking(mode)
                    .fault_model(fault_model)
                    .mask_bidi(true)
                    .engine(EngineChoice::Serial)
                    .atpg_engine(engine)
                    .atpg(quick.clone())
                    .run()
                    .expect("flow runs")
            };
            let reference = run(AtpgEngineChoice::Reference);
            let compiled = run(AtpgEngineChoice::Compiled);
            assert_eq!(
                reference.coverage, compiled.coverage,
                "{mode:?} {fault_model:?}"
            );
            assert_eq!(
                reference.result.stats, compiled.result.stats,
                "{mode:?} {fault_model:?}"
            );
            assert_eq!(
                reference.patterns(),
                compiled.patterns(),
                "{mode:?} {fault_model:?}"
            );
            assert_eq!(reference.atpg_engine, "reference");
            assert_eq!(compiled.atpg_engine, "compiled");
            assert_eq!(
                reference.atpg_kernel.decisions, compiled.atpg_kernel.decisions,
                "{mode:?} {fault_model:?}"
            );
            // The compiled engine actually ran incrementally: one full
            // sim per PODEM run, the rest changed-cone updates.
            if compiled.atpg_kernel.decisions > 0 {
                assert!(
                    compiled.atpg_kernel.incremental_resims > 0,
                    "compiled engine never re-simulated incrementally ({mode:?})"
                );
                assert!(compiled.atpg_kernel.events > 0);
            }
        }
    }
}
