//! Per-rule fixtures: each broken design triggers exactly its rule,
//! each clean twin stays silent, the Table-1 SOC passes the deny gate,
//! and the `L007` untestability verdict is checked against the actual
//! engines — brute-force packed simulation and a full PODEM run may
//! never contradict a statically proven untestable fault. Finally the
//! lint-pruned ATPG run must be byte-identical to the unpruned run
//! while skipping at least one PODEM search.

use occ_atpg::{run_atpg, run_atpg_preclassified, AtpgOptions, AtpgResult, CompiledPodem};
use occ_core::{stuck_at_procedures, ClockingMode};
use occ_dft::{insert_scan, ScanConfig};
use occ_fault::{FaultStatus, FaultUniverse};
use occ_fsim::{
    simulate_good, CaptureModel, ClockBinding, CycleSpec, FaultSim, FrameSpec, Pattern,
};
use occ_lint::{check_netlist, LintGate, Linter, RuleId, Severity};
use occ_netlist::{Logic, Netlist, NetlistBuilder};
use occ_soc::{generate, SocConfig};

/// Asserts every diagnostic in `diags` fired for `rule`, and at least
/// one did.
fn assert_only_rule(diags: &[occ_lint::Diagnostic], rule: RuleId) {
    assert!(!diags.is_empty(), "expected {rule} to fire");
    for d in diags {
        assert_eq!(d.rule, rule, "unexpected co-firing diagnostic: {d}");
        assert_eq!(d.severity, rule.severity());
    }
}

#[test]
fn l001_comb_loop_through_latch() {
    // Broken: latch data pin fed from a gate that reads the latch —
    // transparent while en=0, so the loop is combinationally closed
    // even though the levelizer (which treats the latch as
    // sequential) accepts the netlist.
    let mut b = NetlistBuilder::new("loop");
    let d = b.input("d");
    let en = b.input("en");
    let l = b.latch_low(d, en);
    let g = b.and2(l, d);
    b.set_input(l, 0, g);
    b.output("q", l);
    let nl = b.finish().unwrap();
    assert_only_rule(&check_netlist(&nl), RuleId::CombLoop);

    // Clean twin: same cells, loop not closed.
    let mut b = NetlistBuilder::new("no_loop");
    let d = b.input("d");
    let en = b.input("en");
    let l = b.latch_low(d, en);
    let g = b.and2(l, d);
    b.output("q", g);
    let nl = b.finish().unwrap();
    assert!(check_netlist(&nl).is_empty());
}

#[test]
fn l002_floating_net() {
    // Broken twice over: a gate driving no load, and a TieX source
    // driving live logic.
    let mut b = NetlistBuilder::new("float");
    let a = b.input("a");
    let c = b.input("c");
    let g = b.and2(a, c);
    let _dead = b.or2(a, c);
    let t = b.tiex();
    let riding = b.xor2(g, t);
    b.output("q", riding);
    let nl = b.finish().unwrap();
    let diags = check_netlist(&nl);
    assert_only_rule(&diags, RuleId::FloatingNet);
    assert_eq!(diags.len(), 2, "dead gate + TieX source: {diags:?}");

    // Clean twin: every driver loaded, no uncontrolled source.
    let mut b = NetlistBuilder::new("solid");
    let a = b.input("a");
    let c = b.input("c");
    let g = b.and2(a, c);
    b.output("q", g);
    let nl = b.finish().unwrap();
    assert!(check_netlist(&nl).is_empty());
}

#[test]
fn l003_duplicate_name() {
    let mut b = NetlistBuilder::new("dup");
    let a = b.input("a");
    let g1 = b.buf(a);
    b.name_cell(g1, "u1");
    let g2 = b.not(a);
    b.name_cell(g2, "u1");
    b.output("q1", g1);
    b.output("q2", g2);
    let nl = b.finish().unwrap();
    let diags = check_netlist(&nl);
    assert_only_rule(&diags, RuleId::DuplicateName);
    assert_eq!(diags.len(), 1);

    // Clean twin: distinct names.
    let mut b = NetlistBuilder::new("uniq");
    let a = b.input("a");
    let g1 = b.buf(a);
    b.name_cell(g1, "u1");
    let g2 = b.not(a);
    b.name_cell(g2, "u2");
    b.output("q1", g1);
    b.output("q2", g2);
    let nl = b.finish().unwrap();
    assert!(check_netlist(&nl).is_empty());
}

#[test]
fn l004_non_scan_capture() {
    let mut b = NetlistBuilder::new("nonscan");
    let clk = b.input("clk");
    let d = b.input("d");
    let f = b.dff(d, clk);
    b.output("q", f);
    let nl = b.finish().unwrap();
    let mut binding = ClockBinding::new();
    binding.add_domain("c", clk);
    let model = CaptureModel::new(&nl, binding).unwrap();
    let report = Linter::new(&model).run();
    assert_only_rule(&report.diagnostics, RuleId::NonScanCapture);
    assert_eq!(report.diagnostics.len(), 1);
    // A warning: reports, but never denies.
    assert!(report.passes(LintGate::Deny));
}

/// Two-domain rig with one comb path from domain `a` into domain `b`.
fn cdc_rig() -> (Netlist, occ_netlist::CellId, occ_netlist::CellId) {
    let mut b = NetlistBuilder::new("cdc");
    let clka = b.input("clka");
    let clkb = b.input("clkb");
    let se = b.input("se");
    let si = b.input("si");
    let d = b.input("d");
    let f0 = b.sdff(d, clka, se, si);
    let g = b.not(f0);
    let f1 = b.sdff(g, clkb, se, f0);
    b.output("q", f1);
    (b.finish().unwrap(), clka, clkb)
}

#[test]
fn l005_cdc_at_speed_fires_only_under_at_speed_modes() {
    let (nl, clka, clkb) = cdc_rig();
    let bind = || {
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clka);
        binding.add_domain("b", clkb);
        binding
    };

    // Enhanced CPF pulses different domains back-to-back: the a→b
    // path is exercised at speed (and only a→b — nothing crosses
    // b→a), so exactly one diagnostic fires.
    let model = CaptureModel::new(&nl, bind()).unwrap();
    let report = Linter::new(&model)
        .mode(ClockingMode::EnhancedCpf { max_pulses: 2 })
        .run();
    assert_only_rule(&report.diagnostics, RuleId::CdcAtSpeed);
    assert_eq!(report.diagnostics.len(), 1);

    // Clean twins: modes that never pulse two domains back-to-back.
    for mode in [
        ClockingMode::SimpleCpf,
        ClockingMode::ExternalClock { max_pulses: 2 },
    ] {
        let report = Linter::new(&model).mode(mode).run();
        assert!(
            report.diagnostics.is_empty(),
            "{mode:?} must not flag the crossing: {:?}",
            report.diagnostics
        );
    }
}

/// A plain two-flop design, scan-stitched into one chain.
fn scanned_pair() -> (
    occ_dft::ScanChains,
    occ_netlist::CellId,
    occ_netlist::CellId,
) {
    let mut b = NetlistBuilder::new("pair");
    let clk = b.input("clk");
    let d = b.input("d");
    let f0 = b.dff(d, clk);
    let f1 = b.dff(f0, clk);
    b.output("q", f1);
    let nl = b.finish().unwrap();
    let chains = insert_scan(&nl, &ScanConfig::new(1)).unwrap();
    (chains, clk, d)
}

#[test]
fn l006_scan_chain_breaks() {
    // Break 1: the second chain flop's scan-in rewired off the chain
    // order (pin 3 of an Sdff is si).
    let (chains, clk, d) = scanned_pair();
    let victim = chains.chains()[0][1];
    let mut b = NetlistBuilder::from_netlist(chains.netlist());
    b.set_input(victim, 3, d);
    let tampered = b.finish().unwrap();
    let mut binding = ClockBinding::new();
    binding.add_domain("c", clk);
    let model = CaptureModel::new(&tampered, binding).unwrap();
    let report = Linter::new(&model).chains(&chains).run();
    assert_only_rule(&report.diagnostics, RuleId::ScanChain);
    assert!(!report.passes(LintGate::Deny), "chain breaks must deny");
    assert!(report.passes(LintGate::Warn));
    assert_eq!(report.first_error().unwrap().rule, RuleId::ScanChain);

    // Break 2: a flop's scan-enable off the global enable (pin 2).
    let (chains, clk, d) = scanned_pair();
    let victim = chains.chains()[0][0];
    let mut b = NetlistBuilder::from_netlist(chains.netlist());
    b.set_input(victim, 2, d);
    let tampered = b.finish().unwrap();
    let mut binding = ClockBinding::new();
    binding.add_domain("c", clk);
    let model = CaptureModel::new(&tampered, binding).unwrap();
    let report = Linter::new(&model).chains(&chains).run();
    assert_only_rule(&report.diagnostics, RuleId::ScanChain);

    // Clean twin: the untampered stitch lints silent.
    let (chains, clk, _) = scanned_pair();
    let mut binding = ClockBinding::new();
    binding.add_domain("c", clk);
    let model = CaptureModel::new(chains.netlist(), binding).unwrap();
    let report = Linter::new(&model).chains(&chains).run();
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn l008_x_source_reaching_misr_observation_cone() {
    // Broken: a TieX and an uninitialized non-scan flop both feed,
    // through combinational logic, the D pin of a scan flop — any
    // MISR compacting that flop's unload captures an unbounded X.
    // The same cells trip L002 (uncontrolled source) and L004
    // (non-scan capture), so the assertions filter for L008.
    let mut b = NetlistBuilder::new("xsrc");
    let clk = b.input("clk");
    let se = b.input("se");
    let si = b.input("si");
    let d = b.input("d");
    let t = b.tiex();
    let nsf = b.dff(d, clk);
    let g = b.xor2(t, nsf);
    let f = b.sdff(g, clk, se, si);
    b.output("q", f);
    let nl = b.finish().unwrap();
    let mut binding = ClockBinding::new();
    binding.add_domain("c", clk);
    binding.constrain(nl.find("se").unwrap(), Logic::Zero);
    binding.mask(nl.find("si").unwrap());
    let model = CaptureModel::new(&nl, binding).unwrap();
    let report = Linter::new(&model).run();
    let l008: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|diag| diag.rule == RuleId::XSource)
        .collect();
    assert_eq!(l008.len(), 2, "TieX + uninitialized flop: {l008:?}");
    for diag in &l008 {
        assert_eq!(diag.severity, Severity::Warning);
    }
    // A warning for external-ATPG flows (X-fill tolerates it), fatal
    // only for signature-based sources — so it reports, never denies.
    assert!(report.passes(LintGate::Deny));

    // Clean twin: the same X-sources exist but only reach a primary
    // output; the scan flop's capture cone stays X-free, so a MISR
    // observing it is safe and L008 stays silent.
    let mut b = NetlistBuilder::new("xbounded");
    let clk = b.input("clk");
    let se = b.input("se");
    let si = b.input("si");
    let d = b.input("d");
    let a = b.input("a");
    let t = b.tiex();
    let nsf = b.dff(d, clk);
    let g = b.xor2(t, nsf);
    b.output("po", g);
    let f = b.sdff(a, clk, se, si);
    b.output("q", f);
    let nl = b.finish().unwrap();
    let mut binding = ClockBinding::new();
    binding.add_domain("c", clk);
    binding.constrain(nl.find("se").unwrap(), Logic::Zero);
    binding.mask(nl.find("si").unwrap());
    let model = CaptureModel::new(&nl, binding).unwrap();
    let report = Linter::new(&model).run();
    assert!(
        report
            .diagnostics
            .iter()
            .all(|diag| diag.rule != RuleId::XSource),
        "PO-only X-sources must not fire L008: {:?}",
        report.diagnostics
    );
}

/// The ATPG test rig: four scan flops, two free PIs, scan enable
/// constrained to functional mode and scan-in masked — which makes
/// every fault on those control nets statically untestable (their
/// activation value is unproducible under capture conditions).
fn atpg_rig() -> (Netlist, occ_netlist::CellId) {
    let mut b = NetlistBuilder::new("t");
    let clk = b.input("clk");
    let se = b.input("se");
    let si = b.input("si");
    let a = b.input("a");
    let c = b.input("b");
    let f0 = b.sdff(a, clk, se, si);
    let f1 = b.sdff(c, clk, se, f0);
    let g1 = b.and2(f0, f1);
    let g2 = b.xor2(g1, c);
    let f2 = b.sdff(g2, clk, se, f1);
    let g3 = b.nor2(f2, g1);
    let f3 = b.sdff(g3, clk, se, f2);
    b.output("po", g3);
    b.output("q", f3);
    (b.finish().unwrap(), clk)
}

fn rig_binding(nl: &Netlist, clk: occ_netlist::CellId) -> ClockBinding {
    let mut binding = ClockBinding::new();
    binding.add_domain("c", clk);
    binding.constrain(nl.find("se").unwrap(), Logic::Zero);
    binding.mask(nl.find("si").unwrap());
    binding
}

#[test]
fn l007_untestable_never_contradicted_by_brute_force_or_podem() {
    let (nl, clk) = atpg_rig();
    let model = CaptureModel::new(&nl, rig_binding(&nl, clk)).unwrap();
    let universe = FaultUniverse::stuck_at(&nl);
    let report = Linter::new(&model).run_with_universe(&universe);
    assert_only_rule(&report.diagnostics, RuleId::Untestable);
    assert_eq!(report.diagnostics.len(), report.untestable.len());
    assert!(report.count_severity(Severity::Info) > 0);
    // Info diagnostics never gate.
    assert!(report.passes(LintGate::Deny));

    // Brute force: all 2^6 (4 scan bits + 2 free PIs) patterns in one
    // packed batch — no engine may ever detect a proven fault.
    let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
    let mut patterns = Vec::with_capacity(64);
    for bits in 0u32..64 {
        let mut p = Pattern::empty(&model, &spec, 0);
        for (i, v) in p.scan_load.iter_mut().enumerate() {
            *v = Logic::from_bool(bits & (1 << i) != 0);
        }
        for (i, v) in p.pis[0].iter_mut().enumerate() {
            *v = Logic::from_bool(bits & (1 << (4 + i)) != 0);
        }
        patterns.push(p);
    }
    let good = simulate_good(&model, &spec, &patterns);
    let masks = FaultSim::new(&model).detect_many(&spec, &good, &report.untestable);
    for (fault, mask) in report.untestable.iter().zip(&masks) {
        assert_eq!(*mask, 0, "brute force detected 'untestable' {fault}");
    }

    // Full ATPG (no pre-classification): no completed run may end a
    // proven fault in a detected state.
    let mut engine = FaultSim::new(&model);
    let mut podem = CompiledPodem::new(&model);
    let result = run_atpg(
        &model,
        std::slice::from_ref(&spec),
        universe,
        &AtpgOptions::default(),
        &mut engine,
        &mut podem,
    );
    for &fault in &report.untestable {
        assert!(
            !result.faults.status(fault).is_detected(),
            "ATPG detected statically 'untestable' {fault}"
        );
    }
}

/// One small generated SOC, linted exactly as `TestFlow` wires it.
fn lint_soc(
    soc: &occ_soc::Soc,
    model: &CaptureModel<'_>,
    universe: &FaultUniverse,
) -> occ_lint::LintReport {
    Linter::new(model)
        .mode(ClockingMode::EnhancedCpf { max_pulses: 3 })
        .chains(soc.chains())
        .run_with_universe(universe)
}

#[test]
fn generated_soc_is_deny_clean() {
    // The Table-1 device model must admit itself: warnings are
    // expected (non-scan islands, CDC paths), errors are not.
    let soc = generate(&SocConfig::tiny(3));
    let model = CaptureModel::new(soc.netlist(), soc.binding(true)).unwrap();
    let universe = FaultUniverse::stuck_at(soc.netlist());
    let report = lint_soc(&soc, &model, &universe);
    assert!(
        report.passes(LintGate::Deny),
        "SOC must be deny-clean; first error: {:?}",
        report.first_error()
    );
    assert_eq!(report.errors(), 0);
    assert_eq!(report.cells_scanned, soc.netlist().len());
    assert_eq!(report.faults_scanned, universe.faults().len());
}

fn assert_identical_runs(pruned: &AtpgResult, plain: &AtpgResult) {
    assert_eq!(
        pruned.report().coverage_pct(),
        plain.report().coverage_pct()
    );
    assert_eq!(pruned.report().detected, plain.report().detected);
    assert_eq!(pruned.patterns.len(), plain.patterns.len());
    for (a, b) in pruned
        .patterns
        .patterns()
        .iter()
        .zip(plain.patterns.patterns())
    {
        assert_eq!(a.proc_index, b.proc_index);
        assert_eq!(a.scan_load, b.scan_load, "scan loads diverged");
        assert_eq!(a.pis, b.pis, "PI fills diverged");
    }
}

#[test]
fn lint_pruned_atpg_is_byte_identical_and_skips_searches() {
    let soc = generate(&SocConfig::tiny(3));
    let model = CaptureModel::new(soc.netlist(), soc.binding(true)).unwrap();
    let universe = FaultUniverse::stuck_at(soc.netlist());
    let report = lint_soc(&soc, &model, &universe);
    let procedures = stuck_at_procedures(ClockingMode::SimpleCpf, model.domain_count());
    let options = AtpgOptions {
        random_patterns: 64,
        backtrack_limit: 32,
        ..AtpgOptions::default()
    };

    let mut engine = FaultSim::new(&model);
    let mut podem = CompiledPodem::new(&model);
    let plain = run_atpg(
        &model,
        &procedures,
        universe.clone(),
        &options,
        &mut engine,
        &mut podem,
    );
    let pruned = run_atpg_preclassified(
        &model,
        &procedures,
        universe,
        &options,
        &mut engine,
        &mut podem,
        &report.untestable,
    );

    assert!(
        pruned.stats.lint_pruned > 0,
        "expected at least one skipped PODEM search"
    );
    assert_eq!(plain.stats.lint_pruned, 0);
    assert_identical_runs(&pruned, &plain);
    // Every pre-classified fault ends untestable (or constrained by
    // the pre-pass), never detected.
    for &fault in &report.untestable {
        let status = pruned.faults.status(fault);
        assert!(
            matches!(status, FaultStatus::Untestable | FaultStatus::Constrained),
            "pre-classified {fault} ended as {status:?}"
        );
    }
}
