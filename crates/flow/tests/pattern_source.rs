//! The pattern-source axis end to end: external ATPG reports are
//! unchanged, EDT delivery re-grades under compacted observation with
//! every lost detection accounted, LBIST replaces generation with
//! PRPG/MISR and a refereed signature, and misconfiguration surfaces
//! as typed errors.

use occ_atpg::AtpgOptions;
use occ_core::ClockingMode;
use occ_flow::{
    BistConfig, EdtConfig, FaultKind, FlowError, FlowReport, LintGate, PatternSource, Stage,
    TestFlow,
};
use occ_fsim::ClockBinding;
use occ_netlist::NetlistBuilder;
use occ_soc::{generate, SocConfig};

fn quick() -> AtpgOptions {
    AtpgOptions {
        random_patterns: 32,
        backtrack_limit: 12,
        ..AtpgOptions::default()
    }
}

fn flow(soc: &occ_soc::Soc) -> TestFlow<'_> {
    TestFlow::new(soc)
        .clocking(ClockingMode::SimpleCpf)
        .fault_model(FaultKind::StuckAt)
        .atpg(quick())
}

#[test]
fn external_atpg_reports_are_unchanged() {
    let soc = generate(&SocConfig::tiny(1));
    let base = flow(&soc).run().unwrap();
    let explicit = flow(&soc)
        .pattern_source(PatternSource::ExternalAtpg)
        .run()
        .unwrap();
    assert!(base.pattern_source.is_none());
    assert!(!base.to_json().contains("pattern_source"));
    // Identical up to wall-clock stage timings.
    let strip = |j: String| -> String { j.split(",\"stages\"").next().unwrap().to_owned() };
    assert_eq!(strip(base.to_json()), strip(explicit.to_json()));
    assert!(base.stage_seconds(Stage::PatternSource) == 0.0);
}

#[test]
fn edt_delivery_regrades_under_compacted_observation() {
    let soc = generate(&SocConfig::tiny(2));
    let report = flow(&soc)
        .pattern_source(PatternSource::Edt(EdtConfig::auto()))
        .run()
        .unwrap();
    let ps = report.pattern_source.as_ref().expect("edt block");
    assert_eq!(ps.source, "edt");
    // Referee identity: every kernel detection either survives the
    // compactor or is explained as cancellation / X-masking.
    assert_eq!(
        ps.source_detected + ps.compactor_masked + ps.x_masked,
        ps.kernel_detected,
        "{ps:?}"
    );
    assert!(ps.source_detected <= ps.kernel_detected);
    // tiny() has 2 chains behind 1 auto-derived channel.
    assert!(ps.compression_ratio >= 2.0, "{ps:?}");
    assert!(ps.signature.is_none() && ps.signature_valid.is_none());
    assert!(report.coverage_pct() > 0.0);
    assert!(report.stage_seconds(Stage::PatternSource) > 0.0);
    // Serialization carries the block.
    let json = report.to_json();
    assert!(
        json.contains("\"pattern_source\":{\"source\":\"edt\""),
        "{json}"
    );
    let mut csv = Vec::new();
    report.write_csv(&mut csv).unwrap();
    let csv = String::from_utf8(csv).unwrap();
    assert!(csv.contains("compression_ratio"), "{csv}");
    assert!(FlowReport::pattern_source_csv_header().starts_with("design,source"));
    assert!(format!("{report}").contains("pattern source [edt]"));
}

#[test]
fn edt_flows_are_deterministic() {
    let soc = generate(&SocConfig::tiny(3));
    let run = || {
        flow(&soc)
            .pattern_source(PatternSource::Edt(EdtConfig::auto()))
            .run()
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.pattern_source, b.pattern_source);
    assert_eq!(a.coverage.detected, b.coverage.detected);
    assert_eq!(a.patterns(), b.patterns());
}

#[test]
fn lbist_replaces_atpg_with_a_refereed_signature() {
    let soc = generate(&SocConfig::tiny(4));
    let cfg = BistConfig {
        patterns: 256,
        ..BistConfig::default()
    };
    let report = flow(&soc)
        .pattern_source(PatternSource::Lbist(cfg))
        .run()
        .unwrap();
    let ps = report.pattern_source.as_ref().expect("lbist block");
    assert_eq!(ps.source, "lbist");
    assert_eq!(
        ps.source_detected + ps.aliased + ps.x_masked,
        ps.kernel_detected,
        "{ps:?}"
    );
    assert_eq!(report.patterns(), 256);
    assert!(report.coverage_pct() > 0.0, "{report}");
    // The generation stage is the pattern source, not ATPG.
    assert!(report.stage_seconds(Stage::PatternSource) > 0.0);
    assert!(report.stage_seconds(Stage::Atpg) == 0.0);
    assert!(ps.signature_valid.is_some());
    // Same campaign with a lint stage: the X-source audit comes from
    // the lint block instead of an internal run, same verdict.
    let linted = flow(&soc)
        .lint(LintGate::Warn)
        .pattern_source(PatternSource::Lbist(cfg))
        .run()
        .unwrap();
    let lp = linted.pattern_source.as_ref().unwrap();
    assert_eq!(lp.x_sources, ps.x_sources);
    assert_eq!(lp.signature, ps.signature);
}

#[test]
fn embedded_sources_require_a_soc_flow() {
    // A bare-model flow has no scan-chain architecture to hang a
    // decompressor or PRPG off of.
    let mut b = NetlistBuilder::new("bare");
    let clk = b.input("clk");
    let d = b.input("d");
    let se = b.input("se");
    let si = b.input("si");
    let q = b.sdff(d, clk, se, si);
    b.output("q", q);
    let nl = b.finish().unwrap();
    let mut binding = ClockBinding::new();
    binding.add_domain("clk", nl.find("clk").unwrap());

    let err = TestFlow::over(&nl, binding.clone())
        .atpg(quick())
        .pattern_source(PatternSource::Edt(EdtConfig::auto()))
        .run()
        .unwrap_err();
    assert_eq!(err, FlowError::PatternSourceNeedsSoc { source: "edt" });

    let err = TestFlow::over(&nl, binding)
        .atpg(quick())
        .pattern_source(PatternSource::Lbist(BistConfig::default()))
        .run()
        .unwrap_err();
    assert_eq!(err, FlowError::PatternSourceNeedsSoc { source: "lbist" });
}

#[test]
fn explicit_edt_geometry_must_match_the_design() {
    let soc = generate(&SocConfig::tiny(5));
    let err = flow(&soc)
        .pattern_source(PatternSource::Edt(EdtConfig::paper_like(357, 99)))
        .run()
        .unwrap_err();
    match err {
        FlowError::EdtGeometryMismatch { config, design } => {
            assert_eq!(config, (357, 99));
            assert_ne!(config, design);
        }
        other => panic!("expected geometry mismatch, got {other:?}"),
    }
}
