//! Test patterns: scan load + per-frame primary-input values.

use crate::{CaptureModel, FrameSpec};
use occ_netlist::Logic;

/// One scan test pattern for a specific capture procedure.
///
/// * `scan_load` — one value per scan flop, in the model's scan order.
/// * `pis` — free-PI values per frame; when the procedure holds PIs
///   there is a single shared frame.
///
/// `X` entries are "don't care" and may be randomly filled before the
/// pattern is committed to the set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Index of the capture procedure this pattern uses.
    pub proc_index: usize,
    /// Scan-load values, one per scan flop (model scan order).
    pub scan_load: Vec<Logic>,
    /// Per-frame free-PI values (`pis.len() == 1` when PIs are held).
    pub pis: Vec<Vec<Logic>>,
}

impl Pattern {
    /// An all-`X` pattern shaped for `model` and `spec`.
    pub fn empty(model: &CaptureModel<'_>, spec: &FrameSpec, proc_index: usize) -> Self {
        let pi_frames = if spec.holds_pi() { 1 } else { spec.frames() };
        Pattern {
            proc_index,
            scan_load: vec![Logic::X; model.scan_flops().len()],
            pis: vec![vec![Logic::X; model.free_pis().len()]; pi_frames],
        }
    }

    /// The free-PI vector used in 1-based frame `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is zero.
    pub fn pis_for_frame(&self, frame: usize) -> &[Logic] {
        assert!(frame >= 1, "frames are 1-based");
        if self.pis.len() == 1 {
            &self.pis[0]
        } else {
            &self.pis[frame - 1]
        }
    }

    /// Fills every `X` with values drawn from `fill` (called once per X
    /// slot) — used for random fill before fault simulation.
    pub fn fill_x<F: FnMut() -> Logic>(&mut self, mut fill: F) {
        for v in &mut self.scan_load {
            if !v.is_definite() {
                *v = fill();
            }
        }
        for frame in &mut self.pis {
            for v in frame {
                if !v.is_definite() {
                    *v = fill();
                }
            }
        }
    }

    /// Number of definite (care) bits.
    pub fn care_bits(&self) -> usize {
        self.scan_load.iter().filter(|v| v.is_definite()).count()
            + self
                .pis
                .iter()
                .flat_map(|f| f.iter())
                .filter(|v| v.is_definite())
                .count()
    }
}

/// A set of patterns grouped with the capture procedures they use —
/// the unit whose size Table 1 reports as "#Pattern".
#[derive(Debug, Clone, Default)]
pub struct PatternSet {
    procedures: Vec<FrameSpec>,
    patterns: Vec<Pattern>,
}

impl PatternSet {
    /// Creates a set over the given procedures.
    pub fn new(procedures: Vec<FrameSpec>) -> Self {
        PatternSet {
            procedures,
            patterns: Vec::new(),
        }
    }

    /// The capture procedures.
    pub fn procedures(&self) -> &[FrameSpec] {
        &self.procedures
    }

    /// The patterns in application order.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Number of patterns (scan loads).
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no patterns have been added.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Appends a pattern, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if the pattern references an unknown procedure.
    pub fn push(&mut self, pattern: Pattern) -> usize {
        assert!(
            pattern.proc_index < self.procedures.len(),
            "pattern references unknown procedure"
        );
        self.patterns.push(pattern);
        self.patterns.len() - 1
    }

    /// Retains only the patterns at the given (sorted) indices — used by
    /// static compaction.
    pub fn retain_indices(&mut self, keep: &[usize]) {
        let keep: std::collections::HashSet<usize> = keep.iter().copied().collect();
        let mut i = 0usize;
        self.patterns.retain(|_| {
            let k = keep.contains(&i);
            i += 1;
            k
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockBinding, CycleSpec};
    use occ_netlist::NetlistBuilder;

    fn tiny() -> (occ_netlist::Netlist, occ_netlist::CellId) {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let se = b.input("se");
        let si = b.input("si");
        let ff = b.sdff(d, clk, se, si);
        b.output("q", ff);
        (b.finish().unwrap(), clk)
    }

    #[test]
    fn empty_pattern_shapes_follow_spec() {
        let (nl, clk) = tiny();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec2 = FrameSpec::new("p", vec![CycleSpec::pulsing(&[0]); 2]).hold_pi(true);
        let p = Pattern::empty(&model, &spec2, 0);
        assert_eq!(p.scan_load.len(), 1);
        assert_eq!(p.pis.len(), 1);
        let spec_free = FrameSpec::new("q", vec![CycleSpec::pulsing(&[0]); 3]);
        let p = Pattern::empty(&model, &spec_free, 1);
        assert_eq!(p.pis.len(), 3);
        assert_eq!(p.pis_for_frame(2).len(), 3); // clk constrained, d/se/si free
    }

    #[test]
    fn fill_x_leaves_cares() {
        let (nl, clk) = tiny();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("p", vec![CycleSpec::pulsing(&[0])]);
        let mut p = Pattern::empty(&model, &spec, 0);
        p.scan_load[0] = Logic::One;
        let before = p.care_bits();
        p.fill_x(|| Logic::Zero);
        assert_eq!(p.scan_load[0], Logic::One);
        assert!(p.care_bits() > before);
        assert!(p.pis.iter().all(|f| f.iter().all(|v| v.is_definite())));
    }

    #[test]
    fn retain_indices_compacts() {
        let (nl, clk) = tiny();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("p", vec![CycleSpec::pulsing(&[0])]);
        let mut set = PatternSet::new(vec![spec.clone()]);
        for _ in 0..5 {
            set.push(Pattern::empty(&model, &spec, 0));
        }
        set.retain_indices(&[0, 3, 4]);
        assert_eq!(set.len(), 3);
    }
}
