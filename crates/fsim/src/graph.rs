//! The compiled simulation graph: a flat, cache-friendly view of a
//! [`CaptureModel`](crate::CaptureModel) built once and shared by every
//! simulation kernel.
//!
//! [`SimGraph`] replaces per-event `Cell`/`CellKind` lookups with dense
//! arrays:
//!
//! * CSR fanin/fanout edge arrays (`u32` indices, one allocation each);
//! * one [`OpCode`] byte per cell instead of the payload-carrying
//!   [`CellKind`](occ_netlist::CellKind);
//! * the levelized evaluation order and per-cell levels, flattened;
//! * per-flop capture metadata (D/SE/SI sources, reset pin and
//!   polarity) so the capture step never re-inspects pin lists;
//! * two precomputed **observability cones** — the set of cells from
//!   which any scan flop (and optionally any observed primary output)
//!   is reachable. A fault whose effect cell lies outside the cone can
//!   never produce an observable difference, so the fault simulator
//!   rejects it in O(1) without propagating a single event.
//!
//! Fanout entries used for difference propagation are pre-filtered the
//! way the PPSFP engine consumes them: combinational sinks are stored
//! as plain cell indices, flop sinks as tagged flop indices, and sinks
//! the engine never propagates into (latches, clock gates, RAM macros)
//! are dropped at compile time.

use crate::model::FlopInfo;
use crate::pval::PVal;
use occ_netlist::{CellId, CellKind, Netlist};

/// Dense per-cell operation code — the kernel's one-byte replacement
/// for [`CellKind`](occ_netlist::CellKind) dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Primary input (never evaluated; a source).
    Source,
    /// Constant 0.
    Tie0,
    /// Constant 1.
    Tie1,
    /// Constant X.
    TieX,
    /// Buffer / primary-output marker (mirrors its input).
    Buf,
    /// Inverter.
    Not,
    /// N-ary AND.
    And,
    /// N-ary NAND.
    Nand,
    /// N-ary OR.
    Or,
    /// N-ary NOR.
    Nor,
    /// N-ary XOR.
    Xor,
    /// N-ary XNOR.
    Xnor,
    /// 2-to-1 mux (`[sel, d0, d1]`).
    Mux2,
    /// Stateful cell (flop, latch, clock gate, RAM): holds its frame
    /// value, never re-evaluated combinationally.
    State,
}

impl OpCode {
    fn of(kind: CellKind) -> OpCode {
        match kind {
            CellKind::Input => OpCode::Source,
            CellKind::Tie0 => OpCode::Tie0,
            CellKind::Tie1 => OpCode::Tie1,
            CellKind::TieX => OpCode::TieX,
            CellKind::Buf | CellKind::Output => OpCode::Buf,
            CellKind::Not => OpCode::Not,
            CellKind::And => OpCode::And,
            CellKind::Nand => OpCode::Nand,
            CellKind::Or => OpCode::Or,
            CellKind::Nor => OpCode::Nor,
            CellKind::Xor => OpCode::Xor,
            CellKind::Xnor => OpCode::Xnor,
            CellKind::Mux2 => OpCode::Mux2,
            _ => OpCode::State,
        }
    }
}

/// Per-flop capture metadata, precomputed so the per-frame state step
/// is pure array reads. Public because the compiled ATPG value engine
/// (`occ-atpg`'s `DualGraphSim`) rides the same graph.
#[derive(Debug, Clone, Copy)]
pub struct FlopMeta {
    /// The flop cell index.
    pub cell: u32,
    /// Clock domain pulsing this flop.
    pub domain: u32,
    /// Scan (mux-scan) flop: capture samples `mux2(se, d, si)`.
    pub mux_scan: bool,
    /// Source cell of the D pin.
    pub d: u32,
    /// Source cell of the SE pin (valid when `mux_scan`).
    pub se: u32,
    /// Source cell of the SI pin (valid when `mux_scan`).
    pub si: u32,
    /// Source cell of the asynchronous reset pin, or [`NO_RESET`].
    pub reset: u32,
    /// True when the reset is active-high (`DffRh`).
    pub reset_high: bool,
}

impl FlopMeta {
    /// The value this flop captures on a clock pulse, reading pin
    /// sources through `read` (scan flops sample `mux2(se, d, si)`).
    #[inline]
    pub(crate) fn sample<F: FnMut(u32) -> PVal>(&self, mut read: F) -> PVal {
        if self.mux_scan {
            PVal::mux2(read(self.se), read(self.d), read(self.si))
        } else {
            read(self.d)
        }
    }

    /// Applies asynchronous-reset semantics to a captured state given
    /// the reset net's value: force 0 where the reset is definitely
    /// active; where it *might* be active and the state isn't already
    /// 0, the state is unknown. Callers check [`FlopMeta::reset`]
    /// against [`NO_RESET`] first.
    #[inline]
    pub(crate) fn apply_reset(&self, state: PVal, rv: PVal) -> PVal {
        let active = if self.reset_high {
            rv.def1()
        } else {
            rv.def0()
        };
        let forced = state.force(active, false);
        forced.blend(PVal::XX, rv.x & !forced.def0())
    }
}

/// Sentinel for [`FlopMeta::reset`]: the flop has no reset pin.
pub const NO_RESET: u32 = u32::MAX;

/// Tag bit marking a propagation-fanout entry as a flop index.
pub const FLOP_TAG: u32 = 1 << 31;

/// Aggregate counters a compiled kernel reports: the static shape of
/// the graph plus the dynamic work performed since the engine was
/// created. Collected into
/// [`FlowReport`](../occ_flow/struct.FlowReport.html)s and the
/// `fsim_bench` perf baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Cells compiled into the graph.
    pub cells: usize,
    /// Combinational cells in the levelized evaluation order.
    pub comb_cells: usize,
    /// Flops tracked by the capture step.
    pub flops: usize,
    /// Cells inside the scan-observability cone (POs excluded).
    pub cone_scan: usize,
    /// Cells inside the scan+PO observability cone.
    pub cone_po: usize,
    /// Faults graded through the kernel.
    pub faults_graded: u64,
    /// Faults rejected by the cone test without any propagation.
    pub cone_pruned: u64,
    /// Events propagated: cell evaluations plus flop-capture
    /// computations.
    pub events: u64,
    /// Faults graded with a [`SimTiming`](crate::SimTiming) view
    /// attached (the timed detect path that records sensitized path
    /// lengths). Zero unless timing was explicitly attached.
    pub timed_faults: u64,
}

impl KernelStats {
    /// Merges the dynamic counters of `other` into `self` (static graph
    /// shape fields are taken from `self` when set, `other` otherwise).
    pub fn absorb(&mut self, other: &KernelStats) {
        if self.cells == 0 {
            self.cells = other.cells;
            self.comb_cells = other.comb_cells;
            self.flops = other.flops;
            self.cone_scan = other.cone_scan;
            self.cone_po = other.cone_po;
        }
        self.faults_graded += other.faults_graded;
        self.cone_pruned += other.cone_pruned;
        self.events += other.events;
        self.timed_faults += other.timed_faults;
    }
}

/// A word-packed bitset over cell indices.
#[derive(Debug, Clone, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The compiled, immutable simulation graph shared by the good-machine
/// simulator and every [`FaultSim`](crate::FaultSim) scratch arena.
///
/// Built once inside [`CaptureModel::new`](crate::CaptureModel::new)
/// and reached through
/// [`CaptureModel::graph`](crate::CaptureModel::graph); cloning the
/// model shares the graph (it sits behind an `Arc`).
#[derive(Debug)]
pub struct SimGraph {
    n_cells: usize,
    ops: Vec<OpCode>,
    level: Vec<u32>,
    levels: usize,
    order: Vec<u32>,
    fanin_start: Vec<u32>,
    fanin: Vec<u32>,
    // Propagation fanouts: comb sinks as cell indices, flop sinks as
    // FLOP_TAG | flop_index; non-propagating sinks dropped.
    fo_start: Vec<u32>,
    fo: Vec<u32>,
    ties: Vec<(u32, PVal)>,
    flops: Vec<FlopMeta>,
    scan_flops: Vec<u32>,
    pos: Vec<u32>,
    obs_scan: BitSet,
    obs_po: BitSet,
}

impl SimGraph {
    /// Compiles the graph from the model's netlist and flop table.
    pub(crate) fn compile(netlist: &Netlist, flops: &[FlopInfo]) -> SimGraph {
        let n = netlist.len();
        let lev = netlist.levelization();

        let mut ops = Vec::with_capacity(n);
        let mut ties = Vec::new();
        for (id, cell) in netlist.iter() {
            let op = OpCode::of(cell.kind());
            match op {
                OpCode::Tie0 => ties.push((id.index() as u32, PVal::ZERO)),
                OpCode::Tie1 => ties.push((id.index() as u32, PVal::ONE)),
                _ => {}
            }
            ops.push(op);
        }

        // CSR fanins (all pins of all cells, in pin order).
        let mut fanin_start = Vec::with_capacity(n + 1);
        let mut fanin = Vec::with_capacity(netlist.fanin_edge_count());
        fanin_start.push(0);
        for (_, cell) in netlist.iter() {
            for &src in cell.inputs() {
                fanin.push(src.index() as u32);
            }
            fanin_start.push(fanin.len() as u32);
        }

        // Flop metadata + cell -> flop index map.
        let mut flop_of_cell = vec![u32::MAX; n];
        let mut metas = Vec::with_capacity(flops.len());
        for (fi, info) in flops.iter().enumerate() {
            flop_of_cell[info.cell.index()] = fi as u32;
            let cell = netlist.cell(info.cell);
            let pins = cell.inputs();
            let mux_scan = cell.kind().is_scan_flop();
            let (reset, reset_high) = match cell.reset() {
                Some(r) => (r.index() as u32, cell.kind() == CellKind::DffRh),
                None => (NO_RESET, false),
            };
            metas.push(FlopMeta {
                cell: info.cell.index() as u32,
                domain: info.domain as u32,
                mux_scan,
                d: pins[0].index() as u32,
                se: if mux_scan { pins[2].index() as u32 } else { 0 },
                si: if mux_scan { pins[3].index() as u32 } else { 0 },
                reset,
                reset_high,
            });
        }

        // CSR propagation fanouts, pre-filtered and pre-tagged exactly
        // the way the PPSFP engine walks them.
        let mut fo_start = Vec::with_capacity(n + 1);
        let mut fo = Vec::with_capacity(netlist.fanout_edge_count());
        fo_start.push(0);
        for id in netlist.ids() {
            for &sink in netlist.fanouts(id) {
                let kind = netlist.cell(sink).kind();
                if kind.is_flop() {
                    let fi = flop_of_cell[sink.index()];
                    if fi != u32::MAX {
                        fo.push(FLOP_TAG | fi);
                    }
                } else if kind.is_combinational() {
                    fo.push(sink.index() as u32);
                }
            }
            fo_start.push(fo.len() as u32);
        }

        let order: Vec<u32> = lev.order().iter().map(|id| id.index() as u32).collect();
        let pos: Vec<u32> = netlist
            .primary_outputs()
            .iter()
            .map(|id| id.index() as u32)
            .collect();

        // Scan flops by model flop index, in scan-load order (the
        // model's flop order filtered to scan cells).
        let scan_flops: Vec<u32> = flops
            .iter()
            .enumerate()
            .filter(|(_, info)| info.is_scan)
            .map(|(fi, _)| fi as u32)
            .collect();

        // Observability cones: backward reachability over fanin edges
        // from the observation roots. Over-approximate (it traverses
        // every pin, including clock pins the engine never samples
        // through) — pruning stays sound, it just prunes a little less.
        let scan_roots: Vec<u32> = metas
            .iter()
            .zip(flops)
            .filter(|(_, info)| info.is_scan)
            .map(|(m, _)| m.cell)
            .collect();
        let obs_scan = backward_cone(&fanin_start, &fanin, scan_roots.iter().copied(), n);
        let obs_po = backward_cone(
            &fanin_start,
            &fanin,
            scan_roots.iter().copied().chain(pos.iter().copied()),
            n,
        );

        SimGraph {
            n_cells: n,
            ops,
            level: lev.levels().to_vec(),
            levels: lev.max_level() as usize + 1,
            order,
            fanin_start,
            fanin,
            fo_start,
            fo,
            ties,
            flops: metas,
            scan_flops,
            pos,
            obs_scan,
            obs_po,
        }
    }

    /// Number of cells compiled.
    pub fn cells(&self) -> usize {
        self.n_cells
    }

    /// Approximate resident size of the compiled graph in bytes —
    /// the cost accounting a byte-budgeted artifact cache charges for
    /// holding one design's graph. Sums the backing arrays (CSR edges,
    /// opcodes, levelization, flop metadata, observability bitsets);
    /// `Vec` headers and allocator slack are ignored.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.ops.len() * size_of::<OpCode>()
            + (self.level.len()
                + self.order.len()
                + self.fanin_start.len()
                + self.fanin.len()
                + self.fo_start.len()
                + self.fo.len()
                + self.scan_flops.len()
                + self.pos.len())
                * size_of::<u32>()
            + self.ties.len() * size_of::<(u32, PVal)>()
            + self.flops.len() * size_of::<FlopMeta>()
            + (self.obs_scan.words.len() + self.obs_po.words.len()) * size_of::<u64>()
    }

    /// Number of combinational cells in the evaluation order.
    pub fn comb_cells(&self) -> usize {
        self.order.len()
    }

    /// Number of flops tracked by the capture step.
    pub fn flop_count(&self) -> usize {
        self.flops.len()
    }

    /// Number of levelized worklist buckets (`max_level + 1`).
    pub fn bucket_count(&self) -> usize {
        self.levels
    }

    /// Cells inside the observability cone (`with_po` adds primary
    /// outputs to the scan-flop observation roots).
    pub fn cone_size(&self, with_po: bool) -> usize {
        if with_po {
            self.obs_po.count()
        } else {
            self.obs_scan.count()
        }
    }

    /// True when a difference at `cell` can reach an observation point:
    /// a scan flop, or (when `with_po`) an observed primary output.
    ///
    /// A fault whose effect cell is *not* observable can never be
    /// detected, so fault simulation rejects it without propagation.
    /// The cone is an over-approximation: `observable` never returns
    /// `false` for a detectable fault.
    #[inline]
    pub fn observable(&self, cell: CellId, with_po: bool) -> bool {
        if with_po {
            self.obs_po.get(cell.index())
        } else {
            self.obs_scan.get(cell.index())
        }
    }

    /// The static-shape half of [`KernelStats`].
    pub fn static_stats(&self) -> KernelStats {
        KernelStats {
            cells: self.n_cells,
            comb_cells: self.order.len(),
            flops: self.flops.len(),
            cone_scan: self.obs_scan.count(),
            cone_po: self.obs_po.count(),
            ..KernelStats::default()
        }
    }

    /// The dense op code of a cell.
    #[inline]
    pub fn op(&self, cell: usize) -> OpCode {
        self.ops[cell]
    }

    /// The combinational level of a cell (sources and state are 0).
    #[inline]
    pub fn level_of(&self, cell: usize) -> u32 {
        self.level[cell]
    }

    /// CSR fanin slice of a cell: all input pins in pin order.
    #[inline]
    pub fn fanins(&self, cell: usize) -> &[u32] {
        &self.fanin[self.fanin_start[cell] as usize..self.fanin_start[cell + 1] as usize]
    }

    /// CSR propagation-fanout slice of a cell: combinational sinks as
    /// plain cell indices, flop sinks as `FLOP_TAG | flop_index`;
    /// non-propagating sinks (latches, clock gates, RAM macros) are
    /// dropped at compile time.
    #[inline]
    pub fn prop_fanouts(&self, cell: usize) -> &[u32] {
        &self.fo[self.fo_start[cell] as usize..self.fo_start[cell + 1] as usize]
    }

    /// The flattened levelized evaluation order (combinational cells
    /// only, dependencies first).
    #[inline]
    pub fn comb_order(&self) -> &[u32] {
        &self.order
    }

    /// `(cell, value)` pairs of the constant tie cells.
    #[inline]
    pub fn tie_values(&self) -> &[(u32, PVal)] {
        &self.ties
    }

    /// Capture metadata of one flop (by model flop index).
    #[inline]
    pub fn flop_meta(&self, fi: usize) -> &FlopMeta {
        &self.flops[fi]
    }

    /// Model flop indices of the scan flops, in scan-load order.
    #[inline]
    pub fn scan_flops(&self) -> &[u32] {
        &self.scan_flops
    }

    /// Primary-output cell indices.
    #[inline]
    pub fn po_cells(&self) -> &[u32] {
        &self.pos
    }

    /// Evaluates one combinational cell, reading operand `pin` (driven
    /// by cell `src`) through `read`. Mirrors
    /// [`eval_packed`](crate::eval_packed) exactly; `Source`/`State`
    /// cells yield `X` (callers never evaluate them).
    #[inline]
    pub(crate) fn eval_cell<F: FnMut(usize, u32) -> PVal>(&self, cell: usize, mut read: F) -> PVal {
        let f = self.fanins(cell);
        match self.ops[cell] {
            OpCode::Tie0 => PVal::ZERO,
            OpCode::Tie1 => PVal::ONE,
            OpCode::Buf => read(0, f[0]),
            OpCode::Not => read(0, f[0]).not(),
            OpCode::And => fold(f, PVal::ONE, PVal::and, &mut read),
            OpCode::Nand => fold(f, PVal::ONE, PVal::and, &mut read).not(),
            OpCode::Or => fold(f, PVal::ZERO, PVal::or, &mut read),
            OpCode::Nor => fold(f, PVal::ZERO, PVal::or, &mut read).not(),
            OpCode::Xor => fold(f, PVal::ZERO, PVal::xor, &mut read),
            OpCode::Xnor => fold(f, PVal::ZERO, PVal::xor, &mut read).not(),
            OpCode::Mux2 => PVal::mux2(read(0, f[0]), read(1, f[1]), read(2, f[2])),
            OpCode::TieX | OpCode::Source | OpCode::State => PVal::XX,
        }
    }
}

#[inline]
fn fold<F: FnMut(usize, u32) -> PVal>(
    fanins: &[u32],
    init: PVal,
    op: fn(PVal, PVal) -> PVal,
    read: &mut F,
) -> PVal {
    let mut acc = init;
    for (pin, &src) in fanins.iter().enumerate() {
        acc = op(acc, read(pin, src));
    }
    acc
}

/// Backward reachability from `roots` over the CSR fanin edges.
fn backward_cone(
    fanin_start: &[u32],
    fanin: &[u32],
    roots: impl Iterator<Item = u32>,
    n: usize,
) -> BitSet {
    let mut seen = BitSet::new(n);
    let mut stack: Vec<u32> = Vec::new();
    for r in roots {
        if !seen.get(r as usize) {
            seen.set(r as usize);
            stack.push(r);
        }
    }
    while let Some(c) = stack.pop() {
        let cu = c as usize;
        for &src in &fanin[fanin_start[cu] as usize..fanin_start[cu + 1] as usize] {
            if !seen.get(src as usize) {
                seen.set(src as usize);
                stack.push(src);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CaptureModel, ClockBinding};
    use occ_netlist::{Logic, NetlistBuilder};

    fn model_with_dead_logic() -> (occ_netlist::Netlist, CellId, CellId, CellId) {
        // f0 -> g -> f1 observable; `dead` drives nothing observable.
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let f0 = b.sdff(d, clk, se, si);
        let g = b.and2(f0, d);
        let f1 = b.sdff(g, clk, se, f0);
        b.output("q", f1);
        let dead_src = b.input("dead_in");
        let dead = b.not(dead_src);
        b.output("dead_po", dead);
        let nl = b.finish().unwrap();
        (nl, g, dead, clk)
    }

    fn capture(nl: &occ_netlist::Netlist, clk: CellId) -> CaptureModel<'_> {
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        CaptureModel::new(nl, binding).unwrap()
    }

    #[test]
    fn cone_separates_scan_and_po_observability() {
        let (nl, g, dead, clk) = model_with_dead_logic();
        let m = capture(&nl, clk);
        let graph = m.graph();
        // `g` reaches a scan flop: observable under both cones.
        assert!(graph.observable(g, false));
        assert!(graph.observable(g, true));
        // `dead` only reaches a PO: observable only with POs strobed.
        assert!(!graph.observable(dead, false));
        assert!(graph.observable(dead, true));
        assert!(graph.cone_size(true) > graph.cone_size(false));
    }

    #[test]
    fn graph_shape_matches_netlist() {
        let (nl, _, _, clk) = model_with_dead_logic();
        let m = capture(&nl, clk);
        let graph = m.graph();
        assert_eq!(graph.cells(), nl.len());
        assert_eq!(graph.comb_cells(), nl.levelization().order().len());
        assert_eq!(graph.flop_count(), m.flops().len());
        assert_eq!(
            graph.bucket_count(),
            nl.levelization().max_level() as usize + 1
        );
        let stats = graph.static_stats();
        assert_eq!(stats.cells, nl.len());
        assert_eq!(stats.cone_po, graph.cone_size(true));
    }

    #[test]
    fn eval_cell_matches_eval_packed() {
        use crate::pval::eval_packed;
        let (nl, _, _, clk) = model_with_dead_logic();
        let m = capture(&nl, clk);
        let graph = m.graph();
        let vals: Vec<PVal> = (0..nl.len())
            .map(|i| PVal::canon(0x5a5a ^ i as u64, (i as u64).rotate_left(17)))
            .collect();
        for &c in graph.comb_order() {
            let cell = nl.cell(CellId::from_index(c as usize));
            let ins: Vec<PVal> = cell.inputs().iter().map(|s| vals[s.index()]).collect();
            let want = eval_packed(cell.kind(), &ins).unwrap();
            let got = graph.eval_cell(c as usize, |_, src| vals[src as usize]);
            assert_eq!(got, want, "cell {c}");
        }
    }
}
