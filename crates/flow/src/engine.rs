//! Engine selection: which [`occ_fsim::FaultSimEngine`] a flow grades
//! faults with, and which [`occ_atpg::AtpgEngine`] generates its
//! tests.

use crate::FlowError;
use std::fmt;
use std::str::FromStr;

/// The fault-simulation engine a [`TestFlow`](crate::TestFlow) runs
/// on. All choices produce bit-identical results; they differ only in
/// how the grading work is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineChoice {
    /// The serial PPSFP engine on the calling thread.
    #[default]
    Serial,
    /// The sharded engine with an explicit worker count.
    Sharded {
        /// Worker threads (must be at least 1).
        threads: usize,
    },
    /// The sharded engine using all available hardware parallelism.
    Auto,
}

impl EngineChoice {
    /// Resolves the concrete worker-thread count.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::ZeroThreads`] for `Sharded { threads: 0 }`.
    pub fn resolve_threads(self) -> Result<usize, FlowError> {
        match self {
            EngineChoice::Serial => Ok(1),
            EngineChoice::Sharded { threads: 0 } => Err(FlowError::ZeroThreads),
            EngineChoice::Sharded { threads } => Ok(threads),
            EngineChoice::Auto => {
                Ok(std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
            }
        }
    }

    /// The engine label reports carry: `serial`, `sharded` or `auto`.
    pub fn label(self) -> &'static str {
        match self {
            EngineChoice::Serial => "serial",
            EngineChoice::Sharded { .. } => "sharded",
            EngineChoice::Auto => "auto",
        }
    }
}

impl fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineChoice::Sharded { threads } => write!(f, "sharded:{threads}"),
            other => f.write_str(other.label()),
        }
    }
}

/// Error parsing an [`EngineChoice`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineChoiceError {
    input: String,
}

impl fmt::Display for ParseEngineChoiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown engine '{}' (expected serial, auto or sharded:N)",
            self.input
        )
    }
}

impl std::error::Error for ParseEngineChoiceError {}

impl FromStr for EngineChoice {
    type Err = ParseEngineChoiceError;

    /// Parses `serial`, `auto` or `sharded:N` (what `--engine` CLI
    /// switches route through).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseEngineChoiceError {
            input: s.to_owned(),
        };
        match s.trim().to_ascii_lowercase().as_str() {
            "serial" => Ok(EngineChoice::Serial),
            "auto" | "sharded" => Ok(EngineChoice::Auto),
            other => match other.strip_prefix("sharded:") {
                Some(n) => Ok(EngineChoice::Sharded {
                    threads: n.parse().map_err(|_| err())?,
                }),
                None => Err(err()),
            },
        }
    }
}

/// The ATPG (test-generation) engine a [`TestFlow`](crate::TestFlow)
/// runs. Both choices produce identical outcomes — the compiled engine
/// makes exactly the same decisions over a zero-allocation incremental
/// value engine; the reference engine is the retained oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AtpgEngineChoice {
    /// The retained scalar PODEM ([`occ_atpg::ReferencePodem`]).
    Reference,
    /// The compiled incremental PODEM ([`occ_atpg::CompiledPodem`]).
    #[default]
    Compiled,
}

impl AtpgEngineChoice {
    /// The engine label reports carry: `reference` or `compiled`.
    pub fn label(self) -> &'static str {
        match self {
            AtpgEngineChoice::Reference => "reference",
            AtpgEngineChoice::Compiled => "compiled",
        }
    }
}

impl fmt::Display for AtpgEngineChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error parsing an [`AtpgEngineChoice`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAtpgEngineChoiceError {
    input: String,
}

impl fmt::Display for ParseAtpgEngineChoiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown ATPG engine '{}' (expected reference or compiled)",
            self.input
        )
    }
}

impl std::error::Error for ParseAtpgEngineChoiceError {}

impl FromStr for AtpgEngineChoice {
    type Err = ParseAtpgEngineChoiceError;

    /// Parses `reference` or `compiled` (what `--atpg-engine` CLI
    /// switches route through).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reference" => Ok(AtpgEngineChoice::Reference),
            "compiled" => Ok(AtpgEngineChoice::Compiled),
            _ => Err(ParseAtpgEngineChoiceError {
                input: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atpg_engine_parsing() {
        assert_eq!("reference".parse(), Ok(AtpgEngineChoice::Reference));
        assert_eq!(" Compiled ".parse(), Ok(AtpgEngineChoice::Compiled));
        assert!("podem".parse::<AtpgEngineChoice>().is_err());
        assert_eq!(AtpgEngineChoice::default(), AtpgEngineChoice::Compiled);
        assert_eq!(AtpgEngineChoice::Reference.to_string(), "reference");
    }

    #[test]
    fn resolution_and_parsing() {
        assert_eq!(EngineChoice::Serial.resolve_threads(), Ok(1));
        assert_eq!(
            EngineChoice::Sharded { threads: 8 }.resolve_threads(),
            Ok(8)
        );
        assert_eq!(
            EngineChoice::Sharded { threads: 0 }.resolve_threads(),
            Err(FlowError::ZeroThreads)
        );
        assert!(EngineChoice::Auto.resolve_threads().unwrap() >= 1);

        assert_eq!("serial".parse(), Ok(EngineChoice::Serial));
        assert_eq!("auto".parse(), Ok(EngineChoice::Auto));
        assert_eq!(
            "sharded:4".parse(),
            Ok(EngineChoice::Sharded { threads: 4 })
        );
        assert!("sharded:lots".parse::<EngineChoice>().is_err());
        assert!("gpu".parse::<EngineChoice>().is_err());
        assert_eq!(
            EngineChoice::Sharded { threads: 2 }.to_string(),
            "sharded:2"
        );
    }
}
