//! The enhanced CPF of experiment (d): programmable 2/3/4-pulse bursts
//! and a start offset enabling inter-domain launch/capture.
//!
//! The paper: "the CPF blocks are enhanced and able to provide two,
//! three or four clock pulses. In addition, the CPF blocks provide the
//! capability to generate tests for domain signals crossing the
//! boundaries of the synchronous clock domains. These tests apply a
//! launch pulse in one clock domain and a capture pulse in the other
//! clock domain." The configuration bits are loaded through a test
//! setup register before the pattern ("a dedicated control protocol to
//! setup the PLL from the ATPG tool is required", §4).

use crate::behavior::CpfBehavior;
use occ_netlist::{CellId, Netlist, NetlistBuilder};

/// Runtime pulse selection programmed into an enhanced CPF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PulseSelect {
    /// Number of released pulses (1..=4).
    pub pulses: usize,
    /// Start offset in PLL cycles (0..=1): delays the window so one
    /// domain can launch while the other captures one cycle later.
    pub offset: usize,
}

impl PulseSelect {
    /// The classic two-pulse launch/capture burst.
    pub fn two_pulse() -> Self {
        PulseSelect {
            pulses: 2,
            offset: 0,
        }
    }

    /// The launch half of an inter-domain pair (one early pulse).
    pub fn inter_domain_launch() -> Self {
        PulseSelect {
            pulses: 1,
            offset: 0,
        }
    }

    /// The capture half of an inter-domain pair (one late pulse).
    pub fn inter_domain_capture() -> Self {
        PulseSelect {
            pulses: 1,
            offset: 1,
        }
    }

    /// Encodes into the CPF's configuration pins `(c0, c1, o0)`:
    /// `count = 1 + (c1<<1|c0)`, `offset = o0`.
    ///
    /// # Panics
    ///
    /// Panics if the selection is outside 1..=4 pulses / 0..=1 offset.
    pub fn config_bits(self) -> (bool, bool, bool) {
        assert!((1..=4).contains(&self.pulses), "pulses must be 1..=4");
        assert!(self.offset <= 1, "offset must be 0..=1");
        let n = self.pulses - 1;
        (n & 1 == 1, n & 2 == 2, self.offset == 1)
    }

    /// The behavioural model for this selection on a CPF with the given
    /// base latency.
    pub fn behavior(self, base_latency: usize) -> CpfBehavior {
        CpfBehavior::with_params(self.pulses, base_latency + self.offset)
    }
}

/// Configuration of the enhanced CPF generator.
#[derive(Debug, Clone)]
pub struct EnhancedCpfConfig {
    /// Instance prefix for cell names.
    pub prefix: String,
    /// Maximum burst length (the paper's enhancement: 4).
    pub max_pulses: usize,
    /// Maximum start offset (1 suffices for two-domain inter-domain
    /// tests).
    pub max_offset: usize,
    /// Base latency in PLL cycles at offset 0 (paper: 3).
    pub base_latency: usize,
}

impl EnhancedCpfConfig {
    /// The experiment-(d) configuration: up to 4 pulses, offset 0/1,
    /// 3-cycle base latency.
    pub fn paper() -> Self {
        EnhancedCpfConfig {
            prefix: "ecpf".to_owned(),
            max_pulses: 4,
            max_offset: 1,
            base_latency: 3,
        }
    }

    /// Shift-register length needed for the deepest window.
    pub fn shift_register_bits(&self) -> usize {
        // open index = base_latency-1 + offset; close index = open + count.
        self.base_latency - 1 + self.max_offset + self.max_pulses + 1
    }
}

/// Ports of an enhanced CPF instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnhancedCpfPorts {
    /// High-speed PLL clock input.
    pub pll_clk: CellId,
    /// Slow external scan clock input.
    pub scan_clk: CellId,
    /// Scan enable input.
    pub scan_en: CellId,
    /// Pulse-count select bit 0 (`count = 1 + (c1 c0)`).
    pub cfg_c0: CellId,
    /// Pulse-count select bit 1.
    pub cfg_c1: CellId,
    /// Window offset select.
    pub cfg_o0: CellId,
    /// Gated clock output.
    pub clk_out: CellId,
    /// The window-decode signal.
    pub pulse_enable: CellId,
}

/// A generated enhanced CPF block.
///
/// # Examples
///
/// ```
/// use occ_core::{EnhancedCpf, EnhancedCpfConfig, PulseSelect};
/// let ecpf = EnhancedCpf::generate(&EnhancedCpfConfig::paper());
/// // Bigger than the 10-gate simple CPF, but still tiny.
/// assert!(ecpf.netlist().logic_gate_count() <= 24);
/// let (c0, c1, o0) = PulseSelect { pulses: 3, offset: 0 }.config_bits();
/// assert_eq!((c0, c1, o0), (false, true, false));
/// ```
#[derive(Debug, Clone)]
pub struct EnhancedCpf {
    config: EnhancedCpfConfig,
    netlist: Netlist,
    ports: EnhancedCpfPorts,
}

impl EnhancedCpf {
    /// Generates the block as a standalone netlist.
    ///
    /// # Panics
    ///
    /// Panics for unsupported geometries (`max_pulses` > 4 or
    /// `max_offset` > 1 would need wider config ports).
    pub fn generate(config: &EnhancedCpfConfig) -> Self {
        let mut b = NetlistBuilder::new(&format!("{}_enhanced_cpf", config.prefix));
        let pll_clk = b.input("pll_clk");
        let scan_clk = b.input("scan_clk");
        let scan_en = b.input("scan_en");
        let cfg_c0 = b.input("cfg_c0");
        let cfg_c1 = b.input("cfg_c1");
        let cfg_o0 = b.input("cfg_o0");
        let ports = Self::attach(
            config, &mut b, pll_clk, scan_clk, scan_en, cfg_c0, cfg_c1, cfg_o0,
        );
        b.output("clk_out", ports.clk_out);
        let netlist = b.finish().expect("generated enhanced CPF must validate");
        EnhancedCpf {
            config: config.clone(),
            netlist,
            ports,
        }
    }

    /// Instantiates the enhanced CPF into an existing builder.
    ///
    /// # Panics
    ///
    /// Panics for unsupported geometries.
    #[allow(clippy::too_many_arguments)]
    pub fn attach(
        config: &EnhancedCpfConfig,
        b: &mut NetlistBuilder,
        pll_clk: CellId,
        scan_clk: CellId,
        scan_en: CellId,
        cfg_c0: CellId,
        cfg_c1: CellId,
        cfg_o0: CellId,
    ) -> EnhancedCpfPorts {
        assert!(
            (1..=4).contains(&config.max_pulses),
            "config ports encode up to 4 pulses"
        );
        assert!(config.max_offset <= 1, "config ports encode offset 0..=1");
        assert!(config.base_latency >= 2, "need at least 2 cycles latency");
        let p = &config.prefix;
        let bits = config.shift_register_bits();

        let one = b.tie1();
        let trigger = b.dff_rh(one, scan_clk, scan_en);
        b.name_cell(trigger, &format!("{p}_trigger"));
        let mut stages = Vec::with_capacity(bits);
        let mut prev = trigger;
        for i in 0..bits {
            let ff = b.dff_rh(prev, pll_clk, scan_en);
            b.name_cell(ff, &format!("{p}_sr{i}"));
            stages.push(ff);
            prev = ff;
        }

        let base = config.base_latency - 1;
        // Open tap: offset selects SR[base] or SR[base+1].
        let open = if config.max_offset == 0 {
            stages[base]
        } else {
            let m = b.mux2(cfg_o0, stages[base], stages[base + 1]);
            b.name_cell(m, &format!("{p}_open_sel"));
            m
        };
        // Close tap candidates per count (1..=4), each offset-muxed.
        let mut cand = Vec::new();
        for count in 1..=config.max_pulses {
            let idx = base + count;
            let c = if config.max_offset == 0 {
                stages[idx]
            } else {
                let m = b.mux2(cfg_o0, stages[idx], stages[idx + 1]);
                b.name_cell(m, &format!("{p}_close_off{count}"));
                m
            };
            cand.push(c);
        }
        // Mux tree on the count bits (missing counts reuse the largest).
        while cand.len() < 4 {
            let last = *cand.last().expect("at least one candidate");
            cand.push(last);
        }
        let m01 = b.mux2(cfg_c0, cand[0], cand[1]);
        b.name_cell(m01, &format!("{p}_close_m01"));
        let m23 = b.mux2(cfg_c0, cand[2], cand[3]);
        b.name_cell(m23, &format!("{p}_close_m23"));
        let close = b.mux2(cfg_c1, m01, m23);
        b.name_cell(close, &format!("{p}_close_sel"));

        let close_n = b.not(close);
        b.name_cell(close_n, &format!("{p}_close_n"));
        let pulse_enable = b.and2(open, close_n);
        b.name_cell(pulse_enable, &format!("{p}_pulse_enable"));

        let gated = b.clock_gate(pll_clk, pulse_enable);
        b.name_cell(gated, &format!("{p}_cgc"));
        let clk_out = b.mux2(scan_en, gated, scan_clk);
        b.name_cell(clk_out, &format!("{p}_clk_out"));

        EnhancedCpfPorts {
            pll_clk,
            scan_clk,
            scan_en,
            cfg_c0,
            cfg_c1,
            cfg_o0,
            clk_out,
            pulse_enable,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EnhancedCpfConfig {
        &self.config
    }

    /// The standalone netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The port map.
    pub fn ports(&self) -> &EnhancedCpfPorts {
        &self.ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_sizes_shift_register() {
        let cfg = EnhancedCpfConfig::paper();
        // base 3: open idx 2 or 3; close up to 3+4 = 7 -> 8 bits.
        assert_eq!(cfg.shift_register_bits(), 8);
    }

    #[test]
    fn select_encoding_roundtrip() {
        for pulses in 1..=4 {
            for offset in 0..=1 {
                let s = PulseSelect { pulses, offset };
                let (c0, c1, o0) = s.config_bits();
                let decoded = 1 + (c0 as usize) + 2 * (c1 as usize);
                assert_eq!(decoded, pulses);
                assert_eq!(o0 as usize, offset);
            }
        }
    }

    #[test]
    fn inter_domain_pair_staggers() {
        let l = PulseSelect::inter_domain_launch();
        let c = PulseSelect::inter_domain_capture();
        assert_eq!(l.pulses, 1);
        assert_eq!(c.pulses, 1);
        assert_eq!(c.offset, l.offset + 1);
    }

    #[test]
    fn generates_and_validates() {
        let ecpf = EnhancedCpf::generate(&EnhancedCpfConfig::paper());
        let stats = occ_netlist::NetlistStats::of(ecpf.netlist());
        assert_eq!(stats.flops, 9); // trigger + 8 SR bits
        assert_eq!(stats.clock_gates, 1);
        assert!(ecpf.netlist().logic_gate_count() <= 24);
    }

    #[test]
    #[should_panic(expected = "encode up to 4")]
    fn oversized_burst_rejected() {
        let cfg = EnhancedCpfConfig {
            max_pulses: 5,
            ..EnhancedCpfConfig::paper()
        };
        let _ = EnhancedCpf::generate(&cfg);
    }

    #[test]
    fn behavior_latency_includes_offset() {
        let b0 = PulseSelect {
            pulses: 2,
            offset: 0,
        }
        .behavior(3);
        let b1 = PulseSelect {
            pulses: 2,
            offset: 1,
        }
        .behavior(3);
        assert_eq!(b0.latency_cycles() + 1, b1.latency_cycles());
        assert_eq!(b0.pulse_count(), 2);
    }
}
