//! # occ-sim — logic simulation for the occ workspace
//!
//! Two simulators over [`occ_netlist::Netlist`]:
//!
//! * [`EventSim`] — an event-driven, inertial-delay timing simulator.
//!   This is what demonstrates the paper's Figure 4: the Clock Pulse
//!   Filter releasing **exactly two** glitch-free PLL pulses after the
//!   `scan_en`-drop/`scan_clk`-trigger protocol.
//! * [`CycleSim`] — a zero-delay, clock-edge-at-a-time simulator used
//!   for scan protocol runs (load/unload, capture cycles, memory macro
//!   test). It resolves clock paths *structurally*, including through
//!   clock-gating cells and the CPF output mux.
//!
//! Waveforms are recorded in a [`Trace`] and can be exported as VCD
//! ([`Trace::to_vcd`]) or rendered as ASCII art ([`render_ascii`]) — the
//! form in which this crate reproduces the paper's Figures 2 and 4.
//!
//! ## Example
//!
//! ```
//! use occ_netlist::{NetlistBuilder, Logic};
//! use occ_sim::{EventSim, DelayModel, Waveform};
//!
//! # fn main() -> Result<(), occ_netlist::BuildError> {
//! let mut b = NetlistBuilder::new("dff");
//! let clk = b.input("clk");
//! let d = b.input("d");
//! let q = b.dff(d, clk);
//! b.output("q", q);
//! let nl = b.finish()?;
//!
//! let mut sim = EventSim::new(&nl, DelayModel::default());
//! sim.drive(clk, Waveform::clock(100, 50, 1_000));
//! sim.drive(d, Waveform::steps(&[(0, Logic::One)]));
//! sim.run_until(1_000);
//! assert_eq!(sim.value(q), Logic::One);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod cycle;
mod delay;
mod event;
mod trace;
mod vcd;
mod waveform;

pub use ascii::{render_ascii, AsciiOptions};
pub use cycle::CycleSim;
pub use delay::{CompiledDelays, DelayModel};
pub use event::EventSim;
pub use trace::{Edge, Trace};
pub use waveform::Waveform;

/// Simulation time in picoseconds.
pub type Time = u64;
