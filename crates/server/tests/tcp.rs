//! End-to-end daemon tests over a real TCP socket.
//!
//! Binds to port 0 (OS-assigned) so the suite is parallel-safe, then
//! drives the full protocol: ping, flow jobs whose served reports must
//! equal an in-process [`FlowService`] run, stats, error mapping, and
//! a clean `shutdown` handshake.

use occ_server::{
    request, serve, FaultAction, FaultPlan, FlowService, JobSpec, Json, ServerConfig, Trigger,
};
use occ_soc::SocConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_budget: 0,
        ..ServerConfig::default()
    }
}

fn test_server() -> occ_server::ServerHandle {
    serve(&test_config()).expect("bind on an ephemeral port")
}

const FLOW: &str = r#"{"op":"flow","design":{"preset":"tiny","seed":5},
    "clocking":"simple-cpf","mask_bidi":true,
    "random_patterns":32,"backtrack_limit":12}"#;

/// The equivalent of [`FLOW`] against the in-process API.
fn flow_spec() -> JobSpec {
    let mut job = JobSpec::new(SocConfig::tiny(5));
    job.clocking = occ_core::ClockingMode::SimpleCpf;
    job.mask_bidi = true;
    job.atpg.random_patterns = 32;
    job.atpg.backtrack_limit = 12;
    job
}

#[test]
fn ping_round_trips() {
    let mut server = test_server();
    let response = request(server.addr(), r#"{"op":"ping"}"#).unwrap();
    let v = Json::parse(&response).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("op").and_then(Json::as_str), Some("ping"));
    server.shutdown();
}

#[test]
fn served_flow_report_matches_in_process_run() {
    let mut server = test_server();
    // Normalize newlines: requests are one line on the wire.
    let line = FLOW.replace('\n', " ");
    let response = request(server.addr(), &line).unwrap();
    let served = Json::parse(&response).unwrap();
    assert_eq!(
        served.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    assert_eq!(served.get("warm").and_then(Json::as_bool), Some(false));

    let in_process = FlowService::new(0);
    let outcome = in_process.submit(&flow_spec()).unwrap();
    let direct = Json::parse(&outcome.report.as_ref().unwrap().to_json()).unwrap();

    // The served report and the in-process report are the same
    // document once wall-clock members are stripped — the daemon is a
    // transport, not a different pipeline.
    let volatile = ["stages", "total_seconds"];
    assert_eq!(
        served
            .get("report")
            .expect("flow response carries a report")
            .clone()
            .without_keys(&volatile),
        direct.without_keys(&volatile),
    );

    // A second identical request is served warm from the daemon's
    // cache and still matches.
    let again = Json::parse(&request(server.addr(), &line).unwrap()).unwrap();
    assert_eq!(again.get("warm").and_then(Json::as_bool), Some(true));
    assert_eq!(
        again.get("report").unwrap().clone().without_keys(&volatile),
        served
            .get("report")
            .unwrap()
            .clone()
            .without_keys(&volatile),
    );

    // Stats reflect the two jobs: one design miss, one hit.
    let stats = Json::parse(&request(server.addr(), r#"{"op":"stats"}"#).unwrap()).unwrap();
    let design = stats.get("cache").unwrap().get("design").unwrap();
    assert_eq!(design.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(design.get("hits").and_then(Json::as_u64), Some(1));
    server.shutdown();
}

#[test]
fn protocol_errors_are_typed_lines() {
    let mut server = test_server();
    for (line, code) in [
        ("not json at all", "bad-request"),
        (r#"{"op":"warp"}"#, "bad-request"),
        (
            // Zero pulses parses but the flow itself rejects it — the
            // daemon must map the typed FlowError, not die.
            r#"{"op":"flow","design":{"preset":"tiny","seed":1},"clocking":"external:0"}"#,
            "unsupported-clocking",
        ),
    ] {
        let response = request(server.addr(), line).unwrap();
        let v = Json::parse(&response).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(code),
            "{line}: {response}"
        );
    }
    server.shutdown();
}

#[test]
fn one_connection_can_pipeline_requests() {
    let mut server = test_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n")
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"op\":\"ping\""), "{line}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"stats\""), "{line}");
    server.shutdown();
}

#[test]
fn concurrent_tcp_clients_get_deterministic_reports() {
    let mut server = test_server();
    let addr = server.addr();
    let line = FLOW.replace('\n', " ");
    let volatile = ["stages", "total_seconds"];

    let mut handles = Vec::new();
    for _ in 0..4 {
        let line = line.clone();
        handles.push(std::thread::spawn(move || {
            Json::parse(&request(addr, &line).unwrap())
                .unwrap()
                .get("report")
                .expect("flow response carries a report")
                .clone()
                .without_keys(&volatile)
                .to_string()
        }));
    }
    let reports: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();
    assert!(
        reports.windows(2).all(|w| w[0] == w[1]),
        "served reports diverged across concurrent clients"
    );
    server.shutdown();
}

#[test]
fn health_op_reports_state_and_pool() {
    let mut server = test_server();
    let v = Json::parse(&request(server.addr(), r#"{"op":"health"}"#).unwrap()).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("state").and_then(Json::as_str), Some("serving"));
    assert_eq!(v.get("pending").and_then(Json::as_u64), Some(0));
    assert_eq!(v.get("workers").and_then(Json::as_u64), Some(2));
    server.shutdown();
}

#[test]
fn oversized_request_line_draws_bad_request_and_closes() {
    let mut config = test_config();
    config.max_line_bytes = 256;
    let mut server = serve(&config).expect("bind on an ephemeral port");

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let huge = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}\n", "x".repeat(1024));
    stream.write_all(huge.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Json::parse(&line).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad-request"),
        "{line}"
    );
    // Framing is lost past an oversized line: the connection closes.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");

    // The daemon itself keeps serving.
    let pong = request(server.addr(), r#"{"op":"ping"}"#).unwrap();
    assert!(pong.contains("\"ok\":true"), "{pong}");
    server.shutdown();
}

#[test]
fn binary_junk_frame_is_a_typed_bad_request() {
    let mut server = test_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(&[0xFF, 0xFE, 0x00, 0x9C, b'\n']).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("bad-request"), "{line}");
    server.shutdown();
}

#[test]
fn deadline_exceeded_is_typed_and_prompt_while_others_complete() {
    // The first job to reach the flow.stage site sleeps "5 s" — but it
    // carries a 400 ms deadline, so the cooperative delay trips early
    // and the daemon answers `deadline-exceeded` well within 2x the
    // deadline. A second, deadline-free job completes normally.
    let mut config = test_config();
    config.faults =
        FaultPlan::seeded(11).inject("flow.stage", Trigger::Nth(1), FaultAction::DelayMs(5_000));
    let mut server = serve(&config).expect("bind on an ephemeral port");
    let addr = server.addr();

    let mut slow = FLOW.replace('\n', " ");
    slow.truncate(slow.len() - 1);
    slow.push_str(",\"deadline_ms\":400}");
    let t0 = Instant::now();
    let slow_thread = std::thread::spawn(move || (request(addr, &slow).unwrap(), t0.elapsed()));

    // Wait for the doomed job to be in flight before submitting the
    // healthy one, so Nth(1) deterministically hits the former.
    for _ in 0..500 {
        let v = Json::parse(&request(addr, r#"{"op":"health"}"#).unwrap()).unwrap();
        if v.get("pending").and_then(Json::as_u64) >= Some(1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(100));

    let healthy = Json::parse(&request(addr, &FLOW.replace('\n', " ")).unwrap()).unwrap();
    assert_eq!(
        healthy.get("ok").and_then(Json::as_bool),
        Some(true),
        "the deadline-free job must complete normally"
    );

    let (slow_response, elapsed) = slow_thread.join().unwrap();
    let v = Json::parse(&slow_response).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("deadline-exceeded"),
        "{slow_response}"
    );
    assert!(
        elapsed < Duration::from_millis(800),
        "deadline must bound the job: took {elapsed:?} for a 400 ms deadline"
    );
    server.shutdown();
}

#[test]
fn queued_jobs_drain_then_eof_on_shutdown() {
    // Pipelining a flow job and a shutdown on one connection: the job
    // response flushes first (ordered pipeline), then the shutdown
    // ack, then EOF — queued work drains before the daemon hangs up.
    let server = test_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut lines = FLOW.replace('\n', " ");
    lines.push('\n');
    lines.push_str("{\"op\":\"shutdown\"}\n");
    stream.write_all(lines.as_bytes()).unwrap();

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let job = Json::parse(&line).unwrap();
    assert_eq!(
        job.get("ok").and_then(Json::as_bool),
        Some(true),
        "queued job must finish during drain: {line}"
    );
    assert!(job.get("report").is_some(), "{line}");

    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"op\":\"shutdown\""), "{line}");

    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");
    server.wait();
}

#[test]
fn drain_deadline_expiry_cancels_stragglers() {
    // A job stuck in a "5 s" injected stage meets a 100 ms drain
    // deadline: the drainer cancels it, the client gets a typed
    // `cancelled` error, and the daemon still closes promptly.
    let mut config = test_config();
    config.drain_deadline_ms = 100;
    config.faults =
        FaultPlan::seeded(12).inject("flow.stage", Trigger::Always, FaultAction::DelayMs(5_000));
    let server = serve(&config).expect("bind on an ephemeral port");

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut lines = FLOW.replace('\n', " ");
    lines.push('\n');
    lines.push_str("{\"op\":\"shutdown\"}\n");
    let t0 = Instant::now();
    stream.write_all(lines.as_bytes()).unwrap();

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Json::parse(&line).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("cancelled"),
        "straggler must be cancelled at the drain deadline: {line}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "drain must not wait out the injected 5 s stage"
    );
    server.wait();
}

#[test]
fn health_and_stats_answer_during_drain_and_jobs_are_refused() {
    let mut config = test_config();
    config.drain_deadline_ms = 10_000;
    config.faults =
        FaultPlan::seeded(13).inject("flow.stage", Trigger::Always, FaultAction::DelayMs(1_500));
    let server = serve(&config).expect("bind on an ephemeral port");
    let addr = server.addr();

    // Park one job in the injected slow stage.
    let line = FLOW.replace('\n', " ");
    let job_thread = std::thread::spawn(move || request(addr, &line).unwrap());
    for _ in 0..500 {
        let v = Json::parse(&request(addr, r#"{"op":"health"}"#).unwrap()).unwrap();
        if v.get("pending").and_then(Json::as_u64) >= Some(1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // Trigger the drain from a second connection.
    let ack = request(addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(ack.contains("\"ok\":true"), "{ack}");

    // While draining: health reports the state and the straggler,
    // stats still answers, and new jobs draw `shutting-down`.
    let health = Json::parse(&request(addr, r#"{"op":"health"}"#).unwrap()).unwrap();
    assert_eq!(health.get("state").and_then(Json::as_str), Some("draining"));
    assert!(health.get("pending").and_then(Json::as_u64) >= Some(1));

    let stats = request(addr, r#"{"op":"stats"}"#).unwrap();
    assert!(stats.contains("\"ok\":true"), "{stats}");

    let refused = Json::parse(&request(addr, &FLOW.replace('\n', " ")).unwrap()).unwrap();
    assert_eq!(
        refused
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("shutting-down"),
        "new jobs must be refused during drain"
    );

    // The parked job still completes (the drain deadline is generous).
    let parked = Json::parse(&job_thread.join().unwrap()).unwrap();
    assert_eq!(
        parked.get("ok").and_then(Json::as_bool),
        Some(true),
        "in-flight job must drain to completion"
    );
    server.wait();
}

#[test]
fn overload_is_shed_with_retry_hint_and_retry_succeeds() {
    // One worker + a queue capped at 1: parking a slow job fills the
    // pool, so an immediate second job is shed with `overloaded` and a
    // retry hint; `request_with_retry` waits it out and succeeds.
    let mut config = test_config();
    config.workers = 1;
    config.max_pending = 1;
    config.faults =
        FaultPlan::seeded(14).inject("flow.stage", Trigger::Nth(1), FaultAction::DelayMs(1_000));
    let mut server = serve(&config).expect("bind on an ephemeral port");
    let addr = server.addr();

    let line = FLOW.replace('\n', " ");
    let parked = {
        let line = line.clone();
        std::thread::spawn(move || request(addr, &line).unwrap())
    };
    for _ in 0..500 {
        let v = Json::parse(&request(addr, r#"{"op":"health"}"#).unwrap()).unwrap();
        if v.get("pending").and_then(Json::as_u64) >= Some(1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // Bare request: shed, with the typed code and a retry hint.
    let shed = Json::parse(&request(addr, &line).unwrap()).unwrap();
    let error = shed.get("error").expect("typed error");
    assert_eq!(
        error.get("code").and_then(Json::as_str),
        Some("overloaded"),
        "{shed:?}"
    );
    assert!(error.get("retry_after_ms").and_then(Json::as_u64) >= Some(1));

    // Retrying client: backs off past the parked job and succeeds.
    let policy = occ_server::RetryPolicy {
        attempts: 20,
        base_ms: 100,
        cap_ms: 500,
        seed: 42,
    };
    let retried =
        Json::parse(&occ_server::request_with_retry(addr, &line, &policy).unwrap()).unwrap();
    assert_eq!(
        retried.get("ok").and_then(Json::as_bool),
        Some(true),
        "retry must eventually land: {retried:?}"
    );

    assert!(parked.join().unwrap().contains("\"ok\":true"));
    server.shutdown();
}

#[test]
fn per_connection_inflight_cap_sheds_excess_pipelining() {
    let mut config = test_config();
    config.workers = 1;
    config.max_inflight_per_conn = 1;
    config.faults =
        FaultPlan::seeded(15).inject("flow.stage", Trigger::Nth(1), FaultAction::DelayMs(500));
    let mut server = serve(&config).expect("bind on an ephemeral port");

    // Two pipelined jobs on one connection: the first parks in the
    // slow stage, the second exceeds the connection's in-flight cap.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut lines = FLOW.replace('\n', " ");
    lines.push('\n');
    lines.push_str(&FLOW.replace('\n', " "));
    lines.push('\n');
    stream.write_all(lines.as_bytes()).unwrap();

    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let mut second = String::new();
    reader.read_line(&mut second).unwrap();
    assert!(first.contains("\"ok\":true"), "{first}");
    assert!(
        second.contains("overloaded"),
        "second pipelined job must be shed: {second}"
    );
    server.shutdown();
}

#[test]
fn shutdown_op_stops_the_daemon() {
    let server = test_server();
    let addr = server.addr();
    let response = request(addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(response.contains("\"ok\":true"), "{response}");
    // The listener is closed (or closing): new requests must fail
    // rather than hang. Allow a brief grace for the accept thread to
    // observe the flag.
    let mut refused = false;
    for _ in 0..50 {
        match request(addr, r#"{"op":"ping"}"#) {
            Err(_) => {
                refused = true;
                break;
            }
            Ok(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    assert!(refused, "daemon kept serving after shutdown");
    // `wait` returns promptly once shut down.
    server.wait();
}
