//! Sharded PPSFP: fault-partition parallelism over the serial engine,
//! scheduled onto a **persistent worker pool**.
//!
//! PPSFP is embarrassingly parallel across *faults*: each fault's
//! detection mask depends only on the shared read-only inputs (the
//! compiled [`SimGraph`], the [`FrameSpec`] and the good-machine
//! batch), so the collapsed fault universe can be sharded across
//! worker threads with **no shared mutable state** — every worker owns
//! one private [`FaultSim`] scratch arena (value/stamp/bucket vectors)
//! which it reuses for all blocks it ever grades.
//!
//! The workers are spawned once, when the scheduler is created, and
//! live until it is dropped. Earlier revisions re-entered
//! `thread::scope` for every batch, which re-spawned (and re-allocated
//! the arenas of) every worker per call — exactly the wrong shape for
//! the many-small-batch ATPG phase. The pool instead holds an
//! `Arc<SimGraph>` per worker (the graph owns every compiled array, so
//! the threads need no borrow of the caller's model) and receives jobs
//! over a shared queue; per batch the inputs are shared with the
//! workers through three `Arc` clones.
//!
//! Determinism: result masks are written back by fault index, so the
//! output of [`ParallelFaultSim::detect_many`] is bit-identical to the
//! serial engine at any thread count, and the [`FaultStatus`] merge in
//! [`ParallelFaultSim::grade`] processes faults in universe order —
//! thread scheduling can never change a coverage report.
//!
//! Blocks are dealt from the shared queue, so an expensive cone
//! occupies one worker while the others drain the rest — better load
//! balance than any static striding, with the same deterministic
//! output.

use crate::cancel::CancelToken;
use crate::faultsim::FaultSim;
use crate::goodsim::GoodBatch;
use crate::graph::{KernelStats, SimGraph};
use crate::{CaptureModel, FrameSpec};
use occ_fault::{Fault, FaultList, FaultStatus};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// Default number of faults per scheduling block.
const DEFAULT_BLOCK: usize = 128;

/// One unit of work for a pool worker: grade `faults[start..end]` of a
/// shared batch and send the masks (keyed by `start`) back.
struct Job {
    spec: Arc<FrameSpec>,
    good: Arc<GoodBatch>,
    faults: Arc<Vec<Fault>>,
    start: usize,
    end: usize,
    cancel: CancelToken,
    results: mpsc::Sender<(usize, Vec<u64>, KernelStats)>,
}

/// The persistent workers plus the sending half of their job queue.
#[derive(Debug)]
struct Pool {
    // `Option` so `Drop` can hang up the queue before joining.
    jobs: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    fn spawn(graph: &Arc<SimGraph>, threads: usize) -> Pool {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let graph = Arc::clone(graph);
                thread::spawn(move || {
                    // One scratch arena per worker, reused for every
                    // block of every batch this pool ever grades.
                    let mut engine = FaultSim::from_graph(&graph);
                    loop {
                        // Hold the queue lock only while dequeueing.
                        let Ok(job) = rx.lock().expect("job queue poisoned").recv() else {
                            break; // scheduler dropped
                        };
                        let before = engine.kernel_stats();
                        // A tripped token short-circuits the block:
                        // zero masks, no grading. The caller observes
                        // the trip and discards the whole batch.
                        let masks = if job.cancel.is_cancelled() {
                            vec![0u64; job.end - job.start]
                        } else {
                            engine.attach_cancel(job.cancel.clone());
                            engine.detect_many(
                                &job.spec,
                                &job.good,
                                &job.faults[job.start..job.end],
                            )
                        };
                        let after = engine.kernel_stats();
                        let delta = KernelStats {
                            faults_graded: after.faults_graded - before.faults_graded,
                            cone_pruned: after.cone_pruned - before.cone_pruned,
                            events: after.events - before.events,
                            ..KernelStats::default()
                        };
                        // A send error means the caller gave up on the
                        // batch; keep serving the queue.
                        let _ = job.results.send((job.start, masks, delta));
                    }
                })
            })
            .collect();
        Pool {
            jobs: Some(tx),
            workers,
        }
    }

    fn submit(&self, job: Job) {
        self.jobs
            .as_ref()
            .expect("pool hung up")
            .send(job)
            .expect("fault-sim worker pool is gone");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Hang up the queue first so the blocked workers see the
        // disconnect, then reap them.
        self.jobs.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A fault-partition scheduler running the PPSFP engine on a persistent
/// pool of worker threads with per-thread scratch arenas.
///
/// # Examples
///
/// ```
/// use occ_netlist::{NetlistBuilder, Logic};
/// use occ_fault::FaultUniverse;
/// use occ_fsim::{ClockBinding, CaptureModel, FrameSpec, CycleSpec, Pattern,
///                simulate_good, FaultSim, ParallelFaultSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("t");
/// let clk = b.input("clk");
/// let d = b.input("d");
/// let se = b.input("se");
/// let si = b.input("si");
/// let ff = b.sdff(d, clk, se, si);
/// b.output("q", ff);
/// let nl = b.finish()?;
/// let mut binding = ClockBinding::new();
/// binding.add_domain("a", clk);
/// binding.constrain(se, Logic::Zero);
/// binding.mask(si);
/// let model = CaptureModel::new(&nl, binding)?;
///
/// let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
/// let mut p = Pattern::empty(&model, &spec, 0);
/// p.pis[0] = vec![Logic::One];
/// let good = simulate_good(&model, &spec, &[p]);
///
/// let faults = FaultUniverse::stuck_at(&nl).faults().to_vec();
/// let serial = FaultSim::new(&model).detect_many(&spec, &good, &faults);
/// let sharded = ParallelFaultSim::with_threads(&model, 4).detect_many(&spec, &good, &faults);
/// assert_eq!(serial, sharded);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParallelFaultSim<'g> {
    graph: &'g SimGraph,
    threads: usize,
    block: usize,
    // The persistent workers (absent when the scheduler is serial).
    pool: Option<Pool>,
    // Lazily-built serial engine reused across small-batch calls (the
    // ATPG compaction loop grades one pattern at a time; rebuilding
    // the scratch arenas per call would dominate).
    scratch: Option<FaultSim<'g>>,
    // Kernel work counters merged back from worker shards (atomic so
    // `detect_many(&self)` can record them).
    faults_graded: AtomicU64,
    cone_pruned: AtomicU64,
    events: AtomicU64,
    // Cooperative cancellation, shared with every worker per job (the
    // default token never trips).
    cancel: CancelToken,
}

impl<'g> ParallelFaultSim<'g> {
    /// Creates a scheduler using all available hardware parallelism.
    pub fn new(model: &'g CaptureModel<'_>) -> Self {
        let threads = thread::available_parallelism().map_or(1, std::num::NonZero::get);
        Self::with_threads(model, threads)
    }

    /// Creates a scheduler with an explicit worker count (`0` and `1`
    /// both mean "run serially on the calling thread"). Workers are
    /// spawned immediately and live until the scheduler is dropped.
    pub fn with_threads(model: &'g CaptureModel<'_>, threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = (threads > 1).then(|| Pool::spawn(&model.graph_arc(), threads));
        ParallelFaultSim {
            graph: model.graph(),
            threads,
            block: DEFAULT_BLOCK,
            pool,
            scratch: None,
            faults_graded: AtomicU64::new(0),
            cone_pruned: AtomicU64::new(0),
            events: AtomicU64::new(0),
            cancel: CancelToken::never(),
        }
    }

    /// Attaches a cooperative-cancellation token; every subsequent
    /// batch polls it at block boundaries (workers skip blocks once it
    /// trips and return zero masks). The caller is expected to discard
    /// the truncated batch after observing the trip.
    pub fn attach_cancel(&mut self, token: CancelToken) {
        if let Some(scratch) = &mut self.scratch {
            scratch.attach_cancel(token.clone());
        }
        self.cancel = token;
    }

    /// Kernel statistics aggregated over every shard this scheduler has
    /// run (plus the cached serial scratch engine, when used).
    pub fn kernel_stats(&self) -> KernelStats {
        let mut s = self.graph.static_stats();
        s.faults_graded = self.faults_graded.load(Ordering::Relaxed);
        s.cone_pruned = self.cone_pruned.load(Ordering::Relaxed);
        s.events = self.events.load(Ordering::Relaxed);
        if let Some(scratch) = &self.scratch {
            s.absorb(&scratch.kernel_stats());
        }
        s
    }

    /// Overrides the scheduling block size (faults handed to a worker
    /// at a time). Mainly for tests; the default suits real designs.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn block_size(mut self, block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        self.block = block;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Like [`ParallelFaultSim::detect_many`], but reuses a cached
    /// serial scratch arena for the small batches that fall below the
    /// sharding threshold (how the trait-object ATPG path calls in —
    /// static compaction grades one pattern at a time).
    pub fn detect_many_cached(
        &mut self,
        spec: &FrameSpec,
        good: &GoodBatch,
        faults: &[Fault],
    ) -> Vec<u64> {
        if self.threads == 1 || faults.len() <= self.block {
            let graph = self.graph;
            let cancel = self.cancel.clone();
            let scratch = self.scratch.get_or_insert_with(|| {
                let mut engine = FaultSim::from_graph(graph);
                engine.attach_cancel(cancel);
                engine
            });
            return scratch.detect_many(spec, good, faults);
        }
        self.detect_many(spec, good, faults)
    }

    /// Detects a batch of faults, returning one 64-bit mask per fault —
    /// bit-identical to [`FaultSim::detect_many`] at any thread count.
    pub fn detect_many(&self, spec: &FrameSpec, good: &GoodBatch, faults: &[Fault]) -> Vec<u64> {
        // Below roughly one block per worker the cross-thread handoff
        // cannot pay for itself; fall through to the serial engine.
        let Some(pool) = self.pool.as_ref().filter(|_| faults.len() > self.block) else {
            let mut engine = FaultSim::from_graph(self.graph);
            engine.attach_cancel(self.cancel.clone());
            let masks = engine.detect_many(spec, good, faults);
            self.merge_stats(&engine.kernel_stats());
            return masks;
        };

        // The workers run outside this thread's span scope, so the
        // whole sharded batch is one span on the calling thread.
        let mut batch_span = occ_obs::span("fsim.batch");
        batch_span.attr_u64("faults", faults.len() as u64);
        batch_span.attr_u64("patterns", good.n_patterns as u64);
        batch_span.attr_u64("threads", self.threads as u64);

        // Share the batch inputs with the pool; the clones live only as
        // long as the slowest worker needs them.
        let spec = Arc::new(spec.clone());
        let good_arc = Arc::new(good.clone());
        let faults_arc = Arc::new(faults.to_vec());
        let (tx, rx) = mpsc::channel();
        let n_blocks = faults.len().div_ceil(self.block);
        for b in 0..n_blocks {
            let start = b * self.block;
            pool.submit(Job {
                spec: Arc::clone(&spec),
                good: Arc::clone(&good_arc),
                faults: Arc::clone(&faults_arc),
                start,
                end: (start + self.block).min(faults.len()),
                cancel: self.cancel.clone(),
                results: tx.clone(),
            });
        }
        drop(tx);

        // Deterministic merge: each block owns a disjoint index range.
        let mut out = vec![0u64; faults.len()];
        for _ in 0..n_blocks {
            let (start, masks, stats) = rx.recv().expect("fault-sim worker panicked");
            self.merge_stats(&stats);
            out[start..start + masks.len()].copy_from_slice(&masks);
        }
        out
    }

    fn merge_stats(&self, stats: &KernelStats) {
        self.faults_graded
            .fetch_add(stats.faults_graded, Ordering::Relaxed);
        self.cone_pruned
            .fetch_add(stats.cone_pruned, Ordering::Relaxed);
        self.events.fetch_add(stats.events, Ordering::Relaxed);
    }

    /// Grades every fault of `list` that is not yet detected against
    /// the batch and merges the detection masks into [`FaultStatus`]:
    /// a fault with a non-zero mask becomes
    /// `Detected { pattern: pattern_of_bit(lowest set bit) }`.
    ///
    /// The merge walks faults in universe order, so the resulting
    /// statuses are independent of thread count and scheduling. Returns
    /// the number of faults newly marked detected.
    pub fn grade(
        &self,
        spec: &FrameSpec,
        good: &GoodBatch,
        list: &mut FaultList,
        mut pattern_of_bit: impl FnMut(usize) -> u32,
    ) -> usize {
        let candidates: Vec<Fault> = list
            .iter()
            .filter(|(_, s)| !s.is_detected())
            .map(|(f, _)| f)
            .collect();
        let masks = self.detect_many(spec, good, &candidates);
        let mut newly = 0;
        for (fault, mask) in candidates.into_iter().zip(masks) {
            if mask != 0 {
                let bit = mask.trailing_zeros() as usize;
                list.set_status(
                    fault,
                    FaultStatus::Detected {
                        pattern: pattern_of_bit(bit),
                    },
                );
                newly += 1;
            }
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_good, ClockBinding, CycleSpec, Pattern};
    use occ_fault::FaultUniverse;
    use occ_netlist::{Logic, NetlistBuilder};

    /// A few dozen gates with reconvergence, scan flops and a PO.
    fn rig() -> occ_netlist::Netlist {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let mut prev = si;
        let mut taps = Vec::new();
        for i in 0..8 {
            let d = b.input(&format!("d{i}"));
            let f = b.sdff(d, clk, se, prev);
            let g = b.xor2(f, d);
            let h = b.and2(g, f);
            taps.push(h);
            prev = f;
        }
        let mut acc = taps[0];
        for &t in &taps[1..] {
            acc = b.or2(acc, t);
        }
        let fout = b.sdff(acc, clk, se, prev);
        b.output("po", acc);
        b.output("q", fout);
        b.finish().unwrap()
    }

    fn check_identical(threads: usize, block: usize) {
        let nl = rig();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", nl.find("clk").unwrap());
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);

        let n_scan = model.scan_flops().len();
        let mut patterns = Vec::new();
        for i in 0..16u64 {
            let mut p = Pattern::empty(&model, &spec, 0);
            p.scan_load = (0..n_scan)
                .map(|s| Logic::from_bool((i >> (s % 16)) & 1 == 1))
                .collect();
            for frame in &mut p.pis {
                for (j, v) in frame.iter_mut().enumerate() {
                    *v = Logic::from_bool((i + j as u64).is_multiple_of(3));
                }
            }
            patterns.push(p);
        }
        let good = simulate_good(&model, &spec, &patterns);
        let faults = FaultUniverse::stuck_at(&nl).faults().to_vec();

        let serial = FaultSim::new(&model).detect_many(&spec, &good, &faults);
        let sharded = ParallelFaultSim::with_threads(&model, threads)
            .block_size(block)
            .detect_many(&spec, &good, &faults);
        assert_eq!(serial, sharded, "threads={threads} block={block}");
        assert!(
            serial.iter().any(|&m| m != 0),
            "degenerate: nothing detected"
        );
    }

    #[test]
    fn sharded_masks_match_serial_across_thread_counts() {
        for threads in [1, 2, 3, 8] {
            check_identical(threads, 4);
        }
    }

    #[test]
    fn sharded_masks_match_serial_with_ragged_tail_block() {
        // Block sizes that do not divide the fault count exercise the
        // final short block.
        for block in [1, 3, 7, 64] {
            check_identical(4, block);
        }
    }

    #[test]
    fn pool_survives_many_batches() {
        // The persistent pool must serve repeated batches (the ATPG
        // shape) without respawning or wedging, and stay bit-identical.
        let nl = rig();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", nl.find("clk").unwrap());
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        let mut p = Pattern::empty(&model, &spec, 0);
        p.fill_x(|| Logic::One);
        let good = simulate_good(&model, &spec, &[p]);
        let faults = FaultUniverse::stuck_at(&nl).faults().to_vec();

        let mut serial = FaultSim::new(&model);
        let want = serial.detect_many(&spec, &good, &faults);
        let psim = ParallelFaultSim::with_threads(&model, 4).block_size(2);
        for round in 0..10 {
            let got = psim.detect_many(&spec, &good, &faults);
            assert_eq!(got, want, "round {round}");
        }
        let graded = psim.kernel_stats().faults_graded;
        assert_eq!(graded, 10 * faults.len() as u64);
    }

    #[test]
    fn grade_merges_in_universe_order() {
        let nl = rig();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", nl.find("clk").unwrap());
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let model = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        let mut p = Pattern::empty(&model, &spec, 0);
        let n_scan = model.scan_flops().len();
        p.scan_load = (0..n_scan).map(|s| Logic::from_bool(s % 2 == 0)).collect();
        for frame in &mut p.pis {
            frame.fill(Logic::One);
        }
        let good = simulate_good(&model, &spec, &[p]);
        let uni = FaultUniverse::stuck_at(&nl);

        let mut serial_list = FaultList::new(uni.clone());
        let mut engine = FaultSim::new(&model);
        for fault in uni.faults().to_vec() {
            if engine.detect(&spec, &good, fault) != 0 {
                serial_list.set_status(fault, FaultStatus::Detected { pattern: 7 });
            }
        }

        for threads in [1, 2, 8] {
            let mut list = FaultList::new(uni.clone());
            let psim = ParallelFaultSim::with_threads(&model, threads).block_size(2);
            let newly = psim.grade(&spec, &good, &mut list, |_| 7);
            assert_eq!(newly, serial_list.report().detected, "threads={threads}");
            for (fault, status) in list.iter() {
                assert_eq!(status, serial_list.status(fault), "fault {fault}");
            }
        }
    }
}
