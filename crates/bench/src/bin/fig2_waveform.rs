//! Reproduces Figure 2: the two-domain delay-test clocking — slow scan
//! shifting, then one at-speed launch/capture pulse pair per domain
//! released by the CPFs, then shifting again.
//!
//! `--vcd` dumps the trace as VCD instead of ASCII art.

use occ_bench::fig2_waveforms;

fn main() {
    let vcd_wanted = std::env::args().any(|a| a == "--vcd");
    let fig = fig2_waveforms(20050307);
    if vcd_wanted {
        println!("{}", fig.vcd);
        return;
    }
    println!("Figure 2 — delay test clocking for two clock domains");
    println!("====================================================");
    println!("(shift at 20 MHz, then scan_en drops, one scan_clk trigger");
    println!("pulse arms the CPFs, each domain receives exactly two");
    println!("at-speed pulses, then shifting resumes)\n");
    print!("{}", fig.ascii);
    println!(
        "\nat-speed pulses in capture window {:?}: {:?} (paper: 2 per domain)",
        fig.window, fig.pulses_per_domain
    );
}
