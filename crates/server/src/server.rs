//! The TCP daemon: accept loop, pipelined per-connection handling,
//! shared job pool, admission control and graceful drain.
//!
//! Topology: one listener thread accepts connections; each connection
//! gets a reader thread that parses request lines and *enqueues* jobs
//! on the shared [`JobPool`] (so N connections never oversubscribe the
//! machine — the worker budget bounds concurrent flows) plus a writer
//! thread that emits responses **in request order** (each request
//! contributes one single-use result channel to an ordered pipeline).
//! A connection may therefore pipeline requests without waiting: its
//! jobs run concurrently up to the per-connection in-flight cap, and
//! different connections' jobs share the pool width.
//!
//! ## Admission control
//!
//! Load is shed *before* it queues: a job is rejected with a typed
//! `overloaded` error (carrying a `retry_after_ms` hint) when the
//! pool's pending depth reaches [`ServerConfig::max_pending`] or the
//! connection's in-flight count reaches
//! [`ServerConfig::max_inflight_per_conn`]. Request framing is bounded
//! too: a line longer than [`ServerConfig::max_line_bytes`] draws a
//! `bad-request` and closes the connection (the frame boundary is
//! lost), so a buggy client cannot balloon daemon memory through
//! an unbounded `read_line`.
//!
//! ## Graceful drain
//!
//! The `shutdown` op (or [`ServerHandle::shutdown`]) moves the daemon
//! `serving → draining`: new jobs are rejected with `shutting-down`,
//! while `ping`/`stats`/`health` keep answering and queued jobs keep
//! running. A drainer thread waits for the pool to empty, up to
//! [`ServerConfig::drain_deadline_ms`]; past the deadline it cancels
//! the server-wide drain token — every in-flight job observes it at
//! its next batch boundary and returns a typed `cancelled` error — and
//! then closes the listener (`draining → closed`).

use crate::faults::{FaultAction, FaultPlan};
use crate::json::Json;
use crate::pool::JobPool;
use crate::proto::{
    error_line, health_line, metrics_line, parse_request, run_job_with_cancel, stats_line,
    ProtoError, Request,
};
use crate::service::FlowService;
use occ_flow::CancelToken;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks a free port (tests); the default
    /// binds loopback only — this is a build service, not an internet
    /// daemon.
    pub addr: String,
    /// Job-pool worker threads.
    pub workers: usize,
    /// Artifact-cache byte budget (0 = unlimited).
    pub cache_budget: usize,
    /// Shed jobs once this many are pending (queued + running) across
    /// all connections (0 = unlimited).
    pub max_pending: usize,
    /// Shed jobs once one connection has this many in flight
    /// (0 = unlimited).
    pub max_inflight_per_conn: usize,
    /// Longest accepted request line in bytes; longer frames draw a
    /// `bad-request` and close the connection.
    pub max_line_bytes: usize,
    /// How long a drain waits for queued jobs before cancelling the
    /// stragglers.
    pub drain_deadline_ms: u64,
    /// Fault-injection plan (chaos tests / degraded-mode bench); the
    /// default injects nothing.
    pub faults: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4805".to_owned(), // DATE 2005 ;-)
            workers: 2,
            cache_budget: 0,
            max_pending: 64,
            max_inflight_per_conn: 8,
            max_line_bytes: 64 * 1024,
            drain_deadline_ms: 5_000,
            faults: FaultPlan::none(),
        }
    }
}

// Daemon lifecycle states.
const SERVING: u8 = 0;
const DRAINING: u8 = 1;
const CLOSED: u8 = 2;

/// What the accept loop, every connection and the drainer share.
#[derive(Debug)]
struct Shared {
    service: FlowService,
    pool: JobPool,
    state: AtomicU8,
    /// Cancelled when the drain deadline expires; every job token is a
    /// child of this one.
    drain: CancelToken,
    addr: SocketAddr,
    max_pending: usize,
    max_inflight_per_conn: usize,
    max_line_bytes: usize,
    drain_deadline_ms: u64,
    faults: FaultPlan,
}

/// A running daemon: its bound address plus the shutdown controls.
#[derive(Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Blocks until the accept loop exits on its own — i.e. until a
    /// client sends the `shutdown` op and the drain completes. The
    /// daemon binary's main loop.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Starts a graceful drain (idempotent) and blocks until it
    /// completes: queued jobs finish (or are cancelled at the drain
    /// deadline), then the listener closes.
    pub fn shutdown(&mut self) {
        trigger_drain(&self.shared);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds and spawns the daemon; returns immediately with its handle.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission).
pub fn serve(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        service: FlowService::with_faults(config.cache_budget, config.faults.clone()),
        pool: JobPool::new(config.workers),
        state: AtomicU8::new(SERVING),
        drain: CancelToken::new(),
        addr,
        max_pending: config.max_pending,
        max_inflight_per_conn: config.max_inflight_per_conn,
        max_line_bytes: config.max_line_bytes,
        drain_deadline_ms: config.drain_deadline_ms,
        faults: config.faults.clone(),
    });

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("occ-accept".to_owned())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.state.load(Ordering::SeqCst) == CLOSED {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                // Connection threads are detached: they hold only Arcs
                // and exit on client EOF or close.
                let _ = std::thread::Builder::new()
                    .name("occ-conn".to_owned())
                    .spawn(move || handle_connection(stream, &conn_shared));
            }
            // Pool (and its workers) drop with the last Arc.
        })
        .expect("spawn accept thread");

    Ok(ServerHandle {
        shared,
        accept_thread: Some(accept_thread),
    })
}

/// Moves `serving → draining` (first caller wins) and spawns the
/// drainer that will eventually close the listener.
fn trigger_drain(shared: &Arc<Shared>) {
    if shared
        .state
        .compare_exchange(SERVING, DRAINING, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return; // already draining or closed
    }
    let s = Arc::clone(shared);
    let _ = std::thread::Builder::new()
        .name("occ-drain".to_owned())
        .spawn(move || {
            let poll = Duration::from_millis(2);
            let deadline = Instant::now() + Duration::from_millis(s.drain_deadline_ms);
            while s.pool.pending() > 0 && Instant::now() < deadline {
                std::thread::sleep(poll);
            }
            if s.pool.pending() > 0 {
                // Drain deadline expired: abandon the stragglers. Every
                // in-flight job's token is a child of this one, so each
                // returns a typed `cancelled` error at its next batch
                // boundary. A bounded grace keeps a wedged job from
                // hanging the drain forever.
                s.drain.cancel();
                let grace = Instant::now() + Duration::from_millis(s.drain_deadline_ms.max(100));
                while s.pool.pending() > 0 && Instant::now() < grace {
                    std::thread::sleep(poll);
                }
            }
            s.state.store(CLOSED, Ordering::SeqCst);
            // Poke the listener so accept() observes the state.
            let _ = TcpStream::connect(s.addr);
        });
}

/// One bounded request frame.
enum Frame {
    Line(String),
    /// The line exceeded the cap; the connection must close (its frame
    /// boundary is unknown).
    Oversized,
}

/// Reads one newline-terminated frame without ever buffering more than
/// `max` bytes of it.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    max: usize,
) -> std::io::Result<Option<Frame>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            // EOF: a trailing unterminated line still parses.
            return Ok(if buf.is_empty() {
                None
            } else {
                Some(Frame::Line(String::from_utf8_lossy(&buf).into_owned()))
            });
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            return Ok(Some(if buf.len() > max {
                Frame::Oversized
            } else {
                Frame::Line(String::from_utf8_lossy(&buf).into_owned())
            }));
        }
        let take = available.len();
        buf.extend_from_slice(available);
        reader.consume(take);
        if buf.len() > max {
            return Ok(Some(Frame::Oversized));
        }
    }
}

/// Pushes an already-rendered response into the ordered pipeline.
fn enqueue_ready(pipe: &mpsc::Sender<mpsc::Receiver<String>>, line: String) {
    let (tx, rx) = mpsc::channel();
    let _ = tx.send(line);
    let _ = pipe.send(rx);
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);

    // Ordered response pipeline: the reader pushes one single-use
    // receiver per request; the writer drains them in order, so
    // pipelined requests answer in request order even though their
    // jobs complete in any order.
    let (pipe_tx, pipe_rx) = mpsc::channel::<mpsc::Receiver<String>>();
    let writer_faults = shared.faults.clone();
    let writer = std::thread::Builder::new()
        .name("occ-conn-write".to_owned())
        .spawn(move || write_loop(stream, &pipe_rx, &writer_faults))
        .expect("spawn connection writer");

    // This connection's jobs in flight (queued or running).
    let inflight = Arc::new(AtomicUsize::new(0));

    // (Ok(None) = EOF, Err = transport error; both end the loop.)
    while let Ok(Some(frame)) = read_bounded_line(&mut reader, shared.max_line_bytes) {
        let line = match frame {
            Frame::Line(line) => line,
            Frame::Oversized => {
                if let Some(c) = occ_obs::metrics().request_error("bad-request") {
                    c.inc();
                }
                enqueue_ready(
                    &pipe_tx,
                    error_line(&ProtoError::new(
                        "bad-request",
                        format!(
                            "request line exceeds {} bytes; closing connection",
                            shared.max_line_bytes
                        ),
                    )),
                );
                break; // framing lost
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let received = Instant::now();
        match parse_request(&line) {
            Err(e) => {
                if let Some(c) = occ_obs::metrics().request_error(e.code) {
                    c.inc();
                }
                enqueue_ready(&pipe_tx, error_line(&e));
            }
            Ok(req) => {
                let op = op_label(&req);
                if let Some(c) = occ_obs::metrics().request(op) {
                    c.inc();
                }
                match req {
                    Request::Ping => {
                        enqueue_ready(&pipe_tx, r#"{"ok":true,"op":"ping"}"#.to_owned());
                        observe_latency(op, received);
                    }
                    Request::Stats => {
                        refresh_gauges(shared);
                        enqueue_ready(&pipe_tx, stats_line(&shared.service.cache_stats()));
                        observe_latency(op, received);
                    }
                    Request::Health => {
                        let state = match shared.state.load(Ordering::SeqCst) {
                            SERVING => "serving",
                            DRAINING => "draining",
                            _ => "closed",
                        };
                        enqueue_ready(
                            &pipe_tx,
                            health_line(state, shared.pool.pending(), shared.pool.threads()),
                        );
                        observe_latency(op, received);
                    }
                    Request::Metrics => {
                        refresh_gauges(shared);
                        enqueue_ready(&pipe_tx, metrics_line());
                        observe_latency(op, received);
                    }
                    Request::Shutdown => {
                        trigger_drain(shared);
                        enqueue_ready(&pipe_tx, r#"{"ok":true,"op":"shutdown"}"#.to_owned());
                        observe_latency(op, received);
                        // Earlier pipelined responses (queued jobs
                        // included) still flush in order before the
                        // writer hangs up — then the client observes
                        // EOF.
                        break;
                    }
                    Request::Job { spec, format } => match admit(shared, &inflight) {
                        Err(rejection) => enqueue_ready(&pipe_tx, rejection),
                        Ok(()) => {
                            let (tx, rx) = mpsc::channel::<String>();
                            let _ = pipe_tx.send(rx);
                            let job_shared = Arc::clone(shared);
                            let job_inflight = Arc::clone(&inflight);
                            shared.pool.submit(move || {
                                let line = run_pooled_job(&job_shared, &spec, format);
                                // Latency covers queue wait + run, as a
                                // client experiences it.
                                observe_latency(op, received);
                                job_inflight.fetch_sub(1, Ordering::SeqCst);
                                let _ = tx.send(line);
                            });
                        }
                    },
                }
            }
        }
    }
    // Hang up the pipeline; the writer flushes what is queued, then
    // exits (EOF on the client side).
    drop(pipe_tx);
    let _ = writer.join();
}

/// The registry label for a parsed request — matches [`occ_obs::OPS`].
fn op_label(req: &Request) -> &'static str {
    match req {
        Request::Ping => "ping",
        Request::Stats => "stats",
        Request::Health => "health",
        Request::Metrics => "metrics",
        Request::Shutdown => "shutdown",
        Request::Job { spec, .. } => {
            if spec.analyze_only {
                "analyze"
            } else {
                "flow"
            }
        }
    }
}

/// Records one request's wall latency (receipt to response ready) in
/// the per-op histogram.
fn observe_latency(op: &str, received: Instant) {
    if let Some(h) = occ_obs::metrics().latency(op) {
        h.observe(received.elapsed().as_secs_f64());
    }
}

/// Refreshes the registry's gauges (cache footprint, queue depth) from
/// their live sources, so a scrape never reads stale values.
fn refresh_gauges(shared: &Shared) {
    let m = occ_obs::metrics();
    let stats = shared.service.cache_stats();
    m.cache_resident_bytes
        .set(i64::try_from(stats.bytes).unwrap_or(i64::MAX));
    m.cache_entries
        .set(i64::try_from(stats.entries).unwrap_or(i64::MAX));
    m.jobs_pending
        .set(i64::try_from(shared.pool.pending()).unwrap_or(i64::MAX));
}

/// Admission control for one job request. `Ok` reserves an in-flight
/// slot (released by the job closure); `Err` is the rendered rejection.
fn admit(shared: &Shared, inflight: &AtomicUsize) -> Result<(), String> {
    let m = occ_obs::metrics();
    if shared.state.load(Ordering::SeqCst) != SERVING {
        if let Some(c) = m.request_error("shutting-down") {
            c.inc();
        }
        return Err(error_line(&ProtoError::new(
            "shutting-down",
            "server is draining; no new jobs",
        )));
    }
    if shared.max_pending > 0 && shared.pool.pending() >= shared.max_pending {
        m.admission_shed[0].inc(); // reason="queue"
        if let Some(c) = m.request_error("overloaded") {
            c.inc();
        }
        return Err(error_line(&ProtoError::overloaded(
            format!("job queue is full ({} pending)", shared.pool.pending()),
            200,
        )));
    }
    if shared.max_inflight_per_conn > 0
        && inflight.load(Ordering::SeqCst) >= shared.max_inflight_per_conn
    {
        m.admission_shed[1].inc(); // reason="connection"
        if let Some(c) = m.request_error("overloaded") {
            c.inc();
        }
        return Err(error_line(&ProtoError::overloaded(
            format!(
                "connection already has {} jobs in flight",
                shared.max_inflight_per_conn
            ),
            100,
        )));
    }
    inflight.fetch_add(1, Ordering::SeqCst);
    Ok(())
}

/// Runs one job on a pool worker, converting a panic (the job's or an
/// injected one) into a typed `internal` error carrying the panic
/// message — the submitter always gets a response line.
fn run_pooled_job(
    shared: &Shared,
    spec: &crate::service::JobSpec,
    format: crate::proto::ReportFormat,
) -> String {
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(FaultAction::Panic(msg)) = shared.faults.fire("worker.job") {
            panic!("{msg}");
        }
        run_job_with_cancel(&shared.service, spec, format, Some(&shared.drain))
    }));
    match result {
        Ok(line) => line,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&'static str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("<non-string panic payload>");
            error_line(&ProtoError::new("internal", format!("job panicked: {msg}")))
        }
    }
}

/// Drains the ordered pipeline onto the socket. The `tcp.write`
/// injection site can tear or drop the connection per response.
fn write_loop(
    mut stream: TcpStream,
    pipe: &mpsc::Receiver<mpsc::Receiver<String>>,
    faults: &FaultPlan,
) {
    for rx in pipe {
        // The sender is only dropped without sending if the job closure
        // itself died outside its panic guard — answer something typed
        // rather than going silent.
        let line = rx.recv().unwrap_or_else(|_| {
            error_line(&ProtoError::new(
                "internal",
                "job worker dropped the result",
            ))
        });
        match faults.fire("tcp.write") {
            Some(FaultAction::DropConn) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Some(FaultAction::TornWrite) => {
                let bytes = line.as_bytes();
                let _ = stream.write_all(&bytes[..bytes.len() / 2]);
                let _ = stream.flush();
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            _ => {}
        }
        if stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .is_err()
        {
            return;
        }
    }
}

/// Client helper: sends one request line, reads one response line.
/// What `occ_client` and the tests use; real clients can speak the
/// protocol with nothing but a socket.
///
/// # Errors
///
/// Propagates connect/write/read failures; a closed-without-response
/// connection yields `UnexpectedEof`.
pub fn request(addr: SocketAddr, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    let n = reader.read_line(&mut response)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection without a response",
        ));
    }
    while response.ends_with('\n') || response.ends_with('\r') {
        response.pop();
    }
    Ok(response)
}

/// Client-side retry behaviour for [`request_with_retry`]: seeded
/// jittered exponential backoff, honouring the server's
/// `retry_after_ms` hint when an `overloaded` rejection carries one.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (at least 1).
    pub attempts: u32,
    /// Backoff base: attempt `k` waits about `base_ms << k`.
    pub base_ms: u64,
    /// Upper bound on any single backoff wait.
    pub cap_ms: u64,
    /// Jitter seed — same seed, same retry schedule (deterministic
    /// tests).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_ms: 50,
            cap_ms: 2_000,
            seed: 0x0CC,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry number `attempt` (0-based): exponential
    /// backoff capped at `cap_ms`, with the upper half jittered by the
    /// seeded stream.
    fn backoff_ms(&self, attempt: u32, rng: &mut u64) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cap_ms.max(1));
        let mut x = *rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *rng = x;
        exp / 2 + x % (exp / 2 + 1)
    }
}

/// Whether `response` is a retryable rejection, and the server's
/// retry-after hint if it carried one. Only `overloaded` is retryable:
/// `shutting-down` means the daemon is going away, and every other
/// error is deterministic — retrying cannot change it.
fn retry_hint(response: &str) -> Option<Option<u64>> {
    let v = Json::parse(response).ok()?;
    if v.get("ok").and_then(Json::as_bool) != Some(false) {
        return None;
    }
    let error = v.get("error")?;
    if error.get("code").and_then(Json::as_str) != Some("overloaded") {
        return None;
    }
    Some(error.get("retry_after_ms").and_then(Json::as_u64))
}

/// [`request`] with retries: transport failures and `overloaded`
/// rejections back off (the server's `retry_after_ms` hint wins over
/// the policy's own schedule) and try again, up to
/// [`RetryPolicy::attempts`].
///
/// # Errors
///
/// The last transport error once attempts are exhausted. A response —
/// even a typed protocol error — is returned, not an `Err`; only
/// `overloaded` responses are retried.
pub fn request_with_retry(
    addr: SocketAddr,
    line: &str,
    policy: &RetryPolicy,
) -> std::io::Result<String> {
    let attempts = policy.attempts.max(1);
    let mut rng = policy.seed | 1;
    let mut last_err = None;
    for attempt in 0..attempts {
        match request(addr, line) {
            Ok(response) => match retry_hint(&response) {
                Some(hint) if attempt + 1 < attempts => {
                    let wait = hint.unwrap_or_else(|| policy.backoff_ms(attempt, &mut rng));
                    std::thread::sleep(Duration::from_millis(wait));
                }
                _ => return Ok(response),
            },
            Err(e) => {
                last_err = Some(e);
                if attempt + 1 < attempts {
                    let wait = policy.backoff_ms(attempt, &mut rng);
                    std::thread::sleep(Duration::from_millis(wait));
                }
            }
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("retries exhausted")))
}
