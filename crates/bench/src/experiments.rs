//! Table 1: the five ATPG experiments, each one [`TestFlow`] run.

use occ_atpg::AtpgOptions;
use occ_core::ClockingMode;
use occ_flow::{
    AtpgEngineChoice, BistConfig, EdtConfig, EngineChoice, FaultKind, FlowError, FlowReport,
    PatternSource, TestFlow,
};
use occ_server::{CacheStats, FlowService, JobCacheStats, JobSpec};
use occ_sim::DelayModel;
use occ_soc::{Soc, SocConfig};
use std::fmt;
use std::str::FromStr;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// (a) stuck-at test using a single external clock.
    A,
    /// (b) transition test using a single external clock (ideal).
    B,
    /// (c) transition test using simple 2-pulse on-chip CPFs.
    C,
    /// (d) transition test using enhanced CPFs (2–4 pulses +
    /// inter-domain).
    D,
    /// (e) transition test, external clock with all ATE constraints.
    E,
}

impl ExperimentId {
    /// All rows in paper order.
    pub const ALL: [ExperimentId; 5] = [
        ExperimentId::A,
        ExperimentId::B,
        ExperimentId::C,
        ExperimentId::D,
        ExperimentId::E,
    ];

    /// The paper's description of the row.
    pub fn description(self) -> &'static str {
        match self {
            ExperimentId::A => "stuck-at, single external clock",
            ExperimentId::B => "transition, single external clock",
            ExperimentId::C => "transition, on-chip clock generation (2-pulse CPF)",
            ExperimentId::D => "transition, enhanced CPF (2-4 pulses, inter-domain)",
            ExperimentId::E => "transition, external clock with ATE constraints",
        }
    }

    /// Parses a row label (`a`..`e`).
    #[deprecated(
        since = "0.1.0",
        note = "use the `FromStr` impl: `s.parse::<ExperimentId>()`"
    )]
    pub fn parse(s: &str) -> Option<Self> {
        s.parse().ok()
    }
}

/// Error parsing an [`ExperimentId`] row label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExperimentIdError {
    input: String,
}

impl fmt::Display for ParseExperimentIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown Table 1 row '{}' (expected a, b, c, d or e)",
            self.input
        )
    }
}

impl std::error::Error for ParseExperimentIdError {}

impl FromStr for ExperimentId {
    type Err = ParseExperimentIdError;

    /// Parses a row label (`a`..`e`, case-insensitive, with or without
    /// the display parentheses).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s
            .trim()
            .trim_start_matches('(')
            .trim_end_matches(')')
            .to_ascii_lowercase()
            .as_str()
        {
            "a" => Ok(ExperimentId::A),
            "b" => Ok(ExperimentId::B),
            "c" => Ok(ExperimentId::C),
            "d" => Ok(ExperimentId::D),
            "e" => Ok(ExperimentId::E),
            _ => Err(ParseExperimentIdError {
                input: s.to_owned(),
            }),
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            ExperimentId::A => 'a',
            ExperimentId::B => 'b',
            ExperimentId::C => 'c',
            ExperimentId::D => 'd',
            ExperimentId::E => 'e',
        };
        write!(f, "({c})")
    }
}

/// The measured outcome of one experiment.
#[derive(Debug)]
pub struct ExperimentRow {
    /// Which experiment.
    pub id: ExperimentId,
    /// Test coverage in percent (detected / total collapsed faults).
    pub coverage_pct: f64,
    /// ATPG efficiency in percent.
    pub efficiency_pct: f64,
    /// Pattern count (scan loads).
    pub patterns: usize,
    /// Total collapsed faults.
    pub total_faults: usize,
    /// Wall-clock seconds for the run (all flow stages).
    pub seconds: f64,
    /// The full flow report (stage timings, ATPG stats, fault
    /// statuses, pattern set).
    pub report: FlowReport,
    /// Per-artifact cache hit/miss of the run, when it went through a
    /// [`FlowService`] (`None` for direct [`run_experiment`] calls).
    pub cache: Option<JobCacheStats>,
}

/// Options for a Table 1 reproduction run.
#[derive(Debug, Clone)]
pub struct Table1Options {
    /// SOC generator seed.
    pub seed: u64,
    /// Flops per clock domain.
    pub flops_per_domain: usize,
    /// PODEM backtrack limit.
    pub backtrack_limit: usize,
    /// Fault-simulation engine all experiments grade through.
    pub engine: EngineChoice,
    /// ATPG engine all experiments generate through.
    pub atpg_engine: AtpgEngineChoice,
    /// Run the delay-test-quality stage (default delay model) and
    /// print the per-clocking-mode quality comparison.
    pub timing: bool,
    /// Run the pre-ATPG lint stage under this gate (`None` = lint
    /// off). Structurally untestable faults skip their PODEM searches;
    /// coverage and pattern sets are unchanged.
    pub lint: Option<occ_flow::LintGate>,
    /// Record detail spans and attach the span tree to each report
    /// (`table1 --trace` prints it under the stage table).
    pub trace: bool,
}

impl Default for Table1Options {
    fn default() -> Self {
        Table1Options {
            seed: 20050307, // DATE'05 in Munich
            flops_per_domain: 120,
            backtrack_limit: 48,
            engine: EngineChoice::Auto,
            atpg_engine: AtpgEngineChoice::Compiled,
            timing: false,
            lint: None,
            trace: false,
        }
    }
}

/// The clocking mode, fault model and bidi masking a row uses.
fn mode_of(id: ExperimentId) -> (ClockingMode, FaultKind, bool /* bidi masked */) {
    match id {
        ExperimentId::A => (
            ClockingMode::ExternalClock { max_pulses: 4 },
            FaultKind::StuckAt,
            false,
        ),
        ExperimentId::B => (
            ClockingMode::ExternalClock { max_pulses: 4 },
            FaultKind::Transition,
            false,
        ),
        ExperimentId::C => (ClockingMode::SimpleCpf, FaultKind::Transition, true),
        ExperimentId::D => (
            ClockingMode::EnhancedCpf { max_pulses: 4 },
            FaultKind::Transition,
            true,
        ),
        ExperimentId::E => (
            ClockingMode::ConstrainedExternal { max_pulses: 4 },
            FaultKind::Transition,
            true,
        ),
    }
}

/// Runs one Table 1 experiment on an already-generated SOC through the
/// [`TestFlow`] pipeline.
///
/// # Errors
///
/// Returns the [`FlowError`] of a misconfigured flow (the standard
/// rows on a generated SOC always validate).
pub fn run_experiment(
    soc: &Soc,
    id: ExperimentId,
    options: &Table1Options,
) -> Result<ExperimentRow, FlowError> {
    let (mode, fault_kind, mask_bidi) = mode_of(id);
    let mut flow = TestFlow::new(soc)
        .clocking(mode)
        .fault_model(fault_kind)
        .mask_bidi(mask_bidi)
        .engine(options.engine)
        .atpg_engine(options.atpg_engine)
        .trace(options.trace)
        .atpg(AtpgOptions {
            backtrack_limit: options.backtrack_limit,
            ..AtpgOptions::default()
        });
    if options.timing {
        flow = flow.timing(DelayModel::default());
    }
    if let Some(gate) = options.lint {
        flow = flow.lint(gate);
    }
    let report = flow.run()?;
    Ok(ExperimentRow {
        id,
        coverage_pct: report.coverage_pct(),
        efficiency_pct: report.efficiency_pct(),
        patterns: report.patterns(),
        total_faults: report.coverage.total,
        seconds: report.total_seconds(),
        report,
        cache: None,
    })
}

/// The [`JobSpec`] equivalent of a Table 1 row on `design`.
#[must_use]
pub fn job_spec(design: SocConfig, id: ExperimentId, options: &Table1Options) -> JobSpec {
    let (mode, fault_kind, mask_bidi) = mode_of(id);
    let mut spec = JobSpec::new(design);
    spec.clocking = mode;
    spec.fault_model = fault_kind;
    spec.engine = options.engine;
    spec.atpg_engine = options.atpg_engine;
    spec.atpg = AtpgOptions {
        backtrack_limit: options.backtrack_limit,
        ..AtpgOptions::default()
    };
    spec.mask_bidi = mask_bidi;
    spec.timing = options.timing;
    spec.lint = options.lint;
    spec.trace = options.trace;
    spec
}

/// Runs one Table 1 experiment through a [`FlowService`]: the design
/// is compiled on first use and every later row reuses the cached
/// artifacts ([`ExperimentRow::cache`] records what hit).
///
/// # Errors
///
/// Returns the [`FlowError`] of a misconfigured flow.
pub fn run_experiment_service(
    service: &FlowService,
    design: &SocConfig,
    id: ExperimentId,
    options: &Table1Options,
) -> Result<ExperimentRow, FlowError> {
    let outcome = service.submit(&job_spec(design.clone(), id, options))?;
    let report = outcome.report.expect("flow jobs carry a report");
    Ok(ExperimentRow {
        id,
        coverage_pct: report.coverage_pct(),
        efficiency_pct: report.efficiency_pct(),
        patterns: report.patterns(),
        total_faults: report.coverage.total,
        seconds: report.total_seconds(),
        report,
        cache: Some(outcome.cache),
    })
}

/// The complete Table 1 with shape checks against the paper.
#[derive(Debug)]
pub struct Table1 {
    /// The generated rows in paper order.
    pub rows: Vec<ExperimentRow>,
    /// The options used.
    pub options: Table1Options,
    /// Global artifact-cache counters of the sweep's [`FlowService`]:
    /// one design miss, four hits — the SOC is compiled once across
    /// all five clocking-mode rows.
    pub cache: CacheStats,
}

impl Table1 {
    /// Fetches a row.
    pub fn row(&self, id: ExperimentId) -> &ExperimentRow {
        self.rows
            .iter()
            .find(|r| r.id == id)
            .expect("all rows present")
    }

    /// The paper's qualitative findings, evaluated on the measured
    /// numbers. Returns `(description, holds)` pairs.
    pub fn shape_checks(&self) -> Vec<(String, bool)> {
        let a = self.row(ExperimentId::A);
        let b = self.row(ExperimentId::B);
        let c = self.row(ExperimentId::C);
        let d = self.row(ExperimentId::D);
        let e = self.row(ExperimentId::E);
        vec![
            (
                format!(
                    "stuck-at coverage exceeds transition coverage ({:.2}% > {:.2}%)",
                    a.coverage_pct, b.coverage_pct
                ),
                a.coverage_pct > b.coverage_pct,
            ),
            (
                format!(
                    "transition patterns several times stuck-at count ({} vs {})",
                    b.patterns, a.patterns
                ),
                b.patterns as f64 >= 2.0 * a.patterns as f64,
            ),
            (
                format!(
                    "simple CPF loses coverage vs ideal ({:.2}% < {:.2}%)",
                    c.coverage_pct, b.coverage_pct
                ),
                c.coverage_pct + 1.0 < b.coverage_pct,
            ),
            (
                format!(
                    "on-chip clocking increases pattern count ({} > {})",
                    c.patterns, b.patterns
                ),
                c.patterns > b.patterns,
            ),
            (
                format!(
                    "enhanced CPF recovers coverage ({:.2}% > {:.2}%)",
                    d.coverage_pct, c.coverage_pct
                ),
                d.coverage_pct > c.coverage_pct,
            ),
            (
                format!(
                    "most-flexible bound sits between the CPF rows and the ideal \
                     ({:.2}% <= {:.2}% < {:.2}%)",
                    c.coverage_pct, e.coverage_pct, b.coverage_pct
                ),
                c.coverage_pct <= e.coverage_pct && e.coverage_pct < b.coverage_pct,
            ),
            (
                format!(
                    "flexible clocking trims patterns vs (d) ({} <= {})",
                    e.patterns, d.patterns
                ),
                e.patterns <= d.patterns,
            ),
            (
                format!(
                    "ATPG efficiency stays high everywhere (min {:.2}%)",
                    self.rows
                        .iter()
                        .map(|r| r.efficiency_pct)
                        .fold(f64::INFINITY, f64::min)
                ),
                self.rows.iter().all(|r| r.efficiency_pct > 90.0),
            ),
        ]
    }

    /// The table as CSV: the [`FlowReport`] header plus one row per
    /// experiment (for sweep tooling). Timed runs append the
    /// delay-quality header + rows block.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(FlowReport::csv_header());
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.report.to_csv_row());
            out.push('\n');
        }
        if self.rows.iter().any(|r| r.report.lint.is_some()) {
            out.push_str(FlowReport::lint_csv_header());
            out.push('\n');
            for r in &self.rows {
                if let Some(row) = r.report.lint_csv_row() {
                    out.push_str(&row);
                    out.push('\n');
                }
            }
        }
        if self.rows.iter().any(|r| r.report.delay_quality.is_some()) {
            out.push_str(FlowReport::delay_quality_csv_header());
            out.push('\n');
            for r in &self.rows {
                if let Some(row) = r.report.delay_quality_csv_row() {
                    out.push_str(&row);
                    out.push('\n');
                }
            }
        }
        out
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 1 reproduction (seed {}, {} flops/domain, {} engine)",
            self.options.seed, self.options.flops_per_domain, self.options.engine
        )?;
        writeln!(
            f,
            "{:<4} {:<52} {:>8} {:>9} {:>9} {:>8}",
            "row", "experiment", "TC %", "eff %", "#pattern", "time s"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<4} {:<52} {:>8.2} {:>9.2} {:>9} {:>8.1}",
                r.id.to_string(),
                r.id.description(),
                r.coverage_pct,
                r.efficiency_pct,
                r.patterns,
                r.seconds
            )?;
        }
        writeln!(f)?;
        writeln!(f, "shape checks vs the paper:")?;
        for (desc, ok) in self.shape_checks() {
            writeln!(f, "  [{}] {desc}", if ok { "ok" } else { "FAIL" })?;
        }
        if self.rows.iter().any(|r| r.report.lint.is_some()) {
            writeln!(f)?;
            writeln!(f, "lint (pre-ATPG static analysis):")?;
            for r in &self.rows {
                let Some(lint) = &r.report.lint else {
                    continue;
                };
                writeln!(
                    f,
                    "  {} [{}]: {} error(s), {} warning(s), \
                     {} untestable, {} PODEM searches skipped",
                    r.id,
                    lint.gate,
                    lint.report.errors(),
                    lint.report.warnings(),
                    lint.report.untestable.len(),
                    r.report.result.stats.lint_pruned,
                )?;
            }
        }
        if self.rows.iter().any(|r| r.report.delay_quality.is_some()) {
            writeln!(f)?;
            writeln!(
                f,
                "delay test quality (slack-aware SDD grading, lower SDQL is better):"
            )?;
            writeln!(
                f,
                "{:<4} {:<24} {:>13} {:>8} {:>10} {:>10} {:>11}",
                "row", "clocking", "window ps", "TC %", "weighted %", "SDQL", "mean slack"
            )?;
            for r in &self.rows {
                let Some(q) = &r.report.delay_quality else {
                    continue;
                };
                let min_w = q.windows.iter().map(|w| w.window_ps).min().unwrap_or(0);
                let max_w = q.windows.iter().map(|w| w.window_ps).max().unwrap_or(0);
                let window = if min_w == max_w {
                    format!("{min_w}")
                } else {
                    format!("{min_w}-{max_w}")
                };
                writeln!(
                    f,
                    "{:<4} {:<24} {:>13} {:>8.2} {:>10.2} {:>10.3} {:>11.0}",
                    r.id.to_string(),
                    r.report.clocking.label(),
                    window,
                    r.coverage_pct,
                    q.weighted_coverage_pct,
                    q.sdql,
                    q.mean_test_slack_ps,
                )?;
            }
        }
        Ok(())
    }
}

/// Runs all five experiments through an in-process [`FlowService`]:
/// the SOC is generated and compiled exactly once (first row), and
/// every later row reuses the cached graph — the five-mode sweep is
/// the service's canonical warm workload.
///
/// # Errors
///
/// Propagates the first [`FlowError`] (the standard rows always
/// validate on a generated SOC).
pub fn run_table1(options: &Table1Options) -> Result<Table1, FlowError> {
    let service = FlowService::new(0);
    let design = SocConfig::paper_like(options.seed, options.flops_per_domain);
    let rows = ExperimentId::ALL
        .iter()
        .map(|&id| run_experiment_service(&service, &design, id, options))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Table1 {
        rows,
        options: options.clone(),
        cache: service.cache_stats(),
    })
}

/// The transition-test clocking rows of the sources matrix, in paper
/// order: ideal external, simple CPF, enhanced CPF, constrained
/// external. (Row (a) is stuck-at and stays external-only in Table 1.)
pub const MATRIX_MODES: [ExperimentId; 4] = [
    ExperimentId::B,
    ExperimentId::C,
    ExperimentId::D,
    ExperimentId::E,
];

/// The three pattern sources of the matrix, in sweep order.
#[must_use]
pub fn matrix_sources() -> [PatternSource; 3] {
    [
        PatternSource::ExternalAtpg,
        PatternSource::Edt(EdtConfig::auto()),
        PatternSource::Lbist(BistConfig::default()),
    ]
}

/// One cell of the clocking × pattern-source matrix.
#[derive(Debug)]
pub struct MatrixCell {
    /// The clocking-mode row.
    pub id: ExperimentId,
    /// The pattern-source column label (`external` / `edt` / `lbist`).
    pub source: &'static str,
    /// Test coverage in percent under this source's observation.
    pub coverage_pct: f64,
    /// Slack-weighted transition coverage in percent.
    pub weighted_pct: f64,
    /// Statistical delay quality level (lower is better).
    pub sdql: f64,
    /// Pattern count.
    pub patterns: usize,
    /// The full flow report (including the `pattern_source` block for
    /// embedded sources).
    pub report: FlowReport,
    /// Per-artifact cache hits of the cell's job.
    pub cache: JobCacheStats,
}

/// The 4 clocking modes × 3 pattern sources matrix: the paper's
/// clocking comparison re-asked under each delivery/observation
/// architecture, from one [`FlowService`] sweep.
#[derive(Debug)]
pub struct SourcesMatrix {
    /// All cells, source-major then mode order.
    pub cells: Vec<MatrixCell>,
    /// The options used.
    pub options: Table1Options,
    /// Global cache counters: the design artifact is compiled exactly
    /// once across all twelve cells.
    pub cache: CacheStats,
}

impl SourcesMatrix {
    /// Fetches a cell.
    pub fn cell(&self, id: ExperimentId, source: &str) -> &MatrixCell {
        self.cells
            .iter()
            .find(|c| c.id == id && c.source == source)
            .expect("all cells present")
    }

    /// The paper's quality inversion evaluated *within each pattern
    /// source*: the ideal external clock wins logical coverage over
    /// simple on-chip CPFs, while at-speed enhanced CPFs win SDQL
    /// (lower is better). Returns `(description, holds)` pairs.
    pub fn shape_checks(&self) -> Vec<(String, bool)> {
        let mut checks = Vec::new();
        for source in ["external", "edt", "lbist"] {
            let b = self.cell(ExperimentId::B, source);
            let c = self.cell(ExperimentId::C, source);
            let d = self.cell(ExperimentId::D, source);
            checks.push((
                format!(
                    "[{source}] external clock wins logical coverage \
                     ({:.2}% > {:.2}%)",
                    b.coverage_pct, c.coverage_pct
                ),
                b.coverage_pct > c.coverage_pct,
            ));
            checks.push((
                format!(
                    "[{source}] at-speed enhanced CPF wins SDQL \
                     ({:.4} < {:.4})",
                    d.sdql, b.sdql
                ),
                d.sdql < b.sdql,
            ));
        }
        checks
    }

    /// The matrix as CSV: the flow header + one row per cell, then the
    /// delay-quality and pattern-source block pairs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("source,");
        out.push_str(FlowReport::csv_header());
        out.push('\n');
        for c in &self.cells {
            out.push_str(c.source);
            out.push(',');
            out.push_str(&c.report.to_csv_row());
            out.push('\n');
        }
        out.push_str("source,");
        out.push_str(FlowReport::delay_quality_csv_header());
        out.push('\n');
        for c in &self.cells {
            if let Some(row) = c.report.delay_quality_csv_row() {
                out.push_str(c.source);
                out.push(',');
                out.push_str(&row);
                out.push('\n');
            }
        }
        if self.cells.iter().any(|c| c.report.pattern_source.is_some()) {
            out.push_str(FlowReport::pattern_source_csv_header());
            out.push('\n');
            for c in &self.cells {
                if let Some(row) = c.report.pattern_source_csv_row() {
                    out.push_str(&row);
                    out.push('\n');
                }
            }
        }
        out
    }
}

impl fmt::Display for SourcesMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "clocking x pattern-source matrix (seed {}, {} flops/domain)",
            self.options.seed, self.options.flops_per_domain
        )?;
        writeln!(
            f,
            "{:<10} {:<4} {:<24} {:>8} {:>10} {:>10} {:>9}",
            "source", "row", "clocking", "TC %", "weighted %", "SDQL", "#pattern"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:<10} {:<4} {:<24} {:>8.2} {:>10.2} {:>10.3} {:>9}",
                c.source,
                c.id.to_string(),
                c.report.clocking.label(),
                c.coverage_pct,
                c.weighted_pct,
                c.sdql,
                c.patterns,
            )?;
        }
        writeln!(f)?;
        writeln!(f, "compaction accounting (embedded sources):")?;
        for c in &self.cells {
            let Some(ps) = &c.report.pattern_source else {
                continue;
            };
            writeln!(
                f,
                "  {:<6} {:<4} {:>5}/{:<5} kernel detections survive \
                 ({} aliased, {} compactor-masked, {} X-masked)",
                ps.source,
                c.id.to_string(),
                ps.source_detected,
                ps.kernel_detected,
                ps.aliased,
                ps.compactor_masked,
                ps.x_masked,
            )?;
        }
        writeln!(f)?;
        writeln!(f, "shape checks vs the paper, per source:")?;
        for (desc, ok) in self.shape_checks() {
            writeln!(f, "  [{}] {desc}", if ok { "ok" } else { "FAIL" })?;
        }
        writeln!(
            f,
            "design compiled once across {} cells: {} miss, {} hits",
            self.cells.len(),
            self.cache.design.misses,
            self.cache.design.hits,
        )
    }
}

/// Runs the 4 clocking modes × 3 pattern sources matrix through one
/// [`FlowService`]: the design artifact is compiled exactly once (the
/// cache keys exclude the pattern source), and the delay-quality
/// stage is always on so every cell carries SDQL.
///
/// # Errors
///
/// Propagates the first [`FlowError`].
pub fn run_sources_matrix(options: &Table1Options) -> Result<SourcesMatrix, FlowError> {
    let service = FlowService::new(0);
    let design = SocConfig::paper_like(options.seed, options.flops_per_domain);
    let mut cells = Vec::with_capacity(MATRIX_MODES.len() * 3);
    for source in matrix_sources() {
        for id in MATRIX_MODES {
            let mut spec = job_spec(design.clone(), id, options);
            spec.timing = true;
            spec.pattern_source = source.clone();
            let outcome = service.submit(&spec)?;
            let report = outcome.report.expect("flow jobs carry a report");
            let q = report
                .delay_quality
                .as_ref()
                .expect("matrix cells always run the timing stage");
            cells.push(MatrixCell {
                id,
                source: source.label(),
                coverage_pct: report.coverage_pct(),
                weighted_pct: q.weighted_coverage_pct,
                sdql: q.sdql,
                patterns: report.patterns(),
                report,
                cache: outcome.cache,
            });
        }
    }
    Ok(SourcesMatrix {
        cells,
        options: options.clone(),
        cache: service.cache_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_soc::generate;

    #[test]
    fn ids_parse_and_display() {
        for id in ExperimentId::ALL {
            let s = id.to_string();
            // Both the bare letter and the display form round-trip.
            assert_eq!(s[1..2].parse::<ExperimentId>(), Ok(id));
            assert_eq!(s.parse::<ExperimentId>(), Ok(id));
        }
        assert!("x".parse::<ExperimentId>().is_err());
        let err = "zz".parse::<ExperimentId>().unwrap_err();
        assert!(err.to_string().contains("zz"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_parse_shim_still_works() {
        assert_eq!(ExperimentId::parse("c"), Some(ExperimentId::C));
        assert_eq!(ExperimentId::parse("x"), None);
    }

    #[test]
    fn single_experiment_runs_on_small_soc() {
        let soc = generate(&SocConfig::tiny(1));
        let opts = Table1Options {
            flops_per_domain: 24,
            engine: EngineChoice::Serial,
            ..Table1Options::default()
        };
        let row = run_experiment(&soc, ExperimentId::A, &opts).unwrap();
        assert!(row.coverage_pct > 50.0, "coverage {:.1}", row.coverage_pct);
        assert!(row.patterns > 0);
        assert_eq!(row.total_faults, row.report.coverage.total);
        assert_eq!(row.patterns, row.report.patterns());
    }

    #[test]
    fn service_rows_share_the_compiled_design() {
        let service = FlowService::new(0);
        let design = SocConfig::tiny(3);
        let opts = Table1Options {
            backtrack_limit: 12,
            engine: EngineChoice::Serial,
            ..Table1Options::default()
        };
        let c = run_experiment_service(&service, &design, ExperimentId::C, &opts).unwrap();
        let d = run_experiment_service(&service, &design, ExperimentId::D, &opts).unwrap();
        assert!(!c.cache.unwrap().design_hit, "first row compiles");
        assert!(d.cache.unwrap().design_hit, "later rows reuse the graph");

        // The service path is the same pipeline: a direct run of the
        // same row on the same design produces the same numbers.
        let direct = run_experiment(&generate(&design), ExperimentId::C, &opts).unwrap();
        assert_eq!(c.coverage_pct, direct.coverage_pct);
        assert_eq!(c.patterns, direct.patterns);
        assert_eq!(c.report.stats(), direct.report.stats());
    }

    #[test]
    fn experiment_rows_agree_across_engines() {
        // One Table 1 row, serial vs sharded: the ExperimentRow numbers
        // must be identical (the engines are bit-identical by contract).
        let soc = generate(&SocConfig::tiny(2));
        let opts = |engine| Table1Options {
            flops_per_domain: 24,
            engine,
            ..Table1Options::default()
        };
        let serial = run_experiment(&soc, ExperimentId::C, &opts(EngineChoice::Serial)).unwrap();
        let sharded = run_experiment(
            &soc,
            ExperimentId::C,
            &opts(EngineChoice::Sharded { threads: 4 }),
        )
        .unwrap();
        assert_eq!(serial.coverage_pct, sharded.coverage_pct);
        assert_eq!(serial.patterns, sharded.patterns);
        assert_eq!(serial.report.stats(), sharded.report.stats());
    }

    #[test]
    fn sources_matrix_shares_one_compiled_design() {
        let opts = Table1Options {
            flops_per_domain: 16,
            backtrack_limit: 12,
            engine: EngineChoice::Serial,
            ..Table1Options::default()
        };
        let matrix = run_sources_matrix(&opts).unwrap();
        assert_eq!(matrix.cells.len(), MATRIX_MODES.len() * 3);

        // One compile for twelve cells: the artifact cache keys
        // deliberately exclude the pattern source.
        assert_eq!(matrix.cache.design.misses, 1);
        assert_eq!(matrix.cache.design.hits, 11);
        assert!(matrix.cells.iter().skip(1).all(|c| c.cache.design_hit));

        // Every cell ran the timing stage; embedded cells carry the
        // refereed pattern-source block with exhaustive accounting.
        for c in &matrix.cells {
            assert!(c.sdql >= 0.0 && c.patterns > 0, "{} {}", c.id, c.source);
            match c.source {
                "external" => assert!(c.report.pattern_source.is_none()),
                _ => {
                    let ps = c.report.pattern_source.as_ref().unwrap();
                    assert_eq!(ps.source, c.source);
                    assert_eq!(
                        ps.source_detected + ps.aliased + ps.compactor_masked + ps.x_masked,
                        ps.kernel_detected,
                        "{} {}: {ps:?}",
                        c.id,
                        c.source
                    );
                }
            }
        }

        // Rendering: one flow row per cell plus block sections; the
        // shape-check text names every source.
        let csv = matrix.to_csv();
        assert!(csv.starts_with("source,design,clocking"), "{csv}");
        // One flow row and one delay-quality row per edt cell.
        assert_eq!(
            csv.lines().filter(|l| l.starts_with("edt,")).count(),
            MATRIX_MODES.len() * 2
        );
        let text = matrix.to_string();
        for source in ["external", "edt", "lbist"] {
            assert!(text.contains(&format!("[{source}]")), "{text}");
        }
        assert_eq!(matrix.shape_checks().len(), 6);
    }
}
