//! Reproduces the paper's Table 1: the five ATPG experiments (a)–(e),
//! each one `TestFlow` run through the pluggable fault-sim engines.
//!
//! Usage:
//! ```text
//! table1 [row] [--flops N] [--seed S] [--limit B] [--threads N]
//!        [--engine serial|auto|sharded:N]
//!        [--atpg-engine reference|compiled] [--timing]
//!        [--lint [deny|warn]] [--trace] [--sources] [--csv] [--verbose]
//! ```
//! With no row, all five experiments run and the full table plus the
//! paper-shape checks are printed. With a row label (`a`..`e`), only
//! that experiment runs. The fault-sim engine defaults to `auto` (all
//! available hardware parallelism); `--threads N` is shorthand for
//! `--engine sharded:N`. The ATPG engine defaults to `compiled`
//! (identical results to `reference`, faster). `--timing` adds the
//! slack-aware delay-test-quality pass and prints the paper-style
//! per-clocking-mode quality comparison (SDQL, weighted coverage,
//! capture windows). `--lint` runs the pre-ATPG static design-rule /
//! testability analysis (gate defaults to `deny`; error-severity
//! violations abort the run) and pre-classifies structurally
//! untestable faults so their PODEM searches are skipped — coverage
//! and pattern sets are unchanged. `--trace` records detail spans
//! through every stage and prints the per-row span tree (name, wall
//! time, key=value attributes) under the results.
//!
//! The five-row sweep runs through an in-process
//! `occ::server::FlowService`: the SOC is generated and compiled once
//! (first row) and every later clocking-mode row reuses the cached
//! simulation graph. `--verbose` prints the per-row artifact-cache
//! hits and the sweep's global cache counters.
//!
//! `--sources` replaces the five-row table with the 4 clocking modes ×
//! 3 pattern sources matrix: every transition-test clocking row (b)–(e)
//! re-run under external ATPG, EDT-compressed delivery, and at-speed
//! LBIST, with the delay-quality pass forced on so each cell carries
//! coverage, weighted coverage, and SDQL. The twelve cells run through
//! one `FlowService` — the design artifact compiles once and the cache
//! counters printed at the bottom prove it.

use occ_bench::{run_experiment, run_sources_matrix, run_table1, ExperimentId, Table1Options};
use occ_fault::FaultStatus;
use occ_flow::{EngineChoice, LintGate};
use occ_soc::{generate, SocConfig};

/// Prints a traced report's span tree (no-op for untraced runs).
fn print_trace(report: &occ_flow::FlowReport) {
    if let Some(tr) = &report.trace {
        println!("trace ({} span(s)):", tr.tree.len());
        for line in tr.tree.render().lines() {
            println!("  {line}");
        }
    }
}

fn parsed_value<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, what: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{what} needs a valid value");
        std::process::exit(2);
    })
}

fn main() {
    let mut options = Table1Options::default();
    let mut row: Option<ExperimentId> = None;
    let mut csv = false;
    let mut verbose = false;
    let mut sources = false;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flops" => options.flops_per_domain = parsed_value(&mut args, "--flops"),
            "--seed" => options.seed = parsed_value(&mut args, "--seed"),
            "--limit" => options.backtrack_limit = parsed_value(&mut args, "--limit"),
            "--threads" => {
                options.engine = EngineChoice::Sharded {
                    threads: parsed_value(&mut args, "--threads"),
                };
            }
            "--engine" => options.engine = parsed_value(&mut args, "--engine"),
            "--atpg-engine" => options.atpg_engine = parsed_value(&mut args, "--atpg-engine"),
            "--timing" => options.timing = true,
            "--lint" => {
                // Optional gate value: `--lint warn` / `--lint deny`;
                // bare `--lint` denies (the strict default).
                let gate = args
                    .peek()
                    .and_then(|v| v.parse::<LintGate>().ok())
                    .inspect(|_g| {
                        args.next();
                    })
                    .unwrap_or(LintGate::Deny);
                options.lint = Some(gate);
            }
            "--trace" => options.trace = true,
            "--sources" => sources = true,
            "--csv" => csv = true,
            "--verbose" => verbose = true,
            other if other.starts_with('-') => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
            other => match other.parse() {
                Ok(id) => row = Some(id),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
        }
    }

    if sources {
        if let Some(id) = row {
            eprintln!("--sources sweeps all transition rows; drop the '{id}' row argument");
            std::process::exit(2);
        }
        let matrix = match run_sources_matrix(&options) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("flow error: {e}");
                std::process::exit(1);
            }
        };
        if csv {
            print!("{}", matrix.to_csv());
        } else {
            print!("{matrix}");
        }
        if verbose {
            let hit = |h: Option<bool>| match h {
                Some(true) => "hit",
                Some(false) => "miss",
                None => "-",
            };
            println!("artifact cache (in-process flow service):");
            for c in &matrix.cells {
                println!(
                    "  {:<10} {} {:<24} design {:<4} procedures {:<4} delays {}",
                    c.source,
                    c.id,
                    c.report.clocking.label(),
                    hit(Some(c.cache.design_hit)),
                    hit(c.cache.procedures_hit),
                    hit(c.cache.delays_hit),
                );
            }
        }
        if matrix.shape_checks().iter().any(|(_, ok)| !ok) {
            eprintln!("shape checks failed: the per-source inversion does not hold");
            std::process::exit(1);
        }
        return;
    }

    match row {
        Some(id) => {
            let soc = generate(&SocConfig::paper_like(
                options.seed,
                options.flops_per_domain,
            ));
            let r = match run_experiment(&soc, id, &options) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("flow error: {e}");
                    std::process::exit(1);
                }
            };
            if csv {
                print!("{}", {
                    let mut out = Vec::new();
                    r.report.write_csv(&mut out).expect("stdout CSV");
                    String::from_utf8(out).expect("CSV is UTF-8")
                });
                return;
            }
            println!(
                "{} {}: coverage {:.2}%  efficiency {:.2}%  patterns {}  ({:.1}s, {} engine x{})",
                r.id,
                r.id.description(),
                r.coverage_pct,
                r.efficiency_pct,
                r.patterns,
                r.seconds,
                r.report.engine,
                r.report.threads,
            );
            println!("{}", r.report.coverage);
            if let Some(lint) = &r.report.lint {
                println!(
                    "lint [{}]: {} error(s), {} warning(s), {} untestable, \
                     {} PODEM searches skipped",
                    lint.gate,
                    lint.report.errors(),
                    lint.report.warnings(),
                    lint.report.untestable.len(),
                    r.report.result.stats.lint_pruned,
                );
            }
            if let Some(q) = &r.report.delay_quality {
                print!("{q}");
            }
            let undetected = r
                .report
                .result
                .faults
                .iter()
                .filter(|(_, s)| !s.is_detected())
                .count();
            let aborted = r
                .report
                .result
                .faults
                .iter()
                .filter(|(_, s)| matches!(s, FaultStatus::Aborted))
                .count();
            println!("undetected {undetected}, aborted {aborted}");
            print_trace(&r.report);
        }
        None => {
            let table = match run_table1(&options) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("flow error: {e}");
                    std::process::exit(1);
                }
            };
            if csv {
                print!("{}", table.to_csv());
            } else {
                println!("{table}");
            }
            if options.trace && !csv {
                for r in &table.rows {
                    println!("{} {}:", r.id, r.report.clocking.label());
                    print_trace(&r.report);
                }
            }
            if verbose {
                let hit = |h: Option<bool>| match h {
                    Some(true) => "hit",
                    Some(false) => "miss",
                    None => "-",
                };
                println!("artifact cache (in-process flow service):");
                for r in &table.rows {
                    let c = r.cache.expect("table rows run through the service");
                    println!(
                        "  {} {:<24} design {:<4} procedures {:<4} delays {}",
                        r.id,
                        r.report.clocking.label(),
                        hit(Some(c.design_hit)),
                        hit(c.procedures_hit),
                        hit(c.delays_hit),
                    );
                }
                let s = &table.cache;
                println!(
                    "  totals: design {}/{} hit/miss, procedures {}/{}, delays {}/{} \
                     ({} entries, {} bytes resident)",
                    s.design.hits,
                    s.design.misses,
                    s.procedures.hits,
                    s.procedures.misses,
                    s.delays.hits,
                    s.delays.misses,
                    s.entries,
                    s.bytes,
                );
            }
        }
    }
}
