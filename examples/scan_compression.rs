//! EDT-style scan compression, as used by the paper's device ("357
//! balanced internal scan chains ... with 36 external scan channels"):
//! run a real on-chip-clocking ATPG campaign with the EDT decompressor
//! and space compactor in the loop as the flow's *pattern source*, then
//! compare ATE vector-memory cost with and without compression.
//!
//! Run with: `cargo run --release --example scan_compression`

use occ::atpg::AtpgOptions;
use occ::core::ClockingMode;
use occ::dft::{AteCostModel, EdtConfig};
use occ::flow::{FaultKind, PatternSource, TestFlow};
use occ::soc::{generate, SocConfig};

fn main() {
    // The whole embedded-test pipeline — care-bit encoding through the
    // ring generator, load expansion, unload observation through the
    // XOR space compactor — rides inside the flow: `EdtConfig::auto()`
    // derives the decompressor geometry from the SOC's actual chains.
    let soc = generate(&SocConfig::tiny(42));
    let report = TestFlow::new(&soc)
        .clocking(ClockingMode::SimpleCpf)
        .fault_model(FaultKind::Transition)
        .mask_bidi(true)
        .atpg(AtpgOptions {
            random_patterns: 64,
            backtrack_limit: 24,
            ..AtpgOptions::default()
        })
        .pattern_source(PatternSource::Edt(EdtConfig::auto()))
        .run()
        .expect("simple CPF flow validates");

    let ps = report
        .pattern_source
        .as_ref()
        .expect("embedded sources always report their block");
    println!(
        "TestFlow under the simple CPF with EDT delivery: {} patterns \
         at {:.2}% coverage ({:.1}x channel-data compression)",
        report.patterns(),
        report.coverage_pct(),
        ps.compression_ratio,
    );
    // The referee's accounting: every detection claimed under
    // compacted observation is a real kernel detection, and every loss
    // is explained.
    println!(
        "compacted observation: {}/{} kernel detections survive \
         ({} compactor-masked, {} X-masked, {} unencodable cubes split)",
        ps.source_detected, ps.kernel_detected, ps.compactor_masked, ps.x_masked, ps.encode_splits,
    );
    assert_eq!(
        ps.source_detected + ps.compactor_masked + ps.x_masked,
        ps.kernel_detected,
        "the referee's accounting is exhaustive"
    );

    // ATE economics — the paper's closing argument: "increased pattern
    // count requires a more extensive use of an on-chip technique to
    // reduce scan chain length." The pattern count comes from the real
    // campaign above (the CPF rows are the ones whose pattern counts
    // grow), scaled to the paper's device size, priced at the paper's
    // 357-chains-behind-36-channels geometry.
    let patterns = report.patterns() * 100;
    let uncompressed = AteCostModel::low_cost(32 * 9, 36).cost(patterns);
    let compressed = AteCostModel::low_cost(32, 4).cost(patterns);
    println!("\n{patterns} patterns on the ATE:");
    println!("  without EDT: {uncompressed}");
    println!("  with EDT   : {compressed}");
    assert!(compressed.vector_memory_bits < uncompressed.vector_memory_bits / 10);
    println!("\nok: compression buys an order of magnitude of vector memory");
}
