//! PPSFP: parallel-pattern single-fault propagation.
//!
//! For each fault, the good-machine batch is perturbed at the fault site
//! and the difference is propagated event-wise, level by level, through
//! each capture frame; flop-state differences carry across frames.
//! Detection requires a *definite* good/faulty difference at a scan flop
//! captured by the procedure or at an observed primary output — plus,
//! for transition faults, the launch condition (the site must toggle
//! into the faulty polarity between the launch and capture frames).

use crate::goodsim::GoodBatch;
use crate::pval::{eval_packed, PVal};
use crate::{CaptureModel, FrameSpec};
use occ_fault::{Fault, FaultModel, FaultSite, Polarity};
use occ_netlist::{CellId, CellKind};

/// Reusable PPSFP engine bound to one capture model.
///
/// # Examples
///
/// ```
/// use occ_netlist::{NetlistBuilder, Logic};
/// use occ_fault::{Fault, FaultSite, Polarity};
/// use occ_fsim::{ClockBinding, CaptureModel, FrameSpec, CycleSpec, Pattern,
///                simulate_good, FaultSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("t");
/// let clk = b.input("clk");
/// let d = b.input("d");
/// let se = b.input("se");
/// let si = b.input("si");
/// let ff = b.sdff(d, clk, se, si);
/// b.output("q", ff);
/// let nl = b.finish()?;
/// let mut binding = ClockBinding::new();
/// binding.add_domain("a", clk);
/// binding.constrain(se, Logic::Zero);
/// binding.mask(si);
/// let model = CaptureModel::new(&nl, binding)?;
///
/// let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
/// let mut p = Pattern::empty(&model, &spec, 0);
/// p.pis[0] = vec![Logic::One]; // d = 1
/// let good = simulate_good(&model, &spec, &[p]);
///
/// let mut fsim = FaultSim::new(&model);
/// let f = Fault::stuck(FaultSite::Output(d), Polarity::P0);
/// assert_eq!(fsim.detect(&spec, &good, f), 0b1); // captured into ff
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaultSim<'m, 'a> {
    model: &'m CaptureModel<'a>,
    // Faulty node values with generation stamps (valid when stamp==gen).
    fval: Vec<PVal>,
    fstamp: Vec<u32>,
    gen: u32,
    // Levelized worklist buckets and enqueue stamps.
    buckets: Vec<Vec<u32>>,
    enq: Vec<u32>,
    // Touched-flop dedup stamps.
    flop_stamp: Vec<u32>,
}

impl<'m, 'a> FaultSim<'m, 'a> {
    /// Creates an engine with scratch space sized for the model.
    pub fn new(model: &'m CaptureModel<'a>) -> Self {
        let n = model.netlist().len();
        let levels = model.netlist().levelization().max_level() as usize + 1;
        FaultSim {
            model,
            fval: vec![PVal::XX; n],
            fstamp: vec![0; n],
            gen: 0,
            buckets: vec![Vec::new(); levels],
            enq: vec![0; n],
            flop_stamp: vec![0; model.flops().len()],
        }
    }

    /// Returns the detection mask (bit per pattern) for one fault.
    pub fn detect(&mut self, spec: &FrameSpec, good: &GoodBatch, fault: Fault) -> u64 {
        let site_node = site_node(self.model, fault.site());
        let frames = spec.frames();

        // Launch requirement for transition faults.
        let launch_mask = match fault.model() {
            FaultModel::StuckAt => good.valid_mask,
            FaultModel::Transition => {
                if frames < 2 {
                    return 0;
                }
                let before = good.frames[frames - 2][site_node.index()];
                let after = good.frames[frames - 1][site_node.index()];
                let m = match fault.polarity() {
                    Polarity::P0 => before.def0() & after.def1(), // slow-to-rise
                    Polarity::P1 => before.def1() & after.def0(), // slow-to-fall
                };
                m & good.valid_mask
            }
        };
        if launch_mask == 0 {
            return 0;
        }

        let first_active = match fault.model() {
            FaultModel::StuckAt => 1,
            FaultModel::Transition => frames,
        };

        let mut fstate: Vec<(u32, PVal)> = Vec::new();
        let mut po_diff = 0u64;

        for k in first_active..=frames {
            let active = match fault.model() {
                FaultModel::StuckAt => true,
                FaultModel::Transition => k == frames,
            };
            if !active && fstate.is_empty() {
                continue;
            }

            self.gen += 1;
            let gvals = &good.frames[k - 1];
            let mut touched_flops: Vec<u32> = Vec::new();

            // Seed 1: carried-in state differences.
            let carried: Vec<(u32, PVal)> = fstate.clone();
            for (fi, fv) in carried {
                let cell = self.model.flops()[fi as usize].cell;
                self.fval[cell.index()] = fv;
                self.fstamp[cell.index()] = self.gen;
                self.push_fanouts(cell, &mut touched_flops);
            }

            // Seed 2: the fault site.
            if active {
                match fault.site() {
                    FaultSite::Output(c) => {
                        let forced = forced_val(fault.polarity());
                        self.fval[c.index()] = forced;
                        self.fstamp[c.index()] = self.gen;
                        if forced != gvals[c.index()] {
                            self.push_fanouts(c, &mut touched_flops);
                        }
                    }
                    FaultSite::Input { cell, .. } => {
                        // Evaluate the consuming cell with the pin forced.
                        let v = self.eval_faulty(cell, gvals, Some(fault));
                        if v != gvals[cell.index()] {
                            self.fval[cell.index()] = v;
                            self.fstamp[cell.index()] = self.gen;
                            self.push_fanouts(cell, &mut touched_flops);
                        }
                    }
                }
            }

            // Propagate level by level.
            for lvl in 0..self.buckets.len() {
                while let Some(raw) = self.bucket_pop(lvl) {
                    let id = CellId::from_index(raw as usize);
                    // The forced output site never re-evaluates.
                    if active && fault.site() == FaultSite::Output(id) {
                        continue;
                    }
                    let pin_fault = match fault.site() {
                        FaultSite::Input { cell, .. } if active && cell == id => Some(fault),
                        _ => None,
                    };
                    let was_stamped = self.fstamp[id.index()] == self.gen;
                    let v = self.eval_faulty(id, gvals, pin_fault);
                    if was_stamped {
                        // Re-evaluation of an already-seeded node (an
                        // input-site cell reached again from upstream):
                        // refresh and re-notify; dedup keeps this cheap.
                        self.fval[id.index()] = v;
                        self.push_fanouts(id, &mut touched_flops);
                    } else if v != gvals[id.index()] {
                        self.fval[id.index()] = v;
                        self.fstamp[id.index()] = self.gen;
                        self.push_fanouts(id, &mut touched_flops);
                    }
                }
            }

            // Primary-output observation.
            if spec.po_observe_frames().contains(&k) {
                for &po in self.model.primary_outputs() {
                    if self.fstamp[po.index()] == self.gen {
                        po_diff |= gvals[po.index()].definite_diff(self.fval[po.index()]);
                    }
                }
            }

            // Next faulty state.
            let cycle = &spec.cycles()[k - 1];
            let mut next: Vec<(u32, PVal)> = Vec::new();
            let mut candidates: Vec<u32> = fstate.iter().map(|&(fi, _)| fi).collect();
            candidates.extend(touched_flops.iter().copied());
            candidates.sort_unstable();
            candidates.dedup();
            let prev_state_diffs: std::collections::HashMap<u32, PVal> =
                fstate.iter().copied().collect();
            for fi in candidates {
                let info = self.model.flops()[fi as usize];
                let good_next = good.states[k][fi as usize];
                let faulty_next = if cycle.pulses_domain(info.domain) {
                    let sampled = self.sample_flop_faulty(info.cell, gvals);
                    self.apply_reset_faulty(info.cell, gvals, sampled)
                } else {
                    prev_state_diffs
                        .get(&fi)
                        .copied()
                        .unwrap_or(good.states[k - 1][fi as usize])
                };
                if faulty_next != good_next {
                    next.push((fi, faulty_next));
                }
            }
            fstate = next;
        }

        // Detection: scan-state differences at unload + observed POs.
        let mut detect = po_diff;
        let final_state: std::collections::HashMap<u32, PVal> = fstate.into_iter().collect();
        for &fi in self.model.scan_flops() {
            let good_v = good.states[frames][fi as usize];
            let mut faulty_v = final_state.get(&fi).copied().unwrap_or(good_v);
            // A *stuck* output on the scan flop itself is observed
            // directly during unload (the chain reads the Q net). A
            // transition fault is not: unload shifting is slow, so the
            // slow edge has settled by the time the chain samples.
            if fault.model() == FaultModel::StuckAt {
                if let FaultSite::Output(c) = fault.site() {
                    if c == self.model.flops()[fi as usize].cell {
                        faulty_v = forced_val(fault.polarity());
                    }
                }
            }
            detect |= good_v.definite_diff(faulty_v);
        }

        detect & launch_mask & good.valid_mask
    }

    /// Detects a batch of faults, returning one mask per fault.
    pub fn detect_many(
        &mut self,
        spec: &FrameSpec,
        good: &GoodBatch,
        faults: &[Fault],
    ) -> Vec<u64> {
        faults.iter().map(|&f| self.detect(spec, good, f)).collect()
    }

    /// Evaluates one cell with faulty input values (and an optional pin
    /// override for an active input-site fault on this cell).
    fn eval_faulty(&self, id: CellId, gvals: &[PVal], pin_fault: Option<Fault>) -> PVal {
        let cell = self.model.netlist().cell(id);
        let kind = cell.kind();
        if !kind.is_combinational() {
            // Flop/latch/ram nodes keep their frame value.
            return if self.fstamp[id.index()] == self.gen {
                self.fval[id.index()]
            } else {
                gvals[id.index()]
            };
        }
        let mut ins: Vec<PVal> = Vec::with_capacity(cell.inputs().len());
        for &src in cell.inputs() {
            ins.push(if self.fstamp[src.index()] == self.gen {
                self.fval[src.index()]
            } else {
                gvals[src.index()]
            });
        }
        if let Some(f) = pin_fault {
            if let FaultSite::Input { pin, .. } = f.site() {
                ins[pin as usize] = forced_val(f.polarity());
            }
        }
        eval_packed(kind, &ins).unwrap_or(PVal::XX)
    }

    fn sample_flop_faulty(&self, flop: CellId, gvals: &[PVal]) -> PVal {
        let cell = self.model.netlist().cell(flop);
        let read = |src: CellId| {
            if self.fstamp[src.index()] == self.gen {
                self.fval[src.index()]
            } else {
                gvals[src.index()]
            }
        };
        match cell.kind() {
            CellKind::Sdff | CellKind::SdffRl => {
                let d = read(cell.inputs()[0]);
                let se = read(cell.inputs()[2]);
                let si = read(cell.inputs()[3]);
                PVal::mux2(se, d, si)
            }
            _ => read(cell.inputs()[0]),
        }
    }

    fn apply_reset_faulty(&self, flop: CellId, gvals: &[PVal], state: PVal) -> PVal {
        let cell = self.model.netlist().cell(flop);
        let Some(rpin) = cell.reset() else {
            return state;
        };
        let rv = if self.fstamp[rpin.index()] == self.gen {
            self.fval[rpin.index()]
        } else {
            gvals[rpin.index()]
        };
        let active = match cell.kind() {
            CellKind::DffRh => rv.def1(),
            _ => rv.def0(),
        };
        let state = state.force(active, false);
        state.blend(PVal::XX, rv.x & !state.def0())
    }

    fn push_fanouts(&mut self, id: CellId, touched_flops: &mut Vec<u32>) {
        let netlist = self.model.netlist();
        let lev = netlist.levelization();
        for &f in netlist.fanouts(id) {
            let kind = netlist.cell(f).kind();
            if kind.is_flop() {
                if let Some(fi) = self.model.flop_index(f) {
                    if self.flop_stamp[fi] != self.gen {
                        self.flop_stamp[fi] = self.gen;
                        touched_flops.push(fi as u32);
                    }
                }
            } else if kind.is_combinational() && self.enq[f.index()] != self.gen {
                self.enq[f.index()] = self.gen;
                self.buckets[lev.level(f) as usize].push(f.index() as u32);
            }
        }
    }

    fn bucket_pop(&mut self, lvl: usize) -> Option<u32> {
        self.buckets[lvl].pop()
    }
}

/// The node whose good value defines the fault site's value: the cell
/// itself for output faults, the driving net for input-pin faults.
pub(crate) fn site_node(model: &CaptureModel<'_>, site: FaultSite) -> CellId {
    match site {
        FaultSite::Output(c) => c,
        FaultSite::Input { cell, pin } => model.netlist().cell(cell).inputs()[pin as usize],
    }
}

fn forced_val(p: Polarity) -> PVal {
    match p {
        Polarity::P0 => PVal::ZERO,
        Polarity::P1 => PVal::ONE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_good, ClockBinding, CycleSpec, Pattern};
    use occ_netlist::{Logic, NetlistBuilder};

    /// One scan flop feeding AND with a PI, captured by a second flop.
    struct Rig {
        nl: occ_netlist::Netlist,
        clk: CellId,
        d_pi: CellId,
        g: CellId,
        f1: CellId,
    }

    fn rig() -> Rig {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let d_pi = b.input("d");
        let f0 = b.sdff(d_pi, clk, se, si);
        let g = b.and2(f0, d_pi);
        let f1 = b.sdff(g, clk, se, f0);
        b.output("q", f1);
        b.name_cell(f0, "f0");
        b.name_cell(f1, "f1");
        Rig {
            nl: b.finish().unwrap(),
            clk,
            d_pi,
            g,
            f1,
        }
    }

    fn model(r: &Rig) -> CaptureModel<'_> {
        let mut binding = ClockBinding::new();
        binding.add_domain("a", r.clk);
        binding.constrain(r.nl.find("se").unwrap(), Logic::Zero);
        binding.mask(r.nl.find("si").unwrap());
        CaptureModel::new(&r.nl, binding).unwrap()
    }

    #[test]
    fn stuck_at_detected_when_activated() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        // Pattern: f0=1, d=1 -> g=1 good; g sa0 -> f1 captures 0.
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::Zero];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p]);
        let mut fsim = FaultSim::new(&m);
        let det = fsim.detect(
            &spec,
            &good,
            Fault::stuck(FaultSite::Output(r.g), Polarity::P0),
        );
        assert_eq!(det, 1);
        // sa1 not activated by this pattern (good value is already 1).
        let det1 = fsim.detect(
            &spec,
            &good,
            Fault::stuck(FaultSite::Output(r.g), Polarity::P1),
        );
        assert_eq!(det1, 0);
    }

    #[test]
    fn input_pin_fault_is_branch_local() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        // d=1 feeds both the AND pin and f0's D. A branch fault on the
        // AND pin (sa0) kills g but not the other branch.
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::One];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p]);
        let mut fsim = FaultSim::new(&m);
        let det = fsim.detect(
            &spec,
            &good,
            Fault::stuck(FaultSite::Input { cell: r.g, pin: 1 }, Polarity::P0),
        );
        assert_eq!(det, 1, "branch fault propagates to f1");
    }

    #[test]
    fn po_masking_blocks_detection() {
        // Fault whose only observation point is the PO.
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let f0 = b.sdff(d, clk, se, si);
        let g = b.not(f0);
        b.output("q", g);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        binding.constrain(se, Logic::Zero);
        binding.mask(si);
        let m = CaptureModel::new(&nl, binding).unwrap();

        let observe = FrameSpec::new("o", vec![CycleSpec::pulsing(&[0])]);
        let masked = FrameSpec::new("m", vec![CycleSpec::pulsing(&[0])]).observe_po(false);
        let mut p = Pattern::empty(&m, &observe, 0);
        p.scan_load = vec![Logic::One];
        let fault = Fault::stuck(FaultSite::Output(g), Polarity::P1);

        let good_o = simulate_good(&m, &observe, std::slice::from_ref(&p));
        let mut fsim = FaultSim::new(&m);
        assert_eq!(fsim.detect(&observe, &good_o, fault), 1);

        let good_m = simulate_good(&m, &masked, &[p]);
        assert_eq!(fsim.detect(&masked, &good_m, fault), 0);
    }

    #[test]
    fn transition_needs_launch() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new(
            "loc",
            vec![CycleSpec::pulsing(&[0]), CycleSpec::pulsing(&[0])],
        )
        .hold_pi(true)
        .observe_po(false);
        // Load f0=0, d=1: frame1 g=0; f0 captures 1 -> frame2 g=1:
        // slow-to-rise at g is launched and captured into f1.
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::Zero, Logic::X];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p.clone()]);
        let mut fsim = FaultSim::new(&m);
        let str_fault = Fault::transition(FaultSite::Output(r.g), Polarity::P0);
        assert_eq!(fsim.detect(&spec, &good, str_fault), 1);

        // Slow-to-fall is not launched by this pattern (no 1->0).
        let stf_fault = Fault::transition(FaultSite::Output(r.g), Polarity::P1);
        assert_eq!(fsim.detect(&spec, &good, stf_fault), 0);

        // Launch without capture-frame effect: load f0=1 (g stays 1,
        // no transition) -> no detection.
        let mut p2 = Pattern::empty(&m, &spec, 0);
        p2.scan_load = vec![Logic::One, Logic::X];
        p2.pis[0] = vec![Logic::One];
        let good2 = simulate_good(&m, &spec, &[p2]);
        assert_eq!(fsim.detect(&spec, &good2, str_fault), 0);
    }

    #[test]
    fn multi_frame_stuck_at_propagates_through_state() {
        // Fault effect captured in frame 1 must be observable after
        // frame 2 even though the site is no longer perturbed there.
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let f0 = b.sdff(d, clk, se, si); // captures d
        let f1 = b.sdff(f0, clk, se, f0); // shift behind it
        b.output("q", f1);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        binding.constrain(se, Logic::Zero);
        binding.mask(si);
        let m = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("s2", vec![CycleSpec::pulsing(&[0]); 2]).hold_pi(true);
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::Zero, Logic::Zero];
        p.pis[0] = vec![Logic::One]; // d=1 held
        let good = simulate_good(&m, &spec, &[p]);
        let mut fsim = FaultSim::new(&m);
        // d sa0: f0 captures 0 instead of 1 in both frames; after frame 2
        // f1 holds the frame-1 corruption.
        let det = fsim.detect(
            &spec,
            &good,
            Fault::stuck(FaultSite::Output(d), Polarity::P0),
        );
        assert_eq!(det, 1);
    }

    #[test]
    fn detection_respects_valid_mask() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::Zero];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p]);
        assert_eq!(good.valid_mask, 1);
        let mut fsim = FaultSim::new(&m);
        let det = fsim.detect(
            &spec,
            &good,
            Fault::stuck(FaultSite::Output(r.d_pi), Polarity::P0),
        );
        assert_eq!(det & !good.valid_mask, 0);
        let _ = r.f1;
    }
}
