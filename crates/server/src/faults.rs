//! Deterministic fault injection for the daemon's chaos tests.
//!
//! A [`FaultPlan`] is a seeded registry of *injection sites* — named
//! points the serving path consults via [`FaultPlan::fire`]. Production
//! code runs with the default (empty) plan, where `fire` is a single
//! `Option` check; the chaos suite and the degraded-mode bench arm
//! sites with a [`Trigger`] and a [`FaultAction`] to reproduce the
//! failures the robustness layer must absorb:
//!
//! | site                  | consulted by                         | sensible actions |
//! |-----------------------|--------------------------------------|------------------|
//! | `cache.design.build`  | the design-artifact builder closure  | `Panic`, `Error` |
//! | `worker.job`          | the job-pool closure, before the job | `Panic`          |
//! | `flow.stage`          | the service, between artifact fetch and the flow | `DelayMs` |
//! | `tcp.write`           | the connection writer, per response  | `TornWrite`, `DropConn` |
//!
//! Everything is deterministic: `Nth` triggers count calls,
//! `Probability` triggers draw from a per-site xorshift stream seeded
//! by `plan seed ^ FNV(site name)` — the same plan replays the same
//! failures in the same order, so chaos assertions (cache never
//! poisons, reports stay byte-identical) hold under a fixed seed sweep.

use crate::hash::Fnv64;
use occ_flow::CancelToken;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What an armed site does when its trigger fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Panic with this message (exercises `catch_unwind` seams: the
    /// cache's `BuildGuard`, the pool's worker isolation, the server's
    /// panic-payload capture).
    Panic(String),
    /// Return a typed error with this message (the builder-error path:
    /// nothing cached, waiters retry).
    Error(String),
    /// Sleep this many milliseconds, cooperatively (a virtual slow
    /// stage: polls the job's cancel token so deadlines still bound
    /// the wait).
    DelayMs(u64),
    /// Write only a prefix of the response bytes, then sever the
    /// connection (a torn TCP write).
    TornWrite,
    /// Sever the connection without writing the response.
    DropConn,
}

/// When an armed site fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every call.
    Always,
    /// Exactly the `n`-th call (1-based), once.
    Nth(u64),
    /// Each call independently with probability `p`, drawn from the
    /// site's seeded xorshift stream.
    Probability(f64),
}

#[derive(Debug)]
struct Site {
    trigger: Trigger,
    action: FaultAction,
    calls: u64,
    fired: u64,
    rng: u64,
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    sites: Mutex<HashMap<String, Site>>,
}

/// A seeded fault-injection plan; see the module docs. Cloning shares
/// the plan (trigger state included), so the handle given to the
/// server and the one kept by the test observe the same counters.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    // `None` = the empty plan: `fire` costs one branch, no locking.
    inner: Option<Arc<Inner>>,
}

impl FaultPlan {
    /// The empty plan — no site ever fires (the production default).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying the seed its `Probability` triggers will
    /// draw from. Arm sites with [`FaultPlan::inject`].
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            inner: Some(Arc::new(Inner {
                seed,
                sites: Mutex::new(HashMap::new()),
            })),
        }
    }

    /// Arms `site` with a trigger and an action (builder-style; a plan
    /// built from [`FaultPlan::none`] gains a seed of 0). Re-injecting
    /// a site replaces its arming and resets its counters.
    #[must_use]
    pub fn inject(self, site: &str, trigger: Trigger, action: FaultAction) -> Self {
        let plan = if self.inner.is_some() {
            self
        } else {
            FaultPlan::seeded(0)
        };
        {
            let inner = plan.inner.as_ref().expect("plan was just seeded");
            let mut h = Fnv64::new();
            h.write_str(site);
            let rng = (inner.seed ^ h.finish()).max(1);
            inner.sites.lock().expect("fault plan poisoned").insert(
                site.to_owned(),
                Site {
                    trigger,
                    action,
                    calls: 0,
                    fired: 0,
                    rng,
                },
            );
        }
        plan
    }

    /// Consults `site`: counts the call and returns the armed action
    /// when the trigger fires. The hot path (empty plan, or site not
    /// armed) is one branch / one map probe.
    #[must_use]
    pub fn fire(&self, site: &str) -> Option<FaultAction> {
        let inner = self.inner.as_ref()?;
        let mut sites = inner.sites.lock().expect("fault plan poisoned");
        let slot = sites.get_mut(site)?;
        slot.calls += 1;
        let fires = match slot.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => slot.calls == n,
            Trigger::Probability(p) => next_unit(&mut slot.rng) < p,
        };
        if fires {
            slot.fired += 1;
            Some(slot.action.clone())
        } else {
            None
        }
    }

    /// How many times `site` has fired (0 for unarmed sites) — what
    /// chaos tests and the degraded-mode bench assert against.
    #[must_use]
    pub fn fired(&self, site: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|inner| {
                inner
                    .sites
                    .lock()
                    .expect("fault plan poisoned")
                    .get(site)
                    .map(|s| s.fired)
            })
            .unwrap_or(0)
    }

    /// How many times `site` has been consulted (fired or not).
    #[must_use]
    pub fn calls(&self, site: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|inner| {
                inner
                    .sites
                    .lock()
                    .expect("fault plan poisoned")
                    .get(site)
                    .map(|s| s.calls)
            })
            .unwrap_or(0)
    }
}

/// One xorshift64 step mapped to `[0, 1)`.
fn next_unit(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    // 53 high-entropy bits → uniform double in [0, 1).
    #[allow(clippy::cast_precision_loss)]
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
    unit
}

/// Sleeps `ms` milliseconds cooperatively: polls `cancel` every few
/// milliseconds and returns early once it trips, so an injected delay
/// never outlives the job's deadline by more than one poll interval.
pub fn cooperative_delay(ms: u64, cancel: &CancelToken) {
    const POLL_MS: u64 = 2;
    let mut remaining = ms;
    while remaining > 0 {
        if cancel.is_cancelled() {
            return;
        }
        let step = remaining.min(POLL_MS);
        std::thread::sleep(Duration::from_millis(step));
        remaining -= step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert_eq!(plan.fire("cache.design.build"), None);
        assert_eq!(plan.fired("cache.design.build"), 0);
        assert_eq!(plan.calls("anything"), 0);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let plan = FaultPlan::seeded(1).inject(
            "worker.job",
            Trigger::Nth(2),
            FaultAction::Panic("boom".into()),
        );
        assert_eq!(plan.fire("worker.job"), None);
        assert_eq!(
            plan.fire("worker.job"),
            Some(FaultAction::Panic("boom".into()))
        );
        assert_eq!(plan.fire("worker.job"), None);
        assert_eq!(plan.fired("worker.job"), 1);
        assert_eq!(plan.calls("worker.job"), 3);
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).inject(
                "tcp.write",
                Trigger::Probability(0.3),
                FaultAction::DropConn,
            );
            (0..64).map(|_| plan.fire("tcp.write").is_some()).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds, different streams");
        let fired = run(7).iter().filter(|&&b| b).count();
        assert!((5..=30).contains(&fired), "p=0.3 over 64 draws: {fired}");
    }

    #[test]
    fn clones_share_trigger_state() {
        let plan = FaultPlan::seeded(3).inject(
            "cache.design.build",
            Trigger::Nth(1),
            FaultAction::Error("injected".into()),
        );
        let server_half = plan.clone();
        assert!(server_half.fire("cache.design.build").is_some());
        assert_eq!(plan.fired("cache.design.build"), 1);
    }

    #[test]
    fn cooperative_delay_honours_cancellation() {
        let token = CancelToken::new();
        token.cancel();
        let t0 = std::time::Instant::now();
        cooperative_delay(5_000, &token);
        assert!(t0.elapsed() < Duration::from_millis(500));
    }
}
