//! Golden wire-format test for the [`FlowReport`] JSON emitted over
//! the protocol.
//!
//! The daemon splices `FlowReport::to_json()` verbatim into its
//! response line, so this file *is* the compatibility contract for
//! wire clients: the exact top-level key sequence, the sub-keys of
//! every nested block, and round-trippability through the std-only
//! parser. Renaming or reordering a report key breaks this test
//! first, before it breaks a downstream consumer.

use occ_atpg::AtpgOptions;
use occ_core::ClockingMode;
use occ_flow::{EdtConfig, FlowReport, PatternSource};
use occ_lint::LintGate;
use occ_server::{
    job_line, request, serve, FlowService, JobSpec, Json, ReportFormat, ServerConfig,
};
use occ_soc::SocConfig;

fn keys(value: &Json) -> Vec<&str> {
    value
        .as_object()
        .expect("expected an object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect::<Vec<_>>()
}

#[test]
fn flow_report_wire_format_is_stable() {
    let service = FlowService::new(0);
    let mut job = JobSpec::new(SocConfig::tiny(7));
    job.clocking = ClockingMode::SimpleCpf;
    job.mask_bidi = true;
    job.timing = true; // emit the delay_quality block
    job.lint = Some(LintGate::Warn); // emit the lint block
    job.pattern_source = PatternSource::Edt(EdtConfig::auto()); // emit pattern_source
    job.atpg = AtpgOptions {
        random_patterns: 32,
        backtrack_limit: 12,
        ..AtpgOptions::default()
    };
    let outcome = service.submit(&job).unwrap();
    let raw = outcome.report.as_ref().unwrap().to_json();
    let parsed = Json::parse(&raw).expect("report JSON must parse");

    // The full top-level key sequence, in order. This is the golden
    // contract: additions belong at a documented position, removals
    // and reorders are wire breaks.
    assert_eq!(
        keys(&parsed),
        [
            "design",
            "clocking",
            "fault_model",
            "engine",
            "atpg_engine",
            "threads",
            "procedures",
            "patterns",
            "total_faults",
            "detected",
            "untestable",
            "aborted",
            "constrained",
            "undetected",
            "coverage_pct",
            "efficiency_pct",
            "stats",
            "kernel",
            "atpg_kernel",
            "lint",
            "delay_quality",
            "pattern_source",
            "stages",
            "total_seconds",
        ]
    );

    assert_eq!(
        keys(parsed.get("stats").unwrap()),
        [
            "targeted",
            "podem_calls",
            "tests_found",
            "aborted_calls",
            "patterns_before_compaction",
            "fsim_batches",
            "lint_pruned",
        ]
    );
    assert_eq!(
        keys(parsed.get("kernel").unwrap()),
        [
            "cells",
            "comb_cells",
            "flops",
            "cone_scan",
            "cone_po",
            "faults_graded",
            "cone_pruned",
            "events",
        ]
    );
    assert_eq!(
        keys(parsed.get("atpg_kernel").unwrap()),
        [
            "decisions",
            "backtracks",
            "events",
            "incremental_resims",
            "full_resims",
            "seeded_sims",
        ]
    );

    let lint = parsed.get("lint").unwrap();
    assert_eq!(
        keys(lint),
        [
            "gate",
            "errors",
            "warnings",
            "untestable",
            "cells_scanned",
            "faults_scanned",
            "rules",
        ]
    );
    assert!(
        lint.get("rules").unwrap().as_object().is_some(),
        "lint.rules must be a per-rule code:count object"
    );

    let quality = parsed.get("delay_quality").unwrap();
    assert_eq!(
        keys(quality),
        [
            "sdql",
            "weighted_coverage_pct",
            "lambda_ps",
            "faults",
            "detected_timed",
            "mean_test_slack_ps",
            "min_test_slack_ps",
            "max_test_slack_ps",
            "bucket_ps",
            "histogram",
            "windows",
        ]
    );
    for window in quality.get("windows").unwrap().as_array().unwrap() {
        assert_eq!(keys(window), ["name", "window_ps", "at_speed"]);
    }

    let ps = parsed.get("pattern_source").unwrap();
    assert_eq!(
        keys(ps),
        [
            "source",
            "kernel_detected",
            "source_detected",
            "aliased",
            "compactor_masked",
            "x_masked",
            "signature",
            "signature_valid",
            "x_sources",
            "compression_ratio",
            "encode_splits",
            "dropped_cubes",
        ]
    );
    assert_eq!(ps.get("source").and_then(Json::as_str), Some("edt"));

    // Every stage entry is {stage, seconds} and the cardinal numbers
    // survive the std-only parser exactly (u64-exact extraction).
    for stage in parsed.get("stages").unwrap().as_array().unwrap() {
        assert_eq!(keys(stage), ["stage", "seconds"]);
    }
    assert_eq!(
        parsed.get("patterns").unwrap().as_u64(),
        Some(outcome.report.as_ref().unwrap().patterns() as u64)
    );
    assert_eq!(
        parsed.get("design").unwrap().as_str(),
        Some(outcome.report.as_ref().unwrap().design.as_str())
    );

    // Round trip: canonical re-serialization must itself parse to the
    // same document (the writer and parser agree on escapes and
    // number forms).
    let rewritten = parsed.to_string();
    assert_eq!(Json::parse(&rewritten).unwrap(), parsed);
}

#[test]
fn traced_report_inserts_trace_before_stages_and_matches_stage_timings() {
    let service = FlowService::new(0);
    let mut job = JobSpec::new(SocConfig::tiny(7));
    job.clocking = ClockingMode::SimpleCpf;
    job.trace = true;
    job.atpg = AtpgOptions {
        random_patterns: 32,
        backtrack_limit: 12,
        ..AtpgOptions::default()
    };
    let outcome = service.submit(&job).unwrap();
    let raw = outcome.report.as_ref().unwrap().to_json();
    let parsed = Json::parse(&raw).expect("traced report JSON must parse");

    // The optional trace block's documented position: immediately
    // before "stages". Everything else keeps the golden order.
    let top = keys(&parsed);
    let trace_at = top.iter().position(|k| *k == "trace").expect("trace key");
    assert_eq!(top[trace_at + 1], "stages");
    assert_eq!(top[trace_at - 1], "atpg_kernel"); // no lint/quality/ps blocks here

    // The span tree's stage totals ARE the report's per-stage
    // timings: both come from the same records, so the numbers agree
    // exactly over the wire.
    let spans = parsed
        .get("trace")
        .unwrap()
        .get("spans")
        .unwrap()
        .as_array()
        .unwrap();
    let flow_root = spans
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("flow"))
        .expect("flow root span");
    let children = flow_root.get("children").unwrap().as_array().unwrap();
    for stage in parsed.get("stages").unwrap().as_array().unwrap() {
        let label = stage.get("stage").and_then(Json::as_str).unwrap();
        let span = children
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(label))
            .unwrap_or_else(|| panic!("stage '{label}' has a span"));
        assert_eq!(
            span.get("seconds").and_then(Json::as_f64),
            stage.get("seconds").and_then(Json::as_f64),
            "stage '{label}': span and report timings must agree"
        );
    }

    // An untraced run of the same job emits no trace key at all.
    job.trace = false;
    let untraced = service.submit(&job).unwrap();
    let raw = untraced.report.as_ref().unwrap().to_json();
    assert!(!keys(&Json::parse(&raw).unwrap()).contains(&"trace"));
}

#[test]
fn every_pattern_source_serves_over_tcp() {
    let mut server = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_budget: 0,
        ..ServerConfig::default()
    })
    .expect("bind on an ephemeral port");

    for (source, expect_block) in [
        ("external", None),
        ("edt:1", Some("edt")),
        ("lbist:128", Some("lbist")),
    ] {
        let line = format!(
            r#"{{"op":"flow","design":{{"preset":"tiny","seed":5}},"clocking":"simple-cpf","random_patterns":32,"backtrack_limit":12,"pattern_source":"{source}"}}"#
        );
        let response = request(server.addr(), &line).unwrap();
        let v = Json::parse(&response).unwrap();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "{source}: {response}"
        );
        let report = v.get("report").expect("flow response carries a report");
        match expect_block {
            None => assert!(report.get("pattern_source").is_none(), "{source}"),
            Some(label) => {
                let ps = report.get("pattern_source").expect("block present");
                assert_eq!(ps.get("source").and_then(Json::as_str), Some(label));
                let n = |key: &str| ps.get(key).and_then(Json::as_u64).unwrap();
                assert_eq!(
                    n("source_detected") + n("aliased") + n("compactor_masked") + n("x_masked"),
                    n("kernel_detected"),
                    "{source}: referee accounting must be exhaustive over the wire"
                );
            }
        }
    }
    // The design artifact was compiled once and shared across sources:
    // the last job hit the cache even though its source differed.
    let stats = request(server.addr(), r#"{"op":"stats"}"#).unwrap();
    let v = Json::parse(&stats).unwrap();
    let design = v.get("cache").unwrap().get("design").unwrap();
    assert_eq!(design.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(design.get("hits").and_then(Json::as_u64), Some(2));
    server.shutdown();
}

#[test]
fn job_response_line_embeds_the_report_verbatim() {
    let service = FlowService::new(0);
    let mut job = JobSpec::new(SocConfig::tiny(7));
    job.clocking = ClockingMode::SimpleCpf;
    job.atpg = AtpgOptions {
        random_patterns: 32,
        backtrack_limit: 12,
        ..AtpgOptions::default()
    };
    let outcome = service.submit(&job).unwrap();
    let line = job_line(&outcome, ReportFormat::Json);

    let response = Json::parse(&line).expect("response line must parse");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("op").and_then(Json::as_str), Some("flow"));

    // The embedded report is the report writer's output spliced in
    // unmodified: extracting and re-serializing it must equal parsing
    // `to_json()` directly.
    let direct = Json::parse(&outcome.report.as_ref().unwrap().to_json()).unwrap();
    assert_eq!(response.get("report"), Some(&direct));

    // CSV framing: header line + one row, last column the wall clock.
    let csv_line = job_line(&outcome, ReportFormat::Csv);
    let csv = Json::parse(&csv_line).unwrap();
    let text = csv
        .get("report_csv")
        .and_then(Json::as_str)
        .expect("csv response carries report_csv");
    let mut lines = text.lines();
    let report = outcome.report.as_ref().unwrap();
    assert_eq!(lines.next(), Some(FlowReport::csv_header()));
    assert_eq!(lines.next(), Some(report.to_csv_row().as_str()));
    assert_eq!(lines.next(), None);
}
