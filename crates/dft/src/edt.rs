//! EDT-style test compression: a linear (LFSR ring-generator) scan-in
//! decompressor with a GF(2) encoding solver, plus an XOR space
//! compactor for unload.
//!
//! The paper's device loads "357 balanced internal scan chains ... with
//! 36 external scan channels" through exactly this kind of hardware
//! (reference \[15\], embedded deterministic test). The decompressor is
//! linear over GF(2), so deterministic care bits are *encoded* by
//! solving a linear system relating injected channel bits to delivered
//! chain bits.

use occ_netlist::Logic;
use std::error::Error;
use std::fmt;

/// Decompressor geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdtConfig {
    /// External scan channels (ATE pins).
    pub channels: usize,
    /// Internal scan chains.
    pub chains: usize,
    /// Shift cycles per load (longest chain length).
    pub shift_len: usize,
    /// Ring-generator length.
    pub lfsr_len: usize,
    /// Warm-up cycles per load: channel data is injected and the ring
    /// generator advances before the first chain bit is delivered.
    /// Without warm-up the earliest shift positions are severely
    /// under-determined (the ring holds too few mixed variables).
    pub warmup: usize,
    /// Seed for tap/phase-shifter selection (deterministic hardware).
    pub seed: u64,
}

impl EdtConfig {
    /// A geometry mirroring the paper's device shape, scaled by chains.
    pub fn paper_like(chains: usize, shift_len: usize) -> Self {
        EdtConfig {
            channels: (chains / 10).max(1),
            chains,
            shift_len,
            lfsr_len: 64,
            warmup: 16,
            seed: 0x0CCED7,
        }
    }

    /// A fully-deferred geometry: `chains == 0` asks the consumer
    /// (e.g. `occ-flow`) to derive chains and shift length from the
    /// design's actual scan architecture, channel count from the chain
    /// count, and ring length from the channel count — a short ring
    /// per channel keeps every decompressor output reachable within
    /// warmup, which a 64-bit ring behind one channel is not.
    pub fn auto() -> Self {
        EdtConfig {
            channels: 0,
            chains: 0,
            shift_len: 0,
            lfsr_len: 0,
            warmup: 16,
            seed: 0x0CCED7,
        }
    }
}

/// Error from care-bit encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdtError {
    /// The care-bit system is unsolvable (too many/conflicting cares for
    /// the channel capacity) — the pattern must be split.
    Unencodable {
        /// Number of care bits that were requested.
        care_bits: usize,
        /// Number of free variables available.
        variables: usize,
    },
    /// A care bit lies outside the configured geometry.
    OutOfRange {
        /// Chain index.
        chain: usize,
        /// Shift cycle.
        cycle: usize,
    },
}

impl fmt::Display for EdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdtError::Unencodable {
                care_bits,
                variables,
            } => write!(
                f,
                "care-bit system unsolvable ({care_bits} cares, {variables} channel bits)"
            ),
            EdtError::OutOfRange { chain, cycle } => {
                write!(f, "care bit at chain {chain}, cycle {cycle} out of range")
            }
        }
    }
}

impl Error for EdtError {}

/// An EDT-style codec: deterministic decompressor + XOR compactor.
///
/// # Examples
///
/// ```
/// use occ_dft::{EdtCodec, EdtConfig};
///
/// let codec = EdtCodec::new(EdtConfig {
///     channels: 2, chains: 16, shift_len: 10, lfsr_len: 32, warmup: 8, seed: 7,
/// });
/// // Ask for three care bits and verify delivery.
/// let cares = [(0, 3, true), (5, 7, false), (15, 9, true)];
/// let channel_bits = codec.encode(&cares).unwrap();
/// let delivered = codec.expand(&channel_bits);
/// for (chain, cycle, v) in cares {
///     assert_eq!(delivered[chain][cycle], v);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct EdtCodec {
    cfg: EdtConfig,
    /// LFSR feedback taps (positions XORed into bit 0 on advance).
    feedback: Vec<usize>,
    /// Injection position per channel.
    inject: Vec<usize>,
    /// Phase-shifter taps per chain.
    phase: Vec<Vec<usize>>,
    /// Compactor: chains grouped per output channel.
    compact_groups: Vec<Vec<usize>>,
}

impl EdtCodec {
    /// Builds the (deterministic) hardware for a geometry.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero sizes).
    pub fn new(cfg: EdtConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.chains > 0 && cfg.shift_len > 0);
        assert!(cfg.lfsr_len >= 8, "ring generator too short");
        let mut rng = SplitMix::new(cfg.seed);
        // Feedback: 4 taps plus the end bit.
        let mut feedback = vec![cfg.lfsr_len - 1];
        for _ in 0..4 {
            feedback.push(rng.below(cfg.lfsr_len - 1));
        }
        feedback.sort_unstable();
        feedback.dedup();
        let inject = (0..cfg.channels)
            .map(|c| (c * cfg.lfsr_len / cfg.channels) % cfg.lfsr_len)
            .collect();
        let phase = (0..cfg.chains)
            .map(|_| {
                let mut taps: Vec<usize> = (0..3).map(|_| rng.below(cfg.lfsr_len)).collect();
                taps.sort_unstable();
                taps.dedup();
                taps
            })
            .collect();
        let mut compact_groups = vec![Vec::new(); cfg.channels];
        for ch in 0..cfg.chains {
            compact_groups[ch % cfg.channels].push(ch);
        }
        EdtCodec {
            cfg,
            feedback,
            inject,
            phase,
            compact_groups,
        }
    }

    /// The geometry.
    pub fn config(&self) -> &EdtConfig {
        &self.cfg
    }

    /// Input-side compression ratio: internal bits per external bit.
    pub fn compression_ratio(&self) -> f64 {
        self.cfg.chains as f64 / self.cfg.channels as f64
    }

    /// Concretely expands channel data (`[cycle][channel]`) into the
    /// delivered chain bits (`[chain][cycle]`, shift order).
    ///
    /// # Panics
    ///
    /// Panics if `channel_bits` has the wrong shape.
    pub fn expand(&self, channel_bits: &[Vec<bool>]) -> Vec<Vec<bool>> {
        assert_eq!(
            channel_bits.len(),
            self.cfg.warmup + self.cfg.shift_len,
            "cycle count (warmup + shift)"
        );
        let mut state = vec![false; self.cfg.lfsr_len];
        let mut out = vec![vec![false; self.cfg.shift_len]; self.cfg.chains];
        for (cycle, inj) in channel_bits.iter().enumerate() {
            assert_eq!(inj.len(), self.cfg.channels, "channel count");
            for (c, &bit) in inj.iter().enumerate() {
                state[self.inject[c]] ^= bit;
            }
            if let Some(shift_cycle) = cycle.checked_sub(self.cfg.warmup) {
                for (chain, taps) in self.phase.iter().enumerate() {
                    let mut v = false;
                    for &t in taps {
                        v ^= state[t];
                    }
                    out[chain][shift_cycle] = v;
                }
            }
            state = self.advance(&state);
        }
        out
    }

    fn advance(&self, state: &[bool]) -> Vec<bool> {
        let mut next = vec![false; state.len()];
        let fb = self.feedback.iter().fold(false, |acc, &t| acc ^ state[t]);
        next[0] = fb;
        next[1..].copy_from_slice(&state[..state.len() - 1]);
        next
    }

    /// Solves for channel data delivering the given care bits
    /// (`(chain, cycle, value)`); don't-care channel bits are zero.
    ///
    /// # Errors
    ///
    /// [`EdtError::OutOfRange`] for bad coordinates,
    /// [`EdtError::Unencodable`] when the GF(2) system has no solution.
    pub fn encode(&self, cares: &[(usize, usize, bool)]) -> Result<Vec<Vec<bool>>, EdtError> {
        let total_cycles = self.cfg.warmup + self.cfg.shift_len;
        let n_vars = self.cfg.channels * total_cycles;
        let words = n_vars.div_ceil(64);

        // Symbolic LFSR: each cell holds the set of variables that XOR
        // into it. Variable v = channel (v % channels) injected at cycle
        // (v / channels).
        let mut sym: Vec<Vec<u64>> = vec![vec![0u64; words]; self.cfg.lfsr_len];
        // chain_rows[chain][cycle] built lazily from a map of needed
        // coordinates to keep memory proportional to care bits.
        use std::collections::HashMap;
        let mut needed: HashMap<(usize, usize), bool> = HashMap::new();
        for &(chain, cycle, v) in cares {
            if chain >= self.cfg.chains || cycle >= self.cfg.shift_len {
                return Err(EdtError::OutOfRange { chain, cycle });
            }
            // Later cares override earlier ones at the same coordinate.
            needed.insert((chain, cycle), v);
        }

        let mut rows: Vec<(Vec<u64>, bool)> = Vec::with_capacity(needed.len());
        for cycle in 0..total_cycles {
            // Inject this cycle's channel variables.
            for c in 0..self.cfg.channels {
                let var = cycle * self.cfg.channels + c;
                sym[self.inject[c]][var / 64] ^= 1u64 << (var % 64);
            }
            // Emit equations for cares at this cycle (post-warm-up).
            for chain in 0..self.cfg.chains {
                let Some(shift_cycle) = cycle.checked_sub(self.cfg.warmup) else {
                    break;
                };
                if let Some(&v) = needed.get(&(chain, shift_cycle)) {
                    let mut row = vec![0u64; words];
                    for &t in &self.phase[chain] {
                        for w in 0..words {
                            row[w] ^= sym[t][w];
                        }
                    }
                    rows.push((row, v));
                }
            }
            // Advance symbolically.
            let mut fb = vec![0u64; words];
            for &t in &self.feedback {
                for w in 0..words {
                    fb[w] ^= sym[t][w];
                }
            }
            for i in (1..self.cfg.lfsr_len).rev() {
                sym[i] = std::mem::take(&mut sym[i - 1]);
            }
            sym[0] = fb;
        }

        let solution = solve_gf2(&mut rows, n_vars).ok_or(EdtError::Unencodable {
            care_bits: needed.len(),
            variables: n_vars,
        })?;

        let mut out = vec![vec![false; self.cfg.channels]; total_cycles];
        for (var, &bit) in solution.iter().enumerate() {
            if bit {
                out[var / self.cfg.channels][var % self.cfg.channels] = bit;
            }
        }
        Ok(out)
    }

    /// Space-compacts unload data: chain outputs (`[chain]` per cycle)
    /// fold into XOR channel outputs. An `X` on any chain makes its
    /// channel `X` for that cycle (X-masking hardware is not modeled).
    pub fn compact(&self, chain_bits: &[Logic]) -> Vec<Logic> {
        assert_eq!(chain_bits.len(), self.cfg.chains, "chain count");
        self.compact_groups
            .iter()
            .map(|group| {
                let mut acc = Logic::Zero;
                for &ch in group {
                    acc = acc ^ chain_bits[ch];
                }
                acc
            })
            .collect()
    }
}

/// Gaussian elimination over GF(2); returns one solution (free
/// variables zero) or `None` when inconsistent.
fn solve_gf2(rows: &mut [(Vec<u64>, bool)], n_vars: usize) -> Option<Vec<bool>> {
    let n_rows = rows.len();
    let mut pivot_of_row: Vec<Option<usize>> = vec![None; n_rows];
    let mut r = 0usize;
    for col in 0..n_vars {
        let (w, b) = (col / 64, col % 64);
        let Some(pr) = (r..n_rows).find(|&i| (rows[i].0[w] >> b) & 1 == 1) else {
            continue;
        };
        rows.swap(r, pr);
        pivot_of_row[r] = Some(col);
        for i in 0..n_rows {
            if i != r && (rows[i].0[w] >> b) & 1 == 1 {
                let (head, tail) = rows.split_at_mut(r.max(i));
                let (src, dst) = if i < r {
                    (&tail[0], &mut head[i])
                } else {
                    (&head[r], &mut tail[0])
                };
                for w2 in 0..src.0.len() {
                    dst.0[w2] ^= src.0[w2];
                }
                dst.1 ^= src.1;
            }
        }
        r += 1;
        if r == n_rows {
            break;
        }
    }
    // Inconsistency: zero row with rhs 1.
    for row in rows.iter().take(n_rows).skip(r) {
        if row.1 && row.0.iter().all(|&w| w == 0) {
            return None;
        }
    }
    let mut sol = vec![false; n_vars];
    for i in 0..r {
        if let Some(col) = pivot_of_row[i] {
            sol[col] = rows[i].1;
        }
    }
    Some(sol)
}

/// Tiny deterministic PRNG for hardware-structure choice.
struct SplitMix(u64);

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> EdtCodec {
        EdtCodec::new(EdtConfig {
            channels: 3,
            chains: 24,
            shift_len: 16,
            lfsr_len: 32,
            warmup: 12,
            seed: 42,
        })
    }

    #[test]
    fn encode_delivers_care_bits() {
        let c = codec();
        let cares = [
            (0, 0, true),
            (3, 5, true),
            (7, 9, false),
            (23, 15, true),
            (12, 8, true),
            (12, 9, false),
        ];
        let channel = c.encode(&cares).unwrap();
        let bits = c.expand(&channel);
        for (chain, cycle, v) in cares {
            assert_eq!(bits[chain][cycle], v, "care at ({chain},{cycle})");
        }
    }

    #[test]
    fn expansion_is_linear() {
        let c = codec();
        let mut rng = SplitMix::new(99);
        let mk = |rng: &mut SplitMix| -> Vec<Vec<bool>> {
            (0..28)
                .map(|_| (0..3).map(|_| rng.next() & 1 == 1).collect())
                .collect()
        };
        let a = mk(&mut rng);
        let b = mk(&mut rng);
        let xor: Vec<Vec<bool>> = a
            .iter()
            .zip(&b)
            .map(|(ra, rb)| ra.iter().zip(rb).map(|(&x, &y)| x ^ y).collect())
            .collect();
        let ea = c.expand(&a);
        let eb = c.expand(&b);
        let ex = c.expand(&xor);
        for chain in 0..24 {
            for cycle in 0..16 {
                assert_eq!(ex[chain][cycle], ea[chain][cycle] ^ eb[chain][cycle]);
            }
        }
    }

    #[test]
    fn overconstrained_system_is_rejected() {
        // More care bits than channel variables must eventually fail
        // (84 vars here; demand 200 specific bits).
        let c = codec();
        let mut cares = Vec::new();
        let mut rng = SplitMix::new(5);
        for chain in 0..24 {
            for cycle in 0..16 {
                if cares.len() < 200 {
                    cares.push((chain, cycle, rng.next() & 1 == 1));
                }
            }
        }
        assert!(matches!(
            c.encode(&cares),
            Err(EdtError::Unencodable { .. })
        ));
    }

    #[test]
    fn out_of_range_care_is_rejected() {
        let c = codec();
        assert!(matches!(
            c.encode(&[(99, 0, true)]),
            Err(EdtError::OutOfRange { .. })
        ));
    }

    #[test]
    fn compactor_folds_chains() {
        let c = codec();
        let mut bits = vec![Logic::Zero; 24];
        bits[0] = Logic::One; // chain 0 -> channel 0
        let out = c.compact(&bits);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], Logic::One);
        assert_eq!(out[1], Logic::Zero);
    }

    #[test]
    fn compactor_x_poisons_channel() {
        let c = codec();
        let mut bits = vec![Logic::Zero; 24];
        bits[3] = Logic::X; // chain 3 -> channel 0
        let out = c.compact(&bits);
        assert_eq!(out[0], Logic::X);
        assert_eq!(out[1], Logic::Zero);
    }

    #[test]
    fn compression_ratio() {
        let c = codec();
        assert!((c.compression_ratio() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn paper_like_geometry() {
        let cfg = EdtConfig::paper_like(357, 100);
        assert_eq!(cfg.channels, 35);
        let c = EdtCodec::new(cfg);
        assert!(c.compression_ratio() > 10.0);
    }
}
