//! Clock domains and the functional PLL model.

use occ_sim::{Time, Waveform};

/// One functional clock domain of the SOC.
///
/// The paper's device has two synchronous domains at 75 and 150 MHz,
/// both derived from the functional PLL.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockDomainSpec {
    /// Domain name ("cpu", "bus", ...).
    pub name: String,
    /// Functional frequency in MHz.
    pub freq_mhz: f64,
}

impl ClockDomainSpec {
    /// Creates a domain spec.
    pub fn new(name: &str, freq_mhz: f64) -> Self {
        ClockDomainSpec {
            name: name.to_owned(),
            freq_mhz,
        }
    }

    /// The clock period in picoseconds, rounded to an even number so a
    /// 50 % duty cycle is representable.
    pub fn period_ps(&self) -> Time {
        let ps = (1e6 / self.freq_mhz).round() as Time;
        ps & !1
    }
}

/// PLL configuration: a slow reference multiplied into per-domain
/// high-speed clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct PllConfig {
    /// Reference clock frequency in MHz (the slow external clock).
    pub ref_mhz: f64,
    /// Lock time in picoseconds (outputs are quiet before lock).
    pub lock_time_ps: Time,
    /// The domains this PLL serves.
    pub domains: Vec<ClockDomainSpec>,
}

impl PllConfig {
    /// The paper's device: 25 MHz reference, domains at 75 and 150 MHz
    /// (multipliers 3 and 6).
    pub fn paper() -> Self {
        PllConfig {
            ref_mhz: 25.0,
            lock_time_ps: 100_000, // 100 ns, fast for simulation
            domains: vec![
                ClockDomainSpec::new("dom75", 75.0),
                ClockDomainSpec::new("dom150", 150.0),
            ],
        }
    }
}

/// The functional PLL: generates free-running per-domain clocks.
///
/// The CPF technique "requires, of course, that a PLL clock signal is
/// permanently available during the entire delay test" — the model
/// therefore produces continuous clocks from lock time onward,
/// independent of scan activity.
///
/// # Examples
///
/// ```
/// use occ_core::{Pll, PllConfig};
/// let pll = Pll::new(PllConfig::paper());
/// assert_eq!(pll.domain_period(1), 6_666 & !1); // 150 MHz
/// let w = pll.domain_waveform(1, 1_000_000);
/// assert!(!w.changes().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Pll {
    config: PllConfig,
}

impl Pll {
    /// Creates a PLL from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if a domain is not an integer multiple of the reference
    /// (a real PLL synthesizes N·f_ref; we enforce the same).
    pub fn new(config: PllConfig) -> Self {
        for d in &config.domains {
            let ratio = d.freq_mhz / config.ref_mhz;
            assert!(
                (ratio - ratio.round()).abs() < 1e-9 && ratio >= 1.0,
                "domain {} frequency must be an integer multiple of the reference",
                d.name
            );
        }
        Pll { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PllConfig {
        &self.config
    }

    /// Number of served domains.
    pub fn domain_count(&self) -> usize {
        self.config.domains.len()
    }

    /// Clock period of a domain in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range.
    pub fn domain_period(&self, domain: usize) -> Time {
        self.config.domains[domain].period_ps()
    }

    /// The multiplication factor of a domain relative to the reference.
    pub fn domain_mult(&self, domain: usize) -> u64 {
        (self.config.domains[domain].freq_mhz / self.config.ref_mhz).round() as u64
    }

    /// The free-running clock waveform of a domain up to `until`,
    /// starting after PLL lock (aligned so that a rising edge falls
    /// exactly on the lock instant).
    pub fn domain_waveform(&self, domain: usize, until: Time) -> Waveform {
        let period = self.domain_period(domain);
        Waveform::clock(period, self.config.lock_time_ps, until)
    }

    /// The first rising edge at or after `t` for a domain.
    pub fn next_edge_at_or_after(&self, domain: usize, t: Time) -> Time {
        let period = self.domain_period(domain);
        let lock = self.config.lock_time_ps;
        if t <= lock {
            return lock;
        }
        let k = (t - lock).div_ceil(period);
        lock + k * period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periods_are_even_ps() {
        let d = ClockDomainSpec::new("x", 150.0);
        assert_eq!(d.period_ps() % 2, 0);
        assert!((d.period_ps() as i64 - 6_667).abs() <= 1);
    }

    #[test]
    fn paper_config_has_double_rate_domains() {
        let pll = Pll::new(PllConfig::paper());
        assert_eq!(pll.domain_count(), 2);
        assert_eq!(pll.domain_mult(0), 3); // 75 MHz from 25 MHz ref
        assert_eq!(pll.domain_mult(1), 6); // 150 MHz
        assert_eq!(pll.domain_period(0), 13_332);
    }

    #[test]
    fn next_edge_snaps_to_grid() {
        let pll = Pll::new(PllConfig {
            ref_mhz: 10.0,
            lock_time_ps: 1_000,
            domains: vec![ClockDomainSpec::new("a", 100.0)],
        });
        assert_eq!(pll.next_edge_at_or_after(0, 0), 1_000);
        assert_eq!(pll.next_edge_at_or_after(0, 1_000), 1_000);
        assert_eq!(pll.next_edge_at_or_after(0, 1_001), 11_000);
        assert_eq!(pll.next_edge_at_or_after(0, 11_000), 11_000);
    }

    #[test]
    #[should_panic(expected = "integer multiple")]
    fn non_integer_ratio_rejected() {
        let _ = Pll::new(PllConfig {
            ref_mhz: 10.0,
            lock_time_ps: 0,
            domains: vec![ClockDomainSpec::new("a", 15.0)],
        });
    }
}
