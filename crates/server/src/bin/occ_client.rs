//! One-shot protocol client.
//!
//! ```text
//! occ_client [--retries N] [--retry-base-ms N] [--retry-seed N] <addr> <request-json>
//! occ_client 127.0.0.1:4805 '{"op":"ping"}'
//! occ_client 127.0.0.1:4805 metrics
//! ```
//!
//! Sends one request line, prints the response line, exits 0 on an
//! `"ok":true` response and 1 otherwise — scriptable from CI without
//! `nc` timing games. Transport failures and `overloaded` rejections
//! retry with seeded jittered exponential backoff (honouring the
//! server's `retry_after_ms` hint); `--retries 1` disables retrying.
//!
//! A bare op word (`ping`, `stats`, `health`, `metrics`, `shutdown`)
//! is shorthand for `{"op":"<word>"}`. The `metrics` reply is special-
//! cased: the JSON-escaped Prometheus exposition is unwrapped and
//! printed as plain text, ready to pipe into a file or a scraper.

use occ_server::{request_with_retry, Json, RetryPolicy};

fn main() {
    let mut policy = RetryPolicy::default();
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--retries" => policy.attempts = parse(args.next(), "--retries"),
            "--retry-base-ms" => policy.base_ms = parse(args.next(), "--retry-base-ms"),
            "--retry-seed" => policy.seed = parse(args.next(), "--retry-seed"),
            "--help" | "-h" => {
                println!(
                    "usage: occ_client [--retries N] [--retry-base-ms N] [--retry-seed N] \
                     <addr> <request-json>"
                );
                return;
            }
            _ => positional.push(arg),
        }
    }
    let [addr, line] = positional.as_slice() else {
        eprintln!("usage: occ_client [--retries N] <addr> <request-json|op-word>");
        std::process::exit(2);
    };
    let addr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("occ_client: bad address '{addr}': {e}");
            std::process::exit(2);
        }
    };
    // Bare op words are shorthand for the one-field request object.
    let line = match line.as_str() {
        op @ ("ping" | "stats" | "health" | "metrics" | "shutdown") => {
            format!(r#"{{"op":"{op}"}}"#)
        }
        other => other.to_owned(),
    };
    match request_with_retry(addr, &line, &policy) {
        Ok(response) => {
            let parsed = Json::parse(&response).ok();
            let ok = parsed
                .as_ref()
                .and_then(|v| v.get("ok").and_then(Json::as_bool))
                .unwrap_or(false);
            // A metrics reply carries the whole exposition in one
            // escaped string — print it as plain text.
            let exposition = parsed
                .as_ref()
                .filter(|v| v.get("op").and_then(Json::as_str) == Some("metrics"))
                .and_then(|v| {
                    v.get("exposition")
                        .and_then(Json::as_str)
                        .map(str::to_owned)
                });
            match exposition {
                Some(text) => print!("{text}"),
                None => println!("{response}"),
            }
            std::process::exit(i32::from(!ok));
        }
        Err(e) => {
            eprintln!("occ_client: request failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("occ_client: {flag} needs a numeric value");
        std::process::exit(2);
    })
}
