//! SDQL-style delay-test quality statistics.
//!
//! A transition-fault detection is not one bit of quality: a detection
//! through a path with slack `s` under the capture window screens only
//! delay defects **larger than `s`**. This module aggregates per-fault
//! slack data into the statistic the small-delay-defect literature
//! (Sato et al.'s *statistical delay quality level*) uses to compare
//! test sets:
//!
//! * every transition fault carries a potential delay defect whose size
//!   `δ` follows an exponential distribution with scale `λ`
//!   ([`QualityOptions::lambda_ps`]) — small defects are common, gross
//!   ones rare;
//! * the defect causes a **functional failure** iff `δ` exceeds the
//!   fault's functional slack (its margin under the functional clock of
//!   the domains that can observe it);
//! * the test **screens** it iff `δ` exceeds the smallest test slack of
//!   any detection of that fault (window − longest sensitized path);
//! * `SDQL = Σ_faults P(functional failure ∧ not screened)
//!        = Σ max(0, e^(−s_func/λ) − e^(−s_test/λ))` — the expected
//!   number of test escapes over the fault universe; lower is better;
//! * **weighted coverage** divides the screened functional-failure
//!   probability mass by the total: at-speed detections through the
//!   longest paths approach 100 %, slow external-clock detections of
//!   the same faults score far lower even at identical logical
//!   coverage — exactly the paper's "impact on delay test quality"
//!   axis.

use occ_sim::Time;
use std::fmt;

/// Tuning knobs of the quality statistic.
#[derive(Debug, Clone)]
pub struct QualityOptions {
    /// Scale (mean size, in ps) of the exponential delay-defect size
    /// distribution.
    pub lambda_ps: f64,
    /// Slack-histogram bucket count.
    pub histogram_buckets: usize,
}

impl Default for QualityOptions {
    /// λ = 3 ns (a third of the paper's fast functional period scale),
    /// 8 histogram buckets.
    fn default() -> Self {
        QualityOptions {
            lambda_ps: 3_000.0,
            histogram_buckets: 8,
        }
    }
}

/// Per-fault slack data fed into [`QualityReport::compute`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultSlack {
    /// Functional slack: the margin of the longest functional path
    /// through the fault site under its observing domains' periods.
    /// `None` when no functional capture point is reachable (a defect
    /// there never fails the device).
    pub func_slack_ps: Option<Time>,
    /// The smallest test slack among this fault's detections (window −
    /// longest sensitized path, saturated at 0). `None` when the fault
    /// went undetected.
    pub test_slack_ps: Option<Time>,
}

/// The launch→capture window one capture procedure ran under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcWindow {
    /// Procedure name (matches the `FrameSpec`).
    pub name: String,
    /// Window in picoseconds.
    pub window_ps: Time,
    /// True when the window is an at-speed (PLL) period.
    pub at_speed: bool,
}

/// Aggregated delay-test quality of one pattern set.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Defect-size distribution scale used.
    pub lambda_ps: f64,
    /// Faults graded.
    pub faults: usize,
    /// Faults detected with a recorded sensitized path.
    pub detected_timed: usize,
    /// Expected test escapes over the fault universe (lower is better).
    pub sdql: f64,
    /// Screened share of the functional-failure probability mass, in
    /// percent (higher is better).
    pub weighted_coverage_pct: f64,
    /// Mean observed test slack over detected faults, in ps.
    pub mean_test_slack_ps: f64,
    /// Smallest observed test slack (the sharpest screen), in ps.
    pub min_test_slack_ps: Time,
    /// Largest observed test slack (the dullest screen), in ps.
    pub max_test_slack_ps: Time,
    /// Detected-fault counts bucketed by observed test slack.
    pub histogram: Vec<u64>,
    /// Histogram bucket width in ps (the last bucket absorbs overflow).
    pub bucket_ps: Time,
    /// The capture window of every procedure graded.
    pub windows: Vec<ProcWindow>,
}

impl QualityReport {
    /// Aggregates per-fault slack data into the quality statistic.
    ///
    /// `windows` documents the graded procedures and sizes the slack
    /// histogram (bucket width = max window / buckets).
    pub fn compute(
        slacks: &[FaultSlack],
        windows: Vec<ProcWindow>,
        options: &QualityOptions,
    ) -> QualityReport {
        let mut quality_span = occ_obs::span("timing.quality");
        quality_span.attr_u64("faults", slacks.len() as u64);
        let lambda = options.lambda_ps.max(1.0);
        let weight = |s: Option<Time>| s.map_or(0.0, |s| (-(s as f64) / lambda).exp());

        let mut sdql = 0.0;
        let mut screened = 0.0;
        let mut functional = 0.0;
        let mut detected_timed = 0usize;
        let mut slack_sum = 0u128;
        let mut min_slack = Time::MAX;
        let mut max_slack = 0;

        let max_window = windows.iter().map(|w| w.window_ps).max().unwrap_or(0);
        let buckets = options.histogram_buckets.max(1);
        let bucket_ps = (max_window / buckets as Time).max(1);
        let mut histogram = vec![0u64; buckets];

        for f in slacks {
            let w_func = weight(f.func_slack_ps);
            // A detection can never screen more than the functional
            // failure mass of its fault.
            let w_test = weight(f.test_slack_ps).min(w_func);
            sdql += (w_func - w_test).max(0.0);
            screened += w_test;
            functional += w_func;
            if let Some(s) = f.test_slack_ps {
                detected_timed += 1;
                slack_sum += s as u128;
                min_slack = min_slack.min(s);
                max_slack = max_slack.max(s);
                let b = ((s / bucket_ps) as usize).min(buckets - 1);
                histogram[b] += 1;
            }
        }

        QualityReport {
            lambda_ps: lambda,
            faults: slacks.len(),
            detected_timed,
            sdql,
            weighted_coverage_pct: if functional > 0.0 {
                100.0 * screened / functional
            } else {
                100.0
            },
            mean_test_slack_ps: if detected_timed > 0 {
                slack_sum as f64 / detected_timed as f64
            } else {
                0.0
            },
            min_test_slack_ps: if detected_timed > 0 { min_slack } else { 0 },
            max_test_slack_ps: max_slack,
            histogram,
            bucket_ps,
            windows,
        }
    }
}

impl fmt::Display for QualityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "delay quality: SDQL {:.4}  weighted coverage {:.2}%  \
             ({} of {} faults detected with paths, λ {:.0} ps)",
            self.sdql, self.weighted_coverage_pct, self.detected_timed, self.faults, self.lambda_ps
        )?;
        writeln!(
            f,
            "  test slack: mean {:.0} ps, min {} ps, max {} ps",
            self.mean_test_slack_ps, self.min_test_slack_ps, self.max_test_slack_ps
        )?;
        write!(f, "  slack histogram ({} ps buckets):", self.bucket_ps)?;
        for n in &self.histogram {
            write!(f, " {n}")?;
        }
        writeln!(f)?;
        for w in &self.windows {
            writeln!(
                f,
                "  window {:<16} {:>7} ps {}",
                w.name,
                w.window_ps,
                if w.at_speed { "(at-speed)" } else { "(tester)" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(ps: Time) -> Vec<ProcWindow> {
        vec![ProcWindow {
            name: "p".into(),
            window_ps: ps,
            at_speed: true,
        }]
    }

    #[test]
    fn at_speed_detection_through_longest_path_is_perfect() {
        // Test slack equals functional slack: nothing escapes.
        let slacks = vec![FaultSlack {
            func_slack_ps: Some(1_000),
            test_slack_ps: Some(1_000),
        }];
        let q = QualityReport::compute(&slacks, win(6_666), &QualityOptions::default());
        assert!(q.sdql.abs() < 1e-12);
        assert!((q.weighted_coverage_pct - 100.0).abs() < 1e-9);
        assert_eq!(q.detected_timed, 1);
        assert_eq!(q.min_test_slack_ps, 1_000);
    }

    #[test]
    fn slow_window_detection_lets_small_defects_escape() {
        // Functionally tight (100 ps margin) but tested with 30 ns of
        // slack: most functionally failing defects escape.
        let slacks = vec![FaultSlack {
            func_slack_ps: Some(100),
            test_slack_ps: Some(30_000),
        }];
        let q = QualityReport::compute(&slacks, win(40_000), &QualityOptions::default());
        assert!(q.sdql > 0.9, "sdql {}", q.sdql);
        assert!(q.weighted_coverage_pct < 10.0);
    }

    #[test]
    fn undetected_faults_escape_entirely_and_unreachable_ones_never_fail() {
        let slacks = vec![
            FaultSlack {
                func_slack_ps: Some(0),
                test_slack_ps: None, // undetected, functionally critical
            },
            FaultSlack {
                func_slack_ps: None, // unobservable functionally
                test_slack_ps: None,
            },
        ];
        let q = QualityReport::compute(&slacks, win(6_666), &QualityOptions::default());
        assert!((q.sdql - 1.0).abs() < 1e-12);
        assert_eq!(q.detected_timed, 0);
        assert_eq!(q.mean_test_slack_ps, 0.0);
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let slacks: Vec<FaultSlack> = [0, 999, 1_000, 7_999, 1_000_000]
            .iter()
            .map(|&s| FaultSlack {
                func_slack_ps: Some(0),
                test_slack_ps: Some(s),
            })
            .collect();
        let q = QualityReport::compute(&slacks, win(8_000), &QualityOptions::default());
        assert_eq!(q.bucket_ps, 1_000);
        assert_eq!(q.histogram.len(), 8);
        assert_eq!(q.histogram[0], 2); // 0 and 999
        assert_eq!(q.histogram[1], 1); // 1000
        assert_eq!(q.histogram[7], 2); // 7999 + clamped overflow
        assert_eq!(q.max_test_slack_ps, 1_000_000);
        let text = q.to_string();
        assert!(text.contains("SDQL"));
        assert!(text.contains("at-speed"));
    }

    #[test]
    fn screened_mass_is_capped_by_functional_mass() {
        // Observed test slack below the functional slack (possible when
        // the functional STA sees a longer path than the test window
        // stresses): credit is capped, never negative SDQL.
        let slacks = vec![FaultSlack {
            func_slack_ps: Some(5_000),
            test_slack_ps: Some(1_000),
        }];
        let q = QualityReport::compute(&slacks, win(6_666), &QualityOptions::default());
        assert!(q.sdql.abs() < 1e-12);
        assert!((q.weighted_coverage_pct - 100.0).abs() < 1e-9);
    }
}
