//! Small canonical circuits used across tests and examples.

use occ_netlist::{Netlist, NetlistBuilder};

/// The ISCAS-85 `c17` benchmark: 5 inputs, 2 outputs, 6 NAND gates.
///
/// # Examples
///
/// ```
/// let nl = occ_soc::c17();
/// assert_eq!(nl.primary_inputs().len(), 5);
/// assert_eq!(nl.primary_outputs().len(), 2);
/// assert_eq!(nl.logic_gate_count(), 6);
/// ```
pub fn c17() -> Netlist {
    let mut b = NetlistBuilder::new("c17");
    let n1 = b.input("n1");
    let n2 = b.input("n2");
    let n3 = b.input("n3");
    let n6 = b.input("n6");
    let n7 = b.input("n7");
    let n10 = b.nand2(n1, n3);
    let n11 = b.nand2(n3, n6);
    let n16 = b.nand2(n2, n11);
    let n19 = b.nand2(n11, n7);
    let n22 = b.nand2(n10, n16);
    let n23 = b.nand2(n16, n19);
    b.name_cell(n10, "g10");
    b.name_cell(n11, "g11");
    b.name_cell(n16, "g16");
    b.name_cell(n19, "g19");
    b.name_cell(n22, "g22");
    b.name_cell(n23, "g23");
    b.output("n22", n22);
    b.output("n23", n23);
    b.finish().expect("c17 is valid")
}

/// An 8-bit synchronous counter with enable: 8 flops + increment logic.
///
/// # Examples
///
/// ```
/// let nl = occ_soc::counter8();
/// assert_eq!(nl.flops().count(), 8);
/// ```
pub fn counter8() -> Netlist {
    let mut b = NetlistBuilder::new("counter8");
    let clk = b.input("clk");
    let en = b.input("en");
    let mut flops = Vec::new();
    for i in 0..8 {
        let ff = b.dff_uninit(clk);
        b.name_cell(ff, &format!("cnt{i}"));
        flops.push(ff);
    }
    // next[i] = cnt[i] XOR carry[i]; carry[0] = en; carry[i+1] = carry[i] AND cnt[i].
    let mut carry = en;
    for (i, &ff) in flops.iter().enumerate() {
        let next = b.xor2(ff, carry);
        b.set_flop_d(ff, next);
        if i + 1 < flops.len() {
            carry = b.and2(carry, ff);
        }
    }
    for (i, &ff) in flops.iter().enumerate() {
        b.output(&format!("q{i}"), ff);
    }
    b.finish().expect("counter8 is valid")
}

/// A plain `n`-stage shift register (useful for scan-path unit tests).
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// let nl = occ_soc::shift_chain(4);
/// assert_eq!(nl.flops().count(), 4);
/// ```
pub fn shift_chain(n: usize) -> Netlist {
    assert!(n > 0, "need at least one stage");
    let mut b = NetlistBuilder::new(&format!("shift{n}"));
    let clk = b.input("clk");
    let din = b.input("din");
    let mut prev = din;
    for i in 0..n {
        let ff = b.dff(prev, clk);
        b.name_cell(ff, &format!("s{i}"));
        prev = ff;
    }
    b.output("dout", prev);
    b.finish().expect("shift chain is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_netlist::Logic;
    use occ_sim::CycleSim;

    #[test]
    fn c17_truth_sample() {
        let nl = c17();
        let mut sim = CycleSim::new(&nl);
        // All inputs 0: n11 = 1, n16 = nand(0,1)=1, n19 = nand(1,0)=1,
        // n10 = 1, n22 = nand(1,1) = 0, n23 = nand(1,1) = 0.
        for pi in nl.primary_inputs() {
            sim.set(*pi, Logic::Zero);
        }
        sim.settle();
        let n22 = nl.find("g22").unwrap();
        let n23 = nl.find("g23").unwrap();
        assert_eq!(sim.value(n22), Logic::Zero);
        assert_eq!(sim.value(n23), Logic::Zero);
    }

    #[test]
    fn counter_counts() {
        let nl = counter8();
        let clk = nl.find("clk").unwrap();
        let en = nl.find("en").unwrap();
        let mut sim = CycleSim::new(&nl);
        for i in 0..8 {
            sim.set_flop(nl.find(&format!("cnt{i}")).unwrap(), Logic::Zero);
        }
        sim.set(en, Logic::One);
        for _ in 0..5 {
            sim.pulse(&[clk]);
        }
        // Counter should read 5 = 0b101.
        let bit = |sim: &CycleSim<'_>, i: usize| sim.value(nl.find(&format!("cnt{i}")).unwrap());
        assert_eq!(bit(&sim, 0), Logic::One);
        assert_eq!(bit(&sim, 1), Logic::Zero);
        assert_eq!(bit(&sim, 2), Logic::One);
        for i in 3..8 {
            assert_eq!(bit(&sim, i), Logic::Zero);
        }
        // Disable: holds.
        sim.set(en, Logic::Zero);
        sim.pulse(&[clk]);
        assert_eq!(bit(&sim, 0), Logic::One);
    }

    #[test]
    fn shift_chain_delays_by_n() {
        let nl = shift_chain(3);
        let clk = nl.find("clk").unwrap();
        let din = nl.find("din").unwrap();
        let s2 = nl.find("s2").unwrap();
        let mut sim = CycleSim::new(&nl);
        sim.set(din, Logic::One);
        sim.pulse(&[clk]);
        sim.set(din, Logic::Zero);
        sim.pulse(&[clk]);
        sim.pulse(&[clk]);
        assert_eq!(sim.value(s2), Logic::One);
    }
}
