//! EDT-compressed pattern delivery and compacted-observation grading.

use crate::ChainMap;
use occ_dft::{EdtCodec, EdtError};
use occ_fault::{Fault, FaultList, FaultStatus};
use occ_fsim::{
    simulate_good, CancelCause, CancelToken, CaptureModel, FaultSim, FrameSpec, Pattern,
    PatternSet, ScanResponse,
};
use occ_netlist::Logic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// An [`occ_atpg::PatternFill`] that delivers every pattern through the
/// EDT decompressor: ATPG care bits are solved into channel data by
/// [`EdtCodec::encode`], and the pattern actually applied is whatever
/// [`EdtCodec::expand`] produces from that channel data — don't-care
/// positions get the ring generator's pseudo-random fill, not the
/// tester's. Unencodable cubes are split in half and re-encoded;
/// singleton care sets that still fail are dropped (the fault stays
/// `Undetected`, never misclassified as untestable).
#[derive(Debug)]
pub struct EdtFill {
    codec: EdtCodec,
    map: ChainMap,
    rng: StdRng,
    splits: usize,
    dropped: usize,
}

impl EdtFill {
    /// Builds a fill engine for a codec and the chain map binding its
    /// geometry to the capture model's scan order. `fill_seed` drives
    /// PI don't-care fill (scan fill comes from the decompressor).
    pub fn new(codec: EdtCodec, map: ChainMap, fill_seed: u64) -> Self {
        EdtFill {
            codec,
            map,
            rng: StdRng::seed_from_u64(fill_seed),
            splits: 0,
            dropped: 0,
        }
    }

    /// Number of unencodable cubes that were split for re-encoding.
    pub fn splits(&self) -> usize {
        self.splits
    }

    /// Number of cubes dropped as undeliverable (unencodable even as
    /// singletons, or out-of-range coordinates).
    pub fn dropped_cubes(&self) -> usize {
        self.dropped
    }

    /// Input-side compression ratio of the underlying codec.
    pub fn compression_ratio(&self) -> f64 {
        self.codec.compression_ratio()
    }

    /// Builds the applied pattern for solved channel data: expand,
    /// map every chain bit back to its scan slot, keep the cube's PI
    /// values (don't-care PIs random-filled).
    fn apply(&mut self, channel_bits: &[Vec<bool>], cube: &Pattern) -> Pattern {
        let delivered = self.codec.expand(channel_bits);
        let mut p = cube.clone();
        for slot in 0..self.map.slots() {
            p.scan_load[slot] = match self.map.load_coord(slot) {
                Some((chain, cycle)) => Logic::from_bool(delivered[chain][cycle]),
                // Off-chain flops cannot be loaded by the decompressor.
                None => Logic::Zero,
            };
        }
        p.fill_x(|| Logic::from_bool(self.rng.gen_bool(0.5)));
        p
    }

    fn encode_split(
        &mut self,
        cares: &[(usize, usize, bool)],
        cube: &Pattern,
        out: &mut Vec<Pattern>,
    ) {
        match self.codec.encode(cares) {
            Ok(channel_bits) => out.push(self.apply(&channel_bits, cube)),
            Err(EdtError::Unencodable { .. }) => {
                if cares.len() <= 1 {
                    self.dropped += 1;
                    return;
                }
                self.splits += 1;
                let (a, b) = cares.split_at(cares.len() / 2);
                self.encode_split(a, cube, out);
                self.encode_split(b, cube, out);
            }
            Err(EdtError::OutOfRange { .. }) => self.dropped += 1,
        }
    }
}

impl occ_atpg::PatternFill for EdtFill {
    fn deliver(
        &mut self,
        cube: Pattern,
        _model: &CaptureModel<'_>,
        _spec: &FrameSpec,
        _pi: usize,
    ) -> Vec<Pattern> {
        let mut cares = Vec::new();
        for (slot, &v) in cube.scan_load.iter().enumerate() {
            if let Some(b) = v.to_bool() {
                match self.map.load_coord(slot) {
                    Some((chain, cycle)) => cares.push((chain, cycle, b)),
                    None => {
                        // A care bit on an off-chain flop cannot be
                        // delivered through the decompressor at all.
                        self.dropped += 1;
                        return Vec::new();
                    }
                }
            }
        }
        let mut out = Vec::new();
        self.encode_split(&cares, &cube, &mut out);
        out
    }

    fn bootstrap(&mut self, model: &CaptureModel<'_>, spec: &FrameSpec, pi: usize) -> Pattern {
        let cycles = self.codec.config().warmup + self.codec.config().shift_len;
        let channels = self.codec.config().channels;
        let channel_bits: Vec<Vec<bool>> = (0..cycles)
            .map(|_| (0..channels).map(|_| self.rng.gen_bool(0.5)).collect())
            .collect();
        let cube = Pattern::empty(model, spec, pi);
        self.apply(&channel_bits, &cube)
    }
}

/// Referee accounting for compacted-observation grading: every
/// kernel-visible detection either survives the space compactor or is
/// explained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdtGradeReport {
    /// Faults the uncompacted kernel detected on the delivered
    /// patterns (full unload + PO observation).
    pub kernel_detected: usize,
    /// Faults still detected when scan unloads are observed only
    /// through the XOR space compactor (POs stay observed — the
    /// tester sees them directly).
    pub edt_detected: usize,
    /// Kernel-detected faults lost to compactor masking: an even
    /// number of difference bits XOR-cancelled on every detecting
    /// channel cycle.
    pub compactor_masked: usize,
    /// Kernel-detected faults lost to X-blocking: every detecting
    /// difference shared its compactor output with an X.
    pub x_masked: usize,
}

/// Regrades a pattern set under EDT observation: scan unloads are
/// visible only as the XOR of each compactor group (chains congruent
/// mod `channels`) per unload cycle, with any X in a group poisoning
/// that output, matching [`EdtCodec::compact`]. Primary outputs stay
/// directly observed.
///
/// Returns the regraded list (detections are compaction survivors;
/// terminal classes are carried over from `list` for faults left
/// undetected) and the referee report. The compacted detection mask
/// is a subset of the kernel mask by construction.
///
/// # Errors
///
/// Propagates cancellation between pattern batches.
pub fn regrade_edt(
    model: &CaptureModel<'_>,
    procedures: &[FrameSpec],
    patterns: &PatternSet,
    list: &FaultList,
    codec: &EdtCodec,
    map: &ChainMap,
    cancel: &CancelToken,
) -> Result<(FaultList, EdtGradeReport), CancelCause> {
    let channels = codec.config().channels;
    let shift_len = map.shift_len();
    // Per unload cycle: slots feeding each compactor group.
    let mut by_cycle: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shift_len];
    for slot in 0..map.slots() {
        if let Some((chain, cycle)) = map.unload_coord(slot) {
            by_cycle[cycle].push((slot, chain % channels));
        }
    }

    let mut out = FaultList::new(list.universe().clone());
    // Constrained faults were never ATPG targets; keep that class.
    for (fault, status) in list.iter() {
        if status == FaultStatus::Constrained {
            out.set_status(fault, FaultStatus::Constrained);
        }
    }

    let mut fsim = FaultSim::new(model);
    let mut resp = ScanResponse::new();
    let mut kernel_seen: HashSet<Fault> = HashSet::new();
    // Per-fault miss evidence: (cancellation seen, X-blocking seen).
    let mut evidence: std::collections::HashMap<Fault, (bool, bool)> =
        std::collections::HashMap::new();

    let mut parity = vec![0u64; channels];
    let mut xm = vec![0u64; channels];
    let mut diff_any = vec![0u64; channels];

    for (pi, spec) in procedures.iter().enumerate() {
        let idxs: Vec<usize> = patterns
            .patterns()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.proc_index == pi)
            .map(|(i, _)| i)
            .collect();
        for chunk in idxs.chunks(64) {
            if let Some(cause) = cancel.cause() {
                return Err(cause);
            }
            let pats: Vec<Pattern> = chunk
                .iter()
                .map(|&i| patterns.patterns()[i].clone())
                .collect();
            let good = simulate_good(model, spec, &pats);
            let candidates: Vec<Fault> = out
                .iter()
                .filter(|(_, s)| *s == FaultStatus::Undetected)
                .map(|(f, _)| f)
                .collect();
            for fault in candidates {
                let det = fsim.detect_response(spec, &good, fault, &mut resp);
                if det == 0 {
                    continue;
                }
                kernel_seen.insert(fault);
                let mut clean = 0u64;
                let mut xblocked = 0u64;
                let mut cancelled = 0u64;
                for groups in &by_cycle {
                    parity.fill(0);
                    xm.fill(0);
                    diff_any.fill(0);
                    for &(slot, g) in groups {
                        parity[g] ^= resp.diff[slot];
                        xm[g] |= resp.good_x[slot] | resp.faulty_x[slot];
                        diff_any[g] |= resp.diff[slot];
                    }
                    for g in 0..channels {
                        clean |= parity[g] & !xm[g];
                        xblocked |= diff_any[g] & xm[g];
                        cancelled |= diff_any[g] & !xm[g] & !parity[g];
                    }
                }
                let edt_mask = (resp.po | clean) & det;
                debug_assert_eq!(
                    edt_mask & !det,
                    0,
                    "compacted detections must be a subset of kernel detections"
                );
                if edt_mask != 0 {
                    let bit = edt_mask.trailing_zeros() as usize;
                    out.set_status(
                        fault,
                        FaultStatus::Detected {
                            pattern: chunk[bit] as u32,
                        },
                    );
                } else {
                    let e = evidence.entry(fault).or_default();
                    e.0 |= cancelled & det != 0;
                    e.1 |= xblocked & det != 0;
                }
            }
        }
    }

    let mut report = EdtGradeReport {
        kernel_detected: kernel_seen.len(),
        ..EdtGradeReport::default()
    };
    for &fault in &kernel_seen {
        if out.status(fault).is_detected() {
            report.edt_detected += 1;
        } else if evidence.get(&fault).is_some_and(|e| e.0) {
            report.compactor_masked += 1;
        } else {
            report.x_masked += 1;
        }
    }

    // Faults the compacted campaign leaves undetected inherit the
    // deterministic verdicts the ATPG run reached.
    for (fault, status) in out.iter().collect::<Vec<_>>() {
        if status == FaultStatus::Undetected {
            match list.status(fault) {
                FaultStatus::Untestable => out.set_status(fault, FaultStatus::Untestable),
                FaultStatus::Aborted => out.set_status(fault, FaultStatus::Aborted),
                _ => {}
            }
        }
    }

    Ok((out, report))
}
