//! Workspace integration test: the full flow from SOC generation
//! through scan insertion, CPF attachment and ATPG, asserting the
//! paper's coverage ordering on a small instance.

use occ::atpg::{run_atpg, AtpgOptions};
use occ::core::{transition_procedures, ClockingMode, Pll, PllConfig};
use occ::fault::FaultUniverse;
use occ::fsim::CaptureModel;
use occ::soc::{assemble_device, generate, SocConfig};

fn coverage(soc: &occ::soc::Soc, mode: ClockingMode, mask_bidi: bool) -> (f64, usize) {
    let binding = soc.binding(mask_bidi);
    let model = CaptureModel::new(soc.netlist(), binding).unwrap();
    let procedures = transition_procedures(mode, model.domain_count());
    let result = run_atpg(
        &model,
        &procedures,
        FaultUniverse::transition(soc.netlist()),
        &AtpgOptions {
            random_patterns: 128,
            backtrack_limit: 64,
            ..AtpgOptions::default()
        },
    );
    (result.report().coverage_pct(), result.patterns.len())
}

#[test]
fn coverage_ordering_matches_paper() {
    let soc = generate(&SocConfig::paper_like(99, 40));
    let (ideal, _) = coverage(&soc, ClockingMode::ExternalClock { max_pulses: 4 }, false);
    let (simple, _) = coverage(&soc, ClockingMode::SimpleCpf, true);
    let (enhanced, _) = coverage(&soc, ClockingMode::EnhancedCpf { max_pulses: 4 }, true);

    assert!(
        simple + 1.0 < ideal,
        "simple CPF must lose noticeable coverage: {simple:.2} vs ideal {ideal:.2}"
    );
    assert!(
        enhanced > simple,
        "enhanced CPF must recover coverage: {enhanced:.2} vs {simple:.2}"
    );
    assert!(
        enhanced < ideal + 1e-9,
        "on-chip clocking cannot beat the unconstrained reference"
    );
}

#[test]
fn device_assembly_keeps_soc_function() {
    // The CPF splice must not change the SOC's logic structure: same
    // flop count (plus CPF internals), same POs, and every SOC flop
    // still clocked.
    let soc = generate(&SocConfig::tiny(5));
    let device = assemble_device(&soc, Pll::new(PllConfig::paper()));
    let soc_pos: Vec<_> = soc
        .netlist()
        .primary_outputs()
        .iter()
        .map(|&p| soc.netlist().cell(p).name().unwrap_or("").to_owned())
        .collect();
    for name in soc_pos {
        assert!(
            device.netlist().find(&name).is_some(),
            "PO {name} lost in device assembly"
        );
    }
    // 6 flops per paper CPF, two domains.
    assert_eq!(
        device.netlist().flops().count(),
        soc.netlist().flops().count() + 12
    );
}

#[test]
fn stuck_at_beats_transition_on_same_soc() {
    use occ::core::stuck_at_procedures;
    let soc = generate(&SocConfig::paper_like(123, 30));
    let binding = soc.binding(false);
    let model = CaptureModel::new(soc.netlist(), binding).unwrap();
    let opts = AtpgOptions {
        random_patterns: 128,
        backtrack_limit: 64,
        ..AtpgOptions::default()
    };

    let sa = run_atpg(
        &model,
        &stuck_at_procedures(ClockingMode::ExternalClock { max_pulses: 4 }, 2),
        FaultUniverse::stuck_at(soc.netlist()),
        &opts,
    );
    let tf = run_atpg(
        &model,
        &transition_procedures(ClockingMode::ExternalClock { max_pulses: 4 }, 2),
        FaultUniverse::transition(soc.netlist()),
        &opts,
    );
    // Same collapsed fault count — the paper points this out explicitly.
    assert_eq!(sa.report().total, tf.report().total);
    assert!(
        sa.report().coverage_pct() > tf.report().coverage_pct(),
        "stuck-at {:.2}% must exceed transition {:.2}%",
        sa.report().coverage_pct(),
        tf.report().coverage_pct()
    );
}
