//! Packed three-valued logic: 64 patterns per word pair.
//!
//! Encoding: `(v, x)` — bit `i` of a signal is `X` when `x` has bit `i`
//! set; otherwise it is `v`'s bit `i`. Canonical form keeps `v`'s bit
//! clear wherever `x` is set, so equal values compare bit-equal.
//!
//! This is the word-parallel re-implementation of
//! [`occ_netlist::Logic`]'s algebra used by PPSFP fault simulation
//! (Waicukauski et al., the paper's reference \[3\]); `tests/prop.rs`
//! checks it bit-for-bit against the scalar algebra.

use occ_netlist::Logic;

/// 64 three-valued signal samples packed into two machine words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PVal {
    /// Value bits (meaningful where `x` is 0).
    pub v: u64,
    /// Unknown mask.
    pub x: u64,
}

impl PVal {
    /// All 64 slots `0`.
    pub const ZERO: PVal = PVal { v: 0, x: 0 };
    /// All 64 slots `1`.
    pub const ONE: PVal = PVal { v: !0, x: 0 };
    /// All 64 slots `X`.
    pub const XX: PVal = PVal { v: 0, x: !0 };

    /// Canonicalizes (clears value bits under the unknown mask).
    #[inline]
    pub fn canon(v: u64, x: u64) -> PVal {
        PVal { v: v & !x, x }
    }

    /// Broadcasts one scalar value into all 64 slots.
    pub fn splat(value: Logic) -> PVal {
        match value.drive() {
            Logic::Zero => PVal::ZERO,
            Logic::One => PVal::ONE,
            _ => PVal::XX,
        }
    }

    /// Reads slot `bit` back as a scalar.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    pub fn slot(self, bit: usize) -> Logic {
        assert!(bit < 64);
        if (self.x >> bit) & 1 == 1 {
            Logic::X
        } else if (self.v >> bit) & 1 == 1 {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Writes slot `bit` (returns the updated value).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    pub fn with_slot(self, bit: usize, value: Logic) -> PVal {
        assert!(bit < 64);
        let m = 1u64 << bit;
        match value.drive() {
            Logic::Zero => PVal::canon(self.v & !m, self.x & !m),
            Logic::One => PVal::canon(self.v | m, self.x & !m),
            _ => PVal::canon(self.v & !m, self.x | m),
        }
    }

    /// Mask of slots holding a definite `0`.
    #[inline]
    pub fn def0(self) -> u64 {
        !self.v & !self.x
    }

    /// Mask of slots holding a definite `1`.
    #[inline]
    pub fn def1(self) -> u64 {
        self.v & !self.x
    }

    /// Slots where `self` and `other` hold *different definite* values —
    /// the fault-detection criterion.
    #[inline]
    pub fn definite_diff(self, other: PVal) -> u64 {
        (self.v ^ other.v) & !self.x & !other.x
    }

    /// Word-parallel NOT (also available as the `!` operator; the named
    /// form mirrors `and`/`or`/`xor` for use as a function value).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> PVal {
        PVal::canon(!self.v, self.x)
    }

    /// Word-parallel AND.
    #[inline]
    pub fn and(self, o: PVal) -> PVal {
        let x = (self.x | o.x) & !(self.def0() | o.def0());
        PVal::canon(self.v & o.v, x)
    }

    /// Word-parallel OR.
    #[inline]
    pub fn or(self, o: PVal) -> PVal {
        let x = (self.x | o.x) & !(self.def1() | o.def1());
        PVal::canon(self.v | o.v, x)
    }

    /// Word-parallel XOR.
    #[inline]
    pub fn xor(self, o: PVal) -> PVal {
        let x = self.x | o.x;
        PVal::canon(self.v ^ o.v, x)
    }

    /// Word-parallel 2-to-1 mux (optimistic-X select, matching
    /// [`Logic::mux2`]).
    #[inline]
    pub fn mux2(sel: PVal, d0: PVal, d1: PVal) -> PVal {
        let s0 = sel.def0();
        let s1 = sel.def1();
        let sx = sel.x;
        let agree1 = d0.def1() & d1.def1();
        let agree0 = d0.def0() & d1.def0();
        let known = (s0 & !d0.x) | (s1 & !d1.x) | (sx & (agree0 | agree1));
        let v = (s0 & d0.v) | (s1 & d1.v) | (sx & agree1);
        PVal::canon(v & known, !known)
    }

    /// Forces slots in `mask` to the definite value `one`.
    #[inline]
    pub fn force(self, mask: u64, one: bool) -> PVal {
        if one {
            PVal::canon(self.v | mask, self.x & !mask)
        } else {
            PVal::canon(self.v & !mask, self.x & !mask)
        }
    }

    /// Selects per-slot between `self` (where `mask` clear) and `other`
    /// (where `mask` set).
    #[inline]
    pub fn blend(self, other: PVal, mask: u64) -> PVal {
        PVal::canon(
            (self.v & !mask) | (other.v & mask),
            (self.x & !mask) | (other.x & mask),
        )
    }
}

impl std::ops::Not for PVal {
    type Output = PVal;

    fn not(self) -> PVal {
        PVal::not(self)
    }
}

/// Evaluates a combinational [`occ_netlist::CellKind`] over packed
/// operands. Returns `None` for non-combinational kinds.
pub fn eval_packed(kind: occ_netlist::CellKind, inputs: &[PVal]) -> Option<PVal> {
    use occ_netlist::CellKind;
    let v = match kind {
        CellKind::Tie0 => PVal::ZERO,
        CellKind::Tie1 => PVal::ONE,
        CellKind::TieX => PVal::XX,
        CellKind::Buf | CellKind::Output => inputs[0],
        CellKind::Not => inputs[0].not(),
        CellKind::And => inputs.iter().copied().fold(PVal::ONE, PVal::and),
        CellKind::Nand => inputs.iter().copied().fold(PVal::ONE, PVal::and).not(),
        CellKind::Or => inputs.iter().copied().fold(PVal::ZERO, PVal::or),
        CellKind::Nor => inputs.iter().copied().fold(PVal::ZERO, PVal::or).not(),
        CellKind::Xor => inputs.iter().copied().fold(PVal::ZERO, PVal::xor),
        CellKind::Xnor => inputs.iter().copied().fold(PVal::ZERO, PVal::xor).not(),
        CellKind::Mux2 => PVal::mux2(inputs[0], inputs[1], inputs[2]),
        _ => return None,
    };
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_slot_roundtrip() {
        for v in [Logic::Zero, Logic::One, Logic::X] {
            let p = PVal::splat(v);
            for bit in [0, 17, 63] {
                assert_eq!(p.slot(bit), v);
            }
        }
        // Z normalizes to X when packed.
        assert_eq!(PVal::splat(Logic::Z).slot(5), Logic::X);
    }

    #[test]
    fn with_slot_is_local() {
        let p = PVal::ZERO.with_slot(3, Logic::One).with_slot(7, Logic::X);
        assert_eq!(p.slot(3), Logic::One);
        assert_eq!(p.slot(7), Logic::X);
        assert_eq!(p.slot(4), Logic::Zero);
    }

    #[test]
    fn packed_matches_scalar_exhaustive_two_input() {
        let vals = [Logic::Zero, Logic::One, Logic::X];
        for &a in &vals {
            for &b in &vals {
                let pa = PVal::splat(a);
                let pb = PVal::splat(b);
                assert_eq!(pa.and(pb).slot(0), a & b, "and {a} {b}");
                assert_eq!(pa.or(pb).slot(0), a | b, "or {a} {b}");
                assert_eq!(pa.xor(pb).slot(0), a ^ b, "xor {a} {b}");
                assert_eq!(pa.not().slot(0), !a, "not {a}");
            }
        }
    }

    #[test]
    fn packed_mux_matches_scalar_exhaustive() {
        let vals = [Logic::Zero, Logic::One, Logic::X];
        for &s in &vals {
            for &d0 in &vals {
                for &d1 in &vals {
                    let got = PVal::mux2(PVal::splat(s), PVal::splat(d0), PVal::splat(d1));
                    assert_eq!(got.slot(0), Logic::mux2(s, d0, d1), "mux {s} {d0} {d1}");
                }
            }
        }
    }

    #[test]
    fn definite_diff_requires_both_definite() {
        let a = PVal::ZERO.with_slot(0, Logic::One).with_slot(1, Logic::X);
        let b = PVal::ZERO;
        assert_eq!(a.definite_diff(b), 0b01);
    }

    #[test]
    fn force_and_blend() {
        let a = PVal::XX;
        let f = a.force(0b1010, true);
        assert_eq!(f.slot(1), Logic::One);
        assert_eq!(f.slot(0), Logic::X);
        let g = PVal::ZERO.blend(PVal::ONE, 0b100);
        assert_eq!(g.slot(2), Logic::One);
        assert_eq!(g.slot(0), Logic::Zero);
    }
}
