//! Quick profiling helper for experiment runtimes: per-stage wall
//! clock, compiled-kernel work counters and per-experiment allocation
//! deltas (counted by a wrapping global allocator), plus peak RSS.

#[path = "../alloc_track.rs"]
mod alloc_track;

#[global_allocator]
static ALLOC: alloc_track::CountingAlloc = alloc_track::CountingAlloc;

use occ_bench::{run_experiment, ExperimentId, Table1Options};
use occ_flow::{EngineChoice, Stage};
use occ_soc::{generate, SocConfig};
use std::time::Instant;

fn main() {
    let cfg = SocConfig::tiny(1);
    let t0 = Instant::now();
    let soc = generate(&cfg);
    println!("gen: {:?} cells={}", t0.elapsed(), soc.netlist().len());
    let opts = Table1Options {
        flops_per_domain: 24,
        engine: EngineChoice::Auto,
        ..Table1Options::default()
    };
    let stages = [
        Stage::BindModel,
        Stage::Procedures,
        Stage::FaultUniverse,
        Stage::Atpg,
        Stage::Classify,
    ];
    for id in [ExperimentId::A, ExperimentId::B, ExperimentId::C] {
        let before = alloc_track::snapshot();
        let row = run_experiment(&soc, id, &opts).expect("tiny SOC flows validate");
        let alloc = alloc_track::snapshot().since(before);
        let stats = row.report.stats();
        println!(
            "{id}: {:.3}s cov={:.2}% eff={:.2}% pats={} targeted={} \
             podem_calls={} aborted={} fsim_batches={}",
            row.seconds,
            row.coverage_pct,
            row.efficiency_pct,
            row.patterns,
            stats.targeted,
            stats.podem_calls,
            stats.aborted_calls,
            stats.fsim_batches
        );
        // Per-stage wall clock.
        print!("    stages:");
        for s in stages {
            print!(" {}={:.3}s", s.label(), row.report.stage_seconds(s));
        }
        println!();
        // Kernel throughput: grading work per ATPG second.
        let k = &row.report.kernel;
        let atpg_secs = row.report.stage_seconds(Stage::Atpg).max(1e-9);
        println!(
            "    kernel: {} cells ({} comb, {} flops), cone {}/{} (scan/po), \
             {} faults graded ({} cone-pruned, {:.1}%), {} events, \
             {:.0} faults/s, {:.0} events/s",
            k.cells,
            k.comb_cells,
            k.flops,
            k.cone_scan,
            k.cone_po,
            k.faults_graded,
            k.cone_pruned,
            100.0 * k.cone_pruned as f64 / (k.faults_graded.max(1)) as f64,
            k.events,
            k.faults_graded as f64 / atpg_secs,
            k.events as f64 / atpg_secs,
        );
        // Allocation pressure for the whole experiment.
        println!(
            "    allocs: {} ({:.1} MiB requested, {:.0} allocs/fault-grade)",
            alloc.allocs,
            alloc.bytes as f64 / (1024.0 * 1024.0),
            alloc.allocs as f64 / (k.faults_graded.max(1)) as f64,
        );
    }
    if let Some(kb) = alloc_track::peak_rss_kb() {
        println!("peak rss: {:.1} MiB", kb as f64 / 1024.0);
    }
}
