//! The packed 64-slot algebra must agree with the scalar 4-valued
//! algebra slot-for-slot. No external property-testing framework is
//! available offline, so this file combines two deterministic
//! strategies that together cover more than sampled properties would:
//!
//! 1. **Exhaustive tiling** — every operand combination of {0, 1, X}
//!    (9 pairs for binary ops, 27 triples for the mux) is placed in
//!    every one of the 64 slot positions and checked per slot.
//! 2. **A seeded xorshift sweep** — thousands of arbitrary canonical
//!    word pairs, every slot compared against `occ_netlist::Logic`.

use occ_fsim::PVal;
use occ_netlist::Logic;

const VALS: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];

/// Deterministic 64-bit xorshift* stream (self-contained; no deps).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn arb_pvals(seed: u64, n: usize) -> Vec<PVal> {
    let mut rng = XorShift(seed | 1);
    (0..n)
        .map(|_| PVal::canon(rng.next(), rng.next()))
        .collect()
}

/// Tiles a `len`-entry operand-combination table across all 64 slots:
/// slot `s` holds entry `(s + offset) % len`. Sweeping `offset` over
/// `0..len` therefore puts **every** table entry in **every** slot.
fn tile(offset: usize, len: usize, pick: impl Fn(usize) -> Logic) -> PVal {
    let mut p = PVal::ZERO;
    for slot in 0..64 {
        p = p.with_slot(slot, pick((slot + offset) % len));
    }
    p
}

fn is_canon(p: PVal) -> bool {
    p.v & p.x == 0
}

#[test]
fn binary_ops_exhaustive_all_slot_positions() {
    // 9 operand pairs tiled so each pair visits every slot position.
    for offset in 0..9 {
        let a = tile(offset, 9, |i| VALS[i / 3]);
        let b = tile(offset, 9, |i| VALS[i % 3]);
        for slot in 0..64 {
            let (sa, sb) = (a.slot(slot), b.slot(slot));
            assert_eq!(a.and(b).slot(slot), sa & sb, "and {sa} {sb} @{slot}");
            assert_eq!(a.or(b).slot(slot), sa | sb, "or {sa} {sb} @{slot}");
            assert_eq!(a.xor(b).slot(slot), sa ^ sb, "xor {sa} {sb} @{slot}");
        }
    }
}

#[test]
fn not_exhaustive_all_slot_positions() {
    for offset in 0..3 {
        let a = tile(offset, 3, |i| VALS[i]);
        for slot in 0..64 {
            assert_eq!(a.not().slot(slot), !a.slot(slot));
        }
    }
}

#[test]
fn mux_exhaustive_all_slot_positions() {
    // 27 select/d0/d1 triples tiled across every slot position.
    for offset in 0..27 {
        let s = tile(offset, 27, |i| VALS[i / 9]);
        let d0 = tile(offset, 27, |i| VALS[(i / 3) % 3]);
        let d1 = tile(offset, 27, |i| VALS[i % 3]);
        let got = PVal::mux2(s, d0, d1);
        for slot in 0..64 {
            let want = Logic::mux2(s.slot(slot), d0.slot(slot), d1.slot(slot));
            assert_eq!(
                got.slot(slot),
                want,
                "mux2({}, {}, {}) @{slot}",
                s.slot(slot),
                d0.slot(slot),
                d1.slot(slot)
            );
        }
    }
}

#[test]
fn sweep_binary_and_unary_ops() {
    let pool = arb_pvals(0xF51A_2005, 2_000);
    for pair in pool.chunks_exact(2) {
        let (a, b) = (pair[0], pair[1]);
        let and = a.and(b);
        let or = a.or(b);
        let xor = a.xor(b);
        let not = a.not();
        for slot in 0..64 {
            let (sa, sb) = (a.slot(slot), b.slot(slot));
            assert_eq!(and.slot(slot), sa & sb);
            assert_eq!(or.slot(slot), sa | sb);
            assert_eq!(xor.slot(slot), sa ^ sb);
            assert_eq!(not.slot(slot), !sa);
        }
    }
}

#[test]
fn sweep_mux_ops() {
    let pool = arb_pvals(0xDA7E_2005, 1_500);
    for tri in pool.chunks_exact(3) {
        let (s, d0, d1) = (tri[0], tri[1], tri[2]);
        let got = PVal::mux2(s, d0, d1);
        for slot in 0..64 {
            assert_eq!(
                got.slot(slot),
                Logic::mux2(s.slot(slot), d0.slot(slot), d1.slot(slot))
            );
        }
    }
}

#[test]
fn all_ops_preserve_canonical_form() {
    // canon() clears value bits under the X mask; every operation must
    // return canonical words so that Eq is bit-equality.
    let mut rng = XorShift(0x51D3_CAFE);
    for _ in 0..2_000 {
        let c = PVal::canon(rng.next(), rng.next());
        assert!(is_canon(c), "canon must clear v under x");
        let d = PVal::canon(rng.next(), rng.next());
        for r in [
            c.and(d),
            c.or(d),
            c.xor(d),
            c.not(),
            PVal::mux2(c, d, c.not()),
            c.force(rng.next(), true),
            c.force(rng.next(), false),
            c.blend(d, rng.next()),
        ] {
            assert!(is_canon(r), "non-canonical result from {c:?} op {d:?}");
        }
    }
}

#[test]
fn canon_keeps_x_mask_and_clears_masked_values() {
    let mut rng = XorShift(0xC0DE);
    for _ in 0..2_000 {
        let (v, x) = (rng.next(), rng.next());
        let c = PVal::canon(v, x);
        assert_eq!(c.x, x);
        assert_eq!(c.v, v & !x);
    }
}

#[test]
fn splat_equals_tiled_scalar() {
    for v in [Logic::Zero, Logic::One, Logic::X, Logic::Z] {
        let p = PVal::splat(v);
        for slot in 0..64 {
            assert_eq!(p.slot(slot), v.drive());
        }
        assert!(is_canon(p));
    }
}

#[test]
fn with_slot_slot_roundtrip_sweep() {
    let mut rng = XorShift(0x0CC1);
    for _ in 0..500 {
        let base = PVal::canon(rng.next(), rng.next());
        let slot = (rng.next() % 64) as usize;
        for v in VALS {
            let w = base.with_slot(slot, v);
            assert_eq!(w.slot(slot), v);
            assert!(is_canon(w));
            // Every other slot is untouched.
            for other in 0..64 {
                if other != slot {
                    assert_eq!(w.slot(other), base.slot(other));
                }
            }
        }
    }
}

#[test]
fn definite_masks_agree_with_slots() {
    let pool = arb_pvals(0x70C5, 600);
    for pair in pool.chunks_exact(2) {
        let (a, b) = (pair[0], pair[1]);
        let diff = a.definite_diff(b);
        for slot in 0..64 {
            let bit = (diff >> slot) & 1 == 1;
            let (sa, sb) = (a.slot(slot), b.slot(slot));
            let want = sa.is_definite() && sb.is_definite() && sa != sb;
            assert_eq!(bit, want, "definite_diff {sa} {sb} @{slot}");
            assert_eq!((a.def0() >> slot) & 1 == 1, sa == Logic::Zero);
            assert_eq!((a.def1() >> slot) & 1 == 1, sa == Logic::One);
        }
    }
}
