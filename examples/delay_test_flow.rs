//! The full delay-test flow on a generated SOC: compare the idealized
//! external clock (experiment (b)) against the simple on-chip CPF
//! clocking (experiment (c)) — the paper's central comparison — on a
//! small two-domain device.
//!
//! Run with: `cargo run --release --example delay_test_flow`

use occ::atpg::{classify_faults, run_atpg, AtpgOptions};
use occ::core::{transition_procedures, ClockingMode};
use occ::fault::FaultUniverse;
use occ::fsim::CaptureModel;
use occ::soc::{generate, SocConfig};

fn main() {
    let soc = generate(&SocConfig::paper_like(7, 60));
    println!(
        "SOC: {} cells, {} scan chains, chain length {}",
        soc.netlist().len(),
        soc.chains().chains().len(),
        soc.chains().max_chain_len()
    );

    let mut rows = Vec::new();
    for (label, mode, mask_bidi) in [
        (
            "(b) external clock (ideal)",
            ClockingMode::ExternalClock { max_pulses: 4 },
            false,
        ),
        ("(c) simple 2-pulse CPF", ClockingMode::SimpleCpf, true),
        (
            "(d) enhanced CPF",
            ClockingMode::EnhancedCpf { max_pulses: 4 },
            true,
        ),
    ] {
        let binding = soc.binding(mask_bidi);
        let model = CaptureModel::new(soc.netlist(), binding).expect("model binds");
        let procedures = transition_procedures(mode, model.domain_count());
        println!("\n{label}: {} capture procedures", procedures.len());
        for p in &procedures {
            println!("   {p}");
        }
        let mut result = run_atpg(
            &model,
            &procedures,
            FaultUniverse::transition(soc.netlist()),
            &AtpgOptions::default(),
        );
        classify_faults(&model, &mut result.faults);
        let report = result.report();
        println!(
            "   coverage {:.2}%  patterns {}  efficiency {:.2}%",
            report.coverage_pct(),
            result.patterns.len(),
            report.efficiency_pct()
        );
        for (class, n) in &report.class_histogram {
            println!("   leftover {class}: {n}");
        }
        rows.push((label, report.coverage_pct(), result.patterns.len()));
    }

    println!("\nsummary (the paper's Table 1 shape):");
    for (label, cov, pats) in &rows {
        println!("  {label:<28} coverage {cov:>6.2}%  patterns {pats}");
    }
    let ideal = rows[0].1;
    let simple = rows[1].1;
    let enhanced = rows[2].1;
    assert!(
        simple < ideal,
        "on-chip clocking must lose coverage vs the ideal reference"
    );
    assert!(enhanced >= simple, "the enhanced CPF must recover coverage");
    println!("\nok: simple CPF loses coverage, enhanced CPF recovers part of it");
}
