//! The pluggable ATPG engine interface.
//!
//! The deterministic search loop of `run_atpg` needs one operation
//! from a test generator: *attempt a test for one fault under one
//! capture procedure*. This trait captures exactly that — the analogue
//! of [`occ_fsim::FaultSimEngine`] for the generation side — so the
//! retained scalar [`ReferencePodem`](crate::ReferencePodem) and the
//! compiled incremental [`CompiledPodem`](crate::CompiledPodem) are
//! interchangeable behind `&mut dyn AtpgEngine`. Both are required
//! (and swept in `tests/atpg_equivalence.rs`) to produce **identical
//! [`PodemOutcome`]s** for the same inputs: the compiled engine
//! replaces only the value engine and the lookup tables, never the
//! decision order.

use crate::{Observability, PodemOutcome};
use occ_fault::Fault;
use occ_fsim::FrameSpec;

/// Work counters a compiled ATPG engine reports — collected into
/// `FlowReport`s and the `atpg_bench` perf baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtpgKernelStats {
    /// Decision-variable assignments tried (initial choices + flips).
    pub decisions: u64,
    /// Backtracks (deepest-unflipped-decision flips).
    pub backtracks: u64,
    /// Value-engine events: cell evaluations plus flop-capture
    /// computations (0 for the reference engine, which re-evaluates
    /// everything and counts nothing).
    pub events: u64,
    /// Incremental (changed-cone) re-simulations.
    pub incremental_resims: u64,
    /// Full from-scratch dual simulations (one per PODEM run for the
    /// compiled engine, one per *decision* for the reference engine).
    pub full_resims: u64,
    /// PODEM runs whose opening full simulation was *seeded* from the
    /// per-procedure all-X baseline instead of evaluated from scratch
    /// (the compiled engine, when the procedure spec repeats across
    /// targeted faults; 0 for the reference engine).
    pub seeded_sims: u64,
}

/// A test-generation engine: anything that can run one
/// backtrack-limited PODEM search for one fault under one procedure.
///
/// Implementations must be deterministic — the outcome may not depend
/// on internal scratch state carried between calls.
pub trait AtpgEngine {
    /// Attempts to generate a test for `fault` under `spec`.
    ///
    /// `obs` must be the observability cones of the same `spec`.
    fn run(
        &mut self,
        spec: &FrameSpec,
        obs: &Observability,
        fault: Fault,
        backtrack_limit: usize,
    ) -> PodemOutcome;

    /// A short human-readable engine label (for reports and logs).
    fn engine_name(&self) -> &'static str;

    /// Work counters accumulated by this engine since construction.
    fn kernel_stats(&self) -> AtpgKernelStats {
        AtpgKernelStats::default()
    }
}
