//! The flow-service daemon.
//!
//! ```text
//! occ_serverd [--addr 127.0.0.1:4805] [--workers N] [--cache-mb N]
//!             [--max-pending N] [--conn-inflight N] [--drain-ms N]
//! ```
//!
//! Binds, prints one `listening on <addr>` line to stdout (parsed by
//! the CI smoke script), then serves until a client sends
//! `{"op":"shutdown"}` (or the process is killed) — the shutdown
//! drains queued jobs for up to `--drain-ms` before cancelling
//! stragglers. `--max-pending` / `--conn-inflight` bound the job queue
//! (0 = unlimited); excess load is shed with a typed `overloaded`
//! error. See `occ_server::proto` for the line protocol.

use occ_server::{serve, ServerConfig};

fn main() {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = args.next().unwrap_or_else(|| usage("--addr needs a value")),
            "--workers" => {
                config.workers = parse(args.next(), "--workers");
            }
            "--cache-mb" => {
                config.cache_budget = parse::<usize>(args.next(), "--cache-mb") * 1024 * 1024;
            }
            "--max-pending" => {
                config.max_pending = parse(args.next(), "--max-pending");
            }
            "--conn-inflight" => {
                config.max_inflight_per_conn = parse(args.next(), "--conn-inflight");
            }
            "--drain-ms" => {
                config.drain_deadline_ms = parse(args.next(), "--drain-ms");
            }
            "--help" | "-h" => {
                println!(
                    "usage: occ_serverd [--addr HOST:PORT] [--workers N] [--cache-mb N] \
                     [--max-pending N] [--conn-inflight N] [--drain-ms N]"
                );
                return;
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    let handle = match serve(&config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("occ_serverd: bind {} failed: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.addr());
    handle.wait();
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a numeric value")))
}

fn usage(msg: &str) -> ! {
    eprintln!("occ_serverd: {msg}");
    eprintln!(
        "usage: occ_serverd [--addr HOST:PORT] [--workers N] [--cache-mb N] \
         [--max-pending N] [--conn-inflight N] [--drain-ms N]"
    );
    std::process::exit(2);
}
