//! # occ-soc — synthetic SOC generation
//!
//! The paper evaluates on a proprietary 0.13 µm micro-controller SOC
//! (two synchronous clock domains at 75/150 MHz, 357 balanced scan
//! chains, EDT compression, non-scan cells, RAMs, bidirectional pads).
//! That netlist is not available, so this crate generates **seeded,
//! reproducible stand-ins** exposing the same structural features the
//! Table 1 experiments exercise:
//!
//! * two (or more) clock domains with a configurable fraction of
//!   domain-crossing paths (synchronous domains, as in the paper);
//! * a configurable fraction of non-scan flops (what the multi-pulse
//!   enhanced CPF initializes);
//! * RAM macros (excluded from ATPG, as the paper's "RAM sequential
//!   patterns are not considered");
//! * bidirectional-pad feedback paths (forbidden under ATE
//!   constraints);
//! * balanced multiplexed-scan chains via [`occ_dft`].
//!
//! [`Device`] additionally assembles the paper's Figure 1: the scan SOC
//! with one gate-level CPF per domain spliced into the clock path,
//! driven by the [`occ_core::Pll`] model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmarks;
mod config;
mod device;
mod generate;

pub use benchmarks::{c17, counter8, shift_chain};
pub use config::{DomainConfig, SocConfig};
pub use device::{assemble_device, Device};
pub use generate::{generate, Soc};
