//! The TCP daemon: accept loop, per-connection line handling, shared
//! job pool.
//!
//! Topology: one listener thread accepts connections; each connection
//! gets a reader thread that parses request lines and *enqueues* jobs
//! on the shared [`JobPool`] (so N connections never oversubscribe the
//! machine — the worker budget bounds concurrent flows), then writes
//! the response line when its job completes. Requests on one
//! connection are answered in order; different connections' jobs run
//! concurrently up to the pool width.
//!
//! Shutdown: the `shutdown` op (or [`ServerHandle::shutdown`]) flips a
//! flag and pokes the listener with a loopback connect so `accept`
//! returns; in-flight jobs finish (the pool joins its workers on
//! drop).

use crate::pool::JobPool;
use crate::proto::{error_line, parse_request, run_job, stats_line, ProtoError, Request};
use crate::service::FlowService;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks a free port (tests); the default
    /// binds loopback only — this is a build service, not an internet
    /// daemon.
    pub addr: String,
    /// Job-pool worker threads.
    pub workers: usize,
    /// Artifact-cache byte budget (0 = unlimited).
    pub cache_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4805".to_owned(), // DATE 2005 ;-)
            workers: 2,
            cache_budget: 0,
        }
    }
}

/// A running daemon: its bound address plus the shutdown controls.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the accept loop exits on its own — i.e. until a
    /// client sends the `shutdown` op. The daemon binary's main loop.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, waits for the accept loop to exit. Jobs
    /// already queued finish; connections observe EOF.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds and spawns the daemon; returns immediately with its handle.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission).
pub fn serve(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let service = Arc::new(FlowService::new(config.cache_budget));
    let pool = Arc::new(JobPool::new(config.workers));
    let shutdown = Arc::new(AtomicBool::new(false));

    let flag = Arc::clone(&shutdown);
    let accept_thread = std::thread::Builder::new()
        .name("occ-accept".to_owned())
        .spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&service);
                let pool = Arc::clone(&pool);
                let flag = Arc::clone(&flag);
                // Connection threads are detached: they hold only Arcs
                // and exit on client EOF or shutdown.
                let _ = std::thread::Builder::new()
                    .name("occ-conn".to_owned())
                    .spawn(move || handle_connection(stream, &service, &pool, &flag));
            }
            // Pool (and its workers) drop with the last Arc.
        })
        .expect("spawn accept thread");

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(
    stream: TcpStream,
    service: &Arc<FlowService>,
    pool: &Arc<JobPool>,
    shutdown: &Arc<AtomicBool>,
) {
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if shutdown.load(Ordering::SeqCst) {
            let _ = respond(
                &mut writer,
                &error_line(&ProtoError {
                    code: "shutting-down",
                    message: "server is shutting down".to_owned(),
                }),
            );
            break;
        }
        let response = match parse_request(&line) {
            Err(e) => error_line(&e),
            Ok(Request::Ping) => r#"{"ok":true,"op":"ping"}"#.to_owned(),
            Ok(Request::Stats) => stats_line(&service.cache_stats()),
            Ok(Request::Shutdown) => {
                shutdown.store(true, Ordering::SeqCst);
                // Poke the listener so accept() observes the flag.
                let _ = TcpStream::connect(
                    writer
                        .local_addr()
                        .unwrap_or_else(|_| "127.0.0.1:0".parse().expect("literal addr")),
                );
                let _ = respond(&mut writer, r#"{"ok":true,"op":"shutdown"}"#);
                break;
            }
            Ok(Request::Job { spec, format }) => {
                // Run on the shared pool; this connection waits for
                // *its* job while other connections' jobs proceed.
                let (tx, rx) = mpsc::channel::<String>();
                let service = Arc::clone(service);
                pool.submit(move || {
                    let _ = tx.send(run_job(&service, &spec, format));
                });
                rx.recv().unwrap_or_else(|_| {
                    error_line(&ProtoError {
                        code: "internal",
                        message: "job worker dropped the result (job panicked)".to_owned(),
                    })
                })
            }
        };
        if respond(&mut writer, &response).is_err() {
            break;
        }
    }
}

fn respond(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Client helper: sends one request line, reads one response line.
/// What `occ_client` and the tests use; real clients can speak the
/// protocol with nothing but a socket.
///
/// # Errors
///
/// Propagates connect/write/read failures; a closed-without-response
/// connection yields `UnexpectedEof`.
pub fn request(addr: SocketAddr, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    let n = reader.read_line(&mut response)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection without a response",
        ));
    }
    while response.ends_with('\n') || response.ends_with('\r') {
        response.pop();
    }
    Ok(response)
}
