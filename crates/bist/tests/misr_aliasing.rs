//! MISR determinism and a known-aliasing construction: a fault whose
//! two equal difference bits land on the same MISR lane in the same
//! unload cycle XOR-cancel, so the kernel sees the fault but the
//! signature does not — `run_lbist` must classify it as aliased, and
//! widening the MISR so the chains get distinct lanes must recover the
//! detection.

use occ_bist::{run_lbist, BistConfig};
use occ_dft::{insert_scan, ScanChains, ScanConfig};
use occ_fault::FaultUniverse;
use occ_fsim::{CancelToken, CaptureModel, ClockBinding, CycleSpec, FrameSpec};
use occ_netlist::{Logic, NetlistBuilder};

/// Two scan flops capturing the *same* AND output, stitched into two
/// one-flop chains: any fault on the shared cone produces identical
/// diffs on both chains at unload cycle 0.
fn aliasing_rig() -> ScanChains {
    let mut b = NetlistBuilder::new("alias");
    let clk = b.input("clk");
    let p0 = b.input("p0");
    let p1 = b.input("p1");
    let d = b.and2(p0, p1);
    b.name_cell(d, "shared_and");
    let f0 = b.dff(d, clk);
    let f1 = b.dff(d, clk);
    b.name_cell(f0, "f0");
    b.name_cell(f1, "f1");
    insert_scan(&b.finish().unwrap(), &ScanConfig::new(2)).unwrap()
}

fn model(sc: &ScanChains) -> CaptureModel<'_> {
    let nl = sc.netlist();
    let mut binding = ClockBinding::new();
    binding.add_domain("clk", nl.find("clk").unwrap());
    binding.constrain(sc.scan_enable(), Logic::Zero);
    for &si in sc.scan_ins() {
        binding.mask(si);
    }
    CaptureModel::new(nl, binding).unwrap()
}

fn run(sc: &ScanChains, misr_len: usize, seed: u64) -> occ_bist::LbistOutcome {
    let m = model(sc);
    let spec = FrameSpec::new("cap", vec![CycleSpec::pulsing(&[0])]);
    let universe = FaultUniverse::stuck_at(sc.netlist());
    run_lbist(
        &m,
        &[spec],
        universe,
        sc,
        &BistConfig {
            patterns: 64,
            misr_len,
            lfsr_len: 16,
            seed,
        },
        &[],
        0,
        &CancelToken::never(),
    )
    .unwrap()
}

#[test]
fn congruent_chains_alias_and_wider_misr_recovers() {
    let sc = aliasing_rig();
    assert_eq!(sc.chains().len(), 2);
    assert!(sc.chains().iter().all(|c| c.len() == 1));

    // misr_len = 1: both chains XOR-merge into lane 0, so the two
    // identical diffs cancel for every fault in the shared cone.
    let narrow = run(&sc, 1, 0x0B157);
    assert!(narrow.report.kernel_detected > 0, "kernel must see faults");
    assert!(
        narrow.report.aliased > 0,
        "identical diffs on one lane must alias: {:?}",
        narrow.report
    );

    // misr_len = 2: the chains get distinct lanes, nothing merges, and
    // a single-lane stream can never alias (invertible feedback).
    let wide = run(&sc, 2, 0x0B157);
    assert_eq!(wide.report.aliased, 0, "{:?}", wide.report);
    assert!(wide.report.bist_detected > narrow.report.bist_detected);
}

#[test]
fn referee_accounting_is_exhaustive() {
    let sc = aliasing_rig();
    for misr_len in [1, 2] {
        let out = run(&sc, misr_len, 0x5EED);
        let r = out.report;
        assert_eq!(
            r.bist_detected + r.aliased + r.x_masked,
            r.kernel_detected,
            "every kernel detection must be detected or explained: {r:?}"
        );
        // BIST can never claim more than the uncompacted kernel.
        assert!(r.bist_detected <= r.kernel_detected);
    }
}

#[test]
fn signature_is_deterministic_and_seed_sensitive() {
    let sc = aliasing_rig();
    let a = run(&sc, 2, 1);
    let b = run(&sc, 2, 1);
    assert_eq!(a.report, b.report, "same seed, same campaign");
    assert!(a.report.signature.is_some(), "no X-sources in this rig");
    assert!(a.report.signature_valid);
    // The register here is only 2 bits, so any single pair of seeds
    // may collide — but across a handful of seeds the signatures must
    // not all be identical.
    let sigs: Vec<Option<u64>> = (0..8).map(|s| run(&sc, 2, s).report.signature).collect();
    assert!(
        sigs.iter().any(|&s| s != sigs[0]),
        "seed must reshape the PRPG stream / MISR taps: {sigs:?}"
    );
    // Same patterns either way.
    assert_eq!(a.patterns.patterns().len(), 64);
}

#[test]
fn x_sources_invalidate_the_signature() {
    let sc = aliasing_rig();
    let m = model(&sc);
    let spec = FrameSpec::new("cap", vec![CycleSpec::pulsing(&[0])]);
    let universe = FaultUniverse::stuck_at(sc.netlist());
    let out = run_lbist(
        &m,
        &[spec],
        universe,
        &sc,
        &BistConfig::default(),
        &[],
        3, // pretend lint found three L008 X-sources
        &CancelToken::never(),
    )
    .unwrap();
    assert_eq!(out.report.x_sources, 3);
    assert!(
        !out.report.signature_valid,
        "an unbounded X-source must invalidate the signature"
    );
}
