//! The immutable netlist arena and its derived views.

use crate::{Cell, CellId, CellKind};
use std::collections::HashMap;

/// A validated, immutable gate-level netlist.
///
/// Produced by [`NetlistBuilder::finish`](crate::NetlistBuilder::finish);
/// construction is the only mutation path, so every `Netlist` is
/// structurally sound: arities match, no dangling references, no
/// combinational cycles.
///
/// # Examples
///
/// ```
/// use occ_netlist::{NetlistBuilder, CellKind};
/// # fn main() -> Result<(), occ_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let q = b.not(a);
/// b.output("q", q);
/// let nl = b.finish()?;
/// assert_eq!(nl.cell(q).kind(), CellKind::Not);
/// assert_eq!(nl.fanouts(a), &[q]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: Box<str>,
    cells: Vec<Cell>,
    primary_inputs: Vec<CellId>,
    primary_outputs: Vec<CellId>,
    fanouts: Vec<Vec<CellId>>,
    levelization: Levelization,
    by_name: HashMap<Box<str>, CellId>,
}

/// Topological ordering of the combinational cells of a netlist.
///
/// Sequential cells (flops, latches, clock gates, RAM) and sources
/// (inputs, ties) sit at level 0; each combinational cell is one level
/// above its deepest input. [`Levelization::order`] lists combinational
/// cells in a valid single-pass evaluation order.
#[derive(Debug, Clone, Default)]
pub struct Levelization {
    order: Vec<CellId>,
    level: Vec<u32>,
    max_level: u32,
}

impl Levelization {
    pub(crate) fn new(order: Vec<CellId>, level: Vec<u32>, max_level: u32) -> Self {
        Levelization {
            order,
            level,
            max_level,
        }
    }

    /// Combinational cells in dependency order (inputs before outputs).
    #[inline]
    pub fn order(&self) -> &[CellId] {
        &self.order
    }

    /// Level of a cell (0 for sources and sequential cells).
    #[inline]
    pub fn level(&self, id: CellId) -> u32 {
        self.level[id.index()]
    }

    /// The deepest combinational level in the netlist.
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Per-cell levels indexed by [`CellId::index`] — the dense view
    /// compiled simulation kernels flatten into their own arrays
    /// (equivalent to calling [`Levelization::level`] per cell).
    #[inline]
    pub fn levels(&self) -> &[u32] {
        &self.level
    }
}

impl Netlist {
    pub(crate) fn assemble(
        name: Box<str>,
        cells: Vec<Cell>,
        primary_inputs: Vec<CellId>,
        primary_outputs: Vec<CellId>,
        levelization: Levelization,
    ) -> Self {
        let mut fanouts: Vec<Vec<CellId>> = vec![Vec::new(); cells.len()];
        for (i, cell) in cells.iter().enumerate() {
            let sink = CellId::from_index(i);
            for &src in cell.inputs() {
                fanouts[src.index()].push(sink);
            }
        }
        let mut by_name = HashMap::new();
        for (i, cell) in cells.iter().enumerate() {
            if let Some(n) = cell.name() {
                by_name.insert(n.into(), CellId::from_index(i));
            }
        }
        Netlist {
            name,
            cells,
            primary_inputs,
            primary_outputs,
            fanouts,
            levelization,
            by_name,
        }
    }

    /// The design name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells (including inputs, outputs and ties).
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the netlist has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Iterates over `(id, cell)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::from_index(i), c))
    }

    /// All cell ids, in order.
    pub fn ids(&self) -> impl Iterator<Item = CellId> {
        (0..self.cells.len()).map(CellId::from_index)
    }

    /// Primary inputs in declaration order.
    #[inline]
    pub fn primary_inputs(&self) -> &[CellId] {
        &self.primary_inputs
    }

    /// Primary outputs in declaration order.
    #[inline]
    pub fn primary_outputs(&self) -> &[CellId] {
        &self.primary_outputs
    }

    /// Cells that consume the output of `id`, in id order.
    #[inline]
    pub fn fanouts(&self, id: CellId) -> &[CellId] {
        &self.fanouts[id.index()]
    }

    /// Total number of fanout edges (the sum of all per-cell fanout
    /// list lengths) — lets CSR compilers size their flattened edge
    /// arrays in one allocation.
    pub fn fanout_edge_count(&self) -> usize {
        self.fanouts.iter().map(Vec::len).sum()
    }

    /// Total number of fanin edges (the sum of all cell input counts).
    pub fn fanin_edge_count(&self) -> usize {
        self.cells.iter().map(|c| c.inputs().len()).sum()
    }

    /// The combinational levelization computed at build time.
    #[inline]
    pub fn levelization(&self) -> &Levelization {
        &self.levelization
    }

    /// Looks up a cell by its instance name.
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over all flip-flop cells.
    pub fn flops(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.iter().filter(|(_, c)| c.kind().is_flop())
    }

    /// Iterates over all cells of one kind.
    pub fn cells_of_kind(&self, kind: CellKind) -> impl Iterator<Item = CellId> + '_ {
        self.iter()
            .filter(move |(_, c)| c.kind() == kind)
            .map(|(id, _)| id)
    }

    /// Number of "logic gates" in the data-book sense: everything except
    /// primary inputs/outputs and tie cells. This is the count the paper
    /// uses when it states the CPF "consists of ten standard digital
    /// logic gates".
    pub fn logic_gate_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| {
                !matches!(
                    c.kind(),
                    CellKind::Input
                        | CellKind::Output
                        | CellKind::Tie0
                        | CellKind::Tie1
                        | CellKind::TieX
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use crate::{CellKind, NetlistBuilder};

    #[test]
    fn fanout_lists_are_complete() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.and2(a, x);
        b.output("y", y);
        let nl = b.finish().unwrap();
        assert_eq!(nl.fanouts(a), &[x, y]);
        assert_eq!(nl.fanouts(x), &[y]);
        assert_eq!(nl.fanouts(y).len(), 1); // the output marker
    }

    #[test]
    fn levelization_orders_dependencies() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let bb = b.input("b");
        let n1 = b.and2(a, bb);
        let n2 = b.or2(n1, a);
        let n3 = b.xor2(n2, n1);
        b.output("o", n3);
        let nl = b.finish().unwrap();
        let lev = nl.levelization();
        assert_eq!(lev.level(a), 0);
        assert_eq!(lev.level(n1), 1);
        assert_eq!(lev.level(n2), 2);
        assert_eq!(lev.level(n3), 3);
        assert_eq!(lev.max_level(), 4); // the PO marker sits above n3
        let pos: std::collections::HashMap<_, _> = lev
            .order()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        assert!(pos[&n1] < pos[&n2]);
        assert!(pos[&n2] < pos[&n3]);
    }

    #[test]
    fn flop_breaks_levelization_cycle() {
        // q feeds back through an inverter into its own d: legal because
        // the flop is a sequential boundary.
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let ff = b.dff_uninit(clk);
        let d = b.not(ff);
        b.set_flop_d(ff, d);
        b.output("q", ff);
        let nl = b.finish().unwrap();
        assert_eq!(nl.levelization().level(ff), 0);
        assert_eq!(nl.levelization().level(d), 1);
    }

    #[test]
    fn find_by_name() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let n = b.not(a);
        b.name_cell(n, "u_inv");
        b.output("o", n);
        let nl = b.finish().unwrap();
        assert_eq!(nl.find("u_inv"), Some(n));
        assert_eq!(nl.find("a"), Some(a));
        assert_eq!(nl.find("missing"), None);
    }

    #[test]
    fn logic_gate_count_excludes_ports_and_ties() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let t1 = b.tie1();
        let g = b.and2(a, t1);
        b.output("o", g);
        let nl = b.finish().unwrap();
        assert_eq!(nl.logic_gate_count(), 1);
        assert_eq!(nl.cells_of_kind(CellKind::And).count(), 1);
    }
}
