//! Per-cell propagation delays for the event-driven simulator.

use crate::Time;
use occ_netlist::{CellId, CellKind};
use std::collections::HashMap;

/// Assigns a propagation delay to every cell.
///
/// The default model uses small, distinct per-kind delays (gates faster
/// than flops) so that waveforms are realistic but easy to reason about
/// in tests; individual cells can be overridden, which the CPF tests use
/// to check glitch-freedom under skewed enables.
///
/// # Examples
///
/// ```
/// use occ_sim::DelayModel;
/// use occ_netlist::CellKind;
///
/// let mut dm = DelayModel::default();
/// assert!(dm.kind_delay(CellKind::Dff) > dm.kind_delay(CellKind::Not));
/// dm.set_kind(CellKind::Not, 3);
/// assert_eq!(dm.kind_delay(CellKind::Not), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DelayModel {
    base: Time,
    flop: Time,
    overrides_kind: HashMap<&'static str, Time>,
    overrides_cell: HashMap<CellId, Time>,
}

impl Default for DelayModel {
    /// Gates: 10 ps, flops/latches/CGC: 30 ps clock-to-out.
    fn default() -> Self {
        DelayModel {
            base: 10,
            flop: 30,
            overrides_kind: HashMap::new(),
            overrides_cell: HashMap::new(),
        }
    }
}

impl DelayModel {
    /// A uniform delay for every cell (useful for unit-delay testing).
    pub fn uniform(delay: Time) -> Self {
        DelayModel {
            base: delay,
            flop: delay,
            overrides_kind: HashMap::new(),
            overrides_cell: HashMap::new(),
        }
    }

    /// Overrides the delay for one cell kind.
    pub fn set_kind(&mut self, kind: CellKind, delay: Time) -> &mut Self {
        self.overrides_kind.insert(kind.mnemonic(), delay);
        self
    }

    /// Overrides the delay for one specific cell.
    pub fn set_cell(&mut self, cell: CellId, delay: Time) -> &mut Self {
        self.overrides_cell.insert(cell, delay);
        self
    }

    /// Delay for a kind with no cell-specific override.
    pub fn kind_delay(&self, kind: CellKind) -> Time {
        if let Some(&d) = self.overrides_kind.get(kind.mnemonic()) {
            return d;
        }
        match kind {
            k if k.is_flop() => self.flop,
            CellKind::LatchLow | CellKind::ClockGate => self.flop,
            CellKind::Ram { .. } | CellKind::RamOut { .. } => self.flop,
            CellKind::Input | CellKind::Output => 0,
            CellKind::Tie0 | CellKind::Tie1 | CellKind::TieX => 0,
            _ => self.base,
        }
    }

    /// Effective delay of a specific cell.
    pub fn delay(&self, cell: CellId, kind: CellKind) -> Time {
        self.overrides_cell
            .get(&cell)
            .copied()
            .unwrap_or_else(|| self.kind_delay(kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_take_precedence() {
        let mut dm = DelayModel::uniform(5);
        let c = CellId::from_index(7);
        dm.set_kind(CellKind::And, 9);
        dm.set_cell(c, 1);
        assert_eq!(dm.kind_delay(CellKind::And), 9);
        assert_eq!(dm.delay(c, CellKind::And), 1);
        assert_eq!(dm.delay(CellId::from_index(8), CellKind::And), 9);
    }

    #[test]
    fn ports_have_zero_delay() {
        let dm = DelayModel::default();
        assert_eq!(dm.kind_delay(CellKind::Input), 0);
        assert_eq!(dm.kind_delay(CellKind::Output), 0);
    }
}
