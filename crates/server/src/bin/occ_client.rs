//! One-shot protocol client.
//!
//! ```text
//! occ_client [--retries N] [--retry-base-ms N] [--retry-seed N] <addr> <request-json>
//! occ_client 127.0.0.1:4805 '{"op":"ping"}'
//! ```
//!
//! Sends one request line, prints the response line, exits 0 on an
//! `"ok":true` response and 1 otherwise — scriptable from CI without
//! `nc` timing games. Transport failures and `overloaded` rejections
//! retry with seeded jittered exponential backoff (honouring the
//! server's `retry_after_ms` hint); `--retries 1` disables retrying.

use occ_server::{request_with_retry, Json, RetryPolicy};

fn main() {
    let mut policy = RetryPolicy::default();
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--retries" => policy.attempts = parse(args.next(), "--retries"),
            "--retry-base-ms" => policy.base_ms = parse(args.next(), "--retry-base-ms"),
            "--retry-seed" => policy.seed = parse(args.next(), "--retry-seed"),
            "--help" | "-h" => {
                println!(
                    "usage: occ_client [--retries N] [--retry-base-ms N] [--retry-seed N] \
                     <addr> <request-json>"
                );
                return;
            }
            _ => positional.push(arg),
        }
    }
    let [addr, line] = positional.as_slice() else {
        eprintln!("usage: occ_client [--retries N] <addr> <request-json>");
        std::process::exit(2);
    };
    let addr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("occ_client: bad address '{addr}': {e}");
            std::process::exit(2);
        }
    };
    match request_with_retry(addr, line, &policy) {
        Ok(response) => {
            println!("{response}");
            let ok = Json::parse(&response)
                .ok()
                .and_then(|v| v.get("ok").and_then(Json::as_bool))
                .unwrap_or(false);
            std::process::exit(i32::from(!ok));
        }
        Err(e) => {
            eprintln!("occ_client: request failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("occ_client: {flag} needs a numeric value");
        std::process::exit(2);
    })
}
