//! Property tests: the packed 64-slot algebra must agree with the
//! scalar 4-valued algebra slot-for-slot on arbitrary words.

use occ_fsim::PVal;
use occ_netlist::Logic;
use proptest::prelude::*;

fn arb_pval() -> impl Strategy<Value = PVal> {
    (any::<u64>(), any::<u64>()).prop_map(|(v, x)| PVal::canon(v, x))
}

proptest! {
    #[test]
    fn and_matches_scalar(a in arb_pval(), b in arb_pval(), bit in 0usize..64) {
        prop_assert_eq!(a.and(b).slot(bit), a.slot(bit) & b.slot(bit));
    }

    #[test]
    fn or_matches_scalar(a in arb_pval(), b in arb_pval(), bit in 0usize..64) {
        prop_assert_eq!(a.or(b).slot(bit), a.slot(bit) | b.slot(bit));
    }

    #[test]
    fn xor_matches_scalar(a in arb_pval(), b in arb_pval(), bit in 0usize..64) {
        prop_assert_eq!(a.xor(b).slot(bit), a.slot(bit) ^ b.slot(bit));
    }

    #[test]
    fn not_matches_scalar(a in arb_pval(), bit in 0usize..64) {
        prop_assert_eq!(a.not().slot(bit), !a.slot(bit));
    }

    #[test]
    fn mux_matches_scalar(s in arb_pval(), d0 in arb_pval(), d1 in arb_pval(), bit in 0usize..64) {
        prop_assert_eq!(
            PVal::mux2(s, d0, d1).slot(bit),
            Logic::mux2(s.slot(bit), d0.slot(bit), d1.slot(bit))
        );
    }

    #[test]
    fn definite_diff_matches_scalar(a in arb_pval(), b in arb_pval(), bit in 0usize..64) {
        let want = {
            let (x, y) = (a.slot(bit), b.slot(bit));
            x.is_definite() && y.is_definite() && x != y
        };
        prop_assert_eq!((a.definite_diff(b) >> bit) & 1 == 1, want);
    }

    #[test]
    fn canon_is_idempotent(a in arb_pval()) {
        prop_assert_eq!(PVal::canon(a.v, a.x), a);
        prop_assert_eq!(a.v & a.x, 0, "canonical form keeps v clear under x");
    }

    #[test]
    fn with_slot_roundtrip(a in arb_pval(), bit in 0usize..64, v in 0u8..3) {
        let val = match v { 0 => Logic::Zero, 1 => Logic::One, _ => Logic::X };
        prop_assert_eq!(a.with_slot(bit, val).slot(bit), val);
    }
}
