//! Workspace integration test: the assembled device's CPFs really gate
//! the SOC flops — cycle-level capture only happens when the CPF has
//! been armed, and the scan path works through the real clock path.

use occ::core::{Pll, PllConfig};
use occ::netlist::Logic;
use occ::sim::CycleSim;
use occ::soc::{assemble_device, generate, SocConfig};

#[test]
fn flops_only_capture_when_cpf_fires() {
    let soc = generate(&SocConfig::tiny(3));
    let device = assemble_device(&soc, Pll::new(PllConfig::paper()));
    let nl = device.netlist();
    let mut sim = CycleSim::new(nl);

    // Drive all PIs low (reset deasserted!); shift mode off; CPF
    // disarmed.
    for &pi in nl.primary_inputs() {
        sim.set(pi, Logic::Zero);
    }
    sim.set(soc.rstn(), Logic::One);
    sim.set(device.scan_en(), Logic::Zero);
    sim.settle();

    // Pick a scan flop of domain 0 and preload it.
    let probe = soc.chains().chains()[0][0];
    sim.set_flop(probe, Logic::One);
    sim.settle();

    // PLL pulses while the CPF is disarmed (no trigger was given):
    // nothing may capture, the flop holds its value.
    for _ in 0..4 {
        sim.pulse(&[device.pll_clk_ports()[0], device.pll_clk_ports()[1]]);
    }
    assert_eq!(
        sim.value(probe),
        Logic::One,
        "disarmed CPF must block capture pulses"
    );

    // Arm: one scan_clk pulse while scan_en is low loads the trigger.
    sim.pulse(&[device.scan_clk()]);
    // The shift register takes 3 PLL cycles before the window opens,
    // then passes exactly two pulses; pulse 6 times and check the flop
    // captured its D cone value (i.e. participated in capture).
    let mut captured = false;
    for _ in 0..6 {
        sim.pulse(&[device.pll_clk_ports()[0], device.pll_clk_ports()[1]]);
        if sim.value(probe) != Logic::One {
            captured = true;
        }
    }
    // The D cone value may coincide with the preload; accept either a
    // change or a verified pass-through by re-checking with the
    // opposite preload.
    if !captured {
        sim.set(device.scan_en(), Logic::One);
        sim.settle();
        sim.set(device.scan_en(), Logic::Zero);
        sim.settle();
        sim.set_flop(probe, Logic::Zero);
        sim.settle();
        sim.pulse(&[device.scan_clk()]);
        for _ in 0..6 {
            sim.pulse(&[device.pll_clk_ports()[0], device.pll_clk_ports()[1]]);
        }
        // The captured D-cone value equalled the first preload (One),
        // so with the opposite preload a real capture must change the
        // flop; a flop that never captures would still hold Zero.
        captured = sim.value(probe) != Logic::Zero;
    }
    assert!(captured);
}

#[test]
fn scan_shift_works_through_cpf_mux() {
    // With scan_en high, the CPF forwards scan_clk: shifting must move
    // data down the chain exactly as on the raw SOC.
    let soc = generate(&SocConfig::tiny(8));
    let device = assemble_device(&soc, Pll::new(PllConfig::paper()));
    let nl = device.netlist();
    let mut sim = CycleSim::new(nl);
    for &pi in nl.primary_inputs() {
        sim.set(pi, Logic::Zero);
    }
    sim.set(soc.rstn(), Logic::One);
    sim.set(device.scan_en(), Logic::One);
    sim.settle();

    let chain = &soc.chains().chains()[0];
    let si_port = soc.chains().scan_ins()[0];
    // Shift in a 1 followed by 0s; after len pulses the 1 sits at the
    // chain tail.
    sim.set(si_port, Logic::One);
    sim.pulse(&[device.scan_clk()]);
    sim.set(si_port, Logic::Zero);
    for _ in 1..chain.len() {
        sim.pulse(&[device.scan_clk()]);
    }
    assert_eq!(
        sim.value(*chain.last().unwrap()),
        Logic::One,
        "the shifted 1 must reach the chain tail through the CPF mux"
    );
}
