//! Netlist-only structural rules: combinational loops through
//! transparent latches (`L001`), floating nets (`L002`) and duplicate
//! cell names (`L003`).
//!
//! These need no clock binding, so they run on any [`Netlist`] — the
//! builder already rejects *pure* combinational loops at `finish()`
//! time, which is exactly why the loop rule here hunts the loops the
//! builder cannot see: cycles closed through level-sensitive elements
//! (`LatchLow` data pins, `ClockGate` clock feed-throughs) that are
//! sequential to the levelizer but combinationally transparent in
//! silicon.

use crate::{Diagnostic, RuleId};
use occ_netlist::{CellId, CellKind, Netlist};

/// Human-readable cell label: instance name when present, else the id
/// plus mnemonic.
pub(crate) fn label(nl: &Netlist, id: CellId) -> String {
    match nl.cell(id).name() {
        Some(n) => format!("'{n}'"),
        None => format!("{id} ({})", nl.cell(id).kind().mnemonic()),
    }
}

/// Runs the netlist-only rules, appending to `out`. Returns the number
/// of cells scanned.
pub(crate) fn run(nl: &Netlist, out: &mut Vec<Diagnostic>) -> usize {
    comb_loops(nl, out);
    floating_nets(nl, out);
    duplicate_names(nl, out);
    nl.len()
}

/// True when `kind` passes values combinationally from `pin` to its
/// output even though the levelizer treats the cell as sequential.
fn transparent_pin(kind: CellKind, pin: usize) -> bool {
    match kind {
        // Transparent while en=0: d flows straight through.
        CellKind::LatchLow => pin == 0,
        // clk-in feeds clk-out through the output AND gate.
        CellKind::ClockGate => pin == 0,
        _ => false,
    }
}

/// `L001`: combinational loops closed through transparent latch paths.
fn comb_loops(nl: &Netlist, out: &mut Vec<Diagnostic>) {
    let n = nl.len();
    let is_member = |id: CellId| {
        let cell = nl.cell(id);
        let kind = cell.kind();
        (kind.is_combinational() && !cell.inputs().is_empty())
            || matches!(kind, CellKind::LatchLow | CellKind::ClockGate)
    };
    // Kahn's algorithm over the member subgraph (one propagation edge
    // per qualifying input pin); whatever survives sits on — or inside
    // an SCC fed by — a combinational cycle.
    let mut indegree = vec![0u32; n];
    let mut edges: Vec<Vec<CellId>> = vec![Vec::new(); n]; // src -> sinks
    let mut members: Vec<CellId> = Vec::new();
    for id in nl.ids() {
        if !is_member(id) {
            continue;
        }
        members.push(id);
        let cell = nl.cell(id);
        for (pin, &src) in cell.inputs().iter().enumerate() {
            if is_member(src)
                && (cell.kind().is_combinational() || transparent_pin(cell.kind(), pin))
            {
                edges[src.index()].push(id);
                indegree[id.index()] += 1;
            }
        }
    }
    let mut queue: Vec<CellId> = members
        .iter()
        .copied()
        .filter(|&id| indegree[id.index()] == 0)
        .collect();
    let mut processed = 0usize;
    while let Some(id) = queue.pop() {
        processed += 1;
        for &sink in &edges[id.index()] {
            indegree[sink.index()] -= 1;
            if indegree[sink.index()] == 0 {
                queue.push(sink);
            }
        }
    }
    if processed == members.len() {
        return;
    }
    let cyclic: Vec<CellId> = members
        .iter()
        .copied()
        .filter(|&id| indegree[id.index()] > 0)
        .collect();
    // Anchor the report on the transparent elements that close the
    // loops — the builder guarantees every cycle runs through one.
    let anchors: Vec<CellId> = cyclic
        .iter()
        .copied()
        .filter(|&id| matches!(nl.cell(id).kind(), CellKind::LatchLow | CellKind::ClockGate))
        .collect();
    let anchored = if anchors.is_empty() {
        &cyclic
    } else {
        &anchors
    };
    for &id in anchored {
        out.push(Diagnostic::new(
            RuleId::CombLoop,
            Some(id),
            format!(
                "combinational loop through transparent {} {} ({} cells in cyclic region)",
                nl.cell(id).kind().mnemonic(),
                label(nl, id),
                cyclic.len()
            ),
        ));
    }
}

/// `L002`: unloaded drivers and logic riding an uncontrolled (`TieX`)
/// source.
fn floating_nets(nl: &Netlist, out: &mut Vec<Diagnostic>) {
    for (id, cell) in nl.iter() {
        match cell.kind() {
            // Output markers are the sinks; they never fan out.
            CellKind::Output => continue,
            CellKind::TieX => {
                let loads = nl.fanouts(id);
                if let Some(&first) = loads.first() {
                    out.push(
                        Diagnostic::new(
                            RuleId::FloatingNet,
                            Some(id),
                            format!(
                                "uncontrolled source {} drives {} load(s) — the net is \
                                 permanently unknown",
                                label(nl, id),
                                loads.len()
                            ),
                        )
                        .with_related(first),
                    );
                }
            }
            _ => {
                if nl.fanouts(id).is_empty() {
                    out.push(Diagnostic::new(
                        RuleId::FloatingNet,
                        Some(id),
                        format!(
                            "{} {} drives no load (floating output net)",
                            cell.kind().mnemonic(),
                            label(nl, id)
                        ),
                    ));
                }
            }
        }
    }
}

/// `L003`: duplicate instance names — two drivers claiming one net
/// name is how a multiply-driven net shows up in this single-driver
/// IR, and it silently shadows `Netlist::find` lookups.
fn duplicate_names(nl: &Netlist, out: &mut Vec<Diagnostic>) {
    let mut seen: std::collections::HashMap<&str, CellId> = std::collections::HashMap::new();
    for (id, cell) in nl.iter() {
        let Some(name) = cell.name() else { continue };
        if let Some(&first) = seen.get(name) {
            out.push(
                Diagnostic::new(
                    RuleId::DuplicateName,
                    Some(id),
                    format!(
                        "cell name '{name}' is claimed by both {first} and {id} — \
                         the net is effectively multiply-driven and name lookup is shadowed"
                    ),
                )
                .with_related(first),
            );
        } else {
            seen.insert(name, id);
        }
    }
}
