//! # occ-fsim — parallel-pattern fault simulation over capture models
//!
//! The fault-grading substrate of the workspace: a 64-bit
//! parallel-pattern single-fault-propagation (PPSFP) simulator in the
//! tradition of Waicukauski et al. (the paper's reference \[3\]),
//! generalized to the **multi-frame capture procedures** the paper's
//! on-chip clock generation produces:
//!
//! * a [`CaptureModel`] binds a netlist to clock domains and test
//!   constraints (scan enable held, resets inactive, masked sources);
//! * a [`FrameSpec`] describes one named capture procedure — how many
//!   cycles, which domains pulse when, whether PIs may change and POs
//!   are strobed;
//! * a [`SimGraph`] is compiled once per model: flattened CSR
//!   fanin/fanout arrays, dense [`OpCode`]s, the levelized evaluation
//!   order, per-flop capture metadata and precomputed observability
//!   cones;
//! * [`simulate_good`] runs up to 64 [`Pattern`]s through the procedure
//!   at once (incrementally across frames when PIs are held);
//!   [`FaultSim`] — the compiled zero-allocation PPSFP kernel —
//!   propagates each fault's difference over the graph and reports
//!   per-pattern detection masks, honouring transition-fault launch
//!   conditions and rejecting cone-unobservable faults in O(1);
//! * [`ParallelFaultSim`] shards the collapsed fault universe across
//!   worker threads (per-thread scratch arenas, deterministic merge)
//!   and produces masks bit-identical to the serial engine;
//! * the [`FaultSimEngine`] trait makes the engines interchangeable
//!   behind `&mut dyn FaultSimEngine` — ATPG and static compaction in
//!   `occ-atpg` are generic over it — and surfaces [`KernelStats`]
//!   (cells compiled, cone-pruned faults, events propagated);
//! * [`ReferenceFaultSim`] retains the pre-kernel allocation-heavy
//!   engine as the correctness oracle and perf baseline.
//!
//! The ATPG engine (`occ-atpg`) runs on the same model types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod engine;
mod faultsim;
mod goodsim;
mod graph;
mod model;
mod parallel;
mod pattern;
mod pval;
mod reference;
mod spec;
mod timing;

pub use cancel::{CancelCause, CancelToken};
pub use engine::FaultSimEngine;
pub use faultsim::{FaultSim, ScanResponse};
pub use goodsim::{simulate_good, simulate_good_scalar, GoodBatch};
pub use graph::{FlopMeta, KernelStats, OpCode, SimGraph, FLOP_TAG, NO_RESET};
pub use model::{CaptureModel, ClockBinding, FlopInfo, ModelError};
pub use parallel::ParallelFaultSim;
pub use pattern::{Pattern, PatternSet};
pub use pval::{eval_packed, PVal};
pub use reference::ReferenceFaultSim;
pub use spec::{CycleSpec, DomainId, FrameSpec};
pub use timing::{SimTiming, TimePs};
