//! Static observability cones per capture procedure.
//!
//! For each frame `k`, [`Observability`] marks the cells from which a
//! fault effect can still structurally reach an observation point:
//! an observed primary output, the sample cone of a scan flop's *last*
//! capture pulse, or (across frames) logic feeding flops whose output
//! is observable later. PODEM uses this to cut off search branches
//! whose fault effect can no longer be observed — cheap, sound pruning.

use occ_fsim::{CaptureModel, FrameSpec};
use occ_netlist::{CellId, CellKind};

/// Per-frame structural observability of fault effects.
#[derive(Debug, Clone)]
pub struct Observability {
    /// `reachable[k-1][cell]` — effect at `(cell, frame k)` can reach an
    /// observation point.
    reachable: Vec<Vec<bool>>,
}

impl Observability {
    /// Computes the cones for a procedure.
    pub fn compute(model: &CaptureModel<'_>, spec: &FrameSpec) -> Self {
        let nl = model.netlist();
        let n = nl.len();
        let frames = spec.frames();
        let mut reachable = vec![vec![false; n]; frames];

        // Last frame in which each domain pulses (None = never).
        let mut last_pulse: Vec<Option<usize>> = vec![None; model.domain_count()];
        for (k0, cycle) in spec.cycles().iter().enumerate() {
            for &d in &cycle.pulses {
                last_pulse[d] = Some(k0 + 1);
            }
        }

        for k in (1..=frames).rev() {
            let mut seeds: Vec<CellId> = Vec::new();
            // Observed POs this frame.
            if spec.po_observe_frames().contains(&k) {
                seeds.extend(model.primary_outputs().iter().copied());
            }
            let cycle = &spec.cycles()[k - 1];
            for info in model.flops() {
                let pulsed = cycle.pulses_domain(info.domain);
                let q_later = k < frames && reachable[k][info.cell.index()];
                // Scan flop capturing its final value: the sample cone is
                // observed at unload.
                let final_capture = info.is_scan && pulsed && last_pulse[info.domain] == Some(k);
                if pulsed && (q_later || final_capture) {
                    let cell = nl.cell(info.cell);
                    // Sample cone: D (and SE/SI for scan muxes).
                    seeds.push(cell.inputs()[0]);
                    if cell.kind().is_scan_flop() {
                        seeds.push(cell.inputs()[2]);
                        seeds.push(cell.inputs()[3]);
                    }
                }
                // Held state carries forward: Q observable later means Q
                // observable now.
                if !pulsed && q_later {
                    reachable[k - 1][info.cell.index()] = true;
                }
            }
            // Backward combinational closure within frame k.
            let mut work = seeds;
            while let Some(c) = work.pop() {
                if reachable[k - 1][c.index()] {
                    continue;
                }
                reachable[k - 1][c.index()] = true;
                let cell = nl.cell(c);
                if cell.kind().is_combinational() || matches!(cell.kind(), CellKind::RamOut { .. })
                {
                    work.extend(cell.inputs().iter().copied());
                }
            }
        }
        Observability { reachable }
    }

    /// True when an effect at `(cell, frame)` (1-based frame) can reach
    /// an observation point.
    pub fn observable(&self, frame: usize, cell: CellId) -> bool {
        self.reachable[frame - 1][cell.index()]
    }

    /// True when an effect appearing at the final frame can be observed
    /// from `cell` — the coarse pre-filter used to skip procedures.
    pub fn observable_at_capture(&self, cell: CellId) -> bool {
        self.reachable.last().is_some_and(|v| v[cell.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_fsim::ClockBinding;
    use occ_netlist::{Logic, NetlistBuilder};

    /// Two domains: g_a feeds a dom-A flop, g_b feeds a dom-B flop,
    /// g_po feeds only a PO.
    struct Rig {
        nl: occ_netlist::Netlist,
        cka: CellId,
        ckb: CellId,
        g_a: CellId,
        g_b: CellId,
        g_po: CellId,
    }

    fn rig() -> Rig {
        let mut b = NetlistBuilder::new("t");
        let cka = b.input("cka");
        let ckb = b.input("ckb");
        let se = b.input("se");
        let si = b.input("si");
        let x = b.input("x");
        let y = b.input("y");
        let g_a = b.and2(x, y);
        let g_b = b.or2(x, y);
        let g_po = b.xor2(x, y);
        let _fa = b.sdff(g_a, cka, se, si);
        let _fb = b.sdff(g_b, ckb, se, si);
        b.output("po", g_po);
        Rig {
            nl: b.finish().unwrap(),
            cka,
            ckb,
            g_a,
            g_b,
            g_po,
        }
    }

    fn model(r: &Rig) -> CaptureModel<'_> {
        let mut binding = ClockBinding::new();
        binding.add_domain("a", r.cka);
        binding.add_domain("b", r.ckb);
        binding.constrain(r.nl.find("se").unwrap(), Logic::Zero);
        binding.mask(r.nl.find("si").unwrap());
        CaptureModel::new(&r.nl, binding).unwrap()
    }

    #[test]
    fn single_domain_masked_sees_only_its_cone() {
        let r = rig();
        let m = model(&r);
        // Domain A only, POs masked: g_a observable, g_b and g_po not.
        let spec = FrameSpec::broadside("a2", &[0], 2)
            .hold_pi(true)
            .observe_po(false);
        let obs = Observability::compute(&m, &spec);
        assert!(obs.observable_at_capture(r.g_a));
        assert!(!obs.observable_at_capture(r.g_b));
        assert!(!obs.observable_at_capture(r.g_po));
    }

    #[test]
    fn po_observation_extends_cone() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::broadside("a2po", &[0], 2);
        let obs = Observability::compute(&m, &spec);
        assert!(obs.observable_at_capture(r.g_po));
    }

    #[test]
    fn both_domains_cover_everything_but_po_when_masked() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::broadside("ab", &[0, 1], 2)
            .hold_pi(true)
            .observe_po(false);
        let obs = Observability::compute(&m, &spec);
        assert!(obs.observable_at_capture(r.g_a));
        assert!(obs.observable_at_capture(r.g_b));
        assert!(!obs.observable_at_capture(r.g_po));
    }

    #[test]
    fn earlier_frames_reach_through_state() {
        // Chain: g -> f0 -> f1; only a 2-frame procedure makes g at
        // frame 1 observable through f0's recapture... build it.
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let x = b.input("x");
        let g = b.not(x);
        let f0 = b.sdff(g, clk, se, si);
        let f1 = b.sdff(f0, clk, se, si);
        b.output("q", f1);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        binding.constrain(nl.find("se").unwrap(), Logic::Zero);
        binding.mask(nl.find("si").unwrap());
        let m = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::broadside("2p", &[0], 2)
            .hold_pi(true)
            .observe_po(false);
        let obs = Observability::compute(&m, &spec);
        // g at frame 1: captured by f0 (pulsed at 1, Q feeds f1 at 2).
        assert!(obs.observable(1, g));
        // g at frame 2: f0 captures it at the final pulse -> unloaded.
        assert!(obs.observable(2, g));
    }
}
