//! One-shot protocol client.
//!
//! ```text
//! occ_client <addr> <request-json>
//! occ_client 127.0.0.1:4805 '{"op":"ping"}'
//! ```
//!
//! Sends one request line, prints the response line, exits 0 on an
//! `"ok":true` response and 1 otherwise — scriptable from CI without
//! `nc` timing games.

use occ_server::{request, Json};

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(addr), Some(line)) = (args.next(), args.next()) else {
        eprintln!("usage: occ_client <addr> <request-json>");
        std::process::exit(2);
    };
    let addr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("occ_client: bad address '{addr}': {e}");
            std::process::exit(2);
        }
    };
    match request(addr, &line) {
        Ok(response) => {
            println!("{response}");
            let ok = Json::parse(&response)
                .ok()
                .and_then(|v| v.get("ok").and_then(Json::as_bool))
                .unwrap_or(false);
            std::process::exit(i32::from(!ok));
        }
        Err(e) => {
            eprintln!("occ_client: request failed: {e}");
            std::process::exit(1);
        }
    }
}
