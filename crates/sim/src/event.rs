//! Event-driven, inertial-delay timing simulation.

use crate::{CompiledDelays, DelayModel, Time, Trace, Waveform};
use occ_netlist::{CellId, CellKind, Logic, Netlist};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// `(time, seq, cell, encoded value, is_stimulus)` — tuples order by
/// time then insertion sequence, giving deterministic simulation.
type QueuedEvent = (Time, u64, u32, u8, bool);

/// An event-driven logic simulator with per-cell inertial delays.
///
/// The simulator models exactly what the paper's Figure 4 is about:
/// glitch behaviour of gated clocks. Each cell has one *pending* output
/// change at a time; re-evaluation before the pending change matures
/// replaces it (inertial delay), so pulses shorter than a cell's delay
/// are swallowed — and, conversely, any pulse that *does* appear on a
/// traced net is a real pulse, which lets tests assert glitch-freedom.
///
/// See the crate-level example for usage.
#[derive(Debug)]
pub struct EventSim<'a> {
    netlist: &'a Netlist,
    /// The delay model compiled into a flat per-cell table, so the
    /// per-event `schedule` path is a single indexed load.
    delays: CompiledDelays,
    values: Vec<Logic>,
    pending: Vec<Option<(Time, Logic)>>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    now: Time,
    /// Last observed clock level per clocked cell (edge detection).
    last_clk: HashMap<CellId, Logic>,
    /// Internal latched enable per clock-gating cell.
    cgc_latch: HashMap<CellId, Logic>,
    /// Latch output state (LatchLow holds when en=1).
    ram: HashMap<CellId, RamState>,
    trace: Trace,
}

#[derive(Debug, Default)]
struct RamState {
    mem: HashMap<u64, Vec<Logic>>,
    poisoned: bool,
    data_bits: u8,
}

impl<'a> EventSim<'a> {
    /// Creates a simulator over `netlist` with the given delay model.
    ///
    /// All signals start at `X` except tie cells, which settle to their
    /// constants after their (zero) delay at time 0.
    pub fn new(netlist: &'a Netlist, delays: DelayModel) -> Self {
        let n = netlist.len();
        let mut sim = EventSim {
            netlist,
            delays: delays.compile(netlist),
            values: vec![Logic::X; n],
            pending: vec![None; n],
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            last_clk: HashMap::new(),
            cgc_latch: HashMap::new(),
            ram: HashMap::new(),
            trace: Trace::new(),
        };
        for (id, cell) in netlist.iter() {
            match cell.kind() {
                CellKind::Tie0 => sim.values[id.index()] = Logic::Zero,
                CellKind::Tie1 => sim.values[id.index()] = Logic::One,
                CellKind::TieX => sim.values[id.index()] = Logic::X,
                CellKind::Ram { data_bits, .. } => {
                    sim.ram.insert(
                        id,
                        RamState {
                            data_bits,
                            ..RamState::default()
                        },
                    );
                }
                _ => {}
            }
        }
        // Settle constant cones at t=0.
        for id in netlist.ids() {
            sim.evaluate(id);
        }
        sim
    }

    /// Drives a primary input with a stimulus waveform.
    ///
    /// # Panics
    ///
    /// Panics if `pi` is not an [`CellKind::Input`] cell or if the
    /// waveform starts in the past (before the current time).
    pub fn drive(&mut self, pi: CellId, waveform: Waveform) {
        assert_eq!(
            self.netlist.cell(pi).kind(),
            CellKind::Input,
            "drive() target must be a primary input"
        );
        for &(t, v) in waveform.changes() {
            assert!(t >= self.now, "stimulus change at {t} is in the past");
            self.seq += 1;
            self.queue
                .push(Reverse((t, self.seq, pi.index() as u32, encode(v), true)));
        }
    }

    /// Starts recording a signal (using its instance name if present).
    pub fn watch(&mut self, id: CellId) {
        let name = self
            .netlist
            .cell(id)
            .name()
            .map_or_else(|| id.to_string(), str::to_owned);
        let v = self.values[id.index()];
        self.trace.add_signal(id, name, v);
    }

    /// Watches every named cell plus all primary inputs and outputs.
    pub fn watch_named(&mut self) {
        let ids: Vec<CellId> = self
            .netlist
            .iter()
            .filter(|(_, c)| c.name().is_some())
            .map(|(id, _)| id)
            .collect();
        for id in ids {
            self.watch(id);
        }
    }

    /// Current value of a signal.
    pub fn value(&self, id: CellId) -> Logic {
        self.values[id.index()]
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulator, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Runs until the event queue is exhausted or `t_end` is reached.
    /// Events scheduled exactly at `t_end` are processed.
    pub fn run_until(&mut self, t_end: Time) {
        while let Some(&Reverse((t, _, _, _, _))) = self.queue.peek() {
            if t > t_end {
                break;
            }
            let Reverse((t, _, raw, venc, stimulus)) = self.queue.pop().expect("peeked");
            let cell = CellId::from_index(raw as usize);
            let value = decode(venc);
            if !stimulus {
                // Skip stale events (pending slot replaced or cancelled).
                if self.pending[cell.index()] != Some((t, value)) {
                    continue;
                }
                self.pending[cell.index()] = None;
            }
            self.now = t;
            let old = self.values[cell.index()];
            if value == old {
                continue;
            }
            self.values[cell.index()] = value;
            if self.trace.contains(cell) {
                self.trace.record(cell, t, old, value);
            }
            // Propagate to fanouts.
            let fanouts: Vec<CellId> = self.netlist.fanouts(cell).to_vec();
            for f in fanouts {
                self.evaluate(f);
            }
        }
        self.now = self.now.max(t_end);
        self.trace.set_end_time(self.now);
    }

    fn input(&self, cell: CellId, pin: usize) -> Logic {
        self.values[self.netlist.cell(cell).inputs()[pin].index()]
    }

    /// Re-evaluates `cell` against current input values and schedules an
    /// output change if needed.
    fn evaluate(&mut self, cell: CellId) {
        let kind = self.netlist.cell(cell).kind();
        let new = match kind {
            CellKind::Input | CellKind::Tie0 | CellKind::Tie1 | CellKind::TieX => return,
            k if k.is_combinational() => {
                let ins: Vec<Logic> = self
                    .netlist
                    .cell(cell)
                    .inputs()
                    .iter()
                    .map(|&i| self.values[i.index()])
                    .collect();
                k.eval_comb(&ins).expect("combinational kind evaluates")
            }
            k if k.is_flop() => self.eval_flop(cell, k),
            CellKind::LatchLow => {
                let d = self.input(cell, 0);
                let en = self.input(cell, 1);
                let q = self.values[cell.index()];
                match en.drive() {
                    Logic::Zero => d.drive(),
                    Logic::One => q,
                    _ => {
                        if d.drive() == q && q.is_definite() {
                            q
                        } else {
                            Logic::X
                        }
                    }
                }
            }
            CellKind::ClockGate => {
                let clk = self.input(cell, 0).drive();
                let en = self.input(cell, 1).drive();
                let lat = *self.cgc_latch.get(&cell).unwrap_or(&Logic::X);
                let lat = match clk {
                    Logic::Zero => en,
                    Logic::One => lat,
                    _ => {
                        if en == lat && lat.is_definite() {
                            lat
                        } else {
                            Logic::X
                        }
                    }
                };
                self.cgc_latch.insert(cell, lat);
                clk & lat
            }
            CellKind::Ram { .. } => {
                self.eval_ram(cell);
                return; // the handle value itself never changes
            }
            CellKind::RamOut { bit } => self.eval_ram_out(cell, bit),
            _ => return,
        };
        self.schedule(cell, new);
    }

    fn eval_flop(&mut self, cell: CellId, kind: CellKind) -> Logic {
        let c = self.netlist.cell(cell);
        let clk = self.values[c.clock().index()].drive();
        let prev_clk = self.last_clk.insert(cell, clk).unwrap_or(Logic::X);
        let q = self.values[cell.index()];

        // Asynchronous resets dominate.
        if let Some(rpin) = c.reset() {
            let r = self.values[rpin.index()].drive();
            let active = match kind {
                CellKind::DffRl | CellKind::SdffRl => r == Logic::Zero,
                CellKind::DffRh => r == Logic::One,
                _ => false,
            };
            let maybe_active = match kind {
                CellKind::DffRl | CellKind::SdffRl => !r.is_definite(),
                CellKind::DffRh => !r.is_definite(),
                _ => false,
            };
            if active {
                return Logic::Zero;
            }
            if maybe_active && q != Logic::Zero {
                return Logic::X;
            }
        }

        let sample = match kind {
            CellKind::Sdff | CellKind::SdffRl => {
                let d = self.values[c.inputs()[0].index()];
                let se = self.values[c.inputs()[2].index()];
                let si = self.values[c.inputs()[3].index()];
                Logic::mux2(se, d, si)
            }
            _ => self.values[c.inputs()[0].index()].drive(),
        };

        match (prev_clk, clk) {
            (Logic::Zero, Logic::One) => sample, // clean rising edge
            (Logic::Zero, x) if !x.is_definite() => {
                // May or may not have been an edge.
                if sample == q && q.is_definite() {
                    q
                } else {
                    Logic::X
                }
            }
            (x, Logic::One) if !x.is_definite() => {
                if sample == q && q.is_definite() {
                    q
                } else {
                    Logic::X
                }
            }
            _ => q,
        }
    }

    fn eval_ram(&mut self, cell: CellId) {
        let c = self.netlist.cell(cell);
        let CellKind::Ram { addr_bits, .. } = c.kind() else {
            unreachable!()
        };
        let clk = self.values[c.inputs()[0].index()].drive();
        let prev_clk = self.last_clk.insert(cell, clk).unwrap_or(Logic::X);
        if prev_clk == Logic::Zero && clk == Logic::One {
            let we = self.values[c.inputs()[1].index()].drive();
            if we != Logic::Zero {
                // Resolve the address.
                let mut addr = 0u64;
                let mut known = true;
                for k in 0..addr_bits as usize {
                    match self.values[c.inputs()[2 + k].index()].drive() {
                        Logic::One => addr |= 1 << k,
                        Logic::Zero => {}
                        _ => known = false,
                    }
                }
                let din: Vec<Logic> = (0..self.ram[&cell].data_bits as usize)
                    .map(|k| self.values[c.inputs()[2 + addr_bits as usize + k].index()].drive())
                    .collect();
                let state = self.ram.get_mut(&cell).expect("ram state exists");
                if !known || we != Logic::One {
                    // Unknown address or uncertain write-enable: contents
                    // can no longer be trusted.
                    state.poisoned = true;
                } else {
                    state.mem.insert(addr, din);
                }
            }
        }
        // Reads are combinational on the address: refresh every port.
        let ports: Vec<CellId> = self.netlist.fanouts(cell).to_vec();
        for p in ports {
            if let CellKind::RamOut { bit } = self.netlist.cell(p).kind() {
                let v = self.eval_ram_out(p, bit);
                self.schedule(p, v);
            }
        }
    }

    fn eval_ram_out(&mut self, cell: CellId, bit: u8) -> Logic {
        let ram = self.netlist.cell(cell).inputs()[0];
        let rc = self.netlist.cell(ram);
        let CellKind::Ram { addr_bits, .. } = rc.kind() else {
            return Logic::X;
        };
        let state = &self.ram[&ram];
        if state.poisoned {
            return Logic::X;
        }
        let mut addr = 0u64;
        for k in 0..addr_bits as usize {
            match self.values[rc.inputs()[2 + k].index()].drive() {
                Logic::One => addr |= 1 << k,
                Logic::Zero => {}
                _ => return Logic::X,
            }
        }
        state
            .mem
            .get(&addr)
            .and_then(|w| w.get(bit as usize).copied())
            .unwrap_or(Logic::X)
    }

    /// Schedules an output change after the cell's delay (inertial).
    fn schedule(&mut self, cell: CellId, new: Logic) {
        let t = self.now + self.delays.of(cell);
        self.schedule_at(cell, t, new);
    }

    fn schedule_at(&mut self, cell: CellId, t: Time, new: Logic) {
        if new == self.values[cell.index()] {
            // Inertial cancellation: a pending different value is revoked.
            self.pending[cell.index()] = None;
            return;
        }
        self.pending[cell.index()] = Some((t, new));
        self.seq += 1;
        self.queue.push(Reverse((
            t,
            self.seq,
            cell.index() as u32,
            encode(new),
            false,
        )));
    }
}

fn encode(v: Logic) -> u8 {
    match v {
        Logic::Zero => 0,
        Logic::One => 1,
        Logic::X => 2,
        Logic::Z => 3,
    }
}

fn decode(e: u8) -> Logic {
    match e {
        0 => Logic::Zero,
        1 => Logic::One,
        2 => Logic::X,
        _ => Logic::Z,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_netlist::NetlistBuilder;

    #[test]
    fn combinational_propagation_with_delay() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let inv = b.not(a);
        b.output("y", inv);
        let nl = b.finish().unwrap();
        let mut sim = EventSim::new(&nl, DelayModel::uniform(10));
        sim.watch(inv);
        sim.drive(a, Waveform::steps(&[(0, Logic::Zero), (100, Logic::One)]));
        sim.run_until(200);
        assert_eq!(sim.trace().value_at(inv, 5), Logic::X);
        assert_eq!(sim.trace().value_at(inv, 10), Logic::One);
        assert_eq!(sim.trace().value_at(inv, 109), Logic::One);
        assert_eq!(sim.trace().value_at(inv, 110), Logic::Zero);
    }

    #[test]
    fn inertial_delay_swallows_glitches() {
        // A pulse shorter than the gate delay must not appear at the
        // output.
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let buf = b.buf(a);
        b.output("y", buf);
        let nl = b.finish().unwrap();
        let mut sim = EventSim::new(&nl, DelayModel::uniform(20));
        sim.watch(buf);
        // 5 ps pulse at t=100 — shorter than the 20 ps delay.
        sim.drive(
            a,
            Waveform::steps(&[(0, Logic::Zero), (100, Logic::One), (105, Logic::Zero)]),
        );
        sim.run_until(300);
        assert_eq!(sim.trace().rising_edges_in(buf, 0, 300), 0);
    }

    #[test]
    fn dff_captures_on_rising_edge_only() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let q = b.dff(d, clk);
        b.output("q", q);
        let nl = b.finish().unwrap();
        let mut sim = EventSim::new(&nl, DelayModel::default());
        sim.watch(q);
        sim.drive(clk, Waveform::clock(200, 100, 1_000));
        sim.drive(
            d,
            Waveform::steps(&[(0, Logic::Zero), (150, Logic::One), (350, Logic::Zero)]),
        );
        sim.run_until(1_000);
        // Edge at 100 captures 0, edge at 300 captures 1, edge at 500
        // captures 0 again (flop delay is 30 ps).
        assert_eq!(sim.trace().value_at(q, 250), Logic::Zero);
        assert_eq!(sim.trace().value_at(q, 340), Logic::One);
        assert_eq!(sim.trace().value_at(q, 560), Logic::Zero);
    }

    #[test]
    fn dff_capture_of_zero_resolves_x() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let q = b.dff(d, clk);
        b.output("q", q);
        let nl = b.finish().unwrap();
        let mut sim = EventSim::new(&nl, DelayModel::default());
        sim.drive(clk, Waveform::clock(200, 100, 400));
        sim.drive(d, Waveform::steps(&[(0, Logic::Zero)]));
        sim.run_until(400);
        assert_eq!(sim.value(q), Logic::Zero);
    }

    #[test]
    fn async_reset_dominates_clock() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let rstn = b.input("rstn");
        let q = b.dff_rl(d, clk, rstn);
        b.output("q", q);
        let nl = b.finish().unwrap();
        let mut sim = EventSim::new(&nl, DelayModel::default());
        sim.watch(q);
        sim.drive(clk, Waveform::clock(100, 50, 600));
        sim.drive(d, Waveform::constant(Logic::One));
        sim.drive(
            rstn,
            Waveform::steps(&[(0, Logic::One), (220, Logic::Zero), (380, Logic::One)]),
        );
        sim.run_until(600);
        // Captures 1 at t=50; reset pulls low at 220 (asynchronously,
        // no clock edge needed); the edge at 350 is suppressed by the
        // still-active reset; the edge at 450 restores 1.
        assert_eq!(sim.trace().value_at(q, 300), Logic::Zero);
        assert_eq!(sim.trace().value_at(q, 420), Logic::Zero);
        assert_eq!(sim.value(q), Logic::One);
    }

    #[test]
    fn scan_flop_selects_si_when_se_high() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let se = b.input("se");
        let si = b.input("si");
        let q = b.sdff(d, clk, se, si);
        b.output("q", q);
        let nl = b.finish().unwrap();
        let mut sim = EventSim::new(&nl, DelayModel::default());
        sim.drive(clk, Waveform::clock(100, 50, 300));
        sim.drive(d, Waveform::constant(Logic::Zero));
        sim.drive(si, Waveform::constant(Logic::One));
        sim.drive(se, Waveform::constant(Logic::One));
        sim.run_until(300);
        assert_eq!(sim.value(q), Logic::One);
    }

    #[test]
    fn clock_gate_is_glitch_free() {
        // Dropping the enable while the clock is high must not cut the
        // pulse short; raising it while high must not create a pulse.
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let en = b.input("en");
        let g = b.clock_gate(clk, en);
        b.output("gclk", g);
        let nl = b.finish().unwrap();
        let mut sim = EventSim::new(&nl, DelayModel::uniform(1));
        sim.watch(g);
        sim.drive(clk, Waveform::clock(100, 100, 1_000));
        // Enable asserted during the second high phase only: the CGC
        // must wait for the next low phase, so exactly the pulses at
        // t=300..350 .. onwards pass while en=1.
        sim.drive(
            en,
            Waveform::steps(&[(0, Logic::Zero), (210, Logic::One), (420, Logic::Zero)]),
        );
        sim.run_until(1_000);
        // Passing pulses: rising edges at 300 and 400 (enable latched
        // during low phases 150–200 → wait: en rises at 210 which is in
        // the low phase 150..200? No: clock high 100–150, low 150–200,
        // high 200–250... en rises at 210 (clk high) → latched at next
        // low phase (250–300) → pulses at 300 and 400 pass; en falls at
        // 420 (clk low 350..400? high 400-450) → latched low at 450-500,
        // pulse at 400 still passes.
        assert_eq!(sim.trace().rising_edges_in(g, 0, 1_000), 2);
        // No glitches: every surviving pulse is a full half-period.
        assert_eq!(sim.trace().min_positive_pulse(g), Some(50));
    }

    #[test]
    fn ram_write_then_read() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let we = b.input("we");
        let a0 = b.input("a0");
        let d0 = b.input("d0");
        let d1 = b.input("d1");
        let (_h, outs) = b.ram(clk, we, &[a0], &[d0, d1]);
        b.output("q0", outs[0]);
        b.output("q1", outs[1]);
        let nl = b.finish().unwrap();
        let mut sim = EventSim::new(&nl, DelayModel::default());
        sim.drive(clk, Waveform::clock(100, 50, 500));
        sim.drive(we, Waveform::steps(&[(0, Logic::One), (80, Logic::Zero)]));
        sim.drive(a0, Waveform::constant(Logic::Zero));
        sim.drive(d0, Waveform::constant(Logic::One));
        sim.drive(d1, Waveform::constant(Logic::Zero));
        sim.run_until(500);
        assert_eq!(sim.value(outs[0]), Logic::One);
        assert_eq!(sim.value(outs[1]), Logic::Zero);
    }

    #[test]
    fn ram_read_unwritten_is_x() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let we = b.input("we");
        let a0 = b.input("a0");
        let d0 = b.input("d0");
        let (_h, outs) = b.ram(clk, we, &[a0], &[d0]);
        b.output("q0", outs[0]);
        let nl = b.finish().unwrap();
        let mut sim = EventSim::new(&nl, DelayModel::default());
        sim.drive(clk, Waveform::clock(100, 50, 200));
        sim.drive(we, Waveform::constant(Logic::Zero));
        sim.drive(a0, Waveform::constant(Logic::One));
        sim.drive(d0, Waveform::constant(Logic::One));
        sim.run_until(200);
        assert_eq!(sim.value(outs[0]), Logic::X);
    }
}
