//! Capture-model rules: non-scan flops in bound capture domains
//! (`L004`), at-speed clock-domain crossings (`L005`), scan-chain
//! connectivity breaks (`L006`) and X-sources inside the MISR
//! observation cone (`L008`).

use crate::netlist_rules::label;
use crate::{Diagnostic, RuleId};
use occ_core::{at_speed_crossings, ClockingMode};
use occ_dft::ScanChains;
use occ_fsim::CaptureModel;
use occ_netlist::{CellId, CellKind};

/// `L004`: a flop clocked by a bound capture domain but not on a scan
/// chain — it captures unknown state every pulse and blinds its fanout
/// cone (the generator models the paper device's intentional non-scan
/// islands, which is why this reports and does not deny).
pub(crate) fn non_scan_capture(model: &CaptureModel<'_>, out: &mut Vec<Diagnostic>) {
    let nl = model.netlist();
    let domains = model.binding().domains();
    for info in model.flops() {
        if info.is_scan {
            continue;
        }
        let domain = domains
            .get(info.domain)
            .map_or("?", |(name, _)| name.as_str());
        out.push(Diagnostic::new(
            RuleId::NonScanCapture,
            Some(info.cell),
            format!(
                "non-scan flop {} is clocked by capture domain '{domain}' — it \
                 captures uncontrolled state at every pulse",
                label(nl, info.cell)
            ),
        ));
    }
}

/// `L005`: structural launch→capture paths between different clock
/// domains that the clocking mode exercises at functional speed. Under
/// the paper's CPF schemes a crossing is only safe when the capture
/// procedure never pulses launch and capture domains back-to-back; the
/// mode-aware crossing list comes from
/// [`occ_core::at_speed_crossings`].
pub(crate) fn cdc_at_speed(
    model: &CaptureModel<'_>,
    mode: ClockingMode,
    out: &mut Vec<Diagnostic>,
) {
    let crossings = at_speed_crossings(mode, model.domain_count());
    if crossings.is_empty() {
        return;
    }
    let nl = model.netlist();
    let domains = model.binding().domains();
    for crossing in crossings {
        // Forward sweep from the launch domain's flops through the
        // combinational fabric (sequential cells are barriers).
        let mut reached = vec![false; nl.len()];
        let mut stack: Vec<CellId> = Vec::new();
        for info in model.flops() {
            if info.domain == crossing.launch {
                reached[info.cell.index()] = true;
                stack.push(info.cell);
            }
        }
        while let Some(id) = stack.pop() {
            for &fo in nl.fanouts(id) {
                if reached[fo.index()] || !nl.cell(fo).kind().is_combinational() {
                    continue;
                }
                reached[fo.index()] = true;
                stack.push(fo);
            }
        }
        let mut paths = 0usize;
        let mut example: Option<(CellId, CellId)> = None;
        for info in model.flops() {
            if info.domain != crossing.capture {
                continue;
            }
            let d = nl.cell(info.cell).flop_d();
            if reached[d.index()] {
                paths += 1;
                if example.is_none() {
                    example = Some((d, info.cell));
                }
            }
        }
        if let Some((launch_net, capture_flop)) = example {
            let from = domains
                .get(crossing.launch)
                .map_or("?", |(name, _)| name.as_str());
            let to = domains
                .get(crossing.capture)
                .map_or("?", |(name, _)| name.as_str());
            out.push(
                Diagnostic::new(
                    RuleId::CdcAtSpeed,
                    Some(capture_flop),
                    format!(
                        "{paths} launch→capture path(s) from domain '{from}' into \
                         domain '{to}' are exercised at speed by procedure \
                         '{}' (e.g. via {})",
                        crossing.procedure,
                        label(nl, launch_net)
                    ),
                )
                .with_related(launch_net),
            );
        }
    }
}

/// `L008`: X-source audit for LBIST readiness. A `TieX` cell or a
/// non-scan (uninitialized-between-loads) state element whose value
/// reaches a scan flop's D cone through the combinational fabric feeds
/// unknown values into the capture — and therefore into a MISR
/// compacting the unload. One corrupted bit makes the whole signature
/// unpredictable, so every such source must be X-bounded (or the
/// signature declared invalid, which is what `occ-bist` does with this
/// rule's findings).
///
/// One forward sweep per source (same idiom as the `L005` crossing
/// sweep); sequential cells are barriers — a *scan* flop capturing the
/// X is exactly the reported condition, and a non-scan flop capturing
/// it is itself already a source.
pub(crate) fn x_source(model: &CaptureModel<'_>, out: &mut Vec<Diagnostic>) {
    let nl = model.netlist();
    let mut sources: Vec<CellId> = nl
        .iter()
        .filter(|(_, c)| c.kind() == CellKind::TieX)
        .map(|(id, _)| id)
        .collect();
    sources.extend(model.flops().iter().filter(|i| !i.is_scan).map(|i| i.cell));
    if sources.is_empty() {
        return;
    }

    let mut reached = vec![false; nl.len()];
    let mut stack: Vec<CellId> = Vec::new();
    for src in sources {
        reached.iter_mut().for_each(|r| *r = false);
        reached[src.index()] = true;
        stack.push(src);
        while let Some(id) = stack.pop() {
            for &fo in nl.fanouts(id) {
                if reached[fo.index()] || !nl.cell(fo).kind().is_combinational() {
                    continue;
                }
                reached[fo.index()] = true;
                stack.push(fo);
            }
        }
        let mut captures = 0usize;
        let mut example: Option<CellId> = None;
        for info in model.flops() {
            if !info.is_scan {
                continue;
            }
            let d = nl.cell(info.cell).flop_d();
            if reached[d.index()] {
                captures += 1;
                if example.is_none() {
                    example = Some(info.cell);
                }
            }
        }
        if let Some(flop) = example {
            let what = if nl.cell(src).kind() == CellKind::TieX {
                "TieX"
            } else {
                "uninitialized non-scan flop"
            };
            out.push(
                Diagnostic::new(
                    RuleId::XSource,
                    Some(src),
                    format!(
                        "{what} {} reaches the capture cone of {captures} scan \
                         flop(s) (e.g. {}) — an unbounded X-source corrupts any \
                         MISR signature observing it",
                        label(nl, src),
                        label(nl, flop)
                    ),
                )
                .with_related(flop),
            );
        }
    }
}

/// `L006`: re-derives every chain's shift wiring on the linted netlist
/// and reports each break: non-scan cells on a chain, scan-in links
/// that do not match the chain order, scan-enable pins off the global
/// enable, and scan-out taps not driven by the chain tail.
pub(crate) fn scan_chain(model: &CaptureModel<'_>, chains: &ScanChains, out: &mut Vec<Diagnostic>) {
    let nl = model.netlist();
    let se = chains.scan_enable();
    for (k, chain) in chains.chains().iter().enumerate() {
        let Some(&head_port) = chains.scan_ins().get(k) else {
            out.push(Diagnostic::new(
                RuleId::ScanChain,
                None,
                format!("chain {k} has no scan-in port"),
            ));
            continue;
        };
        let mut expect_si = head_port;
        let mut broken = false;
        for &cell_id in chain {
            if cell_id.index() >= nl.len() {
                out.push(Diagnostic::new(
                    RuleId::ScanChain,
                    Some(cell_id),
                    format!("chain {k} references {cell_id}, which is not in the netlist"),
                ));
                broken = true;
                break;
            }
            let cell = nl.cell(cell_id);
            if !cell.kind().is_scan_flop() {
                out.push(Diagnostic::new(
                    RuleId::ScanChain,
                    Some(cell_id),
                    format!(
                        "chain {k} runs through {} {} — not a scan flop",
                        cell.kind().mnemonic(),
                        label(nl, cell_id)
                    ),
                ));
                broken = true;
                continue;
            }
            if cell.scan_in() != expect_si {
                out.push(
                    Diagnostic::new(
                        RuleId::ScanChain,
                        Some(cell_id),
                        format!(
                            "chain {k} is broken at {}: scan-in is wired to {} \
                             but the chain order expects {}",
                            label(nl, cell_id),
                            label(nl, cell.scan_in()),
                            label(nl, expect_si)
                        ),
                    )
                    .with_related(expect_si),
                );
                broken = true;
            }
            if cell.scan_enable() != se {
                out.push(
                    Diagnostic::new(
                        RuleId::ScanChain,
                        Some(cell_id),
                        format!(
                            "{} on chain {k} uses scan-enable {} instead of the \
                             global enable {}",
                            label(nl, cell_id),
                            label(nl, cell.scan_enable()),
                            label(nl, se)
                        ),
                    )
                    .with_related(se),
                );
                broken = true;
            }
            expect_si = cell_id;
        }
        if broken {
            continue; // downstream tail check would only echo the break
        }
        if let Some(&out_port) = chains.scan_outs().get(k) {
            let tail_ok = out_port.index() < nl.len()
                && nl.cell(out_port).inputs().first() == Some(&expect_si);
            if !tail_ok {
                out.push(
                    Diagnostic::new(
                        RuleId::ScanChain,
                        Some(out_port),
                        format!(
                            "chain {k} scan-out is not driven by the chain tail {}",
                            label(nl, expect_si)
                        ),
                    )
                    .with_related(expect_si),
                );
            }
        }
    }
}
