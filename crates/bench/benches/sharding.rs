//! Serial vs sharded PPSFP throughput on the largest SOC benchmark:
//! the whole collapsed transition-fault universe is graded against a
//! full 64-pattern batch by the serial engine and by `ParallelFaultSim`
//! at 2, 4 and 8 workers.
//!
//! The sharded masks are asserted bit-identical to the serial ones
//! before timing starts, so the bench cannot silently compare different
//! work. On a single-core host the sharded rows degrade to roughly
//! serial speed (plus spawn overhead); the speedup shows on multicore.

use criterion::{criterion_group, criterion_main, Criterion};
use occ_fault::FaultUniverse;
use occ_fsim::{simulate_good, CaptureModel, FaultSim, FrameSpec, ParallelFaultSim, Pattern};
use occ_netlist::Logic;
use occ_soc::{generate, SocConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_sharding(c: &mut Criterion) {
    // The largest SOC the bench suite builds: full paper-like domain
    // mix at 96 flops per domain.
    let soc = generate(&SocConfig::paper_like(9, 96));
    let binding = soc.binding(true);
    let model = CaptureModel::new(soc.netlist(), binding).unwrap();
    let spec = FrameSpec::broadside("loc", &[0, 1], 2)
        .hold_pi(true)
        .observe_po(false);

    let mut rng = StdRng::seed_from_u64(17);
    let patterns: Vec<Pattern> = (0..64)
        .map(|_| {
            let mut p = Pattern::empty(&model, &spec, 0);
            p.fill_x(|| Logic::from_bool(rng.gen_bool(0.5)));
            p
        })
        .collect();
    let good = simulate_good(&model, &spec, &patterns);
    let faults = FaultUniverse::transition(soc.netlist()).faults().to_vec();
    println!(
        "sharding bench: {} cells, {} collapsed transition faults, 64 patterns",
        soc.netlist().len(),
        faults.len()
    );

    // Cross-check once before timing anything.
    let reference = FaultSim::new(&model).detect_many(&spec, &good, &faults);
    for threads in [2, 4, 8] {
        let masks =
            ParallelFaultSim::with_threads(&model, threads).detect_many(&spec, &good, &faults);
        assert_eq!(
            reference, masks,
            "sharded masks diverged at {threads} threads"
        );
    }

    let mut group = c.benchmark_group("sharding");
    group.sample_size(10);

    group.bench_function("ppsfp_serial", |b| {
        let mut engine = FaultSim::new(&model);
        b.iter(|| {
            let masks = engine.detect_many(&spec, &good, &faults);
            criterion::black_box(masks.iter().filter(|&&m| m != 0).count())
        });
    });

    for threads in [2usize, 4, 8] {
        let psim = ParallelFaultSim::with_threads(&model, threads);
        group.bench_function(format!("ppsfp_sharded_{threads}t"), |b| {
            b.iter(|| {
                let masks = psim.detect_many(&spec, &good, &faults);
                criterion::black_box(masks.iter().filter(|&&m| m != 0).count())
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_sharding);
criterion_main!(benches);
