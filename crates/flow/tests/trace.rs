//! Span-tree shape of a traced flow run: stage spans are exactly the
//! report's stages, nesting is well-formed, and child time never
//! exceeds its parent.

use occ_atpg::AtpgOptions;
use occ_core::ClockingMode;
use occ_flow::{FaultKind, SpanNode, TestFlow};
use occ_soc::{generate, SocConfig};

fn quick_atpg() -> AtpgOptions {
    AtpgOptions {
        random_patterns: 32,
        backtrack_limit: 12,
        ..AtpgOptions::default()
    }
}

#[test]
fn traced_flow_span_tree_has_one_span_per_stage() {
    let soc = generate(&SocConfig::tiny(3));
    let report = TestFlow::new(&soc)
        .clocking(ClockingMode::SimpleCpf)
        .fault_model(FaultKind::Transition)
        .mask_bidi(true)
        .trace(true)
        .atpg(quick_atpg())
        .run()
        .unwrap();

    let trace = report.trace.as_ref().expect("traced run carries a tree");
    let flow = trace.tree.find("flow").expect("one flow root span");

    // Every reported stage has exactly one direct child span of the
    // flow root carrying its label, with the identical duration the
    // stages block reports.
    for st in &report.stages {
        let matching: Vec<&SpanNode> = flow
            .children
            .iter()
            .filter(|c| c.record.name == st.stage.label())
            .collect();
        assert_eq!(
            matching.len(),
            1,
            "stage '{}' must map to exactly one span",
            st.stage.label()
        );
        let span_secs = matching[0].record.seconds();
        assert!(
            (span_secs - st.seconds).abs() < 1e-12,
            "stage '{}': span {span_secs}s vs report {}s",
            st.stage.label(),
            st.seconds
        );
    }
    // And no stage-labelled span exists that the report missed.
    let stage_children = flow
        .children
        .iter()
        .filter(|c| occ_flow::Stage::from_label(c.record.name).is_some())
        .count();
    assert_eq!(stage_children, report.stages.len());

    // Children are contained in their parent and sum to no more than
    // it, recursively: wall time only nests, it never multiplies.
    fn check(node: &SpanNode) {
        let child_sum: u64 = node.children.iter().map(|c| c.record.dur_ns).sum();
        assert!(
            child_sum <= node.record.dur_ns,
            "'{}': children sum {}ns > parent {}ns",
            node.record.name,
            child_sum,
            node.record.dur_ns
        );
        for c in &node.children {
            assert!(c.record.start_ns >= node.record.start_ns);
            check(c);
        }
    }
    check(flow);

    // An untraced run of the same flow records nothing.
    let untraced = TestFlow::new(&soc)
        .clocking(ClockingMode::SimpleCpf)
        .fault_model(FaultKind::Transition)
        .mask_bidi(true)
        .atpg(quick_atpg())
        .run()
        .unwrap();
    assert!(untraced.trace.is_none());
}
