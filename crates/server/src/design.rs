//! Design identity and the compiled design artifact.
//!
//! A design is identified by the full content of its
//! [`SocConfig`] — every field participates in the
//! hash, so changing one fraction or domain frequency yields a new
//! cache identity while re-submitting the same config (from any
//! client, any session) lands on the same compiled artifact.
//!
//! One [`DesignArtifact`] serves *every* clocking mode and mask
//! setting of its design: [`Soc::binding`](occ_soc::Soc::binding)
//! varies only the masked-cell list, never the flop/domain resolution,
//! so the compiled [`SimGraph`] is identical
//! across all of them and is shared by `Arc`.

use crate::hash::Fnv64;
use occ_fsim::{CaptureModel, SimGraph};
use occ_soc::{generate, Soc, SocConfig};
use std::sync::Arc;

/// The stable content hash of a generator configuration.
#[must_use]
pub fn design_hash(config: &SocConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(config.seed);
    h.write_str(&config.name);
    h.write_u64(config.domains.len() as u64);
    for d in &config.domains {
        h.write_str(&d.name);
        h.write_f64(d.freq_mhz);
        h.write_u64(d.flops as u64);
    }
    h.write_u64(config.gates_per_flop as u64);
    h.write_u64(config.pi_count as u64);
    h.write_u64(config.po_count as u64);
    h.write_f64(config.non_scan_fraction);
    h.write_f64(config.crossing_fraction);
    h.write_f64(config.reset_fraction);
    h.write_u64(config.ram_blocks as u64);
    h.write_u64(u64::from(config.ram_addr_bits));
    h.write_u64(u64::from(config.ram_data_bits));
    h.write_u64(config.bidi_pads as u64);
    h.write_u64(config.scan_chains as u64);
    h.finish()
}

/// A generated SOC plus its compiled simulation graph — the expensive
/// per-design work (netlist generation, scan insertion, levelization,
/// CSR edge layout) done exactly once and shared by every job on the
/// design.
#[derive(Debug)]
pub struct DesignArtifact {
    /// The generated, scan-inserted SOC.
    pub soc: Soc,
    /// The compiled graph, shared into every flow via
    /// [`CaptureModel::with_graph`](occ_fsim::CaptureModel::with_graph).
    pub graph: Arc<SimGraph>,
}

impl DesignArtifact {
    /// Generates and compiles a design. The graph is compiled under
    /// the unmasked binding; mask settings do not affect it (they
    /// change forced/masked *values*, applied per pattern, not the
    /// graph structure).
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations the generator rejects
    /// (callers validate via [`crate::proto`] before reaching here).
    #[must_use]
    pub fn build(config: &SocConfig) -> Self {
        let soc = generate(config);
        let graph = CaptureModel::new(soc.netlist(), soc.binding(false))
            .expect("generated SOCs always bind")
            .graph_arc();
        DesignArtifact { soc, graph }
    }

    /// Approximate resident bytes (graph arrays plus a per-cell
    /// estimate for the netlist) — the unit of the cache byte budget.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.graph.approx_bytes() + self.soc.netlist().len() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = SocConfig::tiny(7);
        assert_eq!(design_hash(&a), design_hash(&SocConfig::tiny(7)));
        assert_ne!(design_hash(&a), design_hash(&SocConfig::tiny(8)));
        let mut b = SocConfig::tiny(7);
        b.crossing_fraction += 0.01;
        assert_ne!(design_hash(&a), design_hash(&b));
        let mut c = SocConfig::tiny(7);
        c.domains[0].freq_mhz = 80.0;
        assert_ne!(design_hash(&a), design_hash(&c));
    }

    #[test]
    fn artifact_graph_matches_netlist() {
        let art = DesignArtifact::build(&SocConfig::tiny(3));
        assert_eq!(art.graph.cells(), art.soc.netlist().len());
        assert!(art.approx_bytes() > 0);
    }
}
