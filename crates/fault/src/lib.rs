//! # occ-fault — fault models and coverage accounting
//!
//! Implements the two fault models the paper's experiments use:
//!
//! * **Stuck-at** — each gate terminal stuck at `0` or `1` (Table 1,
//!   experiment (a)).
//! * **Transition** — slow-to-rise / slow-to-fall at each gate terminal
//!   (Table 1, experiments (b)–(e)). Transition faults share the
//!   stuck-at fault sites, which is why the paper notes "this number is
//!   identical to the stuck-at fault count".
//!
//! The crate provides fault-universe enumeration over a netlist,
//! structural equivalence collapsing (the paper reports *collapsed*
//! fault counts), per-fault status tracking and the coverage /
//! test-efficiency statistics printed in Table 1.
//!
//! ## Example
//!
//! ```
//! use occ_netlist::NetlistBuilder;
//! use occ_fault::{FaultUniverse, FaultModel};
//!
//! # fn main() -> Result<(), occ_netlist::BuildError> {
//! let mut b = NetlistBuilder::new("t");
//! let a = b.input("a");
//! let c = b.input("b");
//! let g = b.and2(a, c);
//! b.output("y", g);
//! let nl = b.finish()?;
//!
//! let uni = FaultUniverse::stuck_at(&nl);
//! // 3 nets x 2 + 2 AND pins x 2 = 10 total, collapsed below that.
//! assert_eq!(uni.total_uncollapsed(), 10);
//! assert!(uni.faults().len() < 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collapse;
mod fault;
mod status;
mod universe;

pub use fault::{Fault, FaultModel, FaultSite, Polarity};
pub use status::{CoverageReport, FaultClass, FaultList, FaultStatus};
pub use universe::FaultUniverse;
