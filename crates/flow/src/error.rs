//! The workspace-level flow error type.
//!
//! Everything that can go wrong between SOC, capture model, procedure
//! construction and ATPG surfaces here as one typed enum — replacing
//! the `expect`/`unwrap`/`panic!` seams the hand-wired pipelines used
//! to have. Written `thiserror`-style by hand (the workspace builds
//! offline, so no derive crates).

use occ_core::ClockingMode;
use occ_fault::FaultModel;
use occ_fsim::{CancelCause, ModelError};
use std::error::Error;
use std::fmt;

/// Error raised while configuring or running a [`TestFlow`].
///
/// [`TestFlow`]: crate::TestFlow
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// The capture model declares no clock domains — nothing can be
    /// pulsed, so no capture procedure exists.
    NoDomains,
    /// The design has no scan flops (no chains were inserted, or every
    /// flop was skipped): capture patterns cannot be loaded or
    /// unloaded.
    NoScanChains,
    /// A sharded engine was requested with zero worker threads.
    ZeroThreads,
    /// The clocking mode cannot provide the capture procedures the
    /// requested fault model needs (e.g. a single-pulse external clock
    /// for transition tests, which require launch + capture).
    UnsupportedClocking {
        /// The offending mode.
        mode: ClockingMode,
        /// The fault model that was requested.
        fault_model: FaultModel,
        /// Why the combination cannot work.
        reason: &'static str,
    },
    /// Binding the netlist into a capture model failed.
    Model(ModelError),
    /// The lint stage found error-severity design-rule violations and
    /// the flow was configured with the `deny` gate.
    LintDenied {
        /// Number of error-severity diagnostics.
        errors: usize,
        /// The first error diagnostic, rendered.
        first: String,
    },
    /// An embedded pattern source (EDT or LBIST) was requested on a
    /// bare-model flow: those sources are defined in terms of the
    /// SOC's scan-chain architecture, which `TestFlow::model` does not
    /// carry.
    PatternSourceNeedsSoc {
        /// The requested source's label (`edt` / `lbist`).
        source: &'static str,
    },
    /// An explicit [`EdtConfig`](occ_dft::EdtConfig) disagrees with
    /// the SOC's actual scan geometry (leave `chains` at 0 to let the
    /// flow derive the geometry).
    EdtGeometryMismatch {
        /// Chains/shift length the config claims.
        config: (usize, usize),
        /// Chains/shift length the design actually has.
        design: (usize, usize),
    },
    /// The flow's [`CancelToken`] was cancelled explicitly (a draining
    /// server abandoning in-flight work); all partial state was
    /// discarded.
    ///
    /// [`CancelToken`]: occ_fsim::CancelToken
    Cancelled,
    /// The flow's deadline budget expired before the run completed; all
    /// partial state was discarded.
    DeadlineExceeded,
    /// A failure outside the flow's own validation — e.g. an artifact
    /// build failing in a serving layer, or an injected fault in a
    /// chaos test. The message says what broke.
    Internal(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NoDomains => {
                f.write_str("capture model declares no clock domains; nothing can be pulsed")
            }
            FlowError::NoScanChains => f.write_str(
                "design has no scan flops; capture patterns cannot be loaded or unloaded",
            ),
            FlowError::ZeroThreads => {
                f.write_str("sharded fault-sim engine requires at least one worker thread")
            }
            FlowError::UnsupportedClocking {
                mode,
                fault_model,
                reason,
            } => {
                let fm = match fault_model {
                    FaultModel::StuckAt => "stuck-at",
                    FaultModel::Transition => "transition",
                };
                write!(
                    f,
                    "clocking mode '{mode}' cannot drive {fm} test generation: {reason}"
                )
            }
            FlowError::Model(e) => write!(f, "capture model binding failed: {e}"),
            FlowError::LintDenied { errors, first } => write!(
                f,
                "lint denied the flow: {errors} error-severity violation(s), first: {first}"
            ),
            FlowError::PatternSourceNeedsSoc { source } => write!(
                f,
                "pattern source '{source}' needs a SOC flow (scan-chain \
                 architecture); bare-model flows only support external ATPG"
            ),
            FlowError::EdtGeometryMismatch { config, design } => write!(
                f,
                "EDT config geometry ({} chains x {} cycles) does not match \
                 the design ({} chains x {} cycles); set chains to 0 to derive it",
                config.0, config.1, design.0, design.1
            ),
            FlowError::Cancelled => f.write_str("flow cancelled before completion"),
            FlowError::DeadlineExceeded => f.write_str("flow deadline exceeded before completion"),
            FlowError::Internal(message) => write!(f, "internal failure: {message}"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for FlowError {
    fn from(e: ModelError) -> Self {
        FlowError::Model(e)
    }
}

impl From<CancelCause> for FlowError {
    fn from(cause: CancelCause) -> Self {
        match cause {
            CancelCause::Cancelled => FlowError::Cancelled,
            CancelCause::DeadlineExceeded => FlowError::DeadlineExceeded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FlowError::UnsupportedClocking {
            mode: ClockingMode::ExternalClock { max_pulses: 1 },
            fault_model: FaultModel::Transition,
            reason: "transition tests need launch + capture pulses",
        };
        let msg = e.to_string();
        assert!(msg.contains("transition"), "{msg}");
        assert!(msg.contains("launch + capture"), "{msg}");
        assert!(FlowError::ZeroThreads.to_string().contains("worker thread"));
    }
}
