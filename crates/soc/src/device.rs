//! Device assembly — the paper's Figure 1.
//!
//! Takes a scan-inserted SOC and splices one gate-level CPF per clock
//! domain between the (off-chip-modelled) PLL and the domain's clock
//! tree. The result is a *single netlist* in which the flops' clocks
//! really do come out of the CPF output mux — the configuration the
//! cycle simulator and the event-driven simulator exercise for the
//! Figure 2/4 reproductions, and whose behavioural abstraction is the
//! named-capture-procedure set used by ATPG.

use crate::Soc;
use occ_core::{ClockPulseFilter, CpfConfig, CpfPorts, Pll};
use occ_netlist::{CellId, CellKind, Netlist, NetlistBuilder};

/// The assembled device: SOC + per-domain CPFs.
#[derive(Debug)]
pub struct Device {
    netlist: Netlist,
    pll: Pll,
    cpf_ports: Vec<CpfPorts>,
    pll_clk_ports: Vec<CellId>,
    scan_clk: CellId,
    scan_en: CellId,
}

impl Device {
    /// The full gate-level netlist (SOC + CPFs).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The PLL model driving the `pll_clk_*` inputs.
    pub fn pll(&self) -> &Pll {
        &self.pll
    }

    /// Per-domain CPF port maps.
    pub fn cpf_ports(&self) -> &[CpfPorts] {
        &self.cpf_ports
    }

    /// Per-domain PLL clock input ports (driven by [`Pll`] waveforms in
    /// simulation).
    pub fn pll_clk_ports(&self) -> &[CellId] {
        &self.pll_clk_ports
    }

    /// The shared slow external scan clock input.
    pub fn scan_clk(&self) -> CellId {
        self.scan_clk
    }

    /// The scan-enable input (also clears/re-arms the CPFs).
    pub fn scan_en(&self) -> CellId {
        self.scan_en
    }
}

/// Splices one Figure-3 CPF per domain into the SOC's clock paths.
///
/// Each domain's former clock input port becomes a buffer driven by its
/// CPF's `clk_out`; new `pll_clk_<domain>` inputs and one shared
/// `scan_clk` input are added. The SOC's existing `scan_en` port drives
/// the CPF control pins, exactly as in the paper ("clock generation is
/// controlled by scan-en and scan-clk only").
///
/// # Panics
///
/// Panics if the PLL does not provide a clock per domain.
pub fn assemble_device(soc: &Soc, pll: Pll) -> Device {
    assert_eq!(
        pll.domain_count(),
        soc.clock_ports().len(),
        "PLL must serve every SOC domain"
    );
    let mut b = NetlistBuilder::from_netlist(soc.netlist());
    let scan_clk = b.input("scan_clk");
    let scan_en = soc.scan_enable();

    let mut cpf_ports = Vec::new();
    let mut pll_clk_ports = Vec::new();
    for (d, &clk_port) in soc.clock_ports().iter().enumerate() {
        let dom = &soc.config().domains[d];
        let pll_clk = b.input(&format!("pll_clk_{}", dom.name));
        pll_clk_ports.push(pll_clk);
        let cfg = CpfConfig::paper_named(&format!("cpf_{}", dom.name));
        let ports = ClockPulseFilter::attach(&cfg, &mut b, pll_clk, scan_clk, scan_en, None);
        // The old clock input port becomes a buffer fed by the CPF.
        b.replace_cell(clk_port, CellKind::Buf, vec![ports.clk_out]);
        cpf_ports.push(ports);
    }

    let netlist = b.finish().expect("device assembly must validate");
    Device {
        netlist,
        pll,
        cpf_ports,
        pll_clk_ports,
        scan_clk,
        scan_en,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, SocConfig};
    use occ_core::PllConfig;
    use occ_netlist::NetlistStats;

    #[test]
    fn device_has_one_cpf_per_domain() {
        let soc = generate(&SocConfig::tiny(2));
        let before = NetlistStats::of(soc.netlist());
        let device = assemble_device(&soc, Pll::new(PllConfig::paper()));
        let after = NetlistStats::of(device.netlist());
        // Each paper CPF adds 6 flops and 1 clock gate.
        assert_eq!(after.clock_gates, before.clock_gates + 2);
        assert_eq!(after.flops, before.flops + 12);
        assert_eq!(device.cpf_ports().len(), 2);
        // Former clock ports are no longer primary inputs.
        for &p in soc.clock_ports() {
            assert!(!device.netlist().primary_inputs().contains(&p));
        }
    }

    #[test]
    fn flop_clocks_trace_to_cpf_outputs() {
        let soc = generate(&SocConfig::tiny(4));
        let device = assemble_device(&soc, Pll::new(PllConfig::paper()));
        let nl = device.netlist();
        // Every flop's clock pin resolves (through the buffer) to a CPF
        // output mux.
        let mux_outs: Vec<_> = device.cpf_ports().iter().map(|p| p.clk_out).collect();
        for (_, cell) in nl.flops() {
            let mut cur = cell.clock();
            for _ in 0..8 {
                let c = nl.cell(cur);
                match c.kind() {
                    CellKind::Buf => cur = c.inputs()[0],
                    _ => break,
                }
            }
            // CPF-internal flops are clocked by scan_clk/pll_clk inputs.
            let k = nl.cell(cur).kind();
            assert!(
                mux_outs.contains(&cur) || k == CellKind::Input,
                "flop clock resolves to {cur} of kind {k}"
            );
        }
    }
}
