//! The capture model: a netlist bound to clock domains and test
//! constraints, ready for multi-frame simulation and ATPG.

use crate::graph::SimGraph;
use crate::DomainId;
use occ_netlist::{CellId, CellKind, Logic, Netlist};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Binding of a netlist to its test configuration: which input ports are
/// clocks (one per functional domain), which are constrained to fixed
/// values during capture (scan enable, resets, test mode), and which
/// signals are masked to `X` (e.g. bidirectional-pad feedback legs that
/// the ATE constraints forbid using).
///
/// # Examples
///
/// ```
/// use occ_netlist::{NetlistBuilder, Logic};
/// use occ_fsim::{ClockBinding, CaptureModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("t");
/// let clk = b.input("clk");
/// let d = b.input("d");
/// let se = b.input("se");
/// let si = b.input("si");
/// let ff = b.sdff(d, clk, se, si);
/// b.output("q", ff);
/// let nl = b.finish()?;
///
/// let mut binding = ClockBinding::new();
/// binding.add_domain("clk_a", clk);
/// binding.constrain(se, Logic::Zero);
/// binding.mask(si);
/// let model = CaptureModel::new(&nl, binding)?;
/// assert_eq!(model.flops().len(), 1);
/// assert_eq!(model.free_pis(), &[d]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClockBinding {
    domains: Vec<(String, CellId)>,
    constraints: Vec<(CellId, Logic)>,
    masked: Vec<CellId>,
}

impl ClockBinding {
    /// An empty binding.
    pub fn new() -> Self {
        ClockBinding::default()
    }

    /// Declares a clock domain driven from the given input port; returns
    /// its dense id.
    pub fn add_domain(&mut self, name: &str, clock_port: CellId) -> DomainId {
        self.domains.push((name.to_owned(), clock_port));
        self.domains.len() - 1
    }

    /// Constrains an input port to a fixed value during capture (scan
    /// enable low, resets inactive, test mode pins...).
    pub fn constrain(&mut self, port: CellId, value: Logic) {
        self.constraints.push((port, value));
    }

    /// Masks a signal to `X` in the capture model (unusable sources such
    /// as bidi-pad feedback under ATE constraints, scan-in ports...).
    pub fn mask(&mut self, cell: CellId) {
        self.masked.push(cell);
    }

    /// Declared domains.
    pub fn domains(&self) -> &[(String, CellId)] {
        &self.domains
    }
}

/// Error raised when a netlist cannot be bound into a capture model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A flop's clock pin does not trace back (through buffers) to a
    /// declared domain clock port.
    UnresolvedClock {
        /// The offending flop.
        flop: CellId,
    },
    /// A constrained or masked id is not sensible (e.g. constraining a
    /// non-input cell).
    BadConstraint {
        /// The offending cell.
        cell: CellId,
    },
    /// A precompiled graph handed to [`CaptureModel::with_graph`] was
    /// compiled for a different netlist (cell or flop count mismatch).
    GraphMismatch {
        /// Cells in the supplied graph.
        graph_cells: usize,
        /// Cells in the netlist being bound.
        netlist_cells: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnresolvedClock { flop } => {
                write!(f, "flop {flop} clock does not resolve to a declared domain")
            }
            ModelError::BadConstraint { cell } => {
                write!(f, "cell {cell} cannot carry a pin constraint")
            }
            ModelError::GraphMismatch {
                graph_cells,
                netlist_cells,
            } => {
                write!(
                    f,
                    "precompiled graph has {graph_cells} cells but the netlist has {netlist_cells}"
                )
            }
        }
    }
}

impl Error for ModelError {}

/// Per-flop information in the capture model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlopInfo {
    /// The flop cell.
    pub cell: CellId,
    /// Clock domain that pulses it.
    pub domain: DomainId,
    /// True for mux-scan flops (loadable/observable through the chains).
    pub is_scan: bool,
}

/// A netlist bound for capture simulation: flops mapped to domains, free
/// primary inputs separated from constrained ones, sequential boundaries
/// identified. Shared by the fault simulator and the ATPG engine.
#[derive(Debug, Clone)]
pub struct CaptureModel<'a> {
    netlist: &'a Netlist,
    binding: ClockBinding,
    flops: Vec<FlopInfo>,
    flop_of_cell: HashMap<CellId, u32>,
    scan_flops: Vec<u32>,
    free_pis: Vec<CellId>,
    forced: Vec<(CellId, Logic)>,
    masked: Vec<CellId>,
    graph: Arc<SimGraph>,
}

impl<'a> CaptureModel<'a> {
    /// Builds the model, resolving every flop's clock domain.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnresolvedClock`] if a flop's clock pin
    /// cannot be traced (through buffers only) to a domain clock port,
    /// and [`ModelError::BadConstraint`] for constraints on non-input
    /// cells.
    pub fn new(netlist: &'a Netlist, binding: ClockBinding) -> Result<Self, ModelError> {
        Self::build(netlist, binding, None)
    }

    /// Builds the model around an already-compiled graph, skipping the
    /// `SimGraph` compile pass entirely — the entry point for
    /// content-addressed artifact caches that share one `Arc<SimGraph>`
    /// across many flow runs on the same design. The graph must have
    /// been compiled for this netlist's flop set (flop resolution
    /// depends only on the declared clock domains, so bindings that
    /// differ in constraints or masking can share a graph).
    ///
    /// # Errors
    ///
    /// Everything [`CaptureModel::new`] raises, plus
    /// [`ModelError::GraphMismatch`] when the graph's cell or flop
    /// count disagrees with the netlist being bound.
    pub fn with_graph(
        netlist: &'a Netlist,
        binding: ClockBinding,
        graph: Arc<SimGraph>,
    ) -> Result<Self, ModelError> {
        Self::build(netlist, binding, Some(graph))
    }

    fn build(
        netlist: &'a Netlist,
        binding: ClockBinding,
        precompiled: Option<Arc<SimGraph>>,
    ) -> Result<Self, ModelError> {
        let port_domain: HashMap<CellId, DomainId> = binding
            .domains
            .iter()
            .enumerate()
            .map(|(i, (_, p))| (*p, i))
            .collect();

        for (c, _) in &binding.constraints {
            if netlist.cell(*c).kind() != CellKind::Input {
                return Err(ModelError::BadConstraint { cell: *c });
            }
        }

        let mut flops = Vec::new();
        let mut flop_of_cell = HashMap::new();
        let mut scan_flops = Vec::new();
        for (id, cell) in netlist.iter() {
            if !cell.kind().is_flop() {
                continue;
            }
            let domain = resolve_clock(netlist, cell.clock(), &port_domain)
                .ok_or(ModelError::UnresolvedClock { flop: id })?;
            let is_scan = cell.kind().is_scan_flop();
            let idx = flops.len() as u32;
            flops.push(FlopInfo {
                cell: id,
                domain,
                is_scan,
            });
            flop_of_cell.insert(id, idx);
            if is_scan {
                scan_flops.push(idx);
            }
        }

        // Forced values: explicit constraints + clock ports idle low.
        let mut forced = binding.constraints.clone();
        for (_, port) in &binding.domains {
            forced.push((*port, Logic::Zero));
        }

        let taken: std::collections::HashSet<CellId> = forced
            .iter()
            .map(|(c, _)| *c)
            .chain(binding.masked.iter().copied())
            .collect();
        let free_pis: Vec<CellId> = netlist
            .primary_inputs()
            .iter()
            .copied()
            .filter(|pi| !taken.contains(pi))
            .collect();

        let masked = binding.masked.clone();
        let graph = match precompiled {
            Some(g) => {
                if g.cells() != netlist.len() || g.flop_count() != flops.len() {
                    return Err(ModelError::GraphMismatch {
                        graph_cells: g.cells(),
                        netlist_cells: netlist.len(),
                    });
                }
                g
            }
            None => Arc::new(SimGraph::compile(netlist, &flops)),
        };
        Ok(CaptureModel {
            netlist,
            binding,
            flops,
            flop_of_cell,
            scan_flops,
            free_pis,
            forced,
            masked,
            graph,
        })
    }

    /// The simulation graph compiled for this model: flattened CSR
    /// edges, dense op codes, levelized order, flop capture metadata
    /// and the precomputed observability cones. Compiled once in
    /// [`CaptureModel::new`]; clones of the model share it.
    #[inline]
    pub fn graph(&self) -> &SimGraph {
        &self.graph
    }

    /// A shared handle to the compiled graph — what long-lived worker
    /// threads (the [`ParallelFaultSim`](crate::ParallelFaultSim)
    /// pool) hold so their scratch arenas outlive the model borrow.
    #[inline]
    pub fn graph_arc(&self) -> Arc<SimGraph> {
        Arc::clone(&self.graph)
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The binding used to build this model.
    pub fn binding(&self) -> &ClockBinding {
        &self.binding
    }

    /// Number of declared clock domains.
    pub fn domain_count(&self) -> usize {
        self.binding.domains.len()
    }

    /// All flops with their domain/scan info, in model order.
    pub fn flops(&self) -> &[FlopInfo] {
        &self.flops
    }

    /// The model flop index of a flop cell, if it is one.
    pub fn flop_index(&self, cell: CellId) -> Option<usize> {
        self.flop_of_cell.get(&cell).map(|&i| i as usize)
    }

    /// Indices (into [`CaptureModel::flops`]) of scan flops, in scan-load
    /// order.
    pub fn scan_flops(&self) -> &[u32] {
        &self.scan_flops
    }

    /// Free primary inputs (pattern-controllable), in declaration order.
    pub fn free_pis(&self) -> &[CellId] {
        &self.free_pis
    }

    /// Primary outputs (observability is decided per
    /// [`FrameSpec`](crate::FrameSpec)).
    pub fn primary_outputs(&self) -> &[CellId] {
        self.netlist.primary_outputs()
    }

    /// `(cell, value)` pairs forced every frame (constraints + idle
    /// clocks).
    pub fn forced(&self) -> &[(CellId, Logic)] {
        &self.forced
    }

    /// Cells masked to `X` every frame.
    pub fn masked(&self) -> &[CellId] {
        &self.masked
    }

    /// Scan flop cells in scan order (convenience).
    pub fn scan_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.scan_flops
            .iter()
            .map(move |&i| self.flops[i as usize].cell)
    }
}

/// Traces a clock pin back through buffers to a domain port.
fn resolve_clock(
    netlist: &Netlist,
    mut cur: CellId,
    ports: &HashMap<CellId, DomainId>,
) -> Option<DomainId> {
    for _ in 0..64 {
        if let Some(&d) = ports.get(&cur) {
            return Some(d);
        }
        let cell = netlist.cell(cur);
        match cell.kind() {
            CellKind::Buf => cur = cell.inputs()[0],
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_netlist::NetlistBuilder;

    #[test]
    fn domains_resolve_through_buffers() {
        let mut b = NetlistBuilder::new("t");
        let cka = b.input("cka");
        let ckb = b.input("ckb");
        let buf = b.buf(cka);
        let d = b.input("d");
        let f1 = b.dff(d, buf);
        let f2 = b.dff(f1, ckb);
        b.output("q", f2);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        let da = binding.add_domain("a", cka);
        let db = binding.add_domain("b", ckb);
        let m = CaptureModel::new(&nl, binding).unwrap();
        assert_eq!(m.flops()[0].domain, da);
        assert_eq!(m.flops()[1].domain, db);
        assert_eq!(m.domain_count(), 2);
    }

    #[test]
    fn unresolved_clock_is_an_error() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let gate = b.and2(clk, clk);
        let d = b.input("d");
        let ff = b.dff(d, gate);
        b.output("q", ff);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        let err = CaptureModel::new(&nl, binding).unwrap_err();
        assert!(matches!(err, ModelError::UnresolvedClock { .. }));
    }

    #[test]
    fn constraints_remove_pis_from_free_list() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let se = b.input("se");
        let si = b.input("si");
        let ff = b.sdff(d, clk, se, si);
        b.output("q", ff);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        binding.constrain(se, Logic::Zero);
        binding.mask(si);
        let m = CaptureModel::new(&nl, binding).unwrap();
        assert_eq!(m.free_pis(), &[d]);
        assert!(m.forced().contains(&(se, Logic::Zero)));
        assert!(m.forced().contains(&(clk, Logic::Zero)));
        assert_eq!(m.masked(), &[si]);
        assert_eq!(m.scan_flops().len(), 1);
        assert_eq!(m.flop_index(ff), Some(0));
    }

    #[test]
    fn constraining_a_gate_is_rejected() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let d = b.input("d");
        let g = b.and2(d, d);
        let ff = b.dff(g, clk);
        b.output("q", ff);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        binding.constrain(g, Logic::Zero);
        let err = CaptureModel::new(&nl, binding).unwrap_err();
        assert!(matches!(err, ModelError::BadConstraint { .. }));
    }
}
