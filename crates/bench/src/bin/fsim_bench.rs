//! Fault-simulation throughput benchmark and regression gate.
//!
//! Times the three PPSFP engines — the retained pre-kernel
//! `ReferenceFaultSim`, the compiled zero-allocation `FaultSim` kernel
//! and the sharded `ParallelFaultSim` — over the full transition-fault
//! universe of the seeded Table-1 SOC, cross-checks that all masks are
//! bit-identical, and writes the numbers (patterns/sec, faults/sec,
//! allocations, peak RSS) to `BENCH_fsim.json` so the perf trajectory
//! is tracked in-repo.
//!
//! ```text
//! fsim_bench [--flops N] [--patterns N] [--threads N]
//!            [--out PATH] [--check BASELINE.json]
//! ```
//!
//! With `--check`, the freshly measured kernel faults/sec is compared
//! against the committed baseline: a regression of more than 20% fails
//! the run (exit 1) unless `FSIM_BENCH_SKIP_CHECK` is set in the
//! environment (for cold/overloaded machines).
//!
//! A hardware-independent gate (never skipped) re-runs the kernel with
//! an `occ_obs` detail span recorder installed and asserts span
//! recording adds **zero** allocations to the fault-sim hot path — the
//! recorder's preallocated shards are the contract that makes tracing
//! safe to leave on in production.

#[path = "../alloc_track.rs"]
mod alloc_track;

#[global_allocator]
static ALLOC: alloc_track::CountingAlloc = alloc_track::CountingAlloc;

use occ_fault::FaultUniverse;
use occ_fsim::{
    simulate_good, CaptureModel, FaultSim, FrameSpec, ParallelFaultSim, Pattern, ReferenceFaultSim,
};
use occ_netlist::Logic;
use occ_soc::{generate, SocConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Allowed kernel faults/sec drop vs the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

struct Options {
    flops: usize,
    patterns: usize,
    threads: usize,
    reps: usize,
    out: String,
    check: Option<String>,
}

struct EngineRow {
    engine: String,
    seconds: f64,
    faults_per_sec: f64,
    pattern_faults_per_sec: f64,
    allocs: u64,
    alloc_bytes: u64,
    cone_pruned: u64,
    events: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        flops: 256,
        patterns: 64,
        threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        reps: 3,
        out: "BENCH_fsim.json".to_owned(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--flops" => {
                opts.flops = value("--flops")?
                    .parse()
                    .map_err(|e| format!("--flops: {e}"))?;
            }
            "--patterns" => {
                let n: usize = value("--patterns")?
                    .parse()
                    .map_err(|e| format!("--patterns: {e}"))?;
                if n == 0 || n > 64 {
                    return Err("--patterns must be 1..=64".to_owned());
                }
                opts.patterns = n;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--reps" => {
                let n: usize = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if n == 0 {
                    return Err("--reps must be positive".to_owned());
                }
                opts.reps = n;
            }
            "--out" => opts.out = value("--out")?,
            "--check" => opts.check = Some(value("--check")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fsim_bench: {e}");
            return ExitCode::from(2);
        }
    };

    let soc = generate(&SocConfig::paper_like(20050307, opts.flops));
    let model =
        CaptureModel::new(soc.netlist(), soc.binding(true)).expect("generated SOC always binds");
    let domains: Vec<usize> = (0..model.domain_count()).collect();
    let spec = FrameSpec::broadside("loc", &domains, 2)
        .hold_pi(true)
        .observe_po(false);

    let mut rng = StdRng::seed_from_u64(0x0CC);
    let patterns: Vec<Pattern> = (0..opts.patterns)
        .map(|_| {
            let mut p = Pattern::empty(&model, &spec, 0);
            p.fill_x(|| Logic::from_bool(rng.gen_bool(0.5)));
            p
        })
        .collect();

    let t0 = Instant::now();
    let good = simulate_good(&model, &spec, &patterns);
    let good_secs = t0.elapsed().as_secs_f64();
    let faults = FaultUniverse::transition(soc.netlist()).faults().to_vec();
    let nf = faults.len();
    println!(
        "fsim_bench: {} — {} cells, {} faults, {} patterns (good-sim {:.3}s, {:.0} patterns/s)",
        soc.netlist().name(),
        soc.netlist().len(),
        nf,
        opts.patterns,
        good_secs,
        opts.patterns as f64 / good_secs.max(1e-9),
    );

    let mut rows: Vec<EngineRow> = Vec::new();
    let mut masks: Vec<(String, Vec<u64>)> = Vec::new();
    let reps = opts.reps;

    // Reference (pre-kernel) engine.
    {
        let before = alloc_track::snapshot();
        let mut engine = ReferenceFaultSim::new(&model);
        let (secs, m, d) = time_best(reps, before, || engine.detect_many(&spec, &good, &faults));
        rows.push(row("reference", secs, nf, opts.patterns, d, 0, 0));
        masks.push(("reference".to_owned(), m));
    }

    // Compiled kernel.
    {
        let before = alloc_track::snapshot();
        let mut engine = FaultSim::new(&model);
        let (secs, m, d) = time_best(reps, before, || engine.detect_many(&spec, &good, &faults));
        let stats = engine.kernel_stats();
        rows.push(row(
            "kernel",
            secs,
            nf,
            opts.patterns,
            d,
            stats.cone_pruned / reps as u64,
            stats.events / reps as u64,
        ));
        masks.push(("kernel".to_owned(), m));
    }

    // Sharded scheduler on the kernel.
    {
        let before = alloc_track::snapshot();
        let engine = ParallelFaultSim::with_threads(&model, opts.threads);
        let (secs, m, d) = time_best(reps, before, || engine.detect_many(&spec, &good, &faults));
        let stats = engine.kernel_stats();
        rows.push(row(
            &format!("sharded:{}", opts.threads),
            secs,
            nf,
            opts.patterns,
            d,
            stats.cone_pruned / reps as u64,
            stats.events / reps as u64,
        ));
        masks.push((format!("sharded:{}", opts.threads), m));
    }

    // Zero-alloc traced-span gate: the same warm kernel batch, with
    // and without a detail span recorder installed, must allocate
    // identically — span recording on the hot path costs no
    // allocations (hardware-independent, never skipped).
    {
        let reps = 8;
        let mut engine = FaultSim::new(&model);
        let _ = engine.detect_many(&spec, &good, &faults); // warm the engine
        let before = alloc_track::snapshot();
        for _ in 0..reps {
            let _ = engine.detect_many(&spec, &good, &faults);
        }
        let untraced = alloc_track::snapshot().since(before);

        occ_obs::set_alloc_probe(|| alloc_track::snapshot().bytes);
        let recorder = occ_obs::SpanRecorder::new();
        let scope = recorder.install(true);
        let before = alloc_track::snapshot();
        for _ in 0..reps {
            let _ = engine.detect_many(&spec, &good, &faults);
        }
        let traced = alloc_track::snapshot().since(before);
        drop(scope);

        if recorder.len() < reps {
            eprintln!(
                "fsim_bench: FATAL — only {} of {reps} traced batches recorded a span; \
                 the fsim.batch instrumentation is gone",
                recorder.len()
            );
            return ExitCode::FAILURE;
        }
        if traced.allocs != untraced.allocs {
            eprintln!(
                "fsim_bench: FATAL — span recording allocated on the fault-sim hot path \
                 ({} allocs traced vs {} untraced over {reps} batches); the recorder's \
                 preallocated-shard contract is broken",
                traced.allocs, untraced.allocs
            );
            return ExitCode::FAILURE;
        }
        println!(
            "  traced-span alloc gate: {} allocs/batch with tracing on == off \
             ({} spans recorded)",
            traced.allocs / reps as u64,
            recorder.len(),
        );
    }

    // Correctness gate: every engine must produce identical masks.
    for (name, m) in &masks[1..] {
        if m != &masks[0].1 {
            eprintln!(
                "fsim_bench: FATAL — '{name}' masks diverge from '{}'",
                masks[0].0
            );
            return ExitCode::FAILURE;
        }
    }

    let speedup = rows[1].faults_per_sec / rows[0].faults_per_sec.max(1e-9);
    for r in &rows {
        println!(
            "  {:<12} {:>8.3}s  {:>12.0} faults/s  {:>14.0} pattern-faults/s  \
             {:>10} allocs  {:>12} bytes",
            r.engine,
            r.seconds,
            r.faults_per_sec,
            r.pattern_faults_per_sec,
            r.allocs,
            r.alloc_bytes
        );
    }
    println!("  kernel vs reference speedup: {speedup:.2}x");

    let peak_rss = alloc_track::peak_rss_kb();
    let json = to_json(&opts, &soc, nf, good_secs, &rows, speedup, peak_rss);
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("fsim_bench: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("  wrote {}", opts.out);

    if let Some(baseline) = &opts.check {
        return check_regression(baseline, nf, rows[1].faults_per_sec, speedup);
    }
    ExitCode::SUCCESS
}

/// Runs `f` `reps` times, returning the best wall-clock time, the
/// first run's masks and the allocation delta of the first run
/// (engine construction + one full grading pass) since `before`.
fn time_best<F: FnMut() -> Vec<u64>>(
    reps: usize,
    before: alloc_track::AllocSnapshot,
    mut f: F,
) -> (f64, Vec<u64>, alloc_track::AllocSnapshot) {
    let mut best = f64::INFINITY;
    let mut masks = Vec::new();
    let mut delta = alloc_track::AllocSnapshot::default();
    for i in 0..reps {
        let t = Instant::now();
        let m = f();
        best = best.min(t.elapsed().as_secs_f64());
        if i == 0 {
            delta = alloc_track::snapshot().since(before);
            masks = m;
        }
    }
    (best, masks, delta)
}

#[allow(clippy::too_many_arguments)]
fn row(
    engine: &str,
    seconds: f64,
    faults: usize,
    patterns: usize,
    d: alloc_track::AllocSnapshot,
    cone_pruned: u64,
    events: u64,
) -> EngineRow {
    let secs = seconds.max(1e-9);
    EngineRow {
        engine: engine.to_owned(),
        seconds,
        faults_per_sec: faults as f64 / secs,
        pattern_faults_per_sec: (faults * patterns) as f64 / secs,
        allocs: d.allocs,
        alloc_bytes: d.bytes,
        cone_pruned,
        events,
    }
}

fn to_json(
    opts: &Options,
    soc: &occ_soc::Soc,
    faults: usize,
    good_secs: f64,
    rows: &[EngineRow],
    speedup: f64,
    peak_rss_kb: Option<u64>,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"design\":\"{}\",\"cells\":{},\"faults\":{},\"patterns\":{},\
         \"flops_per_domain\":{},\"goodsim_seconds\":{:.6},\
         \"goodsim_patterns_per_sec\":{:.1},",
        soc.netlist().name(),
        soc.netlist().len(),
        faults,
        opts.patterns,
        opts.flops,
        good_secs,
        opts.patterns as f64 / good_secs.max(1e-9),
    );
    match peak_rss_kb {
        Some(kb) => {
            let _ = write!(out, "\"peak_rss_kb\":{kb},");
        }
        None => {
            let _ = write!(out, "\"peak_rss_kb\":null,");
        }
    }
    let _ = write!(out, "\"engines\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"engine\":\"{}\",\"seconds\":{:.6},\"faults_per_sec\":{:.1},\
             \"pattern_faults_per_sec\":{:.1},\"allocs\":{},\"alloc_bytes\":{},\
             \"cone_pruned\":{},\"events\":{}}}",
            r.engine,
            r.seconds,
            r.faults_per_sec,
            r.pattern_faults_per_sec,
            r.allocs,
            r.alloc_bytes,
            r.cone_pruned,
            r.events,
        );
    }
    let _ = writeln!(out, "],\"speedup_kernel_vs_reference\":{speedup:.3}}}");
    out
}

/// Compares the fresh kernel throughput against the committed baseline.
///
/// The primary gate is the **hardware-normalized kernel-vs-reference
/// speedup ratio**: it cancels out machine speed, so it trips on a
/// genuine kernel regression no matter whether the runner is faster or
/// slower than the baseline machine, and it is checked unconditionally.
/// The absolute faults/sec floor is reported alongside; missing it
/// while the ratio holds is a warning only (expected whenever the
/// runner is simply slower than the machine that committed the
/// baseline — a uniform both-engine slowdown on identical hardware is
/// indistinguishable from that, which is the accepted blind spot).
fn check_regression(path: &str, faults: usize, fresh_fps: f64, fresh_ratio: f64) -> ExitCode {
    let skip = std::env::var("FSIM_BENCH_SKIP_CHECK").is_ok_and(|v| !v.is_empty());
    if skip {
        println!("  regression check skipped (FSIM_BENCH_SKIP_CHECK set)");
        return ExitCode::SUCCESS;
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fsim_bench: cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base_faults = extract_number(&text, "\"faults\":");
    if base_faults.is_some_and(|b| b as usize != faults) {
        println!(
            "  baseline {path} was produced with a different config \
             ({:?} vs {faults} faults) — regression check skipped; \
             regenerate the baseline",
            base_faults.map(|b| b as usize)
        );
        return ExitCode::SUCCESS;
    }
    let Some(base_fps) = kernel_faults_per_sec(&text) else {
        eprintln!("fsim_bench: no kernel faults_per_sec in baseline {path}");
        return ExitCode::FAILURE;
    };
    let floor = base_fps * (1.0 - REGRESSION_TOLERANCE);
    println!(
        "  regression check: fresh {fresh_fps:.0} vs baseline {base_fps:.0} \
         faults/s (floor {floor:.0})"
    );

    // Primary, hardware-independent gate: the kernel-vs-reference
    // speedup ratio (checked unconditionally — a fast runner must not
    // mask a relative kernel regression).
    if let Some(base_ratio) = extract_number(&text, "\"speedup_kernel_vs_reference\":") {
        let ratio_floor = base_ratio * (1.0 - REGRESSION_TOLERANCE);
        println!(
            "  speedup ratio: fresh {fresh_ratio:.2}x vs baseline \
             {base_ratio:.2}x (floor {ratio_floor:.2}x)"
        );
        if fresh_ratio < ratio_floor {
            eprintln!(
                "fsim_bench: REGRESSION — kernel-vs-reference speedup \
                 dropped more than {:.0}% below the committed baseline \
                 (set FSIM_BENCH_SKIP_CHECK=1 to bypass on cold machines)",
                REGRESSION_TOLERANCE * 100.0
            );
            return ExitCode::FAILURE;
        }
        if fresh_fps < floor {
            println!(
                "  note: absolute faults/sec below the baseline floor but \
                 the speedup ratio holds — treating as slower hardware, \
                 not a kernel regression"
            );
        }
        return ExitCode::SUCCESS;
    }

    // No ratio in the baseline: the absolute floor is all we have.
    if fresh_fps < floor {
        eprintln!(
            "fsim_bench: REGRESSION — kernel faults/sec dropped more than \
             {:.0}% below the committed baseline (set FSIM_BENCH_SKIP_CHECK=1 \
             to bypass on cold machines)",
            REGRESSION_TOLERANCE * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Pulls the `faults_per_sec` of the `"engine":"kernel"` row out of a
/// baseline JSON (hand-rolled: the workspace builds without serde).
fn kernel_faults_per_sec(json: &str) -> Option<f64> {
    let at = json.find("\"engine\":\"kernel\"")?;
    extract_number(&json[at..], "\"faults_per_sec\":")
}

/// Parses the number following the first occurrence of `key`.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(key)? + key.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
