//! Cross-check: the packed PPSFP engine against a naive scalar
//! fault simulator written independently of it, over random circuits,
//! random patterns and every collapsed fault.

use occ_fault::{Fault, FaultModel, FaultSite, FaultUniverse, Polarity};
use occ_fsim::{
    simulate_good, CaptureModel, ClockBinding, CycleSpec, FaultSim, FrameSpec, Pattern,
};
use occ_netlist::{CellId, CellKind, Logic, Netlist, NetlistBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random 2-domain sequential circuit.
fn random_circuit(seed: u64) -> (Netlist, CellId, CellId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new("rand");
    let cka = b.input("cka");
    let ckb = b.input("ckb");
    let se = b.input("se");
    let si = b.input("si");
    let n_pi = rng.gen_range(2..5);
    let mut sigs: Vec<CellId> = (0..n_pi).map(|i| b.input(&format!("pi{i}"))).collect();
    let mut flops = Vec::new();
    let n_cells = rng.gen_range(10..40);
    for i in 0..n_cells {
        let a = sigs[rng.gen_range(0..sigs.len())];
        let c = sigs[rng.gen_range(0..sigs.len())];
        let s = sigs[rng.gen_range(0..sigs.len())];
        let id = match rng.gen_range(0..9) {
            0 => b.and2(a, c),
            1 => b.or2(a, c),
            2 => b.xor2(a, c),
            3 => b.nand2(a, c),
            4 => b.nor2(a, c),
            5 => b.not(a),
            6 => b.mux2(s, a, c),
            7 => {
                let clk = if rng.gen_bool(0.5) { cka } else { ckb };
                let ff = b.sdff(a, clk, se, si);
                flops.push(ff);
                ff
            }
            _ => {
                let clk = if rng.gen_bool(0.5) { cka } else { ckb };
                let ff = b.dff(a, clk); // non-scan
                flops.push(ff);
                ff
            }
        };
        b.name_cell(id, &format!("n{i}"));
        sigs.push(id);
    }
    // A couple of POs.
    for i in 0..rng.gen_range(1..4) {
        let s = sigs[rng.gen_range(0..sigs.len())];
        b.output(&format!("po{i}"), s);
    }
    // Ensure at least one scan flop so patterns have substance.
    let a = sigs[rng.gen_range(0..sigs.len())];
    let ff = b.sdff(a, cka, se, si);
    b.output("po_last", ff);
    (b.finish().unwrap(), cka, ckb)
}

fn build_model<'n>(nl: &'n Netlist, cka: CellId, ckb: CellId) -> CaptureModel<'n> {
    let mut binding = ClockBinding::new();
    binding.add_domain("a", cka);
    binding.add_domain("b", ckb);
    binding.constrain(nl.find("se").unwrap(), Logic::Zero);
    binding.mask(nl.find("si").unwrap());
    CaptureModel::new(nl, binding).unwrap()
}

fn random_pattern(model: &CaptureModel<'_>, spec: &FrameSpec, rng: &mut StdRng) -> Pattern {
    let mut p = Pattern::empty(model, spec, 0);
    p.fill_x(|| {
        if rng.gen_bool(0.1) {
            Logic::X
        } else if rng.gen_bool(0.5) {
            Logic::One
        } else {
            Logic::Zero
        }
    });
    p
}

// --- naive scalar reference ------------------------------------------

fn scalar_eval(kind: CellKind, ins: &[Logic]) -> Logic {
    kind.eval_comb(ins).unwrap_or(Logic::X)
}

/// Full scalar simulation with optional fault; returns (frames, states).
fn scalar_sim(
    model: &CaptureModel<'_>,
    spec: &FrameSpec,
    pattern: &Pattern,
    fault: Option<Fault>,
) -> (Vec<Vec<Logic>>, Vec<Vec<Logic>>) {
    let nl = model.netlist();
    let n = nl.len();
    let mut states: Vec<Vec<Logic>> = vec![vec![Logic::X; model.flops().len()]];
    for (si, &fi) in model.scan_flops().iter().enumerate() {
        states[0][fi as usize] = pattern.scan_load[si];
    }
    let mut frames = Vec::new();
    for k in 1..=spec.frames() {
        let active = match fault.map(occ_fault::Fault::model) {
            Some(FaultModel::StuckAt) => fault.is_some(),
            Some(FaultModel::Transition) => k == spec.frames(),
            None => false,
        };
        let mut vals = vec![Logic::X; n];
        for (id, cell) in nl.iter() {
            match cell.kind() {
                CellKind::Tie0 => vals[id.index()] = Logic::Zero,
                CellKind::Tie1 => vals[id.index()] = Logic::One,
                _ => {}
            }
        }
        for &(c, v) in model.forced() {
            vals[c.index()] = v;
        }
        for &c in model.masked() {
            vals[c.index()] = Logic::X;
        }
        for (i, &pi) in model.free_pis().iter().enumerate() {
            vals[pi.index()] = pattern.pis_for_frame(k)[i];
        }
        for (fi, info) in model.flops().iter().enumerate() {
            vals[info.cell.index()] = states[k - 1][fi];
        }
        // Output-site fault forces the node *before* eval; re-force after
        // each dependent evaluation via the eval loop order.
        let force_site = match fault {
            Some(f) if active => Some(f),
            _ => None,
        };
        if let Some(f) = force_site {
            if let FaultSite::Output(c) = f.site() {
                vals[c.index()] = polarity_logic(f.polarity());
            }
        }
        for &id in nl.levelization().order() {
            let cell = nl.cell(id);
            if let Some(f) = force_site {
                if f.site() == FaultSite::Output(id) {
                    vals[id.index()] = polarity_logic(f.polarity());
                    continue;
                }
            }
            let mut ins: Vec<Logic> = cell.inputs().iter().map(|&s| vals[s.index()]).collect();
            if let Some(f) = force_site {
                if let FaultSite::Input { cell: fc, pin } = f.site() {
                    if fc == id {
                        ins[pin as usize] = polarity_logic(f.polarity());
                    }
                }
            }
            vals[id.index()] = scalar_eval(cell.kind(), &ins);
        }
        // State update.
        let cycle = &spec.cycles()[k - 1];
        let mut next = states[k - 1].clone();
        for (fi, info) in model.flops().iter().enumerate() {
            if cycle.pulses_domain(info.domain) {
                let cell = nl.cell(info.cell);
                next[fi] = match cell.kind() {
                    CellKind::Sdff | CellKind::SdffRl => {
                        let d = vals[cell.inputs()[0].index()];
                        let se = vals[cell.inputs()[2].index()];
                        let si = vals[cell.inputs()[3].index()];
                        Logic::mux2(se, d, si)
                    }
                    _ => vals[cell.inputs()[0].index()].drive(),
                };
            }
            if let Some(rpin) = nl.cell(info.cell).reset() {
                let r = vals[rpin.index()].drive();
                let act = match nl.cell(info.cell).kind() {
                    CellKind::DffRh => r == Logic::One,
                    _ => r == Logic::Zero,
                };
                if act {
                    next[fi] = Logic::Zero;
                } else if !r.is_definite() && next[fi] != Logic::Zero {
                    next[fi] = Logic::X;
                }
            }
        }
        states.push(next);
        frames.push(vals);
    }
    (frames, states)
}

fn polarity_logic(p: Polarity) -> Logic {
    match p {
        Polarity::P0 => Logic::Zero,
        Polarity::P1 => Logic::One,
    }
}

/// Naive detection decision for one fault and one pattern.
fn scalar_detect(
    model: &CaptureModel<'_>,
    spec: &FrameSpec,
    pattern: &Pattern,
    fault: Fault,
) -> bool {
    let (gframes, gstates) = scalar_sim(model, spec, pattern, None);
    // Launch check for transition faults.
    if fault.model() == FaultModel::Transition {
        if spec.frames() < 2 {
            return false;
        }
        let node = match fault.site() {
            FaultSite::Output(c) => c,
            FaultSite::Input { cell, pin } => model.netlist().cell(cell).inputs()[pin as usize],
        };
        let before = gframes[spec.frames() - 2][node.index()];
        let after = gframes[spec.frames() - 1][node.index()];
        let launched = match fault.polarity() {
            Polarity::P0 => before == Logic::Zero && after == Logic::One,
            Polarity::P1 => before == Logic::One && after == Logic::Zero,
        };
        if !launched {
            return false;
        }
    }
    let (fframes, fstates) = scalar_sim(model, spec, pattern, Some(fault));
    // PO observation.
    for &k in spec.po_observe_frames() {
        for &po in model.primary_outputs() {
            let g = gframes[k - 1][po.index()];
            let f = fframes[k - 1][po.index()];
            if g.is_definite() && f.is_definite() && g != f {
                return true;
            }
        }
    }
    // Scan unload.
    let last = spec.frames();
    for &fi in model.scan_flops() {
        let g = gstates[last][fi as usize];
        let mut f = fstates[last][fi as usize];
        if fault.model() == FaultModel::StuckAt {
            if let FaultSite::Output(c) = fault.site() {
                if c == model.flops()[fi as usize].cell {
                    f = polarity_logic(fault.polarity());
                }
            }
        }
        if g.is_definite() && f.is_definite() && g != f {
            return true;
        }
    }
    false
}

fn crosscheck(seed: u64, spec: FrameSpec, model_kind: FaultModel) {
    let (nl, cka, ckb) = random_circuit(seed);
    let model = build_model(&nl, cka, ckb);
    let uni = match model_kind {
        FaultModel::StuckAt => FaultUniverse::stuck_at(&nl),
        FaultModel::Transition => FaultUniverse::transition(&nl),
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let patterns: Vec<Pattern> = (0..8)
        .map(|_| random_pattern(&model, &spec, &mut rng))
        .collect();
    let good = simulate_good(&model, &spec, &patterns);
    let mut fsim = FaultSim::new(&model);
    for &fault in uni.faults() {
        let packed = fsim.detect(&spec, &good, fault);
        for (b, p) in patterns.iter().enumerate() {
            let want = scalar_detect(&model, &spec, p, fault);
            let got = (packed >> b) & 1 == 1;
            assert_eq!(
                got, want,
                "seed {seed} fault {fault} pattern {b}: packed={got} scalar={want}"
            );
        }
    }
}

#[test]
fn stuck_at_single_frame_matches_reference() {
    for seed in 0..12 {
        crosscheck(
            seed,
            FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0, 1])]),
            FaultModel::StuckAt,
        );
    }
}

#[test]
fn stuck_at_two_frame_matches_reference() {
    for seed in 100..106 {
        crosscheck(
            seed,
            FrameSpec::new("sa2", vec![CycleSpec::pulsing(&[0, 1]); 2]).hold_pi(true),
            FaultModel::StuckAt,
        );
    }
}

#[test]
fn transition_broadside_matches_reference() {
    for seed in 200..212 {
        crosscheck(
            seed,
            FrameSpec::broadside("loc", &[0, 1], 2)
                .hold_pi(true)
                .observe_po(false),
            FaultModel::Transition,
        );
    }
}

#[test]
fn transition_with_po_observation_matches_reference() {
    for seed in 300..306 {
        crosscheck(
            seed,
            FrameSpec::broadside("loc_po", &[0, 1], 2),
            FaultModel::Transition,
        );
    }
}

#[test]
fn transition_single_domain_matches_reference() {
    for seed in 400..406 {
        crosscheck(
            seed,
            FrameSpec::broadside("dom_a", &[0], 3)
                .hold_pi(true)
                .observe_po(false),
            FaultModel::Transition,
        );
    }
}
