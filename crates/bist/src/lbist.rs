//! The LBIST campaign: PRPG loads, PPSFP grading, MISR compaction.

use crate::{ChainMap, Misr, MisrBatch, Prpg};
use occ_dft::ScanChains;
use occ_fault::{Fault, FaultList, FaultSite, FaultStatus, FaultUniverse};
use occ_fsim::{
    simulate_good, CancelCause, CancelToken, CaptureModel, FaultSim, FrameSpec, KernelStats,
    PatternSet, ScanResponse,
};
use occ_netlist::Logic;
use std::collections::HashMap;

/// LBIST campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistConfig {
    /// Total pseudo-random patterns to apply (cycled over the capture
    /// procedures batch by batch).
    pub patterns: usize,
    /// MISR length in bits (1..=64; chains feed lane `chain % len`,
    /// congruent chains XOR-merge into one lane).
    pub misr_len: usize,
    /// PRPG LFSR length (≥ 8).
    pub lfsr_len: usize,
    /// Seed for PRPG state and MISR tap derivation.
    pub seed: u64,
}

impl Default for BistConfig {
    fn default() -> Self {
        BistConfig {
            patterns: 1024,
            misr_len: 32,
            lfsr_len: 64,
            seed: 0x0B157,
        }
    }
}

/// Referee accounting for an LBIST run: every kernel-visible detection
/// either survives MISR compaction or is explained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LbistReport {
    /// Faults the uncompacted PPSFP kernel detected on at least one
    /// applied pattern (the upper bound BIST grading is refereed
    /// against).
    pub kernel_detected: usize,
    /// Faults whose response difference survived MISR compaction —
    /// the only ones LBIST counts as covered.
    pub bist_detected: usize,
    /// Kernel-detected faults lost to MISR aliasing: their difference
    /// bits XOR-cancelled to a zero residual signature on every
    /// detecting pattern.
    pub aliased: usize,
    /// Kernel-detected faults lost to X-masking: every detecting
    /// pattern also unloaded a faulty-only X, so the compacted
    /// signature is unpredictable and must not be trusted for
    /// detection.
    pub x_masked: usize,
    /// Predicted good-machine signature over the whole campaign, or
    /// `None` if an X reached the MISR.
    pub signature: Option<u64>,
    /// True iff the signature is predictable **and** lint found no
    /// unbounded X-source (`L008`) in the observation cone.
    pub signature_valid: bool,
    /// Number of `L008` findings fed in by the caller.
    pub x_sources: usize,
}

/// Everything a flow needs from an LBIST run.
#[derive(Debug, Clone)]
pub struct LbistOutcome {
    /// The applied pseudo-random patterns (procedures have primary
    /// outputs masked — LBIST observes through the MISR only).
    pub patterns: PatternSet,
    /// Final fault statuses: `Detected` means survived compaction.
    pub faults: FaultList,
    /// The referee accounting.
    pub report: LbistReport,
    /// PPSFP kernel counters for the grading runs.
    pub kernel: KernelStats,
}

/// Runs an LBIST campaign: deterministic PRPG scan loads graded
/// through the PPSFP kernel, with a fault counted as detected **iff**
/// its unload difference survives MISR compaction on some pattern.
///
/// Primary outputs are never observed (the procedures are cloned with
/// PO observation masked) — on-chip self-test has no tester comparing
/// POs. `x_sources` is the `L008` finding count from `occ-lint`
/// ([`crate::x_source_count`]); any non-zero count invalidates the
/// signature rather than letting an X corrupt it silently.
///
/// # Errors
///
/// Propagates cancellation between pattern batches.
///
/// # Panics
///
/// Panics on a degenerate geometry (`misr_len` outside 1..=64,
/// `lfsr_len < 8`, no procedures, or no scan chains).
#[allow(clippy::too_many_arguments)]
pub fn run_lbist(
    model: &CaptureModel<'_>,
    procedures: &[FrameSpec],
    universe: FaultUniverse,
    chains: &ScanChains,
    config: &BistConfig,
    pre_untestable: &[Fault],
    x_sources: usize,
    cancel: &CancelToken,
) -> Result<LbistOutcome, CancelCause> {
    assert!(
        !procedures.is_empty(),
        "need at least one capture procedure"
    );
    // On-chip observation only: the MISR sees scan unloads, nobody
    // sees primary outputs.
    let procs: Vec<FrameSpec> = procedures
        .iter()
        .map(|s| s.clone().observe_po(false))
        .collect();

    let map = ChainMap::new(model, chains);
    assert!(map.chains() > 0, "LBIST needs scan chains");
    let shift_len = map.shift_len();
    // Per unload cycle: which slots appear on which MISR lane.
    let mut by_cycle: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shift_len];
    for slot in 0..map.slots() {
        if let Some((chain, cycle)) = map.unload_coord(slot) {
            by_cycle[cycle].push((slot, chain % config.misr_len));
        }
    }

    let mut list = FaultList::new(universe);
    // Constrained pre-pass, same classification ATPG applies: faults
    // on held control pins are covered by other test classes.
    {
        let controlled: std::collections::HashSet<_> = model
            .forced()
            .iter()
            .map(|&(c, _)| c)
            .chain(model.masked().iter().copied())
            .collect();
        let all: Vec<Fault> = list.faults().to_vec();
        for fault in all {
            let node = match fault.site() {
                FaultSite::Output(c) => c,
                FaultSite::Input { cell, pin } => model.netlist().cell(cell).inputs()[pin as usize],
            };
            if controlled.contains(&node) {
                list.set_status(fault, FaultStatus::Constrained);
            }
        }
    }
    for &fault in pre_untestable {
        if list.status(fault) == FaultStatus::Undetected {
            list.set_status(fault, FaultStatus::Untestable);
        }
    }

    let mut prpg = Prpg::new(config.lfsr_len, map.chains(), config.seed);
    let mut good_misr = Misr::new(config.misr_len, config.seed);
    let mut fault_misr = MisrBatch::new(config.misr_len, config.seed);
    let mut fsim = FaultSim::new(model);
    let mut resp = ScanResponse::new();
    let mut patterns = PatternSet::new(procs.clone());
    // Per-fault referee evidence (keyed only for kernel-detected
    // faults): (aliasing seen, X-masking seen).
    let mut evidence: HashMap<Fault, (bool, bool)> = HashMap::new();

    let mut remaining = config.patterns;
    let mut batch_no = 0usize;
    while remaining > 0 {
        if let Some(cause) = cancel.cause() {
            return Err(cause);
        }
        let chunk = remaining.min(64);
        remaining -= chunk;
        let pi = batch_no % procs.len();
        batch_no += 1;
        let spec = &procs[pi];

        let mut pats = Vec::with_capacity(chunk);
        for _ in 0..chunk {
            let mut p = occ_fsim::Pattern::empty(model, spec, pi);
            let load = prpg.next_load(shift_len);
            for slot in 0..map.slots() {
                if let Some((chain, cycle)) = map.load_coord(slot) {
                    p.scan_load[slot] = Logic::from_bool(load[chain][cycle]);
                }
            }
            // PIs (and any off-chain slot) come from the same PRPG
            // stream, as a tester channel would drive them.
            p.fill_x(|| Logic::from_bool(prpg.next_bit()));
            pats.push(p);
        }
        let base = patterns.patterns().len();
        for p in &pats {
            patterns.push(p.clone());
        }

        let good = simulate_good(model, spec, &pats);
        let frames = spec.frames();

        // Good-machine signature prediction: unload every pattern of
        // the batch, in order, through the scalar MISR.
        for p in 0..chunk {
            for lanes_at in &by_cycle {
                let mut lanes = vec![Logic::Zero; config.misr_len];
                for &(slot, lane) in lanes_at {
                    let fi = model.scan_flops()[slot] as usize;
                    let pv = good.states[frames][fi];
                    let v = if pv.x >> p & 1 == 1 {
                        Logic::X
                    } else if pv.v >> p & 1 == 1 {
                        Logic::One
                    } else {
                        Logic::Zero
                    };
                    lanes[lane] = Misr::xor(lanes[lane], v);
                }
                good_misr.clock(&lanes);
            }
        }

        // Grade every still-undetected fault through the kernel, then
        // re-judge each detection through the MISR.
        let candidates: Vec<Fault> = list
            .iter()
            .filter(|(_, s)| *s == FaultStatus::Undetected)
            .map(|(f, _)| f)
            .collect();
        for fault in candidates {
            let det = fsim.detect_response(spec, &good, fault, &mut resp);
            if det == 0 {
                continue;
            }
            // Patterns where the faulty unload has an X the good
            // machine doesn't: compaction must mask them.
            let mut fx = 0u64;
            for slot in 0..map.slots() {
                if map.unload_coord(slot).is_some() {
                    fx |= resp.faulty_x[slot] & !resp.good_x[slot];
                }
            }
            fault_misr.reset();
            for lanes_at in &by_cycle {
                let mut lanes = vec![0u64; config.misr_len];
                for &(slot, lane) in lanes_at {
                    lanes[lane] ^= resp.diff[slot];
                }
                fault_misr.clock(&lanes);
            }
            let image = fault_misr.nonzero();
            let bist_mask = image & !fx & det;
            let e = evidence.entry(fault).or_default();
            if bist_mask != 0 {
                list.set_status(
                    fault,
                    FaultStatus::Detected {
                        pattern: (base + bist_mask.trailing_zeros() as usize) as u32,
                    },
                );
            } else {
                e.0 |= det & !fx & !image != 0;
                e.1 |= det & fx != 0;
            }
        }
    }

    let mut report = LbistReport {
        x_sources,
        kernel_detected: evidence.len(),
        ..LbistReport::default()
    };
    for (fault, &(aliased_ev, _x_ev)) in &evidence {
        if list.status(*fault).is_detected() {
            report.bist_detected += 1;
        } else if aliased_ev {
            report.aliased += 1;
        } else {
            report.x_masked += 1;
        }
    }
    report.signature = good_misr.signature();
    report.signature_valid = report.signature.is_some() && x_sources == 0;

    Ok(LbistOutcome {
        patterns,
        faults: list,
        report,
        kernel: fsim.kernel_stats(),
    })
}
