//! PPSFP: parallel-pattern single-fault propagation, as a compiled
//! zero-allocation kernel.
//!
//! For each fault, the good-machine batch is perturbed at the fault site
//! and the difference is propagated event-wise, level by level, through
//! each capture frame; flop-state differences carry across frames.
//! Detection requires a *definite* good/faulty difference at a scan flop
//! captured by the procedure or at an observed primary output — plus,
//! for transition faults, the launch condition (the site must toggle
//! into the faulty polarity between the launch and capture frames).
//!
//! The hot path runs entirely on the [`SimGraph`] compiled into the
//! [`CaptureModel`]: CSR fanout walks, dense op-code evaluation and
//! stamped scratch arrays that are reused across faults, so grading a
//! fault allocates nothing. Faults whose effect cell lies outside the
//! graph's observability cone are rejected in O(1) before any
//! propagation. The pre-kernel engine is retained as
//! [`ReferenceFaultSim`](crate::ReferenceFaultSim); both produce
//! bit-identical detection masks (cross-checked in
//! `tests/kernel_equivalence.rs`).

use crate::cancel::CancelToken;
use crate::goodsim::GoodBatch;
use crate::graph::{FlopMeta, KernelStats, OpCode, SimGraph, FLOP_TAG, NO_RESET};
use crate::pval::PVal;
use crate::timing::{SimTiming, TimePs};
use crate::{CaptureModel, CycleSpec, FrameSpec};
use occ_fault::{Fault, FaultModel, FaultSite, Polarity};
use occ_netlist::CellId;
use std::sync::Arc;

/// Sparse per-flop faulty-state buffer: a stamped value array plus the
/// list of flops holding a difference, cleared in O(1) by bumping the
/// stamp generation.
#[derive(Debug)]
struct StateBuf {
    tag: Vec<u32>,
    gen: u32,
    val: Vec<PVal>,
    list: Vec<u32>,
}

impl StateBuf {
    fn new(n_flops: usize) -> Self {
        StateBuf {
            tag: vec![0; n_flops],
            gen: 0,
            val: vec![PVal::XX; n_flops],
            list: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.tag.fill(0);
            self.gen = 1;
        }
        self.list.clear();
    }

    #[inline]
    fn set(&mut self, fi: usize, v: PVal) {
        if self.tag[fi] != self.gen {
            self.tag[fi] = self.gen;
            self.list.push(fi as u32);
        }
        self.val[fi] = v;
    }

    #[inline]
    fn get(&self, fi: usize) -> Option<PVal> {
        if self.tag[fi] == self.gen {
            Some(self.val[fi])
        } else {
            None
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

/// Optional timed-detect scratch: attached via
/// [`FaultSim::attach_timing`], it annotates the difference propagation
/// with picosecond arrival times so a detection also reports the
/// longest sensitized path. All arrays are allocated once on attach —
/// the timed detect path stays zero-allocation (gated by
/// `timing_bench`).
#[derive(Debug)]
struct TimedScratch {
    view: Arc<SimTiming>,
    /// Difference arrival per cell (valid where `fstamp == gen`).
    time: Vec<TimePs>,
    /// Capture-path time per flop, parallel to `cur` / `next`.
    state_cur: Vec<TimePs>,
    state_next: Vec<TimePs>,
    /// Longest detecting path of the most recent `detect` call.
    last_path: TimePs,
}

/// Per-fault scan-unload response detail, filled by
/// [`FaultSim::detect_response`]: everything a space/time compactor
/// model (EDT XOR compactor, LBIST MISR) needs to re-grade a detection
/// under *compacted* observation.
///
/// All per-flop vectors are indexed in [`SimGraph::scan_flops`] order —
/// the same order as [`crate::Pattern::scan_load`] slots — and every
/// mask is packed over the batch patterns (bit per pattern), already
/// masked by the launch condition and the batch validity mask.
#[derive(Debug, Clone, Default)]
pub struct ScanResponse {
    /// The full detection mask, identical to what
    /// [`FaultSim::detect`] returns: `po | OR(diff)`.
    pub detect: u64,
    /// Patterns detecting at an observed primary output.
    pub po: u64,
    /// Per scan flop: patterns with a definite good/faulty unload
    /// difference at that flop.
    pub diff: Vec<u64>,
    /// Per scan flop: patterns whose *good-machine* unload value is X
    /// (an X-bounding concern: the signature is unpredictable there).
    pub good_x: Vec<u64>,
    /// Per scan flop: patterns whose *faulty-machine* unload value is
    /// X. Faulty-only X (`faulty_x & !good_x`) means the faulty
    /// response is unpredictable even though the good one is known —
    /// a compactor must treat such patterns as masked, never detected.
    pub faulty_x: Vec<u64>,
}

impl ScanResponse {
    /// An empty response (sized lazily by the first
    /// [`FaultSim::detect_response`] call).
    #[must_use]
    pub fn new() -> Self {
        ScanResponse::default()
    }

    /// Zeroes every mask and (re)sizes the per-flop vectors; reuses
    /// the allocations once warmed up.
    fn reset(&mut self, n_scan: usize) {
        self.detect = 0;
        self.po = 0;
        for v in [&mut self.diff, &mut self.good_x, &mut self.faulty_x] {
            v.clear();
            v.resize(n_scan, 0);
        }
    }
}

/// Reusable PPSFP engine bound to one capture model.
///
/// All scratch state (value/stamp arrays, levelized worklist buckets,
/// flop-state buffers) is allocated once in [`FaultSim::new`] and
/// reused for every fault: the [`FaultSim::detect`] hot path performs
/// no heap allocation.
///
/// # Examples
///
/// ```
/// use occ_netlist::{NetlistBuilder, Logic};
/// use occ_fault::{Fault, FaultSite, Polarity};
/// use occ_fsim::{ClockBinding, CaptureModel, FrameSpec, CycleSpec, Pattern,
///                simulate_good, FaultSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("t");
/// let clk = b.input("clk");
/// let d = b.input("d");
/// let se = b.input("se");
/// let si = b.input("si");
/// let ff = b.sdff(d, clk, se, si);
/// b.output("q", ff);
/// let nl = b.finish()?;
/// let mut binding = ClockBinding::new();
/// binding.add_domain("a", clk);
/// binding.constrain(se, Logic::Zero);
/// binding.mask(si);
/// let model = CaptureModel::new(&nl, binding)?;
///
/// let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
/// let mut p = Pattern::empty(&model, &spec, 0);
/// p.pis[0] = vec![Logic::One]; // d = 1
/// let good = simulate_good(&model, &spec, &[p]);
///
/// let mut fsim = FaultSim::new(&model);
/// let f = Fault::stuck(FaultSite::Output(d), Polarity::P0);
/// assert_eq!(fsim.detect(&spec, &good, f), 0b1); // captured into ff
/// assert_eq!(fsim.kernel_stats().faults_graded, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaultSim<'g> {
    graph: &'g SimGraph,
    // Faulty node values with generation stamps (valid when stamp==gen).
    fval: Vec<PVal>,
    fstamp: Vec<u32>,
    gen: u32,
    // Levelized worklist buckets and enqueue stamps.
    buckets: Vec<Vec<u32>>,
    enq: Vec<u32>,
    // Touched-flop dedup stamps and list (reused across frames).
    flop_stamp: Vec<u32>,
    touched: Vec<u32>,
    // Carried faulty flop state: current frame in, next frame out.
    cur: StateBuf,
    next: StateBuf,
    // PO-observation difference mask of the most recent *full* kernel
    // pass (unmasked; stale after an early return — detect_response
    // replicates the early exits before trusting it or `cur`).
    po_diff: u64,
    // Optional timed-detect annotations (attach_timing).
    timed: Option<Box<TimedScratch>>,
    // Cooperative cancellation, polled at batch-loop boundaries
    // (attach_cancel; the default token never trips).
    cancel: CancelToken,
    // Work counters, accumulated since construction.
    faults_graded: u64,
    cone_pruned: u64,
    events: u64,
    timed_faults: u64,
}

impl<'g> FaultSim<'g> {
    /// Creates an engine with scratch space sized for the model.
    pub fn new(model: &'g CaptureModel<'_>) -> Self {
        Self::from_graph(model.graph())
    }

    /// Creates an engine directly over a compiled graph — everything
    /// the kernel needs lives in the graph, which is how the persistent
    /// [`ParallelFaultSim`](crate::ParallelFaultSim) workers build
    /// their arenas from an `Arc<SimGraph>` they own.
    pub fn from_graph(graph: &'g SimGraph) -> Self {
        let n = graph.cells();
        let n_flops = graph.flop_count();
        FaultSim {
            graph,
            fval: vec![PVal::XX; n],
            fstamp: vec![0; n],
            gen: 0,
            buckets: vec![Vec::new(); graph.bucket_count()],
            enq: vec![0; n],
            flop_stamp: vec![0; n_flops],
            touched: Vec::new(),
            cur: StateBuf::new(n_flops),
            next: StateBuf::new(n_flops),
            po_diff: 0,
            timed: None,
            cancel: CancelToken::never(),
            faults_graded: 0,
            cone_pruned: 0,
            events: 0,
            timed_faults: 0,
        }
    }

    /// Attaches a per-cell timing view: from now on every
    /// [`FaultSim::detect`] call additionally records the longest
    /// sensitized propagation path of the fault difference, readable
    /// through [`FaultSim::last_path_ps`]. Detection masks are
    /// unaffected — the annotations are strictly additive, and an
    /// engine without an attached view behaves exactly as before.
    ///
    /// All timed scratch is allocated here; the per-fault timed path
    /// performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if the view does not cover the compiled graph's cells.
    pub fn attach_timing(&mut self, view: Arc<SimTiming>) {
        assert_eq!(
            view.cells(),
            self.graph.cells(),
            "timing view must cover every graph cell"
        );
        let n = self.graph.cells();
        let nf = self.graph.flop_count();
        self.timed = Some(Box::new(TimedScratch {
            view,
            time: vec![0; n],
            state_cur: vec![0; nf],
            state_next: vec![0; nf],
            last_path: 0,
        }));
    }

    /// Detaches the timing view (detections stop recording paths).
    pub fn detach_timing(&mut self) {
        self.timed = None;
    }

    /// The longest sensitized propagation path (in ps, from the launch
    /// clock edge to the latest detecting observation point) recorded
    /// by the most recent [`FaultSim::detect`] call. Zero when no
    /// timing view is attached or the fault was not detected.
    ///
    /// The time is an upper bound over the batch: differences are
    /// propagated word-parallel across up to 64 patterns, so the
    /// recorded path is the longest difference path any pattern of the
    /// batch sensitized — exactly the path that defines the smallest
    /// delay defect the batch screens.
    pub fn last_path_ps(&self) -> TimePs {
        self.timed.as_ref().map_or(0, |t| t.last_path)
    }

    /// Kernel statistics: the compiled graph's shape plus the work this
    /// engine has performed since construction.
    pub fn kernel_stats(&self) -> KernelStats {
        let mut s = self.graph.static_stats();
        s.faults_graded = self.faults_graded;
        s.cone_pruned = self.cone_pruned;
        s.events = self.events;
        s.timed_faults = self.timed_faults;
        s
    }

    /// Returns the detection mask (bit per pattern) for one fault.
    pub fn detect(&mut self, spec: &FrameSpec, good: &GoodBatch, fault: Fault) -> u64 {
        // The timed path lives in a separate cold copy of the kernel
        // loop so the untimed hot path compiles exactly as if the
        // instrumentation did not exist. A shared const-generic body
        // was measured first and regressed the untimed kernel ~25% on
        // fsim_bench (the second monomorphization blew the inlining/
        // code-layout budget); the duplicate + `#[cold]` restored the
        // committed baseline, and the two copies are pinned mask-
        // identical over whole fault universes by
        // `timed_and_untimed_masks_agree_over_whole_universes`.
        if self.timed.is_some() {
            self.detect_timed(spec, good, fault)
        } else {
            self.detect_untimed(spec, good, fault)
        }
    }

    /// The launch/validity mask of a fault under this spec — a bit per
    /// pattern where a detection is even possible. Mirrors the kernel's
    /// own computation so [`FaultSim::detect_response`] can recognize
    /// the early-return paths that leave the scratch state stale.
    fn launch_mask(&self, spec: &FrameSpec, good: &GoodBatch, fault: Fault) -> u64 {
        match fault.model() {
            FaultModel::StuckAt => good.valid_mask,
            FaultModel::Transition => {
                let frames = spec.frames();
                if frames < 2 {
                    return 0;
                }
                let site_node = graph_site_node(self.graph, fault.site());
                let before = good.frames[frames - 2][site_node];
                let after = good.frames[frames - 1][site_node];
                let m = match fault.polarity() {
                    Polarity::P0 => before.def0() & after.def1(),
                    Polarity::P1 => before.def1() & after.def0(),
                };
                m & good.valid_mask
            }
        }
    }

    /// Like [`FaultSim::detect`], but additionally fills `resp` with
    /// the per-scan-flop unload response detail a compactor model
    /// (MISR, EDT XOR tree) needs to decide which detections survive
    /// compaction.
    ///
    /// The response vectors follow `graph.scan_flops()` order — the
    /// same order as a [`Pattern`](crate::Pattern)'s `scan_load` slots.
    /// `diff` and `po` are pre-masked by the launch and validity masks,
    /// so the invariant `detect == po | OR(diff[i])` holds exactly; a
    /// compactor never needs to re-derive the kernel's masking. `good_x`
    /// / `faulty_x` carry the unload X positions (masked by validity
    /// only): a faulty-only X (`faulty_x & !good_x`) is a position the
    /// compactor must treat as unknown, never as a detection.
    ///
    /// Costs one extra pass over the scan flops on top of
    /// [`FaultSim::detect`]; the kernel loop itself is unchanged.
    pub fn detect_response(
        &mut self,
        spec: &FrameSpec,
        good: &GoodBatch,
        fault: Fault,
        resp: &mut ScanResponse,
    ) -> u64 {
        let scan = self.graph.scan_flops();
        resp.reset(scan.len());

        // Replicate the kernel's early exits: on any of them the
        // kernel returns 0 before running the frame loop, leaving
        // `cur` / `po_diff` stale from the previous fault.
        let with_po = !spec.po_observe_frames().is_empty();
        let launch = self.launch_mask(spec, good, fault);
        let early = !self.graph.observable(fault.site().effect_cell(), with_po) || launch == 0;

        let detect = self.detect(spec, good, fault);
        if early {
            debug_assert_eq!(detect, 0, "early-exit replication out of sync with kernel");
            return 0;
        }

        let valid = good.valid_mask;
        resp.po = self.po_diff & launch & valid;

        let frames = spec.frames();
        let forced = forced_val(fault.polarity());
        let out_site = match fault.site() {
            FaultSite::Output(c) => Some(c.index()),
            FaultSite::Input { .. } => None,
        };
        let g = self.graph;
        let mut or_diff = resp.po;
        for (i, &fi) in scan.iter().enumerate() {
            let fi = fi as usize;
            let good_v = good.states[frames][fi];
            let mut faulty_v = self.cur.get(fi).unwrap_or(good_v);
            // Same direct-Q rule as the kernel's unload loop: a stuck
            // output on the scan flop itself is read straight off the
            // chain.
            let cell = g.flop_meta(fi).cell as usize;
            if fault.model() == FaultModel::StuckAt && out_site == Some(cell) {
                faulty_v = forced;
            }
            resp.diff[i] = good_v.definite_diff(faulty_v) & launch & valid;
            resp.good_x[i] = good_v.x & valid;
            resp.faulty_x[i] = faulty_v.x & valid;
            or_diff |= resp.diff[i];
        }
        resp.detect = detect;
        debug_assert_eq!(detect, or_diff, "response must explain every detection bit");
        detect
    }

    /// The untimed kernel loop — the original hot path, untouched.
    fn detect_untimed(&mut self, spec: &FrameSpec, good: &GoodBatch, fault: Fault) -> u64 {
        self.faults_graded += 1;

        // Cone pruning: a fault whose effect cell cannot reach a scan
        // flop (or an observed PO) is undetectable under this spec.
        let with_po = !spec.po_observe_frames().is_empty();
        if !self.graph.observable(fault.site().effect_cell(), with_po) {
            self.cone_pruned += 1;
            return 0;
        }

        let site_node = graph_site_node(self.graph, fault.site());
        let frames = spec.frames();

        // Launch requirement for transition faults.
        let launch_mask = match fault.model() {
            FaultModel::StuckAt => good.valid_mask,
            FaultModel::Transition => {
                if frames < 2 {
                    return 0;
                }
                let before = good.frames[frames - 2][site_node];
                let after = good.frames[frames - 1][site_node];
                let m = match fault.polarity() {
                    Polarity::P0 => before.def0() & after.def1(), // slow-to-rise
                    Polarity::P1 => before.def1() & after.def0(), // slow-to-fall
                };
                m & good.valid_mask
            }
        };
        if launch_mask == 0 {
            return 0;
        }

        let first_active = match fault.model() {
            FaultModel::StuckAt => 1,
            FaultModel::Transition => frames,
        };
        let forced = forced_val(fault.polarity());
        let (out_site, in_site) = match fault.site() {
            FaultSite::Output(c) => (Some(c.index()), None),
            FaultSite::Input { cell, pin } => (None, Some((cell.index(), pin))),
        };

        self.cur.clear();
        let mut po_diff = 0u64;

        for k in first_active..=frames {
            let active = match fault.model() {
                FaultModel::StuckAt => true,
                FaultModel::Transition => k == frames,
            };
            if !active && self.cur.is_empty() {
                continue;
            }

            self.bump_gen();
            let gvals = &good.frames[k - 1];
            self.touched.clear();

            // Seed 1: carried-in state differences.
            for i in 0..self.cur.list.len() {
                let fi = self.cur.list[i] as usize;
                let cell = self.graph.flop_meta(fi).cell as usize;
                self.fval[cell] = self.cur.val[fi];
                self.fstamp[cell] = self.gen;
                self.push_fanouts(cell);
            }

            // Seed 2: the fault site.
            if active {
                if let Some(ci) = out_site {
                    self.fval[ci] = forced;
                    self.fstamp[ci] = self.gen;
                    if forced != gvals[ci] {
                        self.push_fanouts(ci);
                    }
                } else if let Some((ci, pin)) = in_site {
                    // Evaluate the consuming cell with the pin forced.
                    self.events += 1;
                    let v = self.eval_faulty(ci, gvals, Some((pin, forced)));
                    if v != gvals[ci] {
                        self.fval[ci] = v;
                        self.fstamp[ci] = self.gen;
                        self.push_fanouts(ci);
                    }
                }
            }

            // Propagate level by level.
            for lvl in 0..self.buckets.len() {
                while let Some(raw) = self.buckets[lvl].pop() {
                    let ci = raw as usize;
                    // The forced output site never re-evaluates.
                    if active && out_site == Some(ci) {
                        continue;
                    }
                    let pin_fault = match in_site {
                        Some((cell, pin)) if active && cell == ci => Some((pin, forced)),
                        _ => None,
                    };
                    self.events += 1;
                    let was_stamped = self.fstamp[ci] == self.gen;
                    let v = self.eval_faulty(ci, gvals, pin_fault);
                    if was_stamped {
                        // Re-evaluation of an already-seeded node (an
                        // input-site cell reached again from upstream):
                        // only re-notify fanouts when the value moved.
                        if v != self.fval[ci] {
                            self.fval[ci] = v;
                            self.push_fanouts(ci);
                        }
                    } else if v != gvals[ci] {
                        self.fval[ci] = v;
                        self.fstamp[ci] = self.gen;
                        self.push_fanouts(ci);
                    }
                }
            }

            // Primary-output observation.
            if spec.po_observe_frames().contains(&k) {
                let g = self.graph;
                for &po in g.po_cells() {
                    let p = po as usize;
                    if self.fstamp[p] == self.gen {
                        po_diff |= gvals[p].definite_diff(self.fval[p]);
                    }
                }
            }

            // Next faulty state: flops touched by propagation plus the
            // carried diffs (deduplicated through the same stamps).
            self.next.clear();
            let cycle = &spec.cycles()[k - 1];
            for i in 0..self.touched.len() {
                let fi = self.touched[i] as usize;
                self.capture_flop::<false>(fi, k, cycle, good, gvals);
            }
            for i in 0..self.cur.list.len() {
                let fi = self.cur.list[i] as usize;
                if self.flop_stamp[fi] != self.gen {
                    self.flop_stamp[fi] = self.gen;
                    self.capture_flop::<false>(fi, k, cycle, good, gvals);
                }
            }
            std::mem::swap(&mut self.cur, &mut self.next);
        }

        // Detection: scan-state differences at unload + observed POs.
        self.po_diff = po_diff;
        let mut detect = po_diff;
        for &fi in self.graph.scan_flops() {
            let fi = fi as usize;
            let good_v = good.states[frames][fi];
            let mut faulty_v = self.cur.get(fi).unwrap_or(good_v);
            // A *stuck* output on the scan flop itself is observed
            // directly during unload (the chain reads the Q net). A
            // transition fault is not: unload shifting is slow, so the
            // slow edge has settled by the time the chain samples.
            if fault.model() == FaultModel::StuckAt
                && out_site == Some(self.graph.flop_meta(fi).cell as usize)
            {
                faulty_v = forced;
            }
            detect |= good_v.definite_diff(faulty_v);
        }

        detect & launch_mask & good.valid_mask
    }

    /// The timed copy of the kernel loop: identical mask computation,
    /// plus picosecond annotations along the difference propagation
    /// (see [`FaultSim::attach_timing`]). Kept out of the hot section —
    /// grading without timing never touches this code.
    #[cold]
    #[inline(never)]
    fn detect_timed(&mut self, spec: &FrameSpec, good: &GoodBatch, fault: Fault) -> u64 {
        self.faults_graded += 1;
        if let Some(ts) = &mut self.timed {
            ts.last_path = 0;
        }
        self.timed_faults += 1;

        // Cone pruning: a fault whose effect cell cannot reach a scan
        // flop (or an observed PO) is undetectable under this spec.
        let with_po = !spec.po_observe_frames().is_empty();
        if !self.graph.observable(fault.site().effect_cell(), with_po) {
            self.cone_pruned += 1;
            return 0;
        }

        let site_node = graph_site_node(self.graph, fault.site());
        let frames = spec.frames();

        // Launch requirement for transition faults.
        let launch_mask = match fault.model() {
            FaultModel::StuckAt => good.valid_mask,
            FaultModel::Transition => {
                if frames < 2 {
                    return 0;
                }
                let before = good.frames[frames - 2][site_node];
                let after = good.frames[frames - 1][site_node];
                let m = match fault.polarity() {
                    Polarity::P0 => before.def0() & after.def1(), // slow-to-rise
                    Polarity::P1 => before.def1() & after.def0(), // slow-to-fall
                };
                m & good.valid_mask
            }
        };
        if launch_mask == 0 {
            return 0;
        }

        let first_active = match fault.model() {
            FaultModel::StuckAt => 1,
            FaultModel::Transition => frames,
        };
        let forced = forced_val(fault.polarity());
        let (out_site, in_site) = match fault.site() {
            FaultSite::Output(c) => (Some(c.index()), None),
            FaultSite::Input { cell, pin } => (None, Some((cell.index(), pin))),
        };

        self.cur.clear();
        let mut po_diff = 0u64;

        for k in first_active..=frames {
            let active = match fault.model() {
                FaultModel::StuckAt => true,
                FaultModel::Transition => k == frames,
            };
            if !active && self.cur.is_empty() {
                continue;
            }

            self.bump_gen();
            let gvals = &good.frames[k - 1];
            self.touched.clear();

            // Seed 1: carried-in state differences. A carried diff
            // presents at the flop's Q one clock-to-out after the new
            // frame's launch edge.
            for i in 0..self.cur.list.len() {
                let fi = self.cur.list[i] as usize;
                let cell = self.graph.flop_meta(fi).cell as usize;
                self.fval[cell] = self.cur.val[fi];
                self.fstamp[cell] = self.gen;
                if let Some(ts) = &mut self.timed {
                    ts.time[cell] = ts.view.delay(cell);
                }
                self.push_fanouts(cell);
            }

            // Seed 2: the fault site. The difference launches when the
            // good machine's transition settles at the site (its STA
            // arrival time).
            if active {
                if let Some(ci) = out_site {
                    self.fval[ci] = forced;
                    self.fstamp[ci] = self.gen;
                    if let Some(ts) = &mut self.timed {
                        ts.time[ci] = ts.view.arrival(ci);
                    }
                    if forced != gvals[ci] {
                        self.push_fanouts(ci);
                    }
                } else if let Some((ci, pin)) = in_site {
                    // Evaluate the consuming cell with the pin forced.
                    self.events += 1;
                    let v = self.eval_faulty(ci, gvals, Some((pin, forced)));
                    if v != gvals[ci] {
                        self.fval[ci] = v;
                        self.fstamp[ci] = self.gen;
                        if let Some(ts) = &mut self.timed {
                            ts.time[ci] = ts.view.arrival(site_node) + ts.view.delay(ci);
                        }
                        self.push_fanouts(ci);
                    }
                }
            }

            // Propagate level by level.
            for lvl in 0..self.buckets.len() {
                while let Some(raw) = self.buckets[lvl].pop() {
                    let ci = raw as usize;
                    // The forced output site never re-evaluates.
                    if active && out_site == Some(ci) {
                        continue;
                    }
                    let pin_fault = match in_site {
                        Some((cell, pin)) if active && cell == ci => Some((pin, forced)),
                        _ => None,
                    };
                    self.events += 1;
                    let was_stamped = self.fstamp[ci] == self.gen;
                    let v = self.eval_faulty(ci, gvals, pin_fault);
                    if was_stamped {
                        // Re-evaluation of an already-seeded node (an
                        // input-site cell reached again from upstream):
                        // only re-notify fanouts when the value moved.
                        if v != self.fval[ci] {
                            let t = self.prop_time(ci, pin_fault.is_some(), site_node);
                            if let Some(ts) = &mut self.timed {
                                ts.time[ci] = t;
                            }
                            self.fval[ci] = v;
                            self.push_fanouts(ci);
                        }
                    } else if v != gvals[ci] {
                        let t = self.prop_time(ci, pin_fault.is_some(), site_node);
                        if let Some(ts) = &mut self.timed {
                            ts.time[ci] = t;
                        }
                        self.fval[ci] = v;
                        self.fstamp[ci] = self.gen;
                        self.push_fanouts(ci);
                    }
                }
            }

            // Primary-output observation.
            if spec.po_observe_frames().contains(&k) {
                let g = self.graph;
                for &po in g.po_cells() {
                    let p = po as usize;
                    if self.fstamp[p] == self.gen {
                        let d = gvals[p].definite_diff(self.fval[p]);
                        po_diff |= d;
                        // Only count paths whose difference bits survive
                        // the launch/validity masking — bits dropped by
                        // the final mask never screen anything.
                        if d & launch_mask != 0 {
                            if let Some(ts) = &mut self.timed {
                                ts.last_path = ts.last_path.max(ts.time[p]);
                            }
                        }
                    }
                }
            }

            // Next faulty state: flops touched by propagation plus the
            // carried diffs (deduplicated through the same stamps).
            self.next.clear();
            let cycle = &spec.cycles()[k - 1];
            for i in 0..self.touched.len() {
                let fi = self.touched[i] as usize;
                self.capture_flop::<true>(fi, k, cycle, good, gvals);
            }
            for i in 0..self.cur.list.len() {
                let fi = self.cur.list[i] as usize;
                if self.flop_stamp[fi] != self.gen {
                    self.flop_stamp[fi] = self.gen;
                    self.capture_flop::<true>(fi, k, cycle, good, gvals);
                }
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            if let Some(ts) = &mut self.timed {
                std::mem::swap(&mut ts.state_cur, &mut ts.state_next);
            }
        }

        // Detection: scan-state differences at unload + observed POs.
        self.po_diff = po_diff;
        let mut detect = po_diff;
        let g = self.graph;
        for &fi in g.scan_flops() {
            let fi = fi as usize;
            let good_v = good.states[frames][fi];
            let mut faulty_v = self.cur.get(fi).unwrap_or(good_v);
            // A *stuck* output on the scan flop itself is observed
            // directly during unload (the chain reads the Q net). A
            // transition fault is not: unload shifting is slow, so the
            // slow edge has settled by the time the chain samples.
            let cell = g.flop_meta(fi).cell as usize;
            let mut direct_q = false;
            if fault.model() == FaultModel::StuckAt && out_site == Some(cell) {
                faulty_v = forced;
                direct_q = true;
            }
            let d = good_v.definite_diff(faulty_v);
            detect |= d;
            // As at the POs: only launch-valid difference bits count.
            if d & launch_mask != 0 {
                if let Some(ts) = &mut self.timed {
                    // Captured diffs carry their capture-path time; a
                    // stuck Q read directly at (slow) unload stresses
                    // nothing beyond the flop's own clock-to-out.
                    let t = if !direct_q && self.cur.get(fi).is_some() {
                        ts.state_cur[fi]
                    } else {
                        ts.view.delay(cell)
                    };
                    ts.last_path = ts.last_path.max(t);
                }
            }
        }

        detect & launch_mask & good.valid_mask
    }

    /// Arrival of the fault difference at `ci`'s output: the latest
    /// difference among its stamped fanins (plus the site launch for an
    /// active input-pin fault on this cell) plus the cell's own delay.
    /// Only called with a timing view attached.
    #[inline]
    fn prop_time(&self, ci: usize, pin_fault: bool, site_node: usize) -> TimePs {
        let ts = self.timed.as_ref().expect("timed scratch attached");
        let mut t = if pin_fault {
            ts.view.arrival(site_node)
        } else {
            0
        };
        for &src in self.graph.fanins(ci) {
            let s = src as usize;
            if self.fstamp[s] == self.gen {
                t = t.max(ts.time[s]);
            }
        }
        t + ts.view.delay(ci)
    }

    /// The capture-path time recorded with a flop's faulty next state:
    /// the latest stamped sample-pin difference for a pulsed flop
    /// (floored at its own clock-to-out), the carried capture time for
    /// a holding flop. Only called with a timing view attached.
    #[inline]
    fn capture_time(&self, meta: &FlopMeta, fi: usize, pulsed: bool) -> TimePs {
        let ts = self.timed.as_ref().expect("timed scratch attached");
        let cell = meta.cell as usize;
        if pulsed {
            let mut t = ts.view.delay(cell);
            let mut consider = |src: u32| {
                let s = src as usize;
                if self.fstamp[s] == self.gen {
                    t = t.max(ts.time[s]);
                }
            };
            consider(meta.d);
            if meta.mux_scan {
                consider(meta.se);
                consider(meta.si);
            }
            if meta.reset != NO_RESET {
                consider(meta.reset);
            }
            t
        } else if self.cur.get(fi).is_some() {
            ts.state_cur[fi]
        } else {
            ts.view.delay(cell)
        }
    }

    /// Attaches a cooperative-cancellation token: from now on
    /// [`FaultSim::detect_many`] polls it every few dozen faults and,
    /// once tripped, stops grading and pads the remaining masks with
    /// zero. The engine itself stays fully usable — cancellation never
    /// touches scratch state mid-fault — so a caller that observes the
    /// trip discards the batch and may keep the engine for later work.
    pub fn attach_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// Detects a batch of faults, returning one mask per fault.
    ///
    /// If an attached [`CancelToken`] trips mid-batch, the remaining
    /// masks are zero — callers that honour cancellation must check the
    /// token and discard the result.
    pub fn detect_many(
        &mut self,
        spec: &FrameSpec,
        good: &GoodBatch,
        faults: &[Fault],
    ) -> Vec<u64> {
        let mut batch_span = occ_obs::span("fsim.batch");
        batch_span.attr_u64("faults", faults.len() as u64);
        batch_span.attr_u64("patterns", good.n_patterns as u64);
        // Poll the token at a stride that keeps the check invisible on
        // the hot path (one relaxed load per CANCEL_STRIDE faults).
        const CANCEL_STRIDE: usize = 32;
        let mut out = Vec::with_capacity(faults.len());
        for (i, &f) in faults.iter().enumerate() {
            if i % CANCEL_STRIDE == 0 && self.cancel.is_cancelled() {
                break;
            }
            out.push(self.detect(spec, good, f));
        }
        out.resize(faults.len(), 0);
        out
    }

    fn bump_gen(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Stamp wrap-around (once per 2^32 frames): invalidate all
            // stamps so stale entries can never alias the new epoch.
            self.fstamp.fill(0);
            self.enq.fill(0);
            self.flop_stamp.fill(0);
            self.gen = 1;
        }
    }

    /// Faulty (stamped) or good value of a node's driver.
    #[inline]
    fn read_val(&self, src: u32, gvals: &[PVal]) -> PVal {
        let s = src as usize;
        if self.fstamp[s] == self.gen {
            self.fval[s]
        } else {
            gvals[s]
        }
    }

    /// Evaluates one cell with faulty input values (and an optional pin
    /// override for an active input-site fault on this cell).
    #[inline]
    fn eval_faulty(&self, ci: usize, gvals: &[PVal], pin_fault: Option<(u8, PVal)>) -> PVal {
        if self.graph.op(ci) == OpCode::State {
            // Flop/latch/ram nodes keep their frame value.
            return self.read_val(ci as u32, gvals);
        }
        match pin_fault {
            None => self.graph.eval_cell(ci, |_, src| self.read_val(src, gvals)),
            Some((pin, forced)) => self.graph.eval_cell(ci, |p, src| {
                if p == pin as usize {
                    forced
                } else {
                    self.read_val(src, gvals)
                }
            }),
        }
    }

    /// Computes one flop's faulty next state and records it in `next`
    /// when it differs from the good next state.
    ///
    /// ## Reset semantics
    ///
    /// The workspace-wide contract **every** engine implements — the
    /// packed PPSFP engines here, `ReferenceFaultSim`, and the scalar
    /// ATPG value engines (`occ-atpg`'s `DualSim` and `DualGraphSim`):
    ///
    /// * the **good** machine applies asynchronous resets every frame
    ///   (see `simulate_good`) — a reset is an asynchronous pin, so it
    ///   acts regardless of whether the flop's domain is pulsed;
    /// * the **faulty** state of a flop whose domain is *not pulsed*
    ///   in the frame *carries over iff the fault involves the flop* —
    ///   its entering state already differs from the good machine's,
    ///   or one of its input-pin drivers settled to a faulty value this
    ///   frame — and otherwise *tracks the good machine* (inheriting
    ///   the good machine's own asynchronous-reset action). A faulty
    ///   reset net active in a non-pulsed frame is never propagated
    ///   into the flop.
    ///
    /// The asymmetry is deliberate. The faulty machine is stored as a
    /// sparse difference against the good machine, and a non-pulsed
    /// flop is precisely one whose capture path is quiescent in the
    /// frame: re-deriving its state from a possibly-faulty reset net
    /// would manufacture glitch-like behavior the slow scan frames
    /// cannot actually exhibit, so an existing difference simply
    /// carries — while a flop the fault cannot reach stays equal to
    /// the good machine by construction of the sparse representation.
    /// In a *pulsed* frame both machines apply full sample-then-reset
    /// handling. The cross-engine suites (`dual_sim_detection_*`,
    /// `tests/atpg_equivalence.rs`, `tests/kernel_equivalence.rs` —
    /// including rigs whose reset nets are driven by internal logic —
    /// and the brute-force re-detect checks) pin all engines to this
    /// contract.
    fn capture_flop<const TIMED: bool>(
        &mut self,
        fi: usize,
        k: usize,
        cycle: &CycleSpec,
        good: &GoodBatch,
        gvals: &[PVal],
    ) {
        self.events += 1;
        let meta = *self.graph.flop_meta(fi);
        let good_next = good.states[k][fi];
        let pulsed = cycle.pulses_domain(meta.domain as usize);
        let faulty_next = if pulsed {
            let sampled = meta.sample(|src| self.read_val(src, gvals));
            if meta.reset == NO_RESET {
                sampled
            } else {
                meta.apply_reset(sampled, self.read_val(meta.reset, gvals))
            }
        } else {
            // Workspace reset contract (see "Reset semantics" above):
            // a non-pulsed flop the fault involves (existing diff, or
            // touched by a faulty capture fanin) carries its entering
            // state; untouched flops never reach here and implicitly
            // track the good machine. A faulty reset net active in a
            // non-pulsed frame is never propagated into the flop.
            self.cur.get(fi).unwrap_or(good.states[k - 1][fi])
        };
        if faulty_next != good_next {
            if TIMED {
                let t = self.capture_time(&meta, fi, pulsed);
                if let Some(ts) = &mut self.timed {
                    ts.state_next[fi] = t;
                }
            }
            self.next.set(fi, faulty_next);
        }
    }

    fn push_fanouts(&mut self, ci: usize) {
        let g = self.graph;
        for &e in g.prop_fanouts(ci) {
            if e & FLOP_TAG != 0 {
                let fi = (e & !FLOP_TAG) as usize;
                if self.flop_stamp[fi] != self.gen {
                    self.flop_stamp[fi] = self.gen;
                    self.touched.push(fi as u32);
                }
            } else {
                let f = e as usize;
                if self.enq[f] != self.gen {
                    self.enq[f] = self.gen;
                    self.buckets[g.level_of(f) as usize].push(e);
                }
            }
        }
    }
}

/// The node whose good value defines the fault site's value: the cell
/// itself for output faults, the driving net for input-pin faults.
pub(crate) fn site_node(model: &CaptureModel<'_>, site: FaultSite) -> CellId {
    match site {
        FaultSite::Output(c) => c,
        FaultSite::Input { cell, pin } => model.netlist().cell(cell).inputs()[pin as usize],
    }
}

/// [`site_node`] over the compiled graph's CSR fanins (same pin order
/// as the netlist), as a dense cell index.
pub(crate) fn graph_site_node(graph: &SimGraph, site: FaultSite) -> usize {
    match site {
        FaultSite::Output(c) => c.index(),
        FaultSite::Input { cell, pin } => graph.fanins(cell.index())[pin as usize] as usize,
    }
}

pub(crate) fn forced_val(p: Polarity) -> PVal {
    match p {
        Polarity::P0 => PVal::ZERO,
        Polarity::P1 => PVal::ONE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_good, ClockBinding, CycleSpec, Pattern};
    use occ_netlist::{Logic, NetlistBuilder};

    /// One scan flop feeding AND with a PI, captured by a second flop.
    struct Rig {
        nl: occ_netlist::Netlist,
        clk: CellId,
        d_pi: CellId,
        g: CellId,
        f1: CellId,
    }

    fn rig() -> Rig {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let d_pi = b.input("d");
        let f0 = b.sdff(d_pi, clk, se, si);
        let g = b.and2(f0, d_pi);
        let f1 = b.sdff(g, clk, se, f0);
        b.output("q", f1);
        b.name_cell(f0, "f0");
        b.name_cell(f1, "f1");
        Rig {
            nl: b.finish().unwrap(),
            clk,
            d_pi,
            g,
            f1,
        }
    }

    fn model(r: &Rig) -> CaptureModel<'_> {
        let mut binding = ClockBinding::new();
        binding.add_domain("a", r.clk);
        binding.constrain(r.nl.find("se").unwrap(), Logic::Zero);
        binding.mask(r.nl.find("si").unwrap());
        CaptureModel::new(&r.nl, binding).unwrap()
    }

    #[test]
    fn stuck_at_detected_when_activated() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        // Pattern: f0=1, d=1 -> g=1 good; g sa0 -> f1 captures 0.
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::Zero];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p]);
        let mut fsim = FaultSim::new(&m);
        let det = fsim.detect(
            &spec,
            &good,
            Fault::stuck(FaultSite::Output(r.g), Polarity::P0),
        );
        assert_eq!(det, 1);
        // sa1 not activated by this pattern (good value is already 1).
        let det1 = fsim.detect(
            &spec,
            &good,
            Fault::stuck(FaultSite::Output(r.g), Polarity::P1),
        );
        assert_eq!(det1, 0);
    }

    #[test]
    fn input_pin_fault_is_branch_local() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        // d=1 feeds both the AND pin and f0's D. A branch fault on the
        // AND pin (sa0) kills g but not the other branch.
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::One];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p]);
        let mut fsim = FaultSim::new(&m);
        let det = fsim.detect(
            &spec,
            &good,
            Fault::stuck(FaultSite::Input { cell: r.g, pin: 1 }, Polarity::P0),
        );
        assert_eq!(det, 1, "branch fault propagates to f1");
    }

    #[test]
    fn po_masking_blocks_detection() {
        // Fault whose only observation point is the PO.
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let f0 = b.sdff(d, clk, se, si);
        let g = b.not(f0);
        b.output("q", g);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        binding.constrain(se, Logic::Zero);
        binding.mask(si);
        let m = CaptureModel::new(&nl, binding).unwrap();

        let observe = FrameSpec::new("o", vec![CycleSpec::pulsing(&[0])]);
        let masked = FrameSpec::new("m", vec![CycleSpec::pulsing(&[0])]).observe_po(false);
        let mut p = Pattern::empty(&m, &observe, 0);
        p.scan_load = vec![Logic::One];
        let fault = Fault::stuck(FaultSite::Output(g), Polarity::P1);

        let good_o = simulate_good(&m, &observe, std::slice::from_ref(&p));
        let mut fsim = FaultSim::new(&m);
        assert_eq!(fsim.detect(&observe, &good_o, fault), 1);

        let good_m = simulate_good(&m, &masked, &[p]);
        assert_eq!(fsim.detect(&masked, &good_m, fault), 0);
        // The masked-PO rejection comes straight from the scan cone.
        assert_eq!(fsim.kernel_stats().cone_pruned, 1);
    }

    #[test]
    fn transition_needs_launch() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new(
            "loc",
            vec![CycleSpec::pulsing(&[0]), CycleSpec::pulsing(&[0])],
        )
        .hold_pi(true)
        .observe_po(false);
        // Load f0=0, d=1: frame1 g=0; f0 captures 1 -> frame2 g=1:
        // slow-to-rise at g is launched and captured into f1.
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::Zero, Logic::X];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p.clone()]);
        let mut fsim = FaultSim::new(&m);
        let str_fault = Fault::transition(FaultSite::Output(r.g), Polarity::P0);
        assert_eq!(fsim.detect(&spec, &good, str_fault), 1);

        // Slow-to-fall is not launched by this pattern (no 1->0).
        let stf_fault = Fault::transition(FaultSite::Output(r.g), Polarity::P1);
        assert_eq!(fsim.detect(&spec, &good, stf_fault), 0);

        // Launch without capture-frame effect: load f0=1 (g stays 1,
        // no transition) -> no detection.
        let mut p2 = Pattern::empty(&m, &spec, 0);
        p2.scan_load = vec![Logic::One, Logic::X];
        p2.pis[0] = vec![Logic::One];
        let good2 = simulate_good(&m, &spec, &[p2]);
        assert_eq!(fsim.detect(&spec, &good2, str_fault), 0);
    }

    #[test]
    fn multi_frame_stuck_at_propagates_through_state() {
        // Fault effect captured in frame 1 must be observable after
        // frame 2 even though the site is no longer perturbed there.
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let f0 = b.sdff(d, clk, se, si); // captures d
        let f1 = b.sdff(f0, clk, se, f0); // shift behind it
        b.output("q", f1);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        binding.constrain(se, Logic::Zero);
        binding.mask(si);
        let m = CaptureModel::new(&nl, binding).unwrap();
        let spec = FrameSpec::new("s2", vec![CycleSpec::pulsing(&[0]); 2]).hold_pi(true);
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::Zero, Logic::Zero];
        p.pis[0] = vec![Logic::One]; // d=1 held
        let good = simulate_good(&m, &spec, &[p]);
        let mut fsim = FaultSim::new(&m);
        // d sa0: f0 captures 0 instead of 1 in both frames; after frame 2
        // f1 holds the frame-1 corruption.
        let det = fsim.detect(
            &spec,
            &good,
            Fault::stuck(FaultSite::Output(d), Polarity::P0),
        );
        assert_eq!(det, 1);
    }

    #[test]
    fn detection_respects_valid_mask() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::Zero];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p]);
        assert_eq!(good.valid_mask, 1);
        let mut fsim = FaultSim::new(&m);
        let det = fsim.detect(
            &spec,
            &good,
            Fault::stuck(FaultSite::Output(r.d_pi), Polarity::P0),
        );
        assert_eq!(det & !good.valid_mask, 0);
        let _ = r.f1;
    }

    #[test]
    fn timed_detect_records_longest_sensitized_path() {
        let r = rig();
        let m = model(&r);
        let graph = m.graph();
        // Hand-built timing: 10 ps gates, 30 ps flops, ports/ties 0 —
        // mirroring occ-sim's default DelayModel.
        let delays: Vec<u64> = (0..graph.cells())
            .map(|c| match graph.op(c) {
                OpCode::State => 30,
                OpCode::Source | OpCode::Tie0 | OpCode::Tie1 | OpCode::TieX => 0,
                _ => 10,
            })
            .collect();
        let mut arrival = vec![0u64; graph.cells()];
        for c in 0..graph.cells() {
            if graph.op(c) == OpCode::State {
                arrival[c] = delays[c];
            }
        }
        for &c in graph.comb_order() {
            let ci = c as usize;
            let t = graph
                .fanins(ci)
                .iter()
                .map(|&s| arrival[s as usize])
                .max()
                .unwrap_or(0);
            arrival[ci] = t + delays[ci];
        }
        // arrival(g) = clk2q(f0) + delay(and) = 40.
        assert_eq!(arrival[r.g.index()], 40);

        let spec = FrameSpec::new(
            "loc",
            vec![CycleSpec::pulsing(&[0]), CycleSpec::pulsing(&[0])],
        )
        .hold_pi(true)
        .observe_po(false);
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::Zero, Logic::X];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p]);
        let fault = Fault::transition(FaultSite::Output(r.g), Polarity::P0);

        // Untimed and timed gradings produce the same mask.
        let mut fsim = FaultSim::new(&m);
        let untimed = fsim.detect(&spec, &good, fault);
        assert_eq!(fsim.last_path_ps(), 0, "no view attached: no path");
        fsim.attach_timing(std::sync::Arc::new(crate::SimTiming::new(
            delays.clone(),
            arrival.clone(),
        )));
        let timed = fsim.detect(&spec, &good, fault);
        assert_eq!(untimed, timed, "timing must not change the mask");
        // The diff launches at arrival(g)=40 and is captured straight
        // into f1's D: the recorded path is 40 ps.
        assert_eq!(fsim.last_path_ps(), 40);
        assert_eq!(fsim.kernel_stats().timed_faults, 1);

        // Undetected fault: no path recorded.
        let stf = Fault::transition(FaultSite::Output(r.g), Polarity::P1);
        assert_eq!(fsim.detect(&spec, &good, stf), 0);
        assert_eq!(fsim.last_path_ps(), 0);

        // Detaching restores the untimed behaviour.
        fsim.detach_timing();
        assert_eq!(fsim.detect(&spec, &good, fault), untimed);
        assert_eq!(fsim.last_path_ps(), 0);
    }

    #[test]
    fn timed_and_untimed_masks_agree_over_whole_universes() {
        // The timed kernel copy must compute bit-identical masks for
        // every fault of both universes, across single- and
        // multi-frame procedures.
        let r = rig();
        let m = model(&r);
        let graph = m.graph();
        let view = std::sync::Arc::new(crate::SimTiming::new(
            vec![10; graph.cells()],
            vec![25; graph.cells()],
        ));
        let specs = [
            FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]),
            FrameSpec::new(
                "loc",
                vec![CycleSpec::pulsing(&[0]), CycleSpec::pulsing(&[0])],
            )
            .hold_pi(true)
            .observe_po(false),
        ];
        let universes = [
            occ_fault::FaultUniverse::stuck_at(&r.nl),
            occ_fault::FaultUniverse::transition(&r.nl),
        ];
        for spec in &specs {
            for loads in [
                [Logic::Zero, Logic::Zero],
                [Logic::Zero, Logic::One],
                [Logic::One, Logic::Zero],
                [Logic::One, Logic::One],
            ] {
                let mut p = Pattern::empty(&m, spec, 0);
                p.scan_load = loads.to_vec();
                for f in &mut p.pis {
                    f[0] = Logic::One;
                }
                let good = simulate_good(&m, spec, &[p]);
                let mut untimed = FaultSim::new(&m);
                let mut timed = FaultSim::new(&m);
                timed.attach_timing(view.clone());
                for uni in &universes {
                    for &fault in uni.faults() {
                        assert_eq!(
                            untimed.detect(spec, &good, fault),
                            timed.detect(spec, &good, fault),
                            "fault {fault} spec {} loads {loads:?}",
                            spec.name(),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_stats_track_work() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::Zero];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p]);
        let mut fsim = FaultSim::new(&m);
        let _ = fsim.detect(
            &spec,
            &good,
            Fault::stuck(FaultSite::Output(r.g), Polarity::P0),
        );
        let stats = fsim.kernel_stats();
        assert_eq!(stats.faults_graded, 1);
        assert_eq!(stats.cells, r.nl.len());
        assert!(stats.events > 0, "propagation produced no events");
    }

    #[test]
    fn detect_response_matches_detect_and_explains_bits() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::One, Logic::Zero];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p]);
        let mut fsim = FaultSim::new(&m);
        let mut resp = ScanResponse::new();
        for fault in [
            Fault::stuck(FaultSite::Output(r.g), Polarity::P0),
            Fault::stuck(FaultSite::Output(r.g), Polarity::P1),
            Fault::stuck(FaultSite::Output(r.d_pi), Polarity::P0),
            Fault::stuck(FaultSite::Output(r.f1), Polarity::P0),
        ] {
            let det = fsim.detect_response(&spec, &good, fault, &mut resp);
            let mut plain = FaultSim::new(&m);
            assert_eq!(
                det,
                plain.detect(&spec, &good, fault),
                "mask must match detect"
            );
            assert_eq!(det, resp.detect);
            let or = resp.diff.iter().fold(resp.po, |a, &d| a | d);
            assert_eq!(det, or, "detect must equal po | OR(chain diffs)");
        }
    }

    #[test]
    fn detect_response_zeroes_after_cone_pruned_fault() {
        // PO-only observable fault under a masked-PO spec is cone
        // pruned, which leaves the kernel scratch stale — the response
        // must still come back zeroed.
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let f0 = b.sdff(d, clk, se, si);
        let g = b.not(f0);
        b.output("q", g);
        let nl = b.finish().unwrap();
        let mut binding = ClockBinding::new();
        binding.add_domain("a", clk);
        binding.constrain(se, Logic::Zero);
        binding.mask(si);
        let m = CaptureModel::new(&nl, binding).unwrap();
        let masked = FrameSpec::new("m", vec![CycleSpec::pulsing(&[0])]).observe_po(false);
        let mut p = Pattern::empty(&m, &masked, 0);
        p.scan_load = vec![Logic::One];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &masked, &[p]);
        let mut fsim = FaultSim::new(&m);
        let mut resp = ScanResponse::new();
        // Populates the carried faulty state with a real scan diff...
        let det = fsim.detect_response(
            &masked,
            &good,
            Fault::stuck(FaultSite::Output(d), Polarity::P0),
            &mut resp,
        );
        assert_eq!(det, 1);
        assert_eq!(resp.diff[0], 1);
        // ...which must not leak into the next, cone-pruned fault.
        let det = fsim.detect_response(
            &masked,
            &good,
            Fault::stuck(FaultSite::Output(g), Polarity::P1),
            &mut resp,
        );
        assert_eq!(det, 0);
        assert_eq!(resp.detect, 0);
        assert_eq!(resp.po, 0);
        assert!(resp.diff.iter().all(|&v| v == 0));
    }

    #[test]
    fn detect_response_zeroes_after_launchless_transition() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new(
            "loc",
            vec![CycleSpec::pulsing(&[0]), CycleSpec::pulsing(&[0])],
        )
        .hold_pi(true)
        .observe_po(false);
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::Zero, Logic::X];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p]);
        let mut fsim = FaultSim::new(&m);
        let mut resp = ScanResponse::new();
        let str_fault = Fault::transition(FaultSite::Output(r.g), Polarity::P0);
        assert_eq!(fsim.detect_response(&spec, &good, str_fault, &mut resp), 1);
        assert_eq!(resp.detect, 1);
        // Slow-to-fall has no 1->0 launch here: early return, zeroed.
        let stf_fault = Fault::transition(FaultSite::Output(r.g), Polarity::P1);
        assert_eq!(fsim.detect_response(&spec, &good, stf_fault, &mut resp), 0);
        assert_eq!(resp.detect, 0);
        assert_eq!(resp.po, 0);
        assert!(resp.diff.iter().all(|&v| v == 0));
    }

    #[test]
    fn detect_response_reports_unload_x_positions() {
        let r = rig();
        let m = model(&r);
        let spec = FrameSpec::new("sa", vec![CycleSpec::pulsing(&[0])]);
        // f0 = X -> g = X -> f1 unloads X in the good machine: no
        // definite diff can ever fire at that position, and the
        // response must flag it so a compactor treats it as unknown.
        let mut p = Pattern::empty(&m, &spec, 0);
        p.scan_load = vec![Logic::X, Logic::Zero];
        p.pis[0] = vec![Logic::One];
        let good = simulate_good(&m, &spec, &[p]);
        let mut fsim = FaultSim::new(&m);
        let mut resp = ScanResponse::new();
        let det = fsim.detect_response(
            &spec,
            &good,
            Fault::stuck(FaultSite::Output(r.g), Polarity::P0),
            &mut resp,
        );
        assert_eq!(det, 0);
        assert_eq!(resp.good_x[1], 1, "good-machine X at the f1 unload");
        assert!(resp.diff.iter().all(|&v| v == 0));
    }
}
