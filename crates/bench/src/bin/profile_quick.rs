//! Quick profiling helper for experiment runtimes.
use occ_bench::{run_experiment, ExperimentId, Table1Options};
use occ_flow::{EngineChoice, Stage};
use occ_soc::{generate, SocConfig};
use std::time::Instant;

fn main() {
    let cfg = SocConfig::tiny(1);
    let t0 = Instant::now();
    let soc = generate(&cfg);
    println!("gen: {:?} cells={}", t0.elapsed(), soc.netlist().len());
    let opts = Table1Options {
        flops_per_domain: 24,
        engine: EngineChoice::Auto,
        ..Table1Options::default()
    };
    for id in [ExperimentId::A, ExperimentId::B, ExperimentId::C] {
        let row = run_experiment(&soc, id, &opts).expect("tiny SOC flows validate");
        let stats = row.report.stats();
        println!(
            "{id}: {:.3}s (atpg {:.3}s) cov={:.2}% eff={:.2}% pats={} targeted={} \
             podem_calls={} aborted={} fsim_batches={}",
            row.seconds,
            row.report.stage_seconds(Stage::Atpg),
            row.coverage_pct,
            row.efficiency_pct,
            row.patterns,
            stats.targeted,
            stats.podem_calls,
            stats.aborted_calls,
            stats.fsim_batches
        );
    }
}
