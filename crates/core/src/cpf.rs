//! The Clock Pulse Filter (CPF) — the paper's Figure 3.
//!
//! The CPF is an add-on block between the PLL and a domain's clock
//! tree. Port behaviour (paper §3):
//!
//! * while `scan_en` is 1, `scan_clk` is connected through to
//!   `clk_out` (slow external shifting);
//! * when `scan_en` falls and a single `scan_clk` trigger pulse is
//!   applied, a 1 is latched by the trigger flop and shifted through a
//!   five-bit register clocked by `pll_clk`; after three PLL cycles the
//!   window decode asserts the clock-gating-cell enable for exactly two
//!   cycles, so **exactly two** at-speed pulses reach `clk_out`;
//! * raising `scan_en` again clears the trigger and shift register
//!   (re-arming the filter) and reconnects `scan_clk`.
//!
//! The gate-level block consists of **ten standard digital logic
//! gates**, matching the paper's area claim: six flops (trigger + 5-bit
//! shift register), an inverter and AND for the window decode, the CGC
//! and the output mux.

use occ_netlist::{BuildError, CellId, Netlist, NetlistBuilder};

/// Configuration of a generated CPF instance.
#[derive(Debug, Clone)]
pub struct CpfConfig {
    /// Instance prefix used for cell names (`"cpf0"` → `cpf0_trigger`).
    pub prefix: String,
    /// Length of the shift register (the paper uses 5).
    pub shift_register_bits: usize,
    /// Tap index whose rise opens the window (the paper: stage 3, i.e.
    /// index 2 → three-PLL-cycle latency).
    pub open_tap: usize,
    /// Tap index whose rise closes the window (the paper: stage 5,
    /// index 4 → a two-cycle window → two pulses).
    pub close_tap: usize,
    /// Adds the "additional logic, not shown in Figure 3" that forces
    /// the CGC enabled in functional mode (adds a `test_mode` port and
    /// two gates).
    pub functional_enable: bool,
}

impl CpfConfig {
    /// The exact Figure 3 configuration: 5-bit register, window open at
    /// stage 3, closed at stage 5 (⇒ 2 pulses after a 3-cycle latency),
    /// no functional-mode logic.
    pub fn paper() -> Self {
        CpfConfig {
            prefix: "cpf".to_owned(),
            shift_register_bits: 5,
            open_tap: 2,
            close_tap: 4,
            functional_enable: false,
        }
    }

    /// Paper configuration with a custom instance prefix.
    pub fn paper_named(prefix: &str) -> Self {
        CpfConfig {
            prefix: prefix.to_owned(),
            ..CpfConfig::paper()
        }
    }

    /// Number of at-speed pulses this configuration releases.
    pub fn pulse_count(&self) -> usize {
        self.close_tap - self.open_tap
    }

    /// PLL cycles from the trigger to the first released pulse.
    pub fn latency_cycles(&self) -> usize {
        self.open_tap + 1
    }

    fn validate(&self) {
        assert!(self.shift_register_bits >= 2, "shift register too short");
        assert!(
            self.open_tap < self.close_tap && self.close_tap < self.shift_register_bits,
            "window taps must satisfy open < close < length"
        );
    }
}

/// The port cells of a CPF instance inside a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpfPorts {
    /// High-speed PLL clock input.
    pub pll_clk: CellId,
    /// Slow external scan clock input.
    pub scan_clk: CellId,
    /// Scan enable input (1 = shift mode, clears the filter).
    pub scan_en: CellId,
    /// Optional test-mode input (present when `functional_enable`).
    pub test_mode: Option<CellId>,
    /// The gated clock output driving the domain clock tree.
    pub clk_out: CellId,
    /// The internal window-decode signal (`pulse_enable` in Figure 4),
    /// exposed for waveform inspection.
    pub pulse_enable: CellId,
}

/// A standalone generated CPF block with its netlist.
///
/// # Examples
///
/// ```
/// use occ_core::{ClockPulseFilter, CpfConfig};
/// let cpf = ClockPulseFilter::generate(&CpfConfig::paper());
/// assert_eq!(cpf.netlist().logic_gate_count(), 10);
/// assert_eq!(cpf.config().pulse_count(), 2);
/// assert_eq!(cpf.config().latency_cycles(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ClockPulseFilter {
    config: CpfConfig,
    netlist: Netlist,
    ports: CpfPorts,
}

impl ClockPulseFilter {
    /// Generates the CPF as a standalone netlist with its own ports.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent window configuration.
    pub fn generate(config: &CpfConfig) -> Self {
        config.validate();
        let mut b = NetlistBuilder::new(&format!("{}_cpf", config.prefix));
        let pll_clk = b.input("pll_clk");
        let scan_clk = b.input("scan_clk");
        let scan_en = b.input("scan_en");
        let test_mode = config.functional_enable.then(|| b.input("test_mode"));
        let ports = Self::build_into(config, &mut b, pll_clk, scan_clk, scan_en, test_mode);
        b.output("clk_out", ports.clk_out);
        let netlist = b.finish().expect("generated CPF must validate");
        ClockPulseFilter {
            config: config.clone(),
            netlist,
            ports,
        }
    }

    /// Instantiates the CPF gates into an existing builder (device
    /// assembly), wiring them to the given signals. Returns the ports
    /// (with `clk_out` pointing at the output mux).
    pub fn attach(
        config: &CpfConfig,
        b: &mut NetlistBuilder,
        pll_clk: CellId,
        scan_clk: CellId,
        scan_en: CellId,
        test_mode: Option<CellId>,
    ) -> CpfPorts {
        config.validate();
        Self::build_into(config, b, pll_clk, scan_clk, scan_en, test_mode)
    }

    fn build_into(
        config: &CpfConfig,
        b: &mut NetlistBuilder,
        pll_clk: CellId,
        scan_clk: CellId,
        scan_en: CellId,
        test_mode: Option<CellId>,
    ) -> CpfPorts {
        let p = &config.prefix;
        // Trigger flop: D tied high, clocked by scan_clk, cleared by
        // scan_en (active high) — "a single scan-clk pulse generates a 1
        // that is latched by the flip-flop".
        let one = b.tie1();
        let trigger = b.dff_rh(one, scan_clk, scan_en);
        b.name_cell(trigger, &format!("{p}_trigger"));

        // Shift register clocked by the PLL, cleared by scan_en. The
        // trigger output shifts in, forming a thermometer code.
        let mut stages = Vec::with_capacity(config.shift_register_bits);
        let mut prev = trigger;
        for i in 0..config.shift_register_bits {
            let ff = b.dff_rh(prev, pll_clk, scan_en);
            b.name_cell(ff, &format!("{p}_sr{i}"));
            stages.push(ff);
            prev = ff;
        }

        // Window decode: open_tap reached AND close_tap not yet reached.
        let close_n = b.not(stages[config.close_tap]);
        b.name_cell(close_n, &format!("{p}_close_n"));
        let pulse_enable = b.and2(stages[config.open_tap], close_n);
        b.name_cell(pulse_enable, &format!("{p}_pulse_enable"));

        // Optional functional-mode force ("additional logic, not shown
        // in Figure 3, ensures that the CGC is always enabled in
        // functional mode").
        let cgc_en = match test_mode {
            Some(tm) => {
                let tm_n = b.not(tm);
                b.name_cell(tm_n, &format!("{p}_func_n"));
                let en = b.or2(pulse_enable, tm_n);
                b.name_cell(en, &format!("{p}_cgc_en"));
                en
            }
            None => pulse_enable,
        };

        // Glitch-free gate + output mux: scan_en selects scan_clk.
        let gated = b.clock_gate(pll_clk, cgc_en);
        b.name_cell(gated, &format!("{p}_cgc"));
        let clk_out = b.mux2(scan_en, gated, scan_clk);
        b.name_cell(clk_out, &format!("{p}_clk_out"));

        CpfPorts {
            pll_clk,
            scan_clk,
            scan_en,
            test_mode,
            clk_out,
            pulse_enable,
        }
    }

    /// The configuration this block was generated from.
    pub fn config(&self) -> &CpfConfig {
        &self.config
    }

    /// The standalone netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The port map.
    pub fn ports(&self) -> &CpfPorts {
        &self.ports
    }

    /// Structural Verilog of the block (the logic-design deliverable).
    pub fn to_verilog(&self) -> String {
        self.netlist.to_verilog()
    }

    /// Generates and validates in one step (alias used by tools).
    ///
    /// # Errors
    ///
    /// Never fails for valid configs; the signature exists so tools can
    /// treat generation uniformly with other netlist producers.
    pub fn try_generate(config: &CpfConfig) -> Result<Self, BuildError> {
        Ok(Self::generate(config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_netlist::CellKind;

    #[test]
    fn paper_cpf_is_exactly_ten_gates() {
        let cpf = ClockPulseFilter::generate(&CpfConfig::paper());
        // 6 flops + NOT + AND + CGC + MUX = 10 "standard digital logic
        // gates" — the paper's area claim.
        assert_eq!(cpf.netlist().logic_gate_count(), 10);
        let stats = occ_netlist::NetlistStats::of(cpf.netlist());
        assert_eq!(stats.flops, 6);
        assert_eq!(stats.clock_gates, 1);
    }

    #[test]
    fn functional_enable_adds_two_gates() {
        let cfg = CpfConfig {
            functional_enable: true,
            ..CpfConfig::paper()
        };
        let cpf = ClockPulseFilter::generate(&cfg);
        assert_eq!(cpf.netlist().logic_gate_count(), 12);
        assert!(cpf.ports().test_mode.is_some());
    }

    #[test]
    fn window_timing_metadata() {
        let cfg = CpfConfig::paper();
        assert_eq!(cfg.pulse_count(), 2);
        assert_eq!(cfg.latency_cycles(), 3);
    }

    #[test]
    fn shift_register_is_chained_and_cleared_by_scan_en() {
        let cpf = ClockPulseFilter::generate(&CpfConfig::paper());
        let nl = cpf.netlist();
        let scan_en = cpf.ports().scan_en;
        for i in 0..5 {
            let ff = nl.find(&format!("cpf_sr{i}")).unwrap();
            let cell = nl.cell(ff);
            assert_eq!(cell.kind(), CellKind::DffRh);
            assert_eq!(cell.reset(), Some(scan_en));
            if i > 0 {
                let prev = nl.find(&format!("cpf_sr{}", i - 1)).unwrap();
                assert_eq!(cell.flop_d(), prev);
            }
        }
        let sr0 = nl.find("cpf_sr0").unwrap();
        let trig = nl.find("cpf_trigger").unwrap();
        assert_eq!(nl.cell(sr0).flop_d(), trig);
    }

    #[test]
    fn output_mux_selects_scan_clk_in_shift_mode() {
        let cpf = ClockPulseFilter::generate(&CpfConfig::paper());
        let nl = cpf.netlist();
        let mux = nl.find("cpf_clk_out").unwrap();
        let cell = nl.cell(mux);
        assert_eq!(cell.kind(), CellKind::Mux2);
        assert_eq!(cell.inputs()[0], cpf.ports().scan_en);
        // d1 (selected when scan_en=1) must be scan_clk.
        assert_eq!(cell.inputs()[2], cpf.ports().scan_clk);
    }

    #[test]
    #[should_panic(expected = "window taps")]
    fn bad_window_rejected() {
        let cfg = CpfConfig {
            open_tap: 4,
            close_tap: 2,
            ..CpfConfig::paper()
        };
        let _ = ClockPulseFilter::generate(&cfg);
    }

    #[test]
    fn verilog_export_mentions_ports() {
        let v = ClockPulseFilter::generate(&CpfConfig::paper()).to_verilog();
        for port in ["pll_clk", "scan_clk", "scan_en", "clk_out"] {
            assert!(v.contains(port), "missing {port}");
        }
    }
}
