//! End-to-end daemon tests over a real TCP socket.
//!
//! Binds to port 0 (OS-assigned) so the suite is parallel-safe, then
//! drives the full protocol: ping, flow jobs whose served reports must
//! equal an in-process [`FlowService`] run, stats, error mapping, and
//! a clean `shutdown` handshake.

use occ_server::{request, serve, FlowService, JobSpec, Json, ServerConfig};
use occ_soc::SocConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn test_server() -> occ_server::ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_budget: 0,
    })
    .expect("bind on an ephemeral port")
}

const FLOW: &str = r#"{"op":"flow","design":{"preset":"tiny","seed":5},
    "clocking":"simple-cpf","mask_bidi":true,
    "random_patterns":32,"backtrack_limit":12}"#;

/// The equivalent of [`FLOW`] against the in-process API.
fn flow_spec() -> JobSpec {
    let mut job = JobSpec::new(SocConfig::tiny(5));
    job.clocking = occ_core::ClockingMode::SimpleCpf;
    job.mask_bidi = true;
    job.atpg.random_patterns = 32;
    job.atpg.backtrack_limit = 12;
    job
}

#[test]
fn ping_round_trips() {
    let mut server = test_server();
    let response = request(server.addr(), r#"{"op":"ping"}"#).unwrap();
    let v = Json::parse(&response).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("op").and_then(Json::as_str), Some("ping"));
    server.shutdown();
}

#[test]
fn served_flow_report_matches_in_process_run() {
    let mut server = test_server();
    // Normalize newlines: requests are one line on the wire.
    let line = FLOW.replace('\n', " ");
    let response = request(server.addr(), &line).unwrap();
    let served = Json::parse(&response).unwrap();
    assert_eq!(
        served.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    assert_eq!(served.get("warm").and_then(Json::as_bool), Some(false));

    let in_process = FlowService::new(0);
    let outcome = in_process.submit(&flow_spec()).unwrap();
    let direct = Json::parse(&outcome.report.as_ref().unwrap().to_json()).unwrap();

    // The served report and the in-process report are the same
    // document once wall-clock members are stripped — the daemon is a
    // transport, not a different pipeline.
    let volatile = ["stages", "total_seconds"];
    assert_eq!(
        served
            .get("report")
            .expect("flow response carries a report")
            .clone()
            .without_keys(&volatile),
        direct.without_keys(&volatile),
    );

    // A second identical request is served warm from the daemon's
    // cache and still matches.
    let again = Json::parse(&request(server.addr(), &line).unwrap()).unwrap();
    assert_eq!(again.get("warm").and_then(Json::as_bool), Some(true));
    assert_eq!(
        again.get("report").unwrap().clone().without_keys(&volatile),
        served
            .get("report")
            .unwrap()
            .clone()
            .without_keys(&volatile),
    );

    // Stats reflect the two jobs: one design miss, one hit.
    let stats = Json::parse(&request(server.addr(), r#"{"op":"stats"}"#).unwrap()).unwrap();
    let design = stats.get("cache").unwrap().get("design").unwrap();
    assert_eq!(design.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(design.get("hits").and_then(Json::as_u64), Some(1));
    server.shutdown();
}

#[test]
fn protocol_errors_are_typed_lines() {
    let mut server = test_server();
    for (line, code) in [
        ("not json at all", "bad-request"),
        (r#"{"op":"warp"}"#, "bad-request"),
        (
            // Zero pulses parses but the flow itself rejects it — the
            // daemon must map the typed FlowError, not die.
            r#"{"op":"flow","design":{"preset":"tiny","seed":1},"clocking":"external:0"}"#,
            "unsupported-clocking",
        ),
    ] {
        let response = request(server.addr(), line).unwrap();
        let v = Json::parse(&response).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(code),
            "{line}: {response}"
        );
    }
    server.shutdown();
}

#[test]
fn one_connection_can_pipeline_requests() {
    let mut server = test_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n")
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"op\":\"ping\""), "{line}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"stats\""), "{line}");
    server.shutdown();
}

#[test]
fn concurrent_tcp_clients_get_deterministic_reports() {
    let mut server = test_server();
    let addr = server.addr();
    let line = FLOW.replace('\n', " ");
    let volatile = ["stages", "total_seconds"];

    let mut handles = Vec::new();
    for _ in 0..4 {
        let line = line.clone();
        handles.push(std::thread::spawn(move || {
            Json::parse(&request(addr, &line).unwrap())
                .unwrap()
                .get("report")
                .expect("flow response carries a report")
                .clone()
                .without_keys(&volatile)
                .to_string()
        }));
    }
    let reports: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();
    assert!(
        reports.windows(2).all(|w| w[0] == w[1]),
        "served reports diverged across concurrent clients"
    );
    server.shutdown();
}

#[test]
fn shutdown_op_stops_the_daemon() {
    let server = test_server();
    let addr = server.addr();
    let response = request(addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(response.contains("\"ok\":true"), "{response}");
    // The listener is closed (or closing): new requests must fail
    // rather than hang. Allow a brief grace for the accept thread to
    // observe the flag.
    let mut refused = false;
    for _ in 0..50 {
        match request(addr, r#"{"op":"ping"}"#) {
            Err(_) => {
                refused = true;
                break;
            }
            Ok(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    assert!(refused, "daemon kept serving after shutdown");
    // `wait` returns promptly once shut down.
    server.wait();
}
