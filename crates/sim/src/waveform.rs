//! Stimulus waveforms applied to primary inputs.

use crate::Time;
use occ_netlist::Logic;

/// A piecewise-constant stimulus: a sorted list of `(time, value)`
/// changes. The signal holds `X` before the first change.
///
/// # Examples
///
/// ```
/// use occ_sim::Waveform;
/// use occ_netlist::Logic;
///
/// let clk = Waveform::clock(100, 0, 350);
/// assert_eq!(clk.value_at(0), Logic::One);
/// assert_eq!(clk.value_at(60), Logic::Zero);
/// assert_eq!(clk.value_at(100), Logic::One);
///
/// let sig = Waveform::steps(&[(0, Logic::Zero), (40, Logic::One)]);
/// assert_eq!(sig.value_at(39), Logic::Zero);
/// assert_eq!(sig.value_at(40), Logic::One);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Waveform {
    changes: Vec<(Time, Logic)>,
}

impl Waveform {
    /// A waveform holding a constant value from time zero.
    pub fn constant(value: Logic) -> Self {
        Waveform {
            changes: vec![(0, value)],
        }
    }

    /// An explicit list of `(time, value)` steps.
    ///
    /// # Panics
    ///
    /// Panics if the times are not strictly increasing.
    pub fn steps(steps: &[(Time, Logic)]) -> Self {
        for pair in steps.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "waveform steps must be strictly increasing in time"
            );
        }
        Waveform {
            changes: steps.to_vec(),
        }
    }

    /// A 50 %-duty clock: rising edges at `first_rise + k*period`,
    /// falling edges half a period later, until (not including) `until`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or odd (half-period must be exact).
    pub fn clock(period: Time, first_rise: Time, until: Time) -> Self {
        assert!(period > 0, "clock period must be positive");
        assert!(period.is_multiple_of(2), "clock period must be even");
        let mut changes = vec![(0, Logic::Zero)];
        if first_rise == 0 {
            changes.clear();
        }
        let mut t = first_rise;
        while t < until {
            changes.push((t, Logic::One));
            let fall = t + period / 2;
            if fall < until {
                changes.push((fall, Logic::Zero));
            }
            t += period;
        }
        Waveform { changes }
    }

    /// A single positive pulse `[rise, fall)`, low elsewhere from t=0.
    ///
    /// # Panics
    ///
    /// Panics unless `rise < fall`.
    pub fn pulse(rise: Time, fall: Time) -> Self {
        assert!(rise < fall, "pulse must rise before it falls");
        let mut changes = Vec::new();
        if rise > 0 {
            changes.push((0, Logic::Zero));
        }
        changes.push((rise, Logic::One));
        changes.push((fall, Logic::Zero));
        Waveform { changes }
    }

    /// A burst of `count` positive pulses of the given period starting at
    /// `first_rise` (50 % duty), low elsewhere from t=0.
    pub fn pulse_train(period: Time, first_rise: Time, count: usize) -> Self {
        assert!(
            period > 0 && period.is_multiple_of(2),
            "period must be even, nonzero"
        );
        let mut changes = Vec::new();
        if first_rise > 0 {
            changes.push((0, Logic::Zero));
        }
        let mut t = first_rise;
        for _ in 0..count {
            changes.push((t, Logic::One));
            changes.push((t + period / 2, Logic::Zero));
            t += period;
        }
        Waveform { changes }
    }

    /// The scheduled changes, sorted by time.
    pub fn changes(&self) -> &[(Time, Logic)] {
        &self.changes
    }

    /// The driven value at `time` (`X` before the first change).
    pub fn value_at(&self, time: Time) -> Logic {
        match self.changes.partition_point(|&(t, _)| t <= time) {
            0 => Logic::X,
            n => self.changes[n - 1].1,
        }
    }

    /// Appends another waveform's changes, offset by `at`. Changes of
    /// `other` must start at or after the last change of `self` once
    /// shifted.
    ///
    /// # Panics
    ///
    /// Panics if the concatenation would go backwards in time.
    pub fn then(mut self, at: Time, other: &Waveform) -> Self {
        let last = self.changes.last().map(|&(t, _)| t);
        for &(t, v) in &other.changes {
            let nt = at + t;
            if let Some(l) = last {
                assert!(nt > l, "appended waveform overlaps existing changes");
            }
            self.changes.push((nt, v));
        }
        self.changes.dedup_by(|a, b| {
            if a.1 == b.1 {
                // merge identical consecutive values
                true
            } else {
                false
            }
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_edges() {
        // period 100 => high for 50 from each rise at 50, 150, 250.
        let w = Waveform::clock(100, 50, 300);
        assert_eq!(w.value_at(0), Logic::Zero);
        assert_eq!(w.value_at(50), Logic::One);
        assert_eq!(w.value_at(99), Logic::One);
        assert_eq!(w.value_at(100), Logic::Zero);
        assert_eq!(w.value_at(150), Logic::One);
        assert_eq!(w.value_at(200), Logic::Zero);
        assert_eq!(w.value_at(250), Logic::One);
        // The fall at 300 is outside the window, so the wave stays high.
        assert_eq!(w.value_at(299), Logic::One);
    }

    #[test]
    fn clock_from_zero_has_no_leading_low() {
        let w = Waveform::clock(10, 0, 20);
        assert_eq!(w.value_at(0), Logic::One);
    }

    #[test]
    fn pulse_train_counts() {
        let w = Waveform::pulse_train(10, 5, 3);
        let rises = w
            .changes()
            .iter()
            .filter(|&&(_, v)| v == Logic::One)
            .count();
        assert_eq!(rises, 3);
        assert_eq!(w.value_at(4), Logic::Zero);
        assert_eq!(w.value_at(5), Logic::One);
        // Pulses: [5,10), [15,20), [25,30).
        assert_eq!(w.value_at(12), Logic::Zero);
        assert_eq!(w.value_at(26), Logic::One);
        assert_eq!(w.value_at(30), Logic::Zero);
    }

    #[test]
    fn before_first_change_is_x() {
        let w = Waveform::steps(&[(10, Logic::One)]);
        assert_eq!(w.value_at(9), Logic::X);
        assert_eq!(w.value_at(10), Logic::One);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_steps_panic() {
        let _ = Waveform::steps(&[(10, Logic::One), (10, Logic::Zero)]);
    }

    #[test]
    fn then_concatenates() {
        let a = Waveform::pulse(0, 10);
        let b = Waveform::pulse(5, 15);
        let w = a.then(100, &b);
        assert_eq!(w.value_at(50), Logic::Zero);
        assert_eq!(w.value_at(106), Logic::One);
        assert_eq!(w.value_at(116), Logic::Zero);
    }
}
