//! Flow-service throughput benchmark and regression gate — the
//! caching-side sibling of `fsim_bench` / `atpg_bench` /
//! `timing_bench`.
//!
//! Hammers an in-process [`occ_server::FlowService`] with analyze jobs
//! on the seeded Table-1 SOC family from N concurrent client threads,
//! cold (every design compiles: generate + levelize + compile the
//! simulation graph) and warm (every artifact served as an `Arc` clone
//! out of the content-hash cache), then runs one full flow job cold vs
//! warm to record the compile stages a warm flow skips. Results land
//! in `BENCH_server.json` so the cache's value is tracked in-repo.
//!
//! A fourth, *degraded-mode* phase then stands up the real TCP daemon
//! with ~10% of jobs hit by a seeded injected worker panic
//! (`worker.job` site of [`occ_server::FaultPlan`]) and hammers it
//! over the wire: every request must still draw a response line —
//! failed jobs as typed `internal` errors, the rest correct — so the
//! row records degraded throughput *and* availability.
//!
//! Between the warm flow and the degraded phase, an *observability
//! overhead* phase re-runs the warm flow job with per-job span
//! recording off vs on (`JobSpec::trace`), as mirrored quads of four
//! adjacent jobs; each quad yields one locally controlled traced/
//! untraced ratio and the gate takes the median over quads, so
//! machine-load swings, frequency windows and position effects cancel
//! instead of landing on one mode. Tracing is built to be effectively
//! free, and the row records the median overhead plus both peak
//! throughputs so the claim is checked on every run.
//!
//! ```text
//! server_bench [--flops N] [--clients N] [--designs M] [--rounds R]
//!              [--flow-flops N] [--degraded-jobs N]
//!              [--out PATH] [--check BASELINE.json]
//! ```
//!
//! Five gates:
//!
//! * **Warm correctness** (always on, hardware-independent): the warm
//!   flow job must report every artifact as a cache hit — a warm job
//!   that recompiles anything is a cache-key bug, not a perf problem.
//! * **Hard floor**: warm jobs/sec must be at least
//!   [`WARM_FLOOR`]x cold — the ratio cancels machine speed (both
//!   sides ran on this machine); in practice it is orders of magnitude
//!   above the floor. `SERVER_BENCH_SKIP_CHECK` bypasses it.
//! * **Availability** (always on, hardware-independent): under the
//!   injected panic storm, every degraded-mode request must be
//!   answered ([`AVAILABILITY_FLOOR`]), and at least
//!   [`DEGRADED_OK_FLOOR`] of them successfully — a daemon that dies,
//!   hangs, or sheds healthy jobs under ~10% worker failure is broken
//!   regardless of machine speed.
//! * **Observability overhead** (always on): warm flow jobs with
//!   per-job tracing on must run within [`OBS_OVERHEAD_CEILING_PCT`]
//!   of the untraced rate — span recording growing a real cost is a
//!   regression in the recorder, not a machine-speed question.
//! * **Regression** (with `--check`): the warm/cold ratio must not
//!   drop more than 20% below the committed baseline.
//!   `SERVER_BENCH_SKIP_CHECK` bypasses it.

use occ_atpg::AtpgOptions;
use occ_core::ClockingMode;
use occ_server::{
    request, serve, FaultAction, FaultPlan, FlowService, JobSpec, ServerConfig, Trigger,
};
use occ_soc::SocConfig;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The Table-1 SOC seed (DATE'05 in Munich) the designs derive from.
const TABLE1_SEED: u64 = 20050307;

/// Minimum warm-over-cold jobs/sec ratio.
const WARM_FLOOR: f64 = 2.0;

/// Allowed ratio drop vs the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Injected worker-panic probability for the degraded-mode phase.
const DEGRADED_PANIC_P: f64 = 0.10;

/// Seed of the degraded phase's fault plan — fixed, so the injected
/// failure sequence is reproducible run to run.
const DEGRADED_SEED: u64 = 0xD05;

/// Every degraded-mode request must be answered.
const AVAILABILITY_FLOOR: f64 = 0.999;

/// Minimum fraction of degraded-mode jobs that succeed (expected
/// `1 - DEGRADED_PANIC_P`; the floor leaves ~10 sigma of slack).
const DEGRADED_OK_FLOOR: f64 = 0.75;

/// Maximum slowdown per-job span recording may cost warm flow jobs,
/// read at the lower quartile of the per-quad ratios (see
/// [`OBS_QUADS`] for why that statistic).
const OBS_OVERHEAD_CEILING_PCT: f64 = 5.0;

/// Mirrored untraced/traced quads for the observability-overhead
/// gate. Warm job times on a shared runner swing 20%+ with machine
/// load and frequency scaling, so comparing aggregate (or even floor)
/// times across modes is noise-dominated. Each quad instead yields
/// one locally controlled traced/untraced ratio — its four jobs are
/// adjacent in time, the mirrored order cancels linear drift, and
/// alternating which mode sits in the middle cancels the position
/// effect. The row reports the *median* ratio; the gate reads the
/// *lower quartile*, because a real recorder regression shifts the
/// whole distribution while a host-load episode only inflates the
/// upper tail.
const OBS_QUADS: usize = 12;

struct Options {
    flops: usize,
    clients: usize,
    designs: usize,
    rounds: usize,
    flow_flops: usize,
    degraded_jobs: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        flops: 120,
        clients: 4,
        designs: 32,
        rounds: 3_125,
        flow_flops: 48,
        degraded_jobs: 400,
        out: "BENCH_server.json".to_owned(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        let positive = |name: &str, v: String| -> Result<usize, String> {
            let n: usize = v.parse().map_err(|e| format!("{name}: {e}"))?;
            if n == 0 {
                return Err(format!("{name} must be positive"));
            }
            Ok(n)
        };
        match arg.as_str() {
            "--flops" => opts.flops = positive("--flops", value("--flops")?)?,
            "--clients" => opts.clients = positive("--clients", value("--clients")?)?,
            "--designs" => opts.designs = positive("--designs", value("--designs")?)?,
            "--rounds" => opts.rounds = positive("--rounds", value("--rounds")?)?,
            "--flow-flops" => opts.flow_flops = positive("--flow-flops", value("--flow-flops")?)?,
            "--degraded-jobs" => {
                opts.degraded_jobs = positive("--degraded-jobs", value("--degraded-jobs")?)?;
            }
            "--out" => opts.out = value("--out")?,
            "--check" => opts.check = Some(value("--check")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

/// Runs `jobs(i)` for `i in 0..total` across `clients` threads pulling
/// work from a shared index; returns elapsed seconds.
fn drive_clients(
    service: &Arc<FlowService>,
    clients: usize,
    total: usize,
    job_of: impl Fn(usize) -> JobSpec + Send + Sync,
) -> f64 {
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                service
                    .submit(&job_of(i))
                    .expect("bench jobs always validate");
            });
        }
    });
    t0.elapsed().as_secs_f64().max(1e-9)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("server_bench: {e}");
            return ExitCode::from(2);
        }
    };
    let skip = std::env::var("SERVER_BENCH_SKIP_CHECK").is_ok_and(|v| !v.is_empty());

    // Analyze jobs over the Table-1 SOC family: seed i derives design
    // i, so the cold phase compiles `designs` distinct netlists and
    // the warm phase replays the same hashes round-robin.
    let design_of = |i: usize| {
        let mut job = JobSpec::new(SocConfig::paper_like(
            TABLE1_SEED + (i % opts.designs) as u64,
            opts.flops,
        ));
        job.analyze_only = true;
        job
    };
    let service = Arc::new(FlowService::new(0));
    let probe = service
        .submit(&design_of(0))
        .expect("Table-1 SOC always analyzes");
    println!(
        "server_bench: {} — {} cells, {} clients, {} designs",
        probe.analysis.design, probe.analysis.cells, opts.clients, opts.designs,
    );

    // Cold: a fresh service per measurement (the probe above warmed
    // the first entry of `service`).
    let cold_service = Arc::new(FlowService::new(0));
    let cold_secs = drive_clients(&cold_service, opts.clients, opts.designs, design_of);
    let stats = cold_service.cache_stats();
    if stats.design.misses != opts.designs as u64 {
        eprintln!(
            "server_bench: FATAL — cold phase expected {} design compiles, \
             cache counted {} (build dedup broken?)",
            opts.designs, stats.design.misses
        );
        return ExitCode::FAILURE;
    }
    let cold_jobs = opts.designs;
    let cold_jps = cold_jobs as f64 / cold_secs;

    // Warm: replay the same designs round-robin on the now-hot cache.
    let warm_jobs = opts.designs * opts.rounds;
    let warm_secs = drive_clients(&cold_service, opts.clients, warm_jobs, design_of);
    let warm_jps = warm_jobs as f64 / warm_secs;
    let ratio = warm_jps / cold_jps.max(1e-9);
    println!(
        "  cold analyze {cold_jps:>10.1} jobs/s ({cold_jobs} jobs, {cold_secs:.3}s)\n  \
         warm analyze {warm_jps:>10.1} jobs/s ({warm_jobs} jobs, {warm_secs:.3}s)\n  \
         warm over cold: {ratio:.1}x",
    );

    // One full flow job cold vs warm: the warm run must hit every
    // artifact (graph, procedures, delay table) — i.e. run zero
    // compile stages. Timings are informational; the hit flags gate.
    let flow_service = FlowService::new(0);
    let flow_job = {
        let mut job = JobSpec::new(SocConfig::paper_like(TABLE1_SEED, opts.flow_flops));
        job.clocking = ClockingMode::SimpleCpf;
        job.mask_bidi = true;
        job.timing = true;
        job.atpg = AtpgOptions {
            random_patterns: 64,
            backtrack_limit: 16,
            ..AtpgOptions::default()
        };
        job
    };
    let t0 = Instant::now();
    let cold_flow = flow_service
        .submit(&flow_job)
        .expect("Table-1 flow always validates");
    let flow_cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let warm_flow = flow_service
        .submit(&flow_job)
        .expect("Table-1 flow always validates");
    let flow_warm_secs = t0.elapsed().as_secs_f64();
    println!(
        "  flow job: cold {flow_cold_secs:.2}s, warm {flow_warm_secs:.2}s \
         (warm cache: design {}, procedures {:?}, delays {:?})",
        warm_flow.cache.design_hit, warm_flow.cache.procedures_hit, warm_flow.cache.delays_hit,
    );
    if !warm_flow.warm {
        eprintln!(
            "server_bench: FATAL — the warm flow job recompiled an artifact \
             ({:?}); the content-hash cache key is broken",
            warm_flow.cache
        );
        return ExitCode::FAILURE;
    }
    drop(cold_flow);

    // Observability overhead: the same warm flow job with per-job
    // span recording off vs on, run as mirrored untraced/traced/
    // traced/untraced quads. Each quad yields one locally controlled
    // ratio; the gate takes the median over all quads (see
    // [`OBS_QUADS`]). A warm-up pair settles caches before measuring.
    let traced_job = {
        let mut job = flow_job.clone();
        job.trace = true;
        job
    };
    let time_one = |job: &JobSpec| {
        let t0 = Instant::now();
        flow_service
            .submit(job)
            .expect("Table-1 flow always validates");
        t0.elapsed().as_secs_f64().max(1e-9)
    };
    let _ = (time_one(&flow_job), time_one(&traced_job));
    let mut ratios = Vec::with_capacity(OBS_QUADS);
    let mut untraced_secs = f64::INFINITY;
    let mut traced_secs = f64::INFINITY;
    for quad in 0..OBS_QUADS {
        // Alternate the quad's orientation: the middle pair of a quad
        // measures ~1% slower than the outer pair whichever mode runs
        // there (cache/thermal position effect), so half the quads put
        // each mode in the middle and the bias cancels in the median.
        let (u0, t0, t1, u1) = if quad % 2 == 0 {
            let u0 = time_one(&flow_job);
            let t0 = time_one(&traced_job);
            let t1 = time_one(&traced_job);
            let u1 = time_one(&flow_job);
            (u0, t0, t1, u1)
        } else {
            let t0 = time_one(&traced_job);
            let u0 = time_one(&flow_job);
            let u1 = time_one(&flow_job);
            let t1 = time_one(&traced_job);
            (u0, t0, t1, u1)
        };
        // Best-of-two per side inside the quad: a load spike that
        // lands on one of a side's two jobs is discarded before the
        // ratio is formed.
        ratios.push(t0.min(t1) / u0.min(u1));
        untraced_secs = untraced_secs.min(u0).min(u1);
        traced_secs = traced_secs.min(t0).min(t1);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let median_ratio = ratios[ratios.len() / 2];
    // The gate reads the lower quartile, not the median: a real
    // recorder regression shifts the whole ratio distribution — q1
    // included — while a transient host-load episode only inflates
    // the upper tail. q1 above the ceiling therefore means at least
    // three quarters of the quads ran that much slower traced, which
    // no load spike produces.
    let q1_ratio = ratios[ratios.len() / 4];
    let untraced_jps = untraced_secs.recip();
    let traced_jps = traced_secs.recip();
    let overhead_pct = (median_ratio - 1.0) * 100.0;
    let gate_pct = (q1_ratio - 1.0) * 100.0;
    println!(
        "  obs overhead: warm flow peak {untraced_jps:.2} jobs/s untraced, \
         {traced_jps:.2} jobs/s traced, overhead median {overhead_pct:+.1}% \
         / lower quartile {gate_pct:+.1}%",
    );

    // Degraded mode: the real daemon over TCP, with ~10% of jobs hit
    // by a seeded injected worker panic. One warm-up request compiles
    // the design so the row measures serving under failure, not
    // compilation.
    let faults = FaultPlan::seeded(DEGRADED_SEED).inject(
        "worker.job",
        Trigger::Probability(DEGRADED_PANIC_P),
        FaultAction::Panic("injected degraded-mode panic".into()),
    );
    // The injected panics are expected and caught at the worker seam;
    // keep their backtraces out of the bench output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let server = match serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: opts.clients,
        cache_budget: 0,
        faults: faults.clone(),
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("server_bench: cannot bind degraded-mode daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    let analyze_line = format!(
        "{{\"op\":\"analyze\",\"design\":{{\"preset\":\"paper_like\",\
         \"seed\":{TABLE1_SEED},\"flops_per_domain\":{}}}}}",
        opts.flops
    );
    // Warm-up (retried: the warm-up itself can draw an injected panic).
    let mut warmed = false;
    for _ in 0..50 {
        if request(addr, &analyze_line).is_ok_and(|r| r.contains("\"ok\":true")) {
            warmed = true;
            break;
        }
    }
    if !warmed {
        eprintln!("server_bench: FATAL — degraded-mode daemon never answered the warm-up");
        return ExitCode::FAILURE;
    }

    let answered = AtomicUsize::new(0);
    let succeeded = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..opts.clients {
            scope.spawn(|| loop {
                if next.fetch_add(1, Ordering::Relaxed) >= opts.degraded_jobs {
                    break;
                }
                if let Ok(response) = request(addr, &analyze_line) {
                    answered.fetch_add(1, Ordering::Relaxed);
                    if response.contains("\"ok\":true") {
                        succeeded.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let degraded_secs = t0.elapsed().as_secs_f64().max(1e-9);
    drop(server); // graceful drain; nothing pending by now
    std::panic::set_hook(prev_hook);

    let answered = answered.load(Ordering::Relaxed);
    let succeeded = succeeded.load(Ordering::Relaxed);
    let availability = answered as f64 / opts.degraded_jobs as f64;
    let ok_fraction = succeeded as f64 / opts.degraded_jobs as f64;
    let degraded_jps = answered as f64 / degraded_secs;
    let injected = faults.fired("worker.job");
    println!(
        "  degraded ({:.0}% injected worker panics): {degraded_jps:>8.1} jobs/s, \
         availability {availability:.3}, ok {ok_fraction:.3} \
         ({answered}/{} answered, {succeeded} ok, {injected} panics injected)",
        DEGRADED_PANIC_P * 100.0,
        opts.degraded_jobs,
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"design\":\"{}\",\"cells\":{},\"flops_per_domain\":{},\
         \"clients\":{},\"designs\":{},\
         \"analyze\":{{\"cold_jobs\":{cold_jobs},\"cold_jobs_per_sec\":{cold_jps:.1},\
         \"warm_jobs\":{warm_jobs},\"warm_jobs_per_sec\":{warm_jps:.1}}},\
         \"flow\":{{\"flops_per_domain\":{},\"cold_seconds\":{flow_cold_secs:.3},\
         \"warm_seconds\":{flow_warm_secs:.3},\"warm_all_hits\":{}}},",
        probe.analysis.design,
        probe.analysis.cells,
        opts.flops,
        opts.clients,
        opts.designs,
        opts.flow_flops,
        warm_flow.warm,
    );
    let _ = write!(
        json,
        "\"obs_overhead\":{{\"quads\":{OBS_QUADS},\
         \"untraced_jobs_per_sec\":{untraced_jps:.2},\
         \"traced_jobs_per_sec\":{traced_jps:.2},\
         \"overhead_pct\":{overhead_pct:.1},\
         \"gate_overhead_pct\":{gate_pct:.1}}},",
    );
    let _ = write!(
        json,
        "\"degraded\":{{\"jobs\":{},\"injected_panic_p\":{DEGRADED_PANIC_P},\
         \"jobs_per_sec\":{degraded_jps:.1},\"availability\":{availability:.3},\
         \"ok_fraction\":{ok_fraction:.3},\"injected_panics\":{injected}}},",
        opts.degraded_jobs,
    );
    let _ = writeln!(json, "\"warm_over_cold\":{ratio:.1}}}");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("server_bench: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("  wrote {}", opts.out);

    // Availability gates: hardware-independent, always on.
    if availability < AVAILABILITY_FLOOR {
        eprintln!(
            "server_bench: FATAL — only {availability:.3} of degraded-mode requests \
             were answered (floor {AVAILABILITY_FLOOR}); injected worker panics \
             must surface as typed errors, not dropped connections"
        );
        return ExitCode::FAILURE;
    }
    if ok_fraction < DEGRADED_OK_FLOOR {
        eprintln!(
            "server_bench: FATAL — only {ok_fraction:.3} of degraded-mode jobs \
             succeeded (floor {DEGRADED_OK_FLOOR} under {DEGRADED_PANIC_P} injected \
             panic probability); healthy jobs are being lost"
        );
        return ExitCode::FAILURE;
    }
    if injected == 0 {
        eprintln!(
            "server_bench: FATAL — the degraded-mode phase injected no panics; \
             the worker.job fault site is no longer consulted"
        );
        return ExitCode::FAILURE;
    }
    if gate_pct > OBS_OVERHEAD_CEILING_PCT {
        eprintln!(
            "server_bench: FATAL — per-job span recording slows warm flow jobs \
             by {gate_pct:.1}% at the lower quartile (median {overhead_pct:.1}%, \
             ceiling {OBS_OVERHEAD_CEILING_PCT}%); tracing must stay \
             effectively free"
        );
        return ExitCode::FAILURE;
    }

    if skip {
        println!("  perf gates skipped (SERVER_BENCH_SKIP_CHECK set)");
        return ExitCode::SUCCESS;
    }
    if ratio < WARM_FLOOR {
        eprintln!(
            "server_bench: REGRESSION — warm jobs/sec is only {ratio:.2}x cold \
             (floor {WARM_FLOOR}x; set SERVER_BENCH_SKIP_CHECK=1 to bypass)"
        );
        return ExitCode::FAILURE;
    }
    if let Some(baseline) = &opts.check {
        return check_regression(baseline, &opts, ratio);
    }
    ExitCode::SUCCESS
}

/// Compares the fresh warm/cold ratio against the committed baseline.
/// Both phases ran on this machine, so the ratio cancels machine speed
/// and trips only on a genuine caching regression.
fn check_regression(path: &str, opts: &Options, fresh_ratio: f64) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("server_bench: cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let same_config = [
        ("\"flops_per_domain\":", opts.flops),
        ("\"clients\":", opts.clients),
        ("\"designs\":", opts.designs),
    ]
    .iter()
    .all(|&(key, mine)| extract_number(&text, key).is_none_or(|b| b as usize == mine));
    if !same_config {
        println!(
            "  baseline {path} was produced with a different config — \
             regression check skipped; regenerate the baseline"
        );
        return ExitCode::SUCCESS;
    }
    let Some(base_ratio) = extract_number(&text, "\"warm_over_cold\":") else {
        eprintln!("server_bench: no warm_over_cold in baseline {path}");
        return ExitCode::FAILURE;
    };
    let floor = base_ratio * (1.0 - REGRESSION_TOLERANCE);
    println!(
        "  warm/cold ratio: fresh {fresh_ratio:.1}x vs baseline {base_ratio:.1}x \
         (floor {floor:.1}x)"
    );
    if fresh_ratio < floor {
        eprintln!(
            "server_bench: REGRESSION — the warm/cold jobs-per-second ratio \
             dropped more than {:.0}% below the committed baseline (set \
             SERVER_BENCH_SKIP_CHECK=1 to bypass on cold machines)",
            REGRESSION_TOLERANCE * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Parses the number following the first occurrence of `key`.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(key)? + key.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
