//! Named capture procedures per clocking mode — the experiment knobs of
//! Table 1.
//!
//! Every experiment (a)–(e) runs the *same* ATPG engine on the *same*
//! netlist and fault list; the only difference is the set of capture
//! procedures (and their constraint flags) the clock generation scheme
//! can physically deliver. This module encodes exactly those sets.

use occ_fsim::{CycleSpec, FrameSpec};
use occ_sim::Time;
use std::fmt;

/// The clock-generation scheme available to ATPG — one per Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockingMode {
    /// Experiments (a)/(b): a single external tester clock drives all
    /// domains; PIs/POs are fully controllable/observable; any number
    /// of initialization pulses up to `max_pulses` may be applied.
    /// This is the idealized reference, not applicable at-speed on a
    /// low-cost ATE.
    ExternalClock {
        /// Maximum capture cycles per load.
        max_pulses: usize,
    },
    /// Experiment (c): one Figure-3 CPF per domain. Exactly two at-speed
    /// pulses, one domain per scan load, POs masked, PIs held, no
    /// inter-domain tests.
    SimpleCpf,
    /// Experiment (d): enhanced CPFs — 2..=`max_pulses` pulse bursts per
    /// domain plus staggered inter-domain launch/capture pairs. POs
    /// masked, PIs held.
    EnhancedCpf {
        /// Maximum burst length (the paper: 4).
        max_pulses: usize,
    },
    /// Experiment (e): the "most flexible CPF possible" bound — a
    /// common clock for all domains with unlimited initialization, but
    /// still under ATE constraints (POs masked, PIs held).
    ConstrainedExternal {
        /// Maximum capture cycles per load.
        max_pulses: usize,
    },
}

impl ClockingMode {
    /// True when the mode's capture clocks come from the on-chip PLL
    /// and therefore run **at functional speed** (the CPF modes). The
    /// external modes clock launch and capture from the slow tester —
    /// the whole reason the paper builds on-chip clock generation: a
    /// logically identical detection through a slow capture window
    /// screens only gross delay defects.
    pub fn is_at_speed(&self) -> bool {
        matches!(
            self,
            ClockingMode::SimpleCpf | ClockingMode::EnhancedCpf { .. }
        )
    }

    /// A compact machine-readable label: `external:4`, `simple-cpf`,
    /// `enhanced-cpf:4`, `constrained-external:4`. Round-trips through
    /// [`ClockingMode::from_str`](std::str::FromStr) and is what the
    /// flow reports serialize.
    pub fn label(&self) -> String {
        match self {
            ClockingMode::ExternalClock { max_pulses } => format!("external:{max_pulses}"),
            ClockingMode::SimpleCpf => "simple-cpf".to_owned(),
            ClockingMode::EnhancedCpf { max_pulses } => format!("enhanced-cpf:{max_pulses}"),
            ClockingMode::ConstrainedExternal { max_pulses } => {
                format!("constrained-external:{max_pulses}")
            }
        }
    }
}

impl fmt::Display for ClockingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockingMode::ExternalClock { max_pulses } => {
                write!(f, "external clock (≤{max_pulses} pulses)")
            }
            ClockingMode::SimpleCpf => f.write_str("simple 2-pulse CPF"),
            ClockingMode::EnhancedCpf { max_pulses } => {
                write!(f, "enhanced CPF (≤{max_pulses} pulses, inter-domain)")
            }
            ClockingMode::ConstrainedExternal { max_pulses } => {
                write!(f, "constrained external (≤{max_pulses} pulses)")
            }
        }
    }
}

/// Error parsing a [`ClockingMode`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseClockingModeError {
    input: String,
}

impl fmt::Display for ParseClockingModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown clocking mode '{}' (expected external[:N], simple-cpf, \
             enhanced-cpf[:N] or constrained-external[:N])",
            self.input
        )
    }
}

impl std::error::Error for ParseClockingModeError {}

impl std::str::FromStr for ClockingMode {
    type Err = ParseClockingModeError;

    /// Parses the labels produced by [`ClockingMode::label`]; the
    /// `:N` pulse suffix defaults to the paper's 4 when omitted.
    ///
    /// # Examples
    ///
    /// ```
    /// use occ_core::ClockingMode;
    /// let mode: ClockingMode = "enhanced-cpf:3".parse().unwrap();
    /// assert_eq!(mode, ClockingMode::EnhancedCpf { max_pulses: 3 });
    /// assert_eq!(mode.label().parse::<ClockingMode>().unwrap(), mode);
    /// assert!("warp-drive".parse::<ClockingMode>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseClockingModeError {
            input: s.to_owned(),
        };
        let lower = s.trim().to_ascii_lowercase();
        let (base, pulses) = match lower.split_once(':') {
            Some((base, n)) => (base, Some(n.parse::<usize>().map_err(|_| err())?)),
            None => (lower.as_str(), None),
        };
        let max_pulses = pulses.unwrap_or(4);
        match base {
            "external" => Ok(ClockingMode::ExternalClock { max_pulses }),
            "simple-cpf" if pulses.is_none() => Ok(ClockingMode::SimpleCpf),
            "enhanced-cpf" => Ok(ClockingMode::EnhancedCpf { max_pulses }),
            "constrained-external" => Ok(ClockingMode::ConstrainedExternal { max_pulses }),
            _ => Err(err()),
        }
    }
}

/// Capture procedures available for **transition** ATPG under a mode.
///
/// # Examples
///
/// ```
/// use occ_core::{transition_procedures, ClockingMode};
/// // Simple CPF on a 2-domain device: one 2-pulse procedure per domain.
/// let procs = transition_procedures(ClockingMode::SimpleCpf, 2);
/// assert_eq!(procs.len(), 2);
/// assert!(procs.iter().all(|p| p.frames() == 2 && p.holds_pi() && !p.observes_po()));
/// ```
///
/// # Panics
///
/// Panics if `n_domains` is zero or a mode's `max_pulses` is below 2.
pub fn transition_procedures(mode: ClockingMode, n_domains: usize) -> Vec<FrameSpec> {
    assert!(n_domains > 0, "need at least one clock domain");
    let all: Vec<usize> = (0..n_domains).collect();
    match mode {
        ClockingMode::ExternalClock { max_pulses } => {
            assert!(max_pulses >= 2, "transition test needs launch + capture");
            (2..=max_pulses)
                .map(|n| FrameSpec::broadside(&format!("ext_{n}p"), &all, n))
                .collect()
        }
        ClockingMode::SimpleCpf => (0..n_domains)
            .map(|d| {
                FrameSpec::broadside(&format!("cpf_dom{d}_2p"), &[d], 2)
                    .hold_pi(true)
                    .observe_po(false)
            })
            .collect(),
        ClockingMode::EnhancedCpf { max_pulses } => {
            assert!(max_pulses >= 2, "transition test needs launch + capture");
            let mut procs = Vec::new();
            for d in 0..n_domains {
                for n in 2..=max_pulses {
                    procs.push(
                        FrameSpec::broadside(&format!("ecpf_dom{d}_{n}p"), &[d], n)
                            .hold_pi(true)
                            .observe_po(false),
                    );
                }
            }
            // Inter-domain: launch in one domain, capture in the other.
            for a in 0..n_domains {
                for b in 0..n_domains {
                    if a == b {
                        continue;
                    }
                    procs.push(
                        FrameSpec::new(
                            &format!("ecpf_x_{a}to{b}"),
                            vec![CycleSpec::pulsing(&[a]), CycleSpec::pulsing(&[b])],
                        )
                        .hold_pi(true)
                        .observe_po(false),
                    );
                }
            }
            procs
        }
        ClockingMode::ConstrainedExternal { max_pulses } => {
            assert!(max_pulses >= 2, "transition test needs launch + capture");
            (2..=max_pulses)
                .map(|n| {
                    FrameSpec::broadside(&format!("cext_{n}p"), &all, n)
                        .hold_pi(true)
                        .observe_po(false)
                })
                .collect()
        }
    }
}

/// Capture procedures available for **stuck-at** ATPG under a mode
/// (experiment (a) uses `ExternalClock`).
///
/// # Panics
///
/// Panics if `n_domains` is zero.
pub fn stuck_at_procedures(mode: ClockingMode, n_domains: usize) -> Vec<FrameSpec> {
    assert!(n_domains > 0, "need at least one clock domain");
    let all: Vec<usize> = (0..n_domains).collect();
    match mode {
        ClockingMode::ExternalClock { max_pulses } => (1..=max_pulses.max(1))
            .map(|n| FrameSpec::new(&format!("ext_sa_{n}p"), vec![CycleSpec::pulsing(&all); n]))
            .collect(),
        ClockingMode::SimpleCpf => (0..n_domains)
            .map(|d| {
                FrameSpec::broadside(&format!("cpf_sa_dom{d}"), &[d], 2)
                    .hold_pi(true)
                    .observe_po(false)
            })
            .collect(),
        ClockingMode::EnhancedCpf { max_pulses } => (0..n_domains)
            .flat_map(|d| {
                (2..=max_pulses.max(2))
                    .map(move |n| (d, n))
                    .collect::<Vec<_>>()
            })
            .map(|(d, n)| {
                FrameSpec::broadside(&format!("ecpf_sa_dom{d}_{n}p"), &[d], n)
                    .hold_pi(true)
                    .observe_po(false)
            })
            .collect(),
        ClockingMode::ConstrainedExternal { max_pulses } => (1..=max_pulses.max(1))
            .map(|n| {
                FrameSpec::new(&format!("cext_sa_{n}p"), vec![CycleSpec::pulsing(&all); n])
                    .hold_pi(true)
                    .observe_po(false)
            })
            .collect(),
    }
}

/// An inter-domain launch→capture pair a clocking mode exercises **at
/// functional speed**.
///
/// Derived from the mode's transition procedures: domain `launch`
/// pulses in one cycle and domain `capture` in the next, so any
/// structural path from `launch`-domain flops into `capture`-domain
/// flops is timed against the capture domain's PLL period — the
/// paper's CPF-mux correctness argument. `procedure` names one capture
/// procedure that exercises the pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtSpeedCrossing {
    /// Launching clock domain.
    pub launch: usize,
    /// Capturing clock domain.
    pub capture: usize,
    /// Name of a capture procedure exercising this pair.
    pub procedure: String,
}

/// The inter-domain launch→capture pairs a clocking mode exercises at
/// speed, derived from [`transition_procedures`]: every consecutive
/// cycle pair of every procedure where one domain launches and a
/// *different* domain captures. Non-at-speed modes return no crossings
/// — their launch→capture window is the slow tester period, so
/// cross-domain paths are never timing-hazardous.
///
/// # Examples
///
/// ```
/// use occ_core::{at_speed_crossings, ClockingMode};
/// // Simple CPF pulses one domain per load: no crossings.
/// assert!(at_speed_crossings(ClockingMode::SimpleCpf, 2).is_empty());
/// // Enhanced CPF staggers launch/capture across domains.
/// let x = at_speed_crossings(ClockingMode::EnhancedCpf { max_pulses: 4 }, 2);
/// assert_eq!(x.len(), 2);
/// assert!(x.iter().any(|c| c.launch == 0 && c.capture == 1));
/// ```
///
/// # Panics
///
/// Panics if `n_domains` is zero (as [`transition_procedures`] does).
pub fn at_speed_crossings(mode: ClockingMode, n_domains: usize) -> Vec<AtSpeedCrossing> {
    if !mode.is_at_speed() {
        return Vec::new();
    }
    let mut crossings: Vec<AtSpeedCrossing> = Vec::new();
    for spec in transition_procedures(mode, n_domains) {
        for pair in spec.cycles().windows(2) {
            for &a in &pair[0].pulses {
                for &b in &pair[1].pulses {
                    if a != b && !crossings.iter().any(|c| c.launch == a && c.capture == b) {
                        crossings.push(AtSpeedCrossing {
                            launch: a,
                            capture: b,
                            procedure: spec.name().to_owned(),
                        });
                    }
                }
            }
        }
    }
    crossings
}

/// The launch→capture window of a capture procedure under a clocking
/// mode, in picoseconds.
///
/// This is the timing axis of the paper's Table 1: the **same**
/// procedure shape (two pulses, one domain) screens completely
/// different delay-defect populations depending on where the pulses
/// come from. At-speed CPF modes deliver consecutive PLL edges, so the
/// window is the capture domain's functional period (the tightest
/// period among the domains pulsed in the capture cycle, for common-
/// clock procedures). External modes stretch launch→capture to a full
/// tester cycle: `ate_period_ps`.
///
/// Domains without a supplied period fall back to `ate_period_ps`.
///
/// # Examples
///
/// ```
/// use occ_core::{capture_window_ps, transition_procedures, ClockingMode};
///
/// let periods = [13_332, 6_666]; // 75 and 150 MHz
/// let cpf = transition_procedures(ClockingMode::SimpleCpf, 2);
/// assert_eq!(capture_window_ps(ClockingMode::SimpleCpf, &cpf[1], &periods, 40_000), 6_666);
/// let ext = transition_procedures(ClockingMode::ExternalClock { max_pulses: 2 }, 2);
/// assert_eq!(
///     capture_window_ps(ClockingMode::ExternalClock { max_pulses: 2 }, &ext[0], &periods, 40_000),
///     40_000,
/// );
/// ```
pub fn capture_window_ps(
    mode: ClockingMode,
    spec: &FrameSpec,
    domain_periods_ps: &[Time],
    ate_period_ps: Time,
) -> Time {
    if !mode.is_at_speed() {
        return ate_period_ps;
    }
    spec.cycles()
        .last()
        .map_or(&[] as &[usize], |c| c.pulses.as_slice())
        .iter()
        .map(|&d| domain_periods_ps.get(d).copied().unwrap_or(ate_period_ps))
        .min()
        .unwrap_or(ate_period_ps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_mode_is_unconstrained() {
        let procs = transition_procedures(ClockingMode::ExternalClock { max_pulses: 4 }, 2);
        assert_eq!(procs.len(), 3); // 2, 3, 4 pulses
        for p in &procs {
            assert!(!p.holds_pi());
            assert!(p.observes_po());
            // All domains pulse together (single external clock).
            assert!(p.cycles().iter().all(|c| c.pulses.len() == 2));
        }
    }

    #[test]
    fn simple_cpf_is_two_pulse_single_domain() {
        let procs = transition_procedures(ClockingMode::SimpleCpf, 3);
        assert_eq!(procs.len(), 3);
        for (d, p) in procs.iter().enumerate() {
            assert_eq!(p.frames(), 2);
            assert!(p.holds_pi());
            assert!(!p.observes_po());
            assert_eq!(p.cycles()[0].pulses, vec![d]);
            assert_eq!(p.cycles()[1].pulses, vec![d]);
        }
    }

    #[test]
    fn enhanced_adds_bursts_and_crossings() {
        let procs = transition_procedures(ClockingMode::EnhancedCpf { max_pulses: 4 }, 2);
        // Per domain: 2,3,4-pulse bursts (3 each) + 2 crossing pairs.
        assert_eq!(procs.len(), 2 * 3 + 2);
        let crossings: Vec<_> = procs.iter().filter(|p| p.name().contains("_x_")).collect();
        assert_eq!(crossings.len(), 2);
        for x in crossings {
            assert_eq!(x.frames(), 2);
            assert_ne!(x.cycles()[0].pulses, x.cycles()[1].pulses);
        }
    }

    #[test]
    fn constrained_external_masks_everything() {
        let procs = transition_procedures(ClockingMode::ConstrainedExternal { max_pulses: 4 }, 2);
        assert_eq!(procs.len(), 3);
        for p in &procs {
            assert!(p.holds_pi());
            assert!(!p.observes_po());
            assert!(p.cycles().iter().all(|c| c.pulses.len() == 2));
        }
    }

    #[test]
    fn stuck_at_external_allows_single_pulse() {
        let procs = stuck_at_procedures(ClockingMode::ExternalClock { max_pulses: 3 }, 2);
        assert_eq!(procs.len(), 3);
        assert_eq!(procs[0].frames(), 1);
        assert!(procs[0].observes_po());
    }

    #[test]
    #[should_panic(expected = "launch + capture")]
    fn transition_needs_two_pulses() {
        let _ = transition_procedures(ClockingMode::ExternalClock { max_pulses: 1 }, 1);
    }

    #[test]
    fn at_speed_split_follows_the_clock_source() {
        assert!(ClockingMode::SimpleCpf.is_at_speed());
        assert!(ClockingMode::EnhancedCpf { max_pulses: 4 }.is_at_speed());
        assert!(!ClockingMode::ExternalClock { max_pulses: 4 }.is_at_speed());
        assert!(!ClockingMode::ConstrainedExternal { max_pulses: 4 }.is_at_speed());
    }

    #[test]
    fn capture_windows_per_mode() {
        let periods = [13_332, 6_666];
        // Simple CPF per-domain procedures get that domain's period.
        let cpf = transition_procedures(ClockingMode::SimpleCpf, 2);
        assert_eq!(
            capture_window_ps(ClockingMode::SimpleCpf, &cpf[0], &periods, 40_000),
            13_332
        );
        assert_eq!(
            capture_window_ps(ClockingMode::SimpleCpf, &cpf[1], &periods, 40_000),
            6_666
        );
        // Inter-domain enhanced procedures take the capture domain.
        let mode = ClockingMode::EnhancedCpf { max_pulses: 2 };
        let x01 = transition_procedures(mode, 2)
            .into_iter()
            .find(|p| p.name() == "ecpf_x_0to1")
            .expect("crossing exists");
        assert_eq!(capture_window_ps(mode, &x01, &periods, 40_000), 6_666);
        // Both external modes stretch to the tester period, regardless
        // of which domains pulse.
        for mode in [
            ClockingMode::ExternalClock { max_pulses: 4 },
            ClockingMode::ConstrainedExternal { max_pulses: 4 },
        ] {
            for p in transition_procedures(mode, 2) {
                assert_eq!(capture_window_ps(mode, &p, &periods, 40_000), 40_000);
            }
        }
        // Unknown domain indices fall back to the tester period.
        let weird = FrameSpec::broadside("w", &[7], 2);
        assert_eq!(
            capture_window_ps(ClockingMode::SimpleCpf, &weird, &periods, 40_000),
            40_000
        );
    }

    #[test]
    fn at_speed_crossings_follow_the_procedures() {
        // External modes: slow tester window, never hazardous.
        for mode in [
            ClockingMode::ExternalClock { max_pulses: 4 },
            ClockingMode::ConstrainedExternal { max_pulses: 4 },
        ] {
            assert!(at_speed_crossings(mode, 3).is_empty());
        }
        // Simple CPF: one domain per load, no inter-domain pairs.
        assert!(at_speed_crossings(ClockingMode::SimpleCpf, 3).is_empty());
        // Enhanced CPF: every ordered pair, once, named after a
        // crossing procedure.
        let x = at_speed_crossings(ClockingMode::EnhancedCpf { max_pulses: 4 }, 3);
        assert_eq!(x.len(), 6);
        for c in &x {
            assert_ne!(c.launch, c.capture);
            assert_eq!(c.procedure, format!("ecpf_x_{}to{}", c.launch, c.capture));
        }
        // Single-domain device: no pairs to cross.
        assert!(at_speed_crossings(ClockingMode::EnhancedCpf { max_pulses: 4 }, 1).is_empty());
    }

    #[test]
    fn labels_round_trip() {
        for mode in [
            ClockingMode::ExternalClock { max_pulses: 4 },
            ClockingMode::SimpleCpf,
            ClockingMode::EnhancedCpf { max_pulses: 3 },
            ClockingMode::ConstrainedExternal { max_pulses: 2 },
        ] {
            assert_eq!(mode.label().parse::<ClockingMode>().unwrap(), mode);
        }
        // Bare labels default to 4 pulses.
        assert_eq!(
            "external".parse::<ClockingMode>().unwrap(),
            ClockingMode::ExternalClock { max_pulses: 4 }
        );
        assert!("simple-cpf:2".parse::<ClockingMode>().is_err());
        assert!("enhanced-cpf:x".parse::<ClockingMode>().is_err());
    }
}
