//! ATPG engine equivalence sweep: [`ReferencePodem`] and
//! [`CompiledPodem`] must produce **identical** `PodemOutcome`s for
//! every fault, and identical end-to-end ATPG results (fault statuses,
//! pattern sets, coverage, run counters) on seeded SOCs across all
//! four clocking modes and both fault models.
//!
//! The compiled engine replaces only the value engine (incremental
//! [`occ::atpg::DualGraphSim`] instead of the re-allocating
//! `DualSim`) and the lookup tables — the search itself is a
//! line-for-line translation, so any divergence here is a bug, not a
//! heuristic difference.

use occ::atpg::{
    run_atpg, AtpgEngine, AtpgOptions, CompiledPodem, DualGraphSim, DualSim, Observability,
    PodemOutcome, ReferencePodem,
};
use occ::core::ClockingMode;
use occ::fault::{FaultModel, FaultUniverse};
use occ::flow::{AtpgEngineChoice, EngineChoice, FaultKind, TestFlow};
use occ::fsim::{
    simulate_good, CaptureModel, ClockBinding, CycleSpec, FaultSim, FrameSpec, Pattern,
};
use occ::netlist::{Logic, Netlist, NetlistBuilder};
use occ::soc::{generate, SocConfig};

const MODES: [ClockingMode; 4] = [
    ClockingMode::ExternalClock { max_pulses: 4 },
    ClockingMode::SimpleCpf,
    ClockingMode::EnhancedCpf { max_pulses: 4 },
    ClockingMode::ConstrainedExternal { max_pulses: 4 },
];

/// Per-fault outcome identity: both engines run a strided sample of
/// the fault universe under every capture procedure of the mode, and
/// the outcomes (including the exact pattern bits of found tests) must
/// be equal. (Exhaustive per-fault identity on random circuits is
/// separately pinned by `crates/atpg/tests/brute_force.rs`; the stride
/// keeps this seeded-SOC sweep inside the tier-1 budget.)
const FAULT_STRIDE: usize = 8;

#[test]
fn per_fault_outcomes_identical() {
    let soc = generate(&SocConfig::tiny(5));
    for mode in MODES {
        for fault_model in [FaultKind::StuckAt, FaultKind::Transition] {
            let model =
                CaptureModel::new(soc.netlist(), soc.binding(true)).expect("generated SOC binds");
            let procedures = match fault_model {
                FaultModel::StuckAt => occ::core::stuck_at_procedures(mode, model.domain_count()),
                FaultModel::Transition => {
                    occ::core::transition_procedures(mode, model.domain_count())
                }
            };
            let universe = match fault_model {
                FaultModel::StuckAt => FaultUniverse::stuck_at(soc.netlist()),
                FaultModel::Transition => FaultUniverse::transition(soc.netlist()),
            };
            let mut reference = ReferencePodem::new(&model);
            let mut compiled = CompiledPodem::new(&model);
            let mut checked = 0usize;
            let mut found = 0usize;
            for spec in &procedures {
                let obs = Observability::compute(&model, spec);
                for &fault in universe.faults().iter().step_by(FAULT_STRIDE) {
                    let a = reference.run(spec, &obs, fault, 32);
                    let b = AtpgEngine::run(&mut compiled, spec, &obs, fault, 32);
                    assert_eq!(
                        a,
                        b,
                        "engines diverge: {mode:?} {fault_model:?} {} {fault}",
                        spec.name()
                    );
                    checked += 1;
                    if matches!(a, PodemOutcome::Test(_)) {
                        found += 1;
                    }
                }
            }
            assert!(checked > 0, "no faults checked for {mode:?}");
            assert!(
                found > 0 || procedures.is_empty(),
                "degenerate sweep: no tests found for {mode:?} {fault_model:?}"
            );
            // Identical outcomes imply identical decision counts.
            let ra = AtpgEngine::kernel_stats(&reference);
            let rb = AtpgEngine::kernel_stats(&compiled);
            assert_eq!(ra.decisions, rb.decisions, "{mode:?} {fault_model:?}");
            assert_eq!(ra.backtracks, rb.backtracks, "{mode:?} {fault_model:?}");
        }
    }
}

/// End-to-end identity through `run_atpg`: same coverage, same fault
/// statuses, same pattern sets, same run counters.
#[test]
fn full_atpg_runs_identical() {
    let soc = generate(&SocConfig::tiny(9));
    let model = CaptureModel::new(soc.netlist(), soc.binding(true)).expect("generated SOC binds");
    for mode in [
        ClockingMode::SimpleCpf,
        ClockingMode::EnhancedCpf { max_pulses: 4 },
    ] {
        let procedures = occ::core::transition_procedures(mode, model.domain_count());
        let universe = FaultUniverse::transition(soc.netlist());
        let options = AtpgOptions {
            random_patterns: 32,
            backtrack_limit: 24,
            ..AtpgOptions::default()
        };

        let mut fsim_a = FaultSim::new(&model);
        let mut ref_podem = ReferencePodem::new(&model);
        let a = run_atpg(
            &model,
            &procedures,
            universe.clone(),
            &options,
            &mut fsim_a,
            &mut ref_podem,
        );

        let mut fsim_b = FaultSim::new(&model);
        let mut comp_podem = CompiledPodem::new(&model);
        let b = run_atpg(
            &model,
            &procedures,
            universe,
            &options,
            &mut fsim_b,
            &mut comp_podem,
        );

        assert_eq!(a.report(), b.report(), "{mode:?}");
        assert_eq!(a.stats, b.stats, "{mode:?}");
        assert_eq!(a.patterns.len(), b.patterns.len(), "{mode:?}");
        for (pa, pb) in a.patterns.patterns().iter().zip(b.patterns.patterns()) {
            assert_eq!(pa, pb, "{mode:?}");
        }
        for (fault, status) in a.faults.iter() {
            assert_eq!(status, b.faults.status(fault), "{mode:?} fault {fault}");
        }
    }
}

/// A two-domain rig whose async reset net is driven by internal logic
/// (same shape as the `kernel_equivalence` rig): two scan flops in
/// domain `a` feed the active-high reset of a `DffRh` in domain `b`.
/// Frames that pulse only domain `a` leave the `DffRh` non-pulsed
/// while its faulty reset net toggles — the corner of the workspace
/// reset contract (`occ_fsim::FaultSim::capture_flop`).
fn reset_logic_rig() -> (Netlist, ClockBinding) {
    let mut b = NetlistBuilder::new("reset_rig");
    let clka = b.input("clka");
    let clkb = b.input("clkb");
    let se = b.input("se");
    let si = b.input("si");
    let d = b.input("d");
    let f0 = b.sdff(d, clka, se, si);
    let inv = b.not(f0);
    let f1 = b.sdff(inv, clka, se, f0);
    let rst = b.and2(f0, f1);
    let xo = b.xor2(f0, d);
    let fb = b.dff_rh(xo, clkb, rst);
    let obs = b.or2(fb, f1);
    b.output("q", obs);
    let nl = b.finish().unwrap();
    let mut binding = ClockBinding::new();
    binding.add_domain("a", clka);
    binding.add_domain("b", clkb);
    binding.constrain(se, Logic::Zero);
    binding.mask(si);
    (nl, binding)
}

/// Reset contract alignment: on the logic-driven-reset rig, both
/// scalar value engines ([`DualSim`] and [`DualGraphSim`]) must agree
/// with the packed PPSFP engine on *every* fault over the *exhaustive*
/// pattern space — including specs where the `DffRh` is never pulsed
/// while its faulty reset net is active (good machine resets every
/// frame, faulty non-pulsed state carries).
#[test]
fn reset_driven_by_logic_value_engines_agree_with_ppsfp() {
    let (nl, binding) = reset_logic_rig();
    let model = CaptureModel::new(&nl, binding).unwrap();
    let specs = [
        FrameSpec::new("a_only", vec![CycleSpec::pulsing(&[0]); 2]).hold_pi(true),
        FrameSpec::new(
            "a_then_b",
            vec![
                CycleSpec::pulsing(&[0]),
                CycleSpec::pulsing(&[0]),
                CycleSpec::pulsing(&[1]),
            ],
        )
        .hold_pi(true),
        FrameSpec::new("both", vec![CycleSpec::pulsing(&[0, 1]); 2]).hold_pi(true),
    ];
    let mut ds = DualSim::new(&model);
    let mut gs = DualGraphSim::new(&model);
    let mut fsim = FaultSim::new(&model);
    let mut agreements = 0usize;
    let mut detections = 0usize;
    for universe in [FaultUniverse::stuck_at(&nl), FaultUniverse::transition(&nl)] {
        for spec in &specs {
            // Exhaustive: 2 scan bits x 1 held PI bit = 8 patterns.
            for bits in 0u8..8 {
                let mut p = Pattern::empty(&model, spec, 0);
                p.scan_load = vec![
                    Logic::from_bool(bits & 1 != 0),
                    Logic::from_bool(bits & 2 != 0),
                ];
                p.pis[0] = vec![Logic::from_bool(bits & 4 != 0)];
                let good = simulate_good(&model, spec, &[p.clone()]);
                for &fault in universe.faults() {
                    let packed = fsim.detect(spec, &good, fault) & 1 == 1;
                    ds.simulate(spec, &p, fault);
                    assert_eq!(
                        ds.detected(spec, fault),
                        packed,
                        "DualSim vs packed: {} {fault} bits {bits}",
                        spec.name()
                    );
                    gs.begin(spec, &p, fault);
                    assert_eq!(
                        gs.detected(spec, fault),
                        packed,
                        "DualGraphSim vs packed: {} {fault} bits {bits}",
                        spec.name()
                    );
                    agreements += 1;
                    detections += usize::from(packed);
                }
            }
        }
    }
    assert!(agreements > 0);
    assert!(detections > 0, "degenerate rig: nothing detected");
}

/// PODEM outcome identity on the logic-driven-reset rig: both search
/// engines produce the same outcome (including exact pattern bits) for
/// every fault under mixed-pulse procedures.
#[test]
fn reset_driven_by_logic_podem_outcomes_identical() {
    let (nl, binding) = reset_logic_rig();
    let model = CaptureModel::new(&nl, binding).unwrap();
    let spec = FrameSpec::new(
        "a_then_b",
        vec![
            CycleSpec::pulsing(&[0]),
            CycleSpec::pulsing(&[0]),
            CycleSpec::pulsing(&[1]),
        ],
    )
    .hold_pi(true);
    let obs = Observability::compute(&model, &spec);
    let mut reference = ReferencePodem::new(&model);
    let mut compiled = CompiledPodem::new(&model);
    let mut found = 0usize;
    for universe in [FaultUniverse::stuck_at(&nl), FaultUniverse::transition(&nl)] {
        for &fault in universe.faults() {
            let a = reference.run(&spec, &obs, fault, 32);
            let b = AtpgEngine::run(&mut compiled, &spec, &obs, fault, 32);
            assert_eq!(a, b, "engines diverge on reset rig: {fault}");
            if matches!(a, PodemOutcome::Test(_)) {
                found += 1;
            }
        }
    }
    assert!(found > 0, "degenerate rig: PODEM found no tests");
}

/// The `TestFlow` surface: the `atpg_engine` selector changes only the
/// label and the kernel stats, never the report numbers — across all
/// four clocking modes and both fault models.
#[test]
fn flows_identical_across_atpg_engines() {
    let soc = generate(&SocConfig::tiny(3));
    let quick = AtpgOptions {
        random_patterns: 32,
        backtrack_limit: 16,
        ..AtpgOptions::default()
    };
    for mode in MODES {
        for fault_model in [FaultKind::StuckAt, FaultKind::Transition] {
            let run = |engine: AtpgEngineChoice| {
                TestFlow::new(&soc)
                    .clocking(mode)
                    .fault_model(fault_model)
                    .mask_bidi(true)
                    .engine(EngineChoice::Serial)
                    .atpg_engine(engine)
                    .atpg(quick.clone())
                    .run()
                    .expect("flow runs")
            };
            let reference = run(AtpgEngineChoice::Reference);
            let compiled = run(AtpgEngineChoice::Compiled);
            assert_eq!(
                reference.coverage, compiled.coverage,
                "{mode:?} {fault_model:?}"
            );
            assert_eq!(
                reference.result.stats, compiled.result.stats,
                "{mode:?} {fault_model:?}"
            );
            assert_eq!(
                reference.patterns(),
                compiled.patterns(),
                "{mode:?} {fault_model:?}"
            );
            assert_eq!(reference.atpg_engine, "reference");
            assert_eq!(compiled.atpg_engine, "compiled");
            assert_eq!(
                reference.atpg_kernel.decisions, compiled.atpg_kernel.decisions,
                "{mode:?} {fault_model:?}"
            );
            // The compiled engine actually ran incrementally: one full
            // sim per PODEM run, the rest changed-cone updates.
            if compiled.atpg_kernel.decisions > 0 {
                assert!(
                    compiled.atpg_kernel.incremental_resims > 0,
                    "compiled engine never re-simulated incrementally ({mode:?})"
                );
                assert!(compiled.atpg_kernel.events > 0);
            }
            assert_eq!(reference.atpg_kernel.seeded_sims, 0);
        }
    }
}

/// Per-spec baseline seeding: PODEM opens every run with the all-X
/// pattern, so once a procedure's baseline is captured every later run
/// under the same spec seeds its opening simulation instead of
/// re-evaluating from scratch. Pattern byte-identity against the
/// reference engine under seeding is pinned by
/// `flows_identical_across_atpg_engines` above; this test pins that
/// the seeding actually engages and full sims stay bounded by the
/// number of distinct procedures.
#[test]
fn compiled_engine_seeds_repeated_spec_baselines() {
    let soc = generate(&SocConfig::tiny(3));
    let report = TestFlow::new(&soc)
        .clocking(ClockingMode::SimpleCpf)
        .fault_model(FaultKind::Transition)
        .mask_bidi(true)
        .engine(EngineChoice::Serial)
        .atpg_engine(AtpgEngineChoice::Compiled)
        .atpg(AtpgOptions {
            random_patterns: 32,
            backtrack_limit: 16,
            ..AtpgOptions::default()
        })
        .run()
        .expect("flow runs");
    let k = &report.atpg_kernel;
    assert!(
        k.seeded_sims > 0,
        "no PODEM run reused a spec baseline: {k:?}"
    );
    assert!(
        k.full_resims <= report.procedures as u64,
        "more full sims ({}) than procedures ({})",
        k.full_resims,
        report.procedures
    );
    assert!(report.to_json().contains("\"seeded_sims\":"));
}
