//! Cycle-level behavioural model of the CPF — the foundation of named
//! capture procedures.
//!
//! The paper (§4): "The efficiency of an ATPG tool is significantly
//! reduced if every cycle into and through the PLL and CPF needs to be
//! simulated ... named capture procedures provide a simple behavioral
//! model of the clock generation logic." This module is that model; the
//! test suite proves it equivalent to the gate-level CPF by
//! event-driven simulation over randomized protocols.

use crate::{CpfConfig, Pll};
use occ_sim::Time;

/// Predicts the at-speed pulses a CPF releases for a given trigger.
///
/// # Examples
///
/// ```
/// use occ_core::{CpfBehavior, CpfConfig, Pll, PllConfig};
/// let pll = Pll::new(PllConfig::paper());
/// let model = CpfBehavior::new(&CpfConfig::paper());
/// // Trigger at t=1ms, domain 1 (150 MHz): two pulses, 3 cycles later.
/// let edges = model.pulse_edges(&pll, 1, 1_000_000_000);
/// assert_eq!(edges.len(), 2);
/// assert_eq!(edges[1] - edges[0], pll.domain_period(1));
/// ```
#[derive(Debug, Clone)]
pub struct CpfBehavior {
    pulse_count: usize,
    latency_cycles: usize,
}

impl CpfBehavior {
    /// Behavioural model of a configured CPF.
    pub fn new(config: &CpfConfig) -> Self {
        CpfBehavior {
            pulse_count: config.pulse_count(),
            latency_cycles: config.latency_cycles(),
        }
    }

    /// A model with explicit parameters (used for enhanced CPFs).
    pub fn with_params(pulse_count: usize, latency_cycles: usize) -> Self {
        CpfBehavior {
            pulse_count,
            latency_cycles,
        }
    }

    /// Number of released pulses.
    pub fn pulse_count(&self) -> usize {
        self.pulse_count
    }

    /// PLL cycles from trigger capture to the first released pulse.
    pub fn latency_cycles(&self) -> usize {
        self.latency_cycles
    }

    /// The rising-edge times of the released pulses, given the trigger
    /// instant (the `scan_clk` rise that loads the trigger flop while
    /// `scan_en` is low).
    ///
    /// The trigger value enters the shift register at the first PLL
    /// edge strictly after the trigger; the window decode opens
    /// `latency_cycles - 1` edges later and passes `pulse_count` edges
    /// through the (transparent-low-latched) clock gate.
    pub fn pulse_edges(&self, pll: &Pll, domain: usize, trigger_time: Time) -> Vec<Time> {
        let period = pll.domain_period(domain);
        // First PLL edge strictly after the trigger.
        let first_shift = pll.next_edge_at_or_after(domain, trigger_time + 1);
        // The window tap rises `latency_cycles` edges after the value
        // enters; the CGC opens during the following low phase, so the
        // first *passed* edge is one period later.
        let first_pulse = first_shift + self.latency_cycles as u64 * period;
        (0..self.pulse_count as u64)
            .map(|k| first_pulse + k * period)
            .collect()
    }

    /// The earliest safe time to re-assert `scan_en` after the trigger:
    /// after the last pulse has fallen, with one idle cycle of margin.
    pub fn capture_done_time(&self, pll: &Pll, domain: usize, trigger_time: Time) -> Time {
        let period = pll.domain_period(domain);
        match self.pulse_edges(pll, domain, trigger_time).last() {
            Some(&last) => last + 2 * period,
            None => trigger_time + 2 * period,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PllConfig;

    #[test]
    fn paper_model_releases_two_consecutive_pulses() {
        let pll = Pll::new(PllConfig::paper());
        let m = CpfBehavior::new(&CpfConfig::paper());
        let edges = m.pulse_edges(&pll, 0, 500_000);
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[1] - edges[0], pll.domain_period(0));
        assert!(edges[0] > 500_000);
    }

    #[test]
    fn latency_is_three_cycles_plus_alignment() {
        let pll = Pll::new(PllConfig::paper());
        let m = CpfBehavior::new(&CpfConfig::paper());
        let period = pll.domain_period(0);
        // Trigger exactly on a PLL edge: shift happens next edge.
        let lock = pll.config().lock_time_ps;
        let trigger = lock + 10 * period;
        let edges = m.pulse_edges(&pll, 0, trigger);
        assert_eq!(edges[0], trigger + period + 3 * period);
    }

    #[test]
    fn capture_done_after_last_pulse() {
        let pll = Pll::new(PllConfig::paper());
        let m = CpfBehavior::new(&CpfConfig::paper());
        let edges = m.pulse_edges(&pll, 1, 700_000);
        let done = m.capture_done_time(&pll, 1, 700_000);
        assert!(done > *edges.last().unwrap());
    }
}
