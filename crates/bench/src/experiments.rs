//! Table 1: the five ATPG experiments.

use occ_atpg::{classify_faults, run_atpg, AtpgOptions, AtpgResult};
use occ_core::{stuck_at_procedures, transition_procedures, ClockingMode};
use occ_fault::FaultUniverse;
use occ_fsim::CaptureModel;
use occ_soc::{generate, Soc, SocConfig};
use std::fmt;
use std::time::Instant;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// (a) stuck-at test using a single external clock.
    A,
    /// (b) transition test using a single external clock (ideal).
    B,
    /// (c) transition test using simple 2-pulse on-chip CPFs.
    C,
    /// (d) transition test using enhanced CPFs (2–4 pulses +
    /// inter-domain).
    D,
    /// (e) transition test, external clock with all ATE constraints.
    E,
}

impl ExperimentId {
    /// All rows in paper order.
    pub const ALL: [ExperimentId; 5] = [
        ExperimentId::A,
        ExperimentId::B,
        ExperimentId::C,
        ExperimentId::D,
        ExperimentId::E,
    ];

    /// The paper's description of the row.
    pub fn description(self) -> &'static str {
        match self {
            ExperimentId::A => "stuck-at, single external clock",
            ExperimentId::B => "transition, single external clock",
            ExperimentId::C => "transition, on-chip clock generation (2-pulse CPF)",
            ExperimentId::D => "transition, enhanced CPF (2-4 pulses, inter-domain)",
            ExperimentId::E => "transition, external clock with ATE constraints",
        }
    }

    /// Parses a row label (`a`..`e`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "a" => Some(ExperimentId::A),
            "b" => Some(ExperimentId::B),
            "c" => Some(ExperimentId::C),
            "d" => Some(ExperimentId::D),
            "e" => Some(ExperimentId::E),
            _ => None,
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            ExperimentId::A => 'a',
            ExperimentId::B => 'b',
            ExperimentId::C => 'c',
            ExperimentId::D => 'd',
            ExperimentId::E => 'e',
        };
        write!(f, "({c})")
    }
}

/// The measured outcome of one experiment.
#[derive(Debug)]
pub struct ExperimentRow {
    /// Which experiment.
    pub id: ExperimentId,
    /// Test coverage in percent (detected / total collapsed faults).
    pub coverage_pct: f64,
    /// ATPG efficiency in percent.
    pub efficiency_pct: f64,
    /// Pattern count (scan loads).
    pub patterns: usize,
    /// Total collapsed faults.
    pub total_faults: usize,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// The full ATPG result (fault statuses, stats, pattern set).
    pub result: AtpgResult,
}

/// Options for a Table 1 reproduction run.
#[derive(Debug, Clone)]
pub struct Table1Options {
    /// SOC generator seed.
    pub seed: u64,
    /// Flops per clock domain.
    pub flops_per_domain: usize,
    /// PODEM backtrack limit.
    pub backtrack_limit: usize,
}

impl Default for Table1Options {
    fn default() -> Self {
        Table1Options {
            seed: 20050307, // DATE'05 in Munich
            flops_per_domain: 120,
            backtrack_limit: 48,
        }
    }
}

/// The clocking mode and fault model a row uses.
fn mode_of(
    id: ExperimentId,
) -> (
    ClockingMode,
    bool, /* transition */
    bool, /* bidi masked */
) {
    match id {
        ExperimentId::A => (ClockingMode::ExternalClock { max_pulses: 4 }, false, false),
        ExperimentId::B => (ClockingMode::ExternalClock { max_pulses: 4 }, true, false),
        ExperimentId::C => (ClockingMode::SimpleCpf, true, true),
        ExperimentId::D => (ClockingMode::EnhancedCpf { max_pulses: 4 }, true, true),
        ExperimentId::E => (
            ClockingMode::ConstrainedExternal { max_pulses: 4 },
            true,
            true,
        ),
    }
}

/// Runs one Table 1 experiment on an already-generated SOC.
pub fn run_experiment(soc: &Soc, id: ExperimentId, options: &Table1Options) -> ExperimentRow {
    let (mode, transition, mask_bidi) = mode_of(id);
    let binding = soc.binding(mask_bidi);
    let model = CaptureModel::new(soc.netlist(), binding).expect("SOC binds");
    let n_domains = model.domain_count();
    let procedures = if transition {
        transition_procedures(mode, n_domains)
    } else {
        stuck_at_procedures(mode, n_domains)
    };
    let universe = if transition {
        FaultUniverse::transition(soc.netlist())
    } else {
        FaultUniverse::stuck_at(soc.netlist())
    };
    let atpg_options = AtpgOptions {
        backtrack_limit: options.backtrack_limit,
        ..AtpgOptions::default()
    };
    let start = Instant::now();
    let mut result = run_atpg(&model, &procedures, universe, &atpg_options);
    let seconds = start.elapsed().as_secs_f64();
    classify_faults(&model, &mut result.faults);
    let report = result.report();
    ExperimentRow {
        id,
        coverage_pct: report.coverage_pct(),
        efficiency_pct: report.efficiency_pct(),
        patterns: result.patterns.len(),
        total_faults: report.total,
        seconds,
        result,
    }
}

/// The complete Table 1 with shape checks against the paper.
#[derive(Debug)]
pub struct Table1 {
    /// The generated rows in paper order.
    pub rows: Vec<ExperimentRow>,
    /// The options used.
    pub options: Table1Options,
}

impl Table1 {
    /// Fetches a row.
    pub fn row(&self, id: ExperimentId) -> &ExperimentRow {
        self.rows
            .iter()
            .find(|r| r.id == id)
            .expect("all rows present")
    }

    /// The paper's qualitative findings, evaluated on the measured
    /// numbers. Returns `(description, holds)` pairs.
    pub fn shape_checks(&self) -> Vec<(String, bool)> {
        let a = self.row(ExperimentId::A);
        let b = self.row(ExperimentId::B);
        let c = self.row(ExperimentId::C);
        let d = self.row(ExperimentId::D);
        let e = self.row(ExperimentId::E);
        vec![
            (
                format!(
                    "stuck-at coverage exceeds transition coverage ({:.2}% > {:.2}%)",
                    a.coverage_pct, b.coverage_pct
                ),
                a.coverage_pct > b.coverage_pct,
            ),
            (
                format!(
                    "transition patterns several times stuck-at count ({} vs {})",
                    b.patterns, a.patterns
                ),
                b.patterns as f64 >= 2.0 * a.patterns as f64,
            ),
            (
                format!(
                    "simple CPF loses coverage vs ideal ({:.2}% < {:.2}%)",
                    c.coverage_pct, b.coverage_pct
                ),
                c.coverage_pct + 1.0 < b.coverage_pct,
            ),
            (
                format!(
                    "on-chip clocking increases pattern count ({} > {})",
                    c.patterns, b.patterns
                ),
                c.patterns > b.patterns,
            ),
            (
                format!(
                    "enhanced CPF recovers coverage ({:.2}% > {:.2}%)",
                    d.coverage_pct, c.coverage_pct
                ),
                d.coverage_pct > c.coverage_pct,
            ),
            (
                format!(
                    "most-flexible bound sits between the CPF rows and the ideal \
                     ({:.2}% <= {:.2}% < {:.2}%)",
                    c.coverage_pct, e.coverage_pct, b.coverage_pct
                ),
                c.coverage_pct <= e.coverage_pct && e.coverage_pct < b.coverage_pct,
            ),
            (
                format!(
                    "flexible clocking trims patterns vs (d) ({} <= {})",
                    e.patterns, d.patterns
                ),
                e.patterns <= d.patterns,
            ),
            (
                format!(
                    "ATPG efficiency stays high everywhere (min {:.2}%)",
                    self.rows
                        .iter()
                        .map(|r| r.efficiency_pct)
                        .fold(f64::INFINITY, f64::min)
                ),
                self.rows.iter().all(|r| r.efficiency_pct > 90.0),
            ),
        ]
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 1 reproduction (seed {}, {} flops/domain)",
            self.options.seed, self.options.flops_per_domain
        )?;
        writeln!(
            f,
            "{:<4} {:<52} {:>8} {:>9} {:>9} {:>8}",
            "row", "experiment", "TC %", "eff %", "#pattern", "time s"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<4} {:<52} {:>8.2} {:>9.2} {:>9} {:>8.1}",
                r.id.to_string(),
                r.id.description(),
                r.coverage_pct,
                r.efficiency_pct,
                r.patterns,
                r.seconds
            )?;
        }
        writeln!(f)?;
        writeln!(f, "shape checks vs the paper:")?;
        for (desc, ok) in self.shape_checks() {
            writeln!(f, "  [{}] {desc}", if ok { "ok" } else { "FAIL" })?;
        }
        Ok(())
    }
}

/// Generates the SOC and runs all five experiments.
pub fn run_table1(options: &Table1Options) -> Table1 {
    let soc = generate(&SocConfig::paper_like(
        options.seed,
        options.flops_per_domain,
    ));
    let rows = ExperimentId::ALL
        .iter()
        .map(|&id| run_experiment(&soc, id, options))
        .collect();
    Table1 {
        rows,
        options: options.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_parse_and_display() {
        for id in ExperimentId::ALL {
            let s = id.to_string();
            assert_eq!(ExperimentId::parse(&s[1..2]), Some(id));
        }
        assert_eq!(ExperimentId::parse("x"), None);
    }

    #[test]
    fn single_experiment_runs_on_small_soc() {
        let soc = generate(&SocConfig::tiny(1));
        let opts = Table1Options {
            flops_per_domain: 24,
            ..Table1Options::default()
        };
        let row = run_experiment(&soc, ExperimentId::A, &opts);
        assert!(row.coverage_pct > 50.0, "coverage {:.1}", row.coverage_pct);
        assert!(row.patterns > 0);
        assert_eq!(row.total_faults, row.result.report().total);
    }
}
