//! The seeded SOC generator.

use crate::SocConfig;
use occ_dft::{insert_scan, ScanChains, ScanConfig};
use occ_fsim::ClockBinding;
use occ_netlist::{CellId, Logic, Netlist, NetlistBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated, scan-inserted SOC with its test infrastructure ports.
#[derive(Debug)]
pub struct Soc {
    config: SocConfig,
    chains: ScanChains,
    clock_ports: Vec<CellId>,
    rstn: CellId,
    bidi_readbacks: Vec<CellId>,
    non_scan_names: Vec<String>,
}

impl Soc {
    /// The scan-inserted netlist.
    pub fn netlist(&self) -> &Netlist {
        self.chains.netlist()
    }

    /// The generator configuration.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// Scan-chain metadata.
    pub fn chains(&self) -> &ScanChains {
        &self.chains
    }

    /// One clock input port per domain, in domain order.
    pub fn clock_ports(&self) -> &[CellId] {
        &self.clock_ports
    }

    /// The global active-low reset pin.
    pub fn rstn(&self) -> CellId {
        self.rstn
    }

    /// The scan-enable port.
    pub fn scan_enable(&self) -> CellId {
        self.chains.scan_enable()
    }

    /// Bidi-pad readback buffers (the feedback paths the ATE
    /// constraints forbid using).
    pub fn bidi_readbacks(&self) -> &[CellId] {
        &self.bidi_readbacks
    }

    /// Names of flops intentionally left out of the scan chains.
    pub fn non_scan_names(&self) -> &[String] {
        &self.non_scan_names
    }

    /// Builds the ATPG clock binding for this SOC.
    ///
    /// Always: one domain per clock port, `scan_en = 0`, `rstn = 1`
    /// ("no launch or capture using ... system reset"), scan-in ports
    /// masked. With `mask_bidi_feedback` the pad readback paths are
    /// masked too (the "feedback paths through bidirectional pads not
    /// utilized" constraint of experiments (c)–(e)).
    pub fn binding(&self, mask_bidi_feedback: bool) -> ClockBinding {
        let mut b = ClockBinding::new();
        for (d, &port) in self.clock_ports.iter().enumerate() {
            b.add_domain(&self.config.domains[d].name, port);
        }
        b.constrain(self.scan_enable(), Logic::Zero);
        b.constrain(self.rstn, Logic::One);
        for &si in self.chains.scan_ins() {
            b.mask(si);
        }
        if mask_bidi_feedback {
            for &fb in &self.bidi_readbacks {
                b.mask(fb);
            }
        }
        b
    }
}

/// Generates a scan-inserted SOC from a configuration.
///
/// # Panics
///
/// Panics on degenerate configurations (no domains, zero flops).
pub fn generate(config: &SocConfig) -> Soc {
    assert!(!config.domains.is_empty(), "need at least one domain");
    assert!(config.total_flops() > 0, "need at least one flop");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetlistBuilder::new(&config.name);

    // Ports.
    let clock_ports: Vec<CellId> = config
        .domains
        .iter()
        .map(|d| b.input(&format!("clk_{}", d.name)))
        .collect();
    let rstn = b.input("rstn");
    let pis: Vec<CellId> = (0..config.pi_count.max(2))
        .map(|i| b.input(&format!("pi{i}")))
        .collect();

    // Flops (data pins wired later).
    let mut domain_flops: Vec<Vec<CellId>> = Vec::new();
    let mut non_scan_names = Vec::new();
    for (d, dom) in config.domains.iter().enumerate() {
        let mut flops = Vec::new();
        for i in 0..dom.flops {
            let name = format!("{}_ff{i}", dom.name);
            let ff = if rng.gen_bool(config.reset_fraction) {
                let f = b.dff_uninit(clock_ports[d]);
                // dff_uninit gives a plain DFF; rebuild as DffRl.
                let clk = clock_ports[d];
                b.replace_cell(
                    f,
                    occ_netlist::CellKind::DffRl,
                    vec![f, clk, rstn], // D placeholder patched below
                );
                f
            } else {
                b.dff_uninit(clock_ports[d])
            };
            b.name_cell(ff, &name);
            flops.push(ff);
        }
        domain_flops.push(flops);
    }

    // Per-domain combinational clouds.
    let mut sinks_needed: Vec<(CellId, usize)> = Vec::new(); // (flop, domain)
    for (d, flops) in domain_flops.iter().enumerate() {
        for &ff in flops {
            sinks_needed.push((ff, d));
        }
    }

    let mut domain_signals: Vec<Vec<CellId>> = Vec::new();
    for (d, flops) in domain_flops.iter().enumerate() {
        let mut pool: Vec<CellId> = flops.clone();
        // Every PI must reach some logic (no floating inputs in a real
        // design): round-robin the PIs over the domains.
        for (i, &pi) in pis.iter().enumerate() {
            if i % config.domains.len() == d {
                pool.push(pi);
            }
        }
        // Cross-domain taps.
        for (od, oflops) in domain_flops.iter().enumerate() {
            if od == d || oflops.is_empty() {
                continue;
            }
            let crossings = ((flops.len() as f64) * config.crossing_fraction).round() as usize;
            for _ in 0..crossings {
                pool.push(oflops[rng.gen_range(0..oflops.len())]);
            }
        }
        domain_signals.push(pool);
    }

    // RAM macros: clocked by a random domain, wired from its pool. The
    // read data does NOT join the general pool — its X-shadow is
    // attached to a couple of dedicated flops below, the way a wrapped
    // memory interface confines it in a real design.
    let mut ram_reads: Vec<(usize, CellId)> = Vec::new();
    for r in 0..config.ram_blocks {
        let d = rng.gen_range(0..config.domains.len());
        let pick = |rng: &mut StdRng, pool: &[CellId]| pool[rng.gen_range(0..pool.len())];
        let we = pick(&mut rng, &domain_signals[d]);
        let addr: Vec<CellId> = (0..config.ram_addr_bits)
            .map(|_| pick(&mut rng, &domain_signals[d]))
            .collect();
        let din: Vec<CellId> = (0..config.ram_data_bits)
            .map(|_| pick(&mut rng, &domain_signals[d]))
            .collect();
        let (handle, outs) = b.ram(clock_ports[d], we, &addr, &din);
        b.name_cell(handle, &format!("ram{r}"));
        ram_reads.extend(outs.into_iter().map(|o| (d, o)));
    }

    // Cone-based logic generation: each flop's D input gets a random
    // gate tree over pool signals. Every created gate is consumed by
    // construction (in-tree or as a shared pool signal), so the netlist
    // has no dead logic — like a synthesized design after pruning.
    let build_cone =
        |b: &mut NetlistBuilder, rng: &mut StdRng, pool: &mut Vec<CellId>, size: usize| -> CellId {
            let n_leaves = size.max(2);
            // Sample leaves without immediate duplicates: identical gate
            // operands (xor(a,a), mux(s,a,a)...) synthesize constants and
            // fill the design with genuinely redundant faults.
            let mut sigs: Vec<CellId> = Vec::with_capacity(n_leaves);
            for _ in 0..n_leaves {
                let mut pick = pool[rng.gen_range(0..pool.len())];
                for _ in 0..4 {
                    if !sigs.contains(&pick) {
                        break;
                    }
                    pick = pool[rng.gen_range(0..pool.len())];
                }
                sigs.push(pick);
            }
            while sigs.len() > 1 {
                let a = sigs.swap_remove(rng.gen_range(0..sigs.len()));
                let mut ci = rng.gen_range(0..sigs.len());
                for _ in 0..4 {
                    if sigs[ci] != a {
                        break;
                    }
                    ci = rng.gen_range(0..sigs.len());
                }
                let c = sigs.swap_remove(ci);
                let g = match rng.gen_range(0..10) {
                    0 | 1 => b.and2(a, c),
                    2 | 3 => b.or2(a, c),
                    4 => b.nand2(a, c),
                    5 => b.nor2(a, c),
                    6 => b.xor2(a, c),
                    7 => {
                        let s = pool[rng.gen_range(0..pool.len())];
                        b.mux2(s, a, c)
                    }
                    8 => {
                        let n = b.not(a);
                        b.and2(n, c)
                    }
                    _ => {
                        let e = pool[rng.gen_range(0..pool.len())];
                        b.or_n(&[a, c, e])
                    }
                };
                // Re-inject some intermediate nodes as shared fanout.
                if rng.gen_bool(0.35) {
                    pool.push(g);
                }
                sigs.push(g);
            }
            sigs[0]
        };

    // Wire flop D inputs from fresh cones over their domain pool.
    for &(ff, d) in &sinks_needed {
        let mut pool = std::mem::take(&mut domain_signals[d]);
        let cone = build_cone(&mut b, &mut rng, &mut pool, config.gates_per_flop);
        pool.push(cone);
        domain_signals[d] = pool;
        b.set_flop_d(ff, cone);
    }

    // Attach RAM read shadows to dedicated flops: D' = D xor (bit and
    // gate_sig). With the gating signal low the RAM is isolated, so the
    // ATPG can control the shadow; faults inside it need RAM-sequential
    // patterns (which the experiments exclude, as in the paper).
    for (d, bit) in ram_reads {
        let pool_len = domain_signals[d].len();
        let gate_sig = domain_signals[d][rng.gen_range(0..pool_len)];
        let masked = b.and2(bit, gate_sig);
        let ff = domain_flops[d][rng.gen_range(0..domain_flops[d].len())];
        let old_d = b.inputs(ff)[0];
        let mixed = b.xor2(old_d, masked);
        b.set_flop_d(ff, mixed);
    }

    // Dedicated non-scan cells (pipeline/sync stages kept out of the
    // chains, as on the paper's device). Their fan-in comes from the
    // domain pool; their fan-out is confined to a small shadow cone
    // mixed into one flop's D — uninitialized until a capture pulse
    // loads them, which is exactly what the multi-pulse enhanced CPF
    // addresses in experiment (d).
    for (d, dom) in config.domains.iter().enumerate() {
        let count = ((dom.flops as f64) * config.non_scan_fraction).round() as usize;
        for i in 0..count {
            let pool_len = domain_signals[d].len();
            let src = domain_signals[d][rng.gen_range(0..pool_len)];
            let nf = b.dff(src, clock_ports[d]);
            let name = format!("{}_nonscan{i}", dom.name);
            b.name_cell(nf, &name);
            non_scan_names.push(name);
            let side = domain_signals[d][rng.gen_range(0..pool_len)];
            let shadow = b.mux2(side, nf, src);
            let ff = domain_flops[d][rng.gen_range(0..domain_flops[d].len())];
            let old_d = b.inputs(ff)[0];
            let mixed = b.xor2(old_d, shadow);
            b.set_flop_d(ff, mixed);
        }
    }

    // Bidirectional pads: pad = en ? data_out : external; a readback
    // buffer feeds logic again (the forbidden feedback path).
    let mut bidi_readbacks = Vec::new();
    for i in 0..config.bidi_pads {
        let d = rng.gen_range(0..config.domains.len());
        let pool_len = domain_signals[d].len();
        let en = domain_signals[d][rng.gen_range(0..pool_len)];
        let data = domain_signals[d][rng.gen_range(0..pool_len)];
        let ext = b.input(&format!("pad_in{i}"));
        let pad = b.mux2(en, ext, data);
        b.name_cell(pad, &format!("pad{i}"));
        b.output(&format!("pad_out{i}"), pad);
        let fb = b.buf(pad);
        b.name_cell(fb, &format!("bidi_fb{i}"));
        bidi_readbacks.push(fb);
        // The feedback re-enters a fresh gate in the domain.
        let mix = domain_signals[d][rng.gen_range(0..pool_len)];
        let g = b.xor2(fb, mix);
        domain_signals[d].push(g);
    }

    // Primary outputs: small dedicated cones across the domains.
    for i in 0..config.po_count.max(1) {
        let d = rng.gen_range(0..config.domains.len());
        let mut pool = std::mem::take(&mut domain_signals[d]);
        let cone = build_cone(&mut b, &mut rng, &mut pool, 3);
        domain_signals[d] = pool;
        b.output(&format!("po{i}"), cone);
    }

    // Any PI that no cone happened to sample still needs a sink: mix it
    // into a random flop's D through a small gate pair.
    {
        let mut consumed = vec![false; b.len()];
        for idx in 0..b.len() {
            let id = CellId::from_index(idx);
            for &src in b.inputs(id) {
                consumed[src.index()] = true;
            }
        }
        for &pi in &pis {
            if consumed[pi.index()] {
                continue;
            }
            let d = rng.gen_range(0..config.domains.len());
            let pool_len = domain_signals[d].len();
            let side = domain_signals[d][rng.gen_range(0..pool_len)];
            let g = b.and2(pi, side);
            let ff = domain_flops[d][rng.gen_range(0..domain_flops[d].len())];
            let old_d = b.inputs(ff)[0];
            let mixed = b.xor2(old_d, g);
            b.set_flop_d(ff, mixed);
        }
    }

    // Any remaining unconsumed pool signals become extra observation
    // outputs (a pruned netlist has no dangling logic).
    let mut consumed = vec![false; b.len()];
    for idx in 0..b.len() {
        let id = CellId::from_index(idx);
        for &src in b.inputs(id) {
            consumed[src.index()] = true;
        }
    }
    let mut extra = 0usize;
    for pool in &domain_signals {
        for &c in pool {
            if !consumed[c.index()] && b.kind(c).is_combinational() && !b.inputs(c).is_empty() {
                consumed[c.index()] = true;
                b.output(&format!("po_aux{extra}"), c);
                extra += 1;
            }
        }
    }

    let functional = b.finish().expect("generated SOC must validate");

    // Scan insertion with the non-scan skip list.
    let skip_refs: Vec<&str> = non_scan_names.iter().map(String::as_str).collect();
    let chains = insert_scan(
        &functional,
        &ScanConfig::new(config.scan_chains).skip_named(&skip_refs),
    )
    .expect("scan insertion on generated SOC");

    Soc {
        config: config.clone(),
        chains,
        clock_ports,
        rstn,
        bidi_readbacks,
        non_scan_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_fsim::CaptureModel;
    use occ_netlist::NetlistStats;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SocConfig::tiny(7));
        let b = generate(&SocConfig::tiny(7));
        assert_eq!(a.netlist().len(), b.netlist().len());
        assert_eq!(a.netlist().to_verilog(), b.netlist().to_verilog());
        let c = generate(&SocConfig::tiny(8));
        assert_ne!(a.netlist().to_verilog(), c.netlist().to_verilog());
    }

    #[test]
    fn structure_matches_config() {
        let cfg = SocConfig::tiny(3);
        let soc = generate(&cfg);
        let stats = NetlistStats::of(soc.netlist());
        // Scannable flops plus the dedicated non-scan cells.
        assert_eq!(stats.flops, cfg.total_flops() + soc.non_scan_names().len());
        assert_eq!(stats.rams, cfg.ram_blocks);
        assert_eq!(
            stats.flops - stats.scan_flops,
            soc.non_scan_names().len(),
            "non-scan count"
        );
        assert!(!soc.non_scan_names().is_empty());
        assert_eq!(soc.clock_ports().len(), 2);
        assert_eq!(soc.bidi_readbacks().len(), cfg.bidi_pads);
    }

    #[test]
    fn binding_builds_a_capture_model() {
        let soc = generate(&SocConfig::tiny(11));
        let binding = soc.binding(true);
        let model = CaptureModel::new(soc.netlist(), binding).unwrap();
        assert_eq!(model.domain_count(), 2);
        assert_eq!(
            model.flops().len(),
            soc.config().total_flops() + soc.non_scan_names().len(),
            "all flops bound"
        );
        // Both domains populated.
        let d0 = model.flops().iter().filter(|f| f.domain == 0).count();
        let d1 = model.flops().iter().filter(|f| f.domain == 1).count();
        assert!(d0 > 0 && d1 > 0);
        // Masked feedbacks included.
        assert!(model.masked().len() >= soc.bidi_readbacks().len());
    }

    #[test]
    fn crossings_exist_between_domains() {
        let soc = generate(&SocConfig::tiny(5));
        let nl = soc.netlist();
        let binding = soc.binding(false);
        let model = CaptureModel::new(nl, binding).unwrap();
        // Find at least one flop whose 1-frame fan-in cone touches a
        // flop of the other domain.
        let domain_of = |c: CellId| model.flop_index(c).map(|i| model.flops()[i].domain);
        let mut found = false;
        'outer: for info in model.flops() {
            let mut work = vec![nl.cell(info.cell).flop_d()];
            let mut seen = std::collections::HashSet::new();
            while let Some(c) = work.pop() {
                if !seen.insert(c) {
                    continue;
                }
                if let Some(d) = domain_of(c) {
                    if d != info.domain {
                        found = true;
                        break 'outer;
                    }
                    continue;
                }
                if nl.cell(c).kind().is_combinational() {
                    work.extend(nl.cell(c).inputs().iter().copied());
                }
            }
        }
        assert!(found, "no cross-domain paths generated");
    }
}
