//! Typed diagnostics: rule identities, severities, locations and the
//! aggregated [`LintReport`] with its severity gate.

use occ_fault::Fault;
use occ_netlist::CellId;
use std::fmt;

/// A stable lint rule identity. The `Lnnn` codes are part of the tool's
/// interface: scripts grep for them, fixtures pin them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// `L001` — combinational loop through transparent latches.
    CombLoop,
    /// `L002` — floating net: unloaded driver or logic fed by an
    /// uncontrolled (`TieX`) source.
    FloatingNet,
    /// `L003` — duplicate cell name: two drivers claim one net name,
    /// the representable form of a multiply-driven net in this IR.
    DuplicateName,
    /// `L004` — non-scan flop clocked by a bound capture domain.
    NonScanCapture,
    /// `L005` — clock-domain-crossing path exercised at speed by the
    /// clocking mode.
    CdcAtSpeed,
    /// `L006` — scan-chain connectivity or ordering break.
    ScanChain,
    /// `L007` — structurally untestable fault (unobservable cone or
    /// uncontrollable activation).
    Untestable,
    /// `L008` — X-source audit for LBIST readiness: a `TieX` or
    /// uninitialized non-scan state element whose value reaches a scan
    /// flop's capture cone, i.e. the MISR observation cone. Every such
    /// source corrupts a multiple-input signature register
    /// deterministically-unpredictably and must be bounded (or the
    /// signature declared invalid) before self-test can sign off.
    XSource,
}

impl RuleId {
    /// All rules, in code order.
    pub const ALL: [RuleId; 8] = [
        RuleId::CombLoop,
        RuleId::FloatingNet,
        RuleId::DuplicateName,
        RuleId::NonScanCapture,
        RuleId::CdcAtSpeed,
        RuleId::ScanChain,
        RuleId::Untestable,
        RuleId::XSource,
    ];

    /// The stable `Lnnn` code.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::CombLoop => "L001",
            RuleId::FloatingNet => "L002",
            RuleId::DuplicateName => "L003",
            RuleId::NonScanCapture => "L004",
            RuleId::CdcAtSpeed => "L005",
            RuleId::ScanChain => "L006",
            RuleId::Untestable => "L007",
            RuleId::XSource => "L008",
        }
    }

    /// Short machine-readable rule name.
    pub fn label(self) -> &'static str {
        match self {
            RuleId::CombLoop => "comb-loop",
            RuleId::FloatingNet => "floating-net",
            RuleId::DuplicateName => "duplicate-name",
            RuleId::NonScanCapture => "non-scan-capture",
            RuleId::CdcAtSpeed => "cdc-at-speed",
            RuleId::ScanChain => "scan-chain",
            RuleId::Untestable => "untestable",
            RuleId::XSource => "x-source",
        }
    }

    /// The severity this rule reports at (fixed per rule: the catalog
    /// is the contract, not a tuning knob).
    pub fn severity(self) -> Severity {
        match self {
            RuleId::CombLoop | RuleId::DuplicateName | RuleId::ScanChain => Severity::Error,
            RuleId::FloatingNet | RuleId::NonScanCapture | RuleId::CdcAtSpeed | RuleId::XSource => {
                Severity::Warning
            }
            RuleId::Untestable => Severity::Info,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.label())
    }
}

/// Diagnostic severity, ordered `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: feeds downstream stages (e.g. ATPG
    /// pre-classification), never gates.
    Info,
    /// Suspicious but test-able; gates only under future stricter
    /// policies.
    Warning,
    /// A structural defect that invalidates test generation; fails the
    /// flow under [`LintGate::Deny`].
    Error,
}

impl Severity {
    /// Lower-case label (`info` / `warning` / `error`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One lint finding: rule, severity, the cell(s) it anchors to and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Its severity (always `rule.severity()`).
    pub severity: Severity,
    /// The primary cell location, when one exists.
    pub cell: Option<CellId>,
    /// A related cell (the other end of a path or chain link).
    pub related: Option<CellId>,
    /// What happened, with names resolved.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic for `rule` at `cell`.
    pub fn new(rule: RuleId, cell: Option<CellId>, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: rule.severity(),
            cell,
            related: None,
            message: message.into(),
        }
    }

    /// Attaches a related cell (builder style).
    #[must_use]
    pub fn with_related(mut self, related: CellId) -> Self {
        self.related = Some(related);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.severity, self.rule, self.message)?;
        if let Some(c) = self.cell {
            write!(f, " [{c}]")?;
        }
        Ok(())
    }
}

/// The severity gate a flow applies to a lint report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintGate {
    /// Error-severity diagnostics fail the flow.
    #[default]
    Deny,
    /// Report everything, fail nothing.
    Warn,
}

impl LintGate {
    /// Lower-case label (`deny` / `warn`), round-tripping through
    /// [`LintGate::from_str`](std::str::FromStr).
    pub fn label(self) -> &'static str {
        match self {
            LintGate::Deny => "deny",
            LintGate::Warn => "warn",
        }
    }
}

impl fmt::Display for LintGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error parsing a [`LintGate`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLintGateError {
    input: String,
}

impl fmt::Display for ParseLintGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown lint gate '{}' (expected deny or warn)",
            self.input
        )
    }
}

impl std::error::Error for ParseLintGateError {}

impl std::str::FromStr for LintGate {
    type Err = ParseLintGateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "deny" => Ok(LintGate::Deny),
            "warn" => Ok(LintGate::Warn),
            _ => Err(ParseLintGateError {
                input: s.to_owned(),
            }),
        }
    }
}

/// Everything one lint pass produced: the diagnostics plus the
/// ATPG-feeding untestability verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, in rule order.
    pub diagnostics: Vec<Diagnostic>,
    /// Faults the untestability pass proved structurally untestable —
    /// the input to ATPG pre-classification
    /// (`occ_atpg::run_atpg_preclassified`).
    pub untestable: Vec<Fault>,
    /// Cells the structural rules scanned.
    pub cells_scanned: usize,
    /// Faults the untestability pass examined (0 when it did not run).
    pub faults_scanned: usize,
}

impl LintReport {
    /// Number of diagnostics of one rule.
    pub fn count(&self, rule: RuleId) -> usize {
        self.diagnostics.iter().filter(|d| d.rule == rule).count()
    }

    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.count_severity(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.count_severity(Severity::Warning)
    }

    /// Number of diagnostics at one severity.
    pub fn count_severity(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True when the report passes under `gate`: `Deny` requires zero
    /// error-severity diagnostics, `Warn` always passes.
    pub fn passes(&self, gate: LintGate) -> bool {
        match gate {
            LintGate::Deny => self.errors() == 0,
            LintGate::Warn => true,
        }
    }

    /// The first error-severity diagnostic, if any — what a denying
    /// flow reports.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint: {} error(s), {} warning(s), {} structurally untestable \
             fault(s) over {} cells",
            self.errors(),
            self.warnings(),
            self.untestable.len(),
            self.cells_scanned
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<&str> = RuleId::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(
            codes,
            ["L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008"]
        );
    }

    #[test]
    fn gate_semantics() {
        let mut report = LintReport::default();
        assert!(report.passes(LintGate::Deny));
        report
            .diagnostics
            .push(Diagnostic::new(RuleId::NonScanCapture, None, "w"));
        assert!(report.passes(LintGate::Deny), "warnings never deny");
        report
            .diagnostics
            .push(Diagnostic::new(RuleId::ScanChain, None, "e"));
        assert!(!report.passes(LintGate::Deny));
        assert!(report.passes(LintGate::Warn));
        assert_eq!(report.first_error().unwrap().rule, RuleId::ScanChain);
    }

    #[test]
    fn gate_labels_round_trip() {
        for gate in [LintGate::Deny, LintGate::Warn] {
            assert_eq!(gate.label().parse::<LintGate>().unwrap(), gate);
        }
        assert!("strict".parse::<LintGate>().is_err());
    }
}
