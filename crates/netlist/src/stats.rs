//! Netlist statistics reporting.

use crate::{CellKind, Netlist};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics over a netlist, as printed by architecture
/// reports (Figure 1 reproduction) and used in tests.
///
/// # Examples
///
/// ```
/// use occ_netlist::{NetlistBuilder, NetlistStats};
/// # fn main() -> Result<(), occ_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let c = b.input("clk");
/// let n = b.not(a);
/// let f = b.dff(n, c);
/// b.output("q", f);
/// let stats = NetlistStats::of(&b.finish()?);
/// assert_eq!(stats.flops, 1);
/// assert_eq!(stats.inputs, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Total flip-flops (scan + non-scan).
    pub flops: usize,
    /// Mux-scan flip-flops.
    pub scan_flops: usize,
    /// Level-sensitive latches.
    pub latches: usize,
    /// Integrated clock-gating cells.
    pub clock_gates: usize,
    /// RAM macros.
    pub rams: usize,
    /// Combinational gates (excluding ports/ties).
    pub comb_gates: usize,
    /// Logic gates in the data-book sense (everything but ports/ties).
    pub logic_gates: usize,
    /// Deepest combinational level.
    pub max_level: u32,
    /// Per-kind cell counts (by mnemonic, sorted).
    pub by_kind: BTreeMap<&'static str, usize>,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    pub fn of(netlist: &Netlist) -> Self {
        let mut s = NetlistStats {
            inputs: netlist.primary_inputs().len(),
            outputs: netlist.primary_outputs().len(),
            max_level: netlist.levelization().max_level(),
            logic_gates: netlist.logic_gate_count(),
            ..NetlistStats::default()
        };
        for (_, cell) in netlist.iter() {
            let kind = cell.kind();
            *s.by_kind.entry(kind.mnemonic()).or_insert(0) += 1;
            if kind.is_flop() {
                s.flops += 1;
                if kind.is_scan_flop() {
                    s.scan_flops += 1;
                }
            }
            match kind {
                CellKind::LatchLow => s.latches += 1,
                CellKind::ClockGate => s.clock_gates += 1,
                CellKind::Ram { .. } => s.rams += 1,
                k if k.is_combinational()
                    && !matches!(
                        k,
                        CellKind::Input
                            | CellKind::Output
                            | CellKind::Tie0
                            | CellKind::Tie1
                            | CellKind::TieX
                    ) =>
                {
                    s.comb_gates += 1;
                }
                _ => {}
            }
        }
        s
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "inputs        : {}", self.inputs)?;
        writeln!(f, "outputs       : {}", self.outputs)?;
        writeln!(
            f,
            "flops         : {} ({} scan)",
            self.flops, self.scan_flops
        )?;
        writeln!(f, "latches       : {}", self.latches)?;
        writeln!(f, "clock gates   : {}", self.clock_gates)?;
        writeln!(f, "ram macros    : {}", self.rams)?;
        writeln!(f, "comb gates    : {}", self.comb_gates)?;
        writeln!(f, "logic gates   : {}", self.logic_gates)?;
        writeln!(f, "max level     : {}", self.max_level)?;
        for (k, v) in &self.by_kind {
            writeln!(f, "  {k:<12}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn counts_every_category() {
        let mut b = NetlistBuilder::new("t");
        let clk = b.input("clk");
        let en = b.input("en");
        let d = b.input("d");
        let se = b.input("se");
        let si = b.input("si");
        let g = b.and2(d, en);
        let ff = b.sdff(g, clk, se, si);
        let nf = b.dff(g, clk);
        let cg = b.clock_gate(clk, en);
        let lt = b.latch_low(d, en);
        let o = b.or_n(&[ff, nf, cg, lt]);
        b.output("o", o);
        let stats = NetlistStats::of(&b.finish().unwrap());
        assert_eq!(stats.inputs, 5);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.flops, 2);
        assert_eq!(stats.scan_flops, 1);
        assert_eq!(stats.latches, 1);
        assert_eq!(stats.clock_gates, 1);
        assert_eq!(stats.comb_gates, 2);
        assert_eq!(stats.logic_gates, 6);
        assert_eq!(stats.by_kind["sdff"], 1);
        let text = stats.to_string();
        assert!(text.contains("flops         : 2 (1 scan)"));
    }
}
