//! # occ-flow — the unified `TestFlow` pipeline
//!
//! The paper's Table 1 is produced by one repeated pipeline — generate
//! a SOC, insert scan, pick a clocking mode (external / simple CPF /
//! enhanced CPF), build capture procedures, run ATPG, fault-simulate,
//! report coverage. This crate is the single orchestration surface for
//! that pipeline:
//!
//! * [`TestFlow`] — the builder: source (SOC or custom netlist),
//!   clocking mode, fault model, engine, ATPG options, one `run()`;
//! * [`EngineChoice`] — pluggable fault-sim engines (serial / sharded /
//!   auto) behind the [`occ_fsim::FaultSimEngine`] trait, guaranteed
//!   bit-identical results;
//! * [`FlowReport`] — per-stage timings, ATPG stats, coverage report,
//!   pattern counts, std-only JSON/CSV serialization;
//! * [`FlowError`] — typed errors for every misconfiguration the
//!   hand-wired pipelines used to panic on: zero clock domains,
//!   missing scan chains, zero worker threads, clocking modes that
//!   cannot produce the requested procedures, model-binding failures.
//!
//! ## Example
//!
//! The full pipeline on a small seeded SOC, comparing the serial and
//! sharded engines (whose reports are equal by construction):
//!
//! ```
//! use occ_flow::{EngineChoice, FaultKind, TestFlow};
//! use occ_core::ClockingMode;
//! use occ_atpg::AtpgOptions;
//! use occ_soc::{generate, SocConfig};
//!
//! # fn main() -> Result<(), occ_flow::FlowError> {
//! let soc = generate(&SocConfig::tiny(1));
//! let quick = AtpgOptions {
//!     random_patterns: 32,
//!     backtrack_limit: 12,
//!     ..AtpgOptions::default()
//! };
//! let report = TestFlow::new(&soc)
//!     .clocking(ClockingMode::SimpleCpf)
//!     .fault_model(FaultKind::Transition)
//!     .engine(EngineChoice::Sharded { threads: 2 })
//!     .mask_bidi(true)
//!     .atpg(quick)
//!     .run()?;
//! assert!(report.coverage_pct() > 0.0);
//! assert_eq!(report.threads, 2);
//! assert!(report.to_json().contains("\"clocking\":\"simple-cpf\""));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifacts;
mod builder;
mod engine;
mod error;
mod report;
mod source;
mod timing;

pub use artifacts::{build_procedures, validate_procedures, FlowArtifacts};
pub use builder::TestFlow;
pub use engine::{
    AtpgEngineChoice, EngineChoice, ParseAtpgEngineChoiceError, ParseEngineChoiceError,
};
pub use error::FlowError;
pub use report::{FlowReport, LintBlock, Stage, StageTiming, TraceBlock};
pub use source::{PatternSource, PatternSourceBlock};
pub use timing::{TimingConfig, DEFAULT_DOMAIN_PERIOD_PS};

/// Embedded pattern-source configurations accepted by
/// [`TestFlow::pattern_source`] — re-exported from [`occ_bist`] and
/// [`occ_dft`].
pub use occ_bist::BistConfig;
pub use occ_dft::EdtConfig;

/// Delay-test-quality types every timed [`FlowReport`] carries —
/// re-exported from [`occ_timing`].
pub use occ_timing::{ProcWindow, QualityOptions, QualityReport};

/// Static design-rule / testability lint types the pre-ATPG
/// [`Stage::Lint`] stage produces — re-exported from [`occ_lint`].
pub use occ_lint::{
    Diagnostic, LintGate, LintReport, Linter, ParseLintGateError, RuleId, Severity,
};

/// The fault model a flow targets — re-exported from [`occ_fault`]
/// under the name the builder API uses
/// (`.fault_model(FaultKind::Transition)`).
pub use occ_fault::FaultModel as FaultKind;

/// Compiled fault-sim kernel statistics — re-exported from
/// [`occ_fsim`] because every [`FlowReport`] carries one.
pub use occ_fsim::KernelStats;

/// Cooperative cancellation handle (and its trip cause) accepted by
/// [`TestFlow::cancel`] — re-exported from [`occ_fsim`].
pub use occ_fsim::{CancelCause, CancelToken};

/// ATPG kernel statistics (decisions, backtracks, value-engine events,
/// incremental re-simulations) — re-exported from [`occ_atpg`] because
/// every [`FlowReport`] carries one.
pub use occ_atpg::AtpgKernelStats;

/// Span-tracing types a traced [`FlowReport`] carries in its
/// [`TraceBlock`] — re-exported from [`occ_obs`].
pub use occ_obs::{SpanNode, SpanRecord, SpanRecorder, SpanTree};
