//! Criterion benches for the Table 1 experiments — one per row, on a
//! reduced SOC so the full suite stays in benchmark territory. The
//! `table1` binary runs the full-size reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use occ_bench::{run_experiment, ExperimentId, Table1Options};
use occ_flow::EngineChoice;
use occ_soc::{generate, SocConfig};

fn bench_rows(c: &mut Criterion) {
    let options = Table1Options {
        flops_per_domain: 24,
        engine: EngineChoice::Serial,
        ..Table1Options::default()
    };
    let soc = generate(&SocConfig::paper_like(
        options.seed,
        options.flops_per_domain,
    ));
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for id in ExperimentId::ALL {
        group.bench_function(format!("row_{id}"), |b| {
            b.iter(|| {
                let row = run_experiment(&soc, id, &options).expect("row flows validate");
                criterion::black_box(row.patterns)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rows);
criterion_main!(benches);
