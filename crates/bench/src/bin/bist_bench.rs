//! Pattern-source benchmark and regression gate — the delivery-side
//! sibling of `fsim_bench` / `atpg_bench` / `server_bench`.
//!
//! Runs the same Table-1 SOC flow under all three pattern sources
//! (external ATPG, EDT-compressed delivery, at-speed LBIST) through
//! one in-process [`occ_server::FlowService`] and records per-source
//! throughput (patterns/sec), the EDT compression ratio the
//! auto-derived decompressor geometry achieves, and LBIST coverage at
//! a 1k and a 10k pseudo-random pattern budget. Results land in
//! `BENCH_bist.json` so the embedded-test quality is tracked in-repo.
//!
//! ```text
//! bist_bench [--flops N] [--out PATH] [--check BASELINE.json]
//! ```
//!
//! Three gates:
//!
//! * **Referee identity** (always on, hardware-independent): for every
//!   embedded source, `source_detected + aliased + compactor_masked +
//!   x_masked == kernel_detected` — a compacted detection that is not
//!   a kernel detection (or a loss that is not explained) is a grading
//!   bug, not a perf problem.
//! * **Quality floors** (always on, deterministic for a fixed seed):
//!   the EDT compression ratio must be at least [`COMPRESSION_FLOOR`],
//!   and LBIST coverage must not *decrease* when the pattern budget
//!   grows from 1k to 10k. `BIST_BENCH_SKIP_CHECK` bypasses these.
//! * **Regression** (with `--check`): compression ratio and both LBIST
//!   coverage points must not drop below the committed baseline beyond
//!   a small tolerance — all three are deterministic given the seed,
//!   so a drop is a real change in delivery quality, never machine
//!   noise. Throughput is recorded but not gated (machine-dependent).
//!   `BIST_BENCH_SKIP_CHECK` bypasses this too.

use occ_atpg::AtpgOptions;
use occ_core::ClockingMode;
use occ_flow::{BistConfig, EdtConfig, FlowReport, PatternSource};
use occ_server::{FlowService, JobSpec};
use occ_soc::SocConfig;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// The Table-1 SOC seed (DATE'05 in Munich) the design derives from.
const TABLE1_SEED: u64 = 20050307;

/// Minimum EDT channel-data compression ratio on the Table-1 SOC with
/// auto-derived geometry (chains over channels; deterministic).
const COMPRESSION_FLOOR: f64 = 4.0;

/// Allowed LBIST coverage drop vs the committed baseline, in points.
const COVERAGE_TOLERANCE_PTS: f64 = 0.5;

/// Allowed compression-ratio drop vs the committed baseline.
const RATIO_TOLERANCE: f64 = 0.10;

struct Options {
    flops: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        flops: 48,
        out: "BENCH_bist.json".to_owned(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--flops" => {
                opts.flops = value("--flops")?
                    .parse()
                    .map_err(|e| format!("--flops: {e}"))?;
                if opts.flops == 0 {
                    return Err("--flops must be positive".to_owned());
                }
            }
            "--out" => opts.out = value("--out")?,
            "--check" => opts.check = Some(value("--check")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

/// Submits one flow job for `source` and returns the report plus the
/// wall-clock patterns/sec of the whole flow.
fn run_source(
    service: &FlowService,
    flops: usize,
    source: PatternSource,
) -> (FlowReport, f64, f64) {
    let mut job = JobSpec::new(SocConfig::paper_like(TABLE1_SEED, flops));
    job.clocking = ClockingMode::SimpleCpf;
    job.mask_bidi = true;
    job.atpg = AtpgOptions {
        random_patterns: 64,
        backtrack_limit: 24,
        ..AtpgOptions::default()
    };
    job.pattern_source = source;
    let t0 = Instant::now();
    let outcome = service.submit(&job).expect("Table-1 flow always validates");
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let report = outcome.report.expect("flow jobs carry a report");
    let pps = report.patterns() as f64 / secs;
    (report, secs, pps)
}

/// The referee identity: every kernel detection either survives the
/// source's compaction or is explained. Returns false (and prints) on
/// violation.
fn refereed(report: &FlowReport, what: &str) -> bool {
    let Some(ps) = &report.pattern_source else {
        return true;
    };
    let explained = ps.source_detected + ps.aliased + ps.compactor_masked + ps.x_masked;
    if explained != ps.kernel_detected {
        eprintln!(
            "bist_bench: FATAL — {what}: {} of {} kernel detections unaccounted \
             ({} detected, {} aliased, {} compactor-masked, {} X-masked)",
            ps.kernel_detected as i64 - explained as i64,
            ps.kernel_detected,
            ps.source_detected,
            ps.aliased,
            ps.compactor_masked,
            ps.x_masked,
        );
        return false;
    }
    true
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bist_bench: {e}");
            return ExitCode::from(2);
        }
    };
    let skip = std::env::var("BIST_BENCH_SKIP_CHECK").is_ok_and(|v| !v.is_empty());

    // One service: the design compiles once and every source job after
    // the first reuses the cached simulation graph, so the per-source
    // timings compare delivery cost, not compile cost.
    let service = FlowService::new(0);
    let (external, ext_secs, ext_pps) =
        run_source(&service, opts.flops, PatternSource::ExternalAtpg);
    println!(
        "bist_bench: {} — {} flops/domain",
        external.design, opts.flops
    );
    println!(
        "  external {ext_pps:>8.1} patterns/s ({} patterns, {ext_secs:.2}s, \
         coverage {:.2}%)",
        external.patterns(),
        external.coverage_pct(),
    );

    let (edt, edt_secs, edt_pps) =
        run_source(&service, opts.flops, PatternSource::Edt(EdtConfig::auto()));
    let compression = edt
        .pattern_source
        .as_ref()
        .map_or(0.0, |ps| ps.compression_ratio);
    println!(
        "  edt      {edt_pps:>8.1} patterns/s ({} patterns, {edt_secs:.2}s, \
         coverage {:.2}%, compression {compression:.1}x)",
        edt.patterns(),
        edt.coverage_pct(),
    );

    let lbist_at = |patterns: usize| {
        run_source(
            &service,
            opts.flops,
            PatternSource::Lbist(BistConfig {
                patterns,
                ..BistConfig::default()
            }),
        )
    };
    let (lbist_1k, lb1_secs, lb1_pps) = lbist_at(1_000);
    let (lbist_10k, lb10_secs, lb10_pps) = lbist_at(10_000);
    let (cov_1k, cov_10k) = (lbist_1k.coverage_pct(), lbist_10k.coverage_pct());
    println!(
        "  lbist    {lb1_pps:>8.1} patterns/s (1k patterns, {lb1_secs:.2}s, \
         coverage {cov_1k:.2}%)\n  \
         lbist    {lb10_pps:>8.1} patterns/s (10k patterns, {lb10_secs:.2}s, \
         coverage {cov_10k:.2}%)",
    );

    // Correctness gate: always on, independent of machine and skip
    // flags — an unexplained detection loss is a bug.
    for (report, what) in [
        (&edt, "edt"),
        (&lbist_1k, "lbist@1k"),
        (&lbist_10k, "lbist@10k"),
    ] {
        if !refereed(report, what) {
            return ExitCode::FAILURE;
        }
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"design\":\"{}\",\"flops_per_domain\":{},\
         \"external\":{{\"patterns\":{},\"patterns_per_sec\":{ext_pps:.1},\
         \"coverage_pct\":{:.2}}},\
         \"edt\":{{\"patterns\":{},\"patterns_per_sec\":{edt_pps:.1},\
         \"coverage_pct\":{:.2},\"compression_ratio\":{compression:.2}}},",
        external.design,
        opts.flops,
        external.patterns(),
        external.coverage_pct(),
        edt.patterns(),
        edt.coverage_pct(),
    );
    let _ = writeln!(
        json,
        "\"lbist\":{{\"patterns_per_sec\":{lb10_pps:.1},\
         \"coverage_pct_1k\":{cov_1k:.2},\"coverage_pct_10k\":{cov_10k:.2}}}}}",
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("bist_bench: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("  wrote {}", opts.out);

    if skip {
        println!("  quality gates skipped (BIST_BENCH_SKIP_CHECK set)");
        return ExitCode::SUCCESS;
    }
    if compression < COMPRESSION_FLOOR {
        eprintln!(
            "bist_bench: REGRESSION — EDT compression ratio is only \
             {compression:.1}x (floor {COMPRESSION_FLOOR}x; set \
             BIST_BENCH_SKIP_CHECK=1 to bypass)"
        );
        return ExitCode::FAILURE;
    }
    if cov_10k < cov_1k {
        eprintln!(
            "bist_bench: REGRESSION — LBIST coverage dropped from {cov_1k:.2}% \
             at 1k patterns to {cov_10k:.2}% at 10k; a bigger pseudo-random \
             budget must never lose detections"
        );
        return ExitCode::FAILURE;
    }
    if let Some(baseline) = &opts.check {
        return check_regression(baseline, &opts, compression, cov_1k, cov_10k);
    }
    ExitCode::SUCCESS
}

/// Compares the deterministic quality numbers against the committed
/// baseline: compression ratio and LBIST coverage are seed-determined,
/// so a drop is a real delivery-quality change, not machine noise.
fn check_regression(
    path: &str,
    opts: &Options,
    compression: f64,
    cov_1k: f64,
    cov_10k: f64,
) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bist_bench: cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if extract_number(&text, "\"flops_per_domain\":").is_some_and(|b| b as usize != opts.flops) {
        println!(
            "  baseline {path} was produced with a different config — \
             regression check skipped; regenerate the baseline"
        );
        return ExitCode::SUCCESS;
    }
    let checks = [
        ("\"compression_ratio\":", compression, RATIO_TOLERANCE, "x"),
        ("\"coverage_pct_1k\":", cov_1k, 0.0, "%"),
        ("\"coverage_pct_10k\":", cov_10k, 0.0, "%"),
    ];
    for (key, fresh, rel_tol, unit) in checks {
        let Some(base) = extract_number(&text, key) else {
            eprintln!("bist_bench: no {key} in baseline {path}");
            return ExitCode::FAILURE;
        };
        // Coverage floors are absolute points; the ratio floor is
        // relative.
        let floor = if rel_tol > 0.0 {
            base * (1.0 - rel_tol)
        } else {
            base - COVERAGE_TOLERANCE_PTS
        };
        println!("  {key} fresh {fresh:.2}{unit} vs baseline {base:.2}{unit} (floor {floor:.2})");
        if fresh < floor {
            eprintln!(
                "bist_bench: REGRESSION — {key} dropped below the committed \
                 baseline (set BIST_BENCH_SKIP_CHECK=1 to bypass)"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Parses the number following the first occurrence of `key`.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(key)? + key.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
