//! # occ-server — the concurrent TestFlow job service
//!
//! The flow crate made one pipeline run cheap to *express*; this crate
//! makes many runs cheap to *execute*. Production test generation is a
//! job stream — the same design swept across clocking modes, the same
//! mode across design revisions, many engineers against one compute
//! budget — and almost all of the per-job cost outside ATPG proper is
//! recompiling artifacts that have not changed: the netlist and its
//! levelized simulation graph, the capture procedures, the delay
//! table.
//!
//! Three layers, each usable on its own:
//!
//! * [`ArtifactCache`] — sharded, byte-budgeted, content-addressed:
//!   compiled artifacts keyed by stable FNV-1a hashes of what produced
//!   them, handed out as `Arc` clones, concurrent builds of one key
//!   deduplicated via per-shard condvars, LRU eviction that can never
//!   invalidate an in-flight job (it holds its own `Arc`).
//! * [`FlowService`] — the in-process API: [`FlowService::submit`]
//!   runs one [`JobSpec`] against the cache and returns a
//!   [`JobOutcome`] whose report is **byte-identical** to a cold
//!   in-process run — warm jobs skip every compile stage
//!   ([`TestFlow::artifacts`](occ_flow::TestFlow::artifacts) routes
//!   the cached `Arc`s past them). `occ-bench`'s Table-1 sweep and the
//!   `delay_test_flow` example ride this directly.
//! * [`serve`] — the daemon: newline-delimited JSON over TCP
//!   ([`proto`] documents the line format), a fixed [`JobPool`] worker
//!   budget shared by all connections, typed protocol errors built on
//!   [`FlowError`](occ_flow::FlowError).
//!
//! The daemon is built to degrade, not collapse: per-job deadlines and
//! cooperative cancellation (`deadline_ms` → a
//! [`CancelToken`](occ_flow::CancelToken) checked at every flow stage
//! and inside the ATPG/fault-sim batch loops), admission control that
//! sheds load with a typed `overloaded` + `retry_after_ms` hint before
//! queues grow unbounded, bounded request framing, and a graceful
//! drain (`shutdown` finishes queued jobs under a deadline while new
//! work draws `shutting-down`). The [`faults`] module provides the
//! seeded, deterministic fault-injection plan the chaos suite and the
//! degraded-mode bench use to prove all of this; [`request_with_retry`]
//! is the matching client-side retry/backoff contract.
//!
//! ## Example
//!
//! ```
//! use occ_server::{FlowService, JobSpec};
//! use occ_soc::SocConfig;
//! use occ_atpg::AtpgOptions;
//!
//! let service = FlowService::new(0);
//! let mut job = JobSpec::new(SocConfig::tiny(1));
//! job.clocking = occ_core::ClockingMode::SimpleCpf;
//! job.atpg = AtpgOptions { random_patterns: 32, backtrack_limit: 12,
//!                          ..AtpgOptions::default() };
//! let cold = service.submit(&job).unwrap();
//! let warm = service.submit(&job).unwrap();
//! assert!(!cold.warm && warm.warm);
//! let (a, b) = (cold.report.unwrap(), warm.report.unwrap());
//! assert_eq!(a.coverage, b.coverage);
//! assert_eq!(a.result.patterns.patterns(), b.result.patterns.patterns());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod design;
pub mod faults;
pub mod hash;
pub mod json;
pub mod pool;
pub mod proto;
pub mod server;
mod service;

pub use cache::{Artifact, ArtifactCache, ArtifactKind, CacheStats, KindCounters, SHARDS};
pub use design::{design_hash, DesignArtifact};
pub use faults::{cooperative_delay, FaultAction, FaultPlan, Trigger};
pub use hash::{hex, Fnv64};
pub use json::{Json, JsonError};
pub use pool::JobPool;
pub use proto::{
    error_line, health_line, job_line, parse_request, run_job, run_job_with_cancel, stats_line,
    ProtoError, ReportFormat, Request,
};
pub use server::{request, request_with_retry, serve, RetryPolicy, ServerConfig, ServerHandle};
pub use service::{DesignAnalysis, FlowService, JobCacheStats, JobOutcome, JobSpec};
