//! End-to-end observability: the `metrics` wire op serves the full
//! catalog with live counters, `stats` carries cumulative per-op and
//! error tallies, and identical warm jobs move the registry by
//! identical deltas.
//!
//! The metric registry is process-global, so everything registry-
//! sensitive runs inside one test function, sequentially.

use occ_core::ClockingMode;
use occ_server::{request, serve, FlowService, JobSpec, Json, ServerConfig};
use occ_soc::SocConfig;

#[test]
fn metrics_stats_and_warm_job_deltas() {
    let mut server = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_budget: 0,
        ..ServerConfig::default()
    })
    .expect("bind on an ephemeral port");
    let addr = server.addr();

    // One traced flow job, then scrape.
    let flow_line = r#"{"op":"flow","design":{"preset":"tiny","seed":5},"clocking":"simple-cpf","random_patterns":32,"backtrack_limit":12,"trace":true}"#;
    let response = request(addr, flow_line).unwrap();
    let v = Json::parse(&response).unwrap();
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    assert!(
        v.get("report").unwrap().get("trace").is_some(),
        "trace:true reply carries the span tree"
    );

    let scrape = request(addr, r#"{"op":"metrics"}"#).unwrap();
    let v = Json::parse(&scrape).unwrap();
    assert_eq!(v.get("op").and_then(Json::as_str), Some("metrics"));
    let text = v
        .get("exposition")
        .and_then(Json::as_str)
        .expect("metrics reply carries the exposition");

    // The catalog is complete (every family present with HELP/TYPE)
    // and the flow moved the kernel and cache counters off zero.
    for family in [
        "occ_kernel_faults_graded_total",
        "occ_kernel_events_total",
        "occ_atpg_decisions_total",
        "occ_atpg_podem_calls_total",
        "occ_cache_hits_total",
        "occ_cache_misses_total",
        "occ_requests_total",
        "occ_request_errors_total",
        "occ_request_latency_seconds",
        "occ_flow_stage_seconds",
        "occ_jobs_pending",
        "occ_cache_resident_bytes",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family}")),
            "{family} in catalog"
        );
    }
    let series_value = |needle: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(needle))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("series {needle} present and numeric"))
    };
    assert!(series_value("occ_kernel_faults_graded_total") > 0.0);
    assert!(series_value("occ_kernel_events_total") > 0.0);
    assert!(series_value(r#"occ_cache_misses_total{kind="design"}"#) > 0.0);
    assert!(series_value(r#"occ_requests_total{op="flow"}"#) > 0.0);

    // `stats` reports the same cumulative tallies as JSON objects:
    // the flow and metrics requests above are already counted.
    let stats = request(addr, r#"{"op":"stats"}"#).unwrap();
    let v = Json::parse(&stats).unwrap();
    let ops = v.get("ops").expect("stats carries per-op counts");
    assert!(ops.get("flow").and_then(Json::as_u64).unwrap() >= 1);
    assert!(ops.get("metrics").and_then(Json::as_u64).unwrap() >= 1);
    let errors = v.get("errors").expect("stats carries error tallies");
    let before_bad = errors.get("bad-request").and_then(Json::as_u64).unwrap();
    let bad = request(addr, r#"{"op":"no-such-op"}"#).unwrap();
    assert_eq!(
        Json::parse(&bad).unwrap().get("ok").and_then(Json::as_bool),
        Some(false)
    );
    let stats = request(addr, r#"{"op":"stats"}"#).unwrap();
    let after_bad = Json::parse(&stats)
        .unwrap()
        .get("errors")
        .unwrap()
        .get("bad-request")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(after_bad, before_bad + 1);
    server.shutdown();

    // Warm-job determinism, in-process: after a cold run, two
    // identical warm jobs move every counter by the same delta.
    let service = FlowService::new(0);
    let mut job = JobSpec::new(SocConfig::tiny(11));
    job.clocking = ClockingMode::SimpleCpf;
    job.atpg.random_patterns = 32;
    job.atpg.backtrack_limit = 12;
    service.submit(&job).unwrap(); // cold: compiles + caches the design

    let m = occ_obs::metrics();
    let snap0 = m.registry.snapshot();
    service.submit(&job).unwrap();
    let snap1 = m.registry.snapshot();
    service.submit(&job).unwrap();
    let snap2 = m.registry.snapshot();

    // Timing-valued series differ run to run; everything counting
    // discrete work must not. (`_bucket` placement and `_sum` depend
    // on wall time, `_count` does not.)
    let counters_only = |d: std::collections::BTreeMap<String, f64>| {
        d.into_iter()
            .filter(|(k, _)| !k.contains("_bucket") && !k.contains("_sum"))
            .collect::<std::collections::BTreeMap<_, _>>()
    };
    let d1 = counters_only(snap1.delta(&snap0));
    let d2 = counters_only(snap2.delta(&snap1));
    assert_eq!(d1, d2, "identical warm jobs must move identical counters");
    assert_eq!(
        d1.get(r#"occ_cache_hits_total{kind="design"}"#),
        Some(&1.0),
        "warm jobs hit the design cache"
    );
    assert!(!d1.contains_key(r#"occ_cache_misses_total{kind="design"}"#));
    // Histogram counts (not sums) are part of the deterministic delta:
    // each warm job observes each run stage exactly once.
    assert!(d1
        .keys()
        .any(|k| k.starts_with("occ_flow_stage_seconds_count")));
}
