//! The full delay-test flow on a generated SOC: compare the idealized
//! external clock (experiment (b)) against the simple on-chip CPF
//! clocking (experiment (c)) and the enhanced CPF (experiment (d)) —
//! the paper's central comparison — each with the slack-aware
//! delay-test-quality stage enabled, so the summary shows both axes:
//! logical coverage *and* the quality (SDQL / weighted coverage) of
//! those detections under each clocking scheme's capture window.
//!
//! The three runs go through an in-process
//! [`occ::server::FlowService`]: the SOC is generated and its
//! simulation graph compiled exactly once (the first job), and the
//! later clocking modes reuse the cached artifacts — the per-mode
//! cache lines in the output show which compile stages each job
//! skipped.
//!
//! Run with:
//! `cargo run --release --example delay_test_flow [-- --threads N] [--atpg-engine E] [--lint]`
//!
//! `--threads N` routes the run through the sharded fault-sim engine
//! with `N` workers; the default uses all available parallelism.
//! `--atpg-engine reference|compiled` selects the PODEM engine
//! (identical results; `compiled` — the default — is faster).
//! `--lint` gates each flow behind the static design-rule /
//! testability analysis (deny gate) and skips PODEM searches for
//! faults the linter proves structurally untestable — coverage and
//! pattern sets are unchanged.

use occ::core::ClockingMode;
use occ::flow::{AtpgEngineChoice, EngineChoice, FaultKind, LintGate};
use occ::server::{FlowService, JobSpec};
use occ::soc::SocConfig;

fn main() {
    let mut engine = EngineChoice::Auto;
    let mut atpg_engine = AtpgEngineChoice::Compiled;
    let mut lint = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
                engine = EngineChoice::Sharded { threads };
            }
            "--atpg-engine" => {
                atpg_engine = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--atpg-engine needs reference|compiled");
            }
            "--lint" => lint = true,
            other => panic!(
                "unknown argument '{other}' (expected --threads N, --atpg-engine E or --lint)"
            ),
        }
    }

    let service = FlowService::new(0);
    let design = SocConfig::paper_like(7, 60);
    let job_for = |mode: ClockingMode, mask_bidi: bool| {
        let mut job = JobSpec::new(design.clone());
        job.clocking = mode;
        job.fault_model = FaultKind::Transition;
        job.mask_bidi = mask_bidi;
        job.engine = engine;
        job.atpg_engine = atpg_engine;
        job.timing = true;
        job.lint = lint.then_some(LintGate::Deny);
        job
    };

    let mut rows = Vec::new();
    for (label, mode, mask_bidi) in [
        (
            "(b) external clock (ideal)",
            ClockingMode::ExternalClock { max_pulses: 4 },
            false,
        ),
        ("(c) simple 2-pulse CPF", ClockingMode::SimpleCpf, true),
        (
            "(d) enhanced CPF",
            ClockingMode::EnhancedCpf { max_pulses: 4 },
            true,
        ),
    ] {
        let outcome = match service.submit(&job_for(mode, mask_bidi)) {
            Ok(outcome) => outcome,
            Err(e) => {
                // e.g. --threads 0 -> the typed FlowError::ZeroThreads.
                eprintln!("flow error: {e}");
                std::process::exit(2);
            }
        };
        if rows.is_empty() {
            // First job compiled (and cached) the design: print its
            // structural summary once.
            let a = &outcome.analysis;
            println!(
                "SOC: {} cells, {} flops ({} scan), {} domains, \
                 compiled graph ~{} KiB",
                a.cells,
                a.flops,
                a.scan_flops,
                a.domains,
                a.graph_bytes / 1024,
            );
        }
        let report = outcome.report.expect("flow jobs carry a report");
        println!(
            "\n{label}: {} capture procedures ({} engine x{}, {} atpg)",
            report.procedures, report.engine, report.threads, report.atpg_engine
        );
        println!(
            "   coverage {:.2}%  patterns {}  efficiency {:.2}%  ({:.1}s)",
            report.coverage_pct(),
            report.patterns(),
            report.efficiency_pct(),
            report.total_seconds()
        );
        let hit = |h: Option<bool>| match h {
            Some(true) => "hit",
            Some(false) => "miss",
            None => "-",
        };
        println!(
            "   cache: design {}, procedures {}, delays {}{}",
            hit(Some(outcome.cache.design_hit)),
            hit(outcome.cache.procedures_hit),
            hit(outcome.cache.delays_hit),
            if outcome.warm {
                " (warm: no compile stage ran)"
            } else {
                ""
            },
        );
        for (class, n) in &report.coverage.class_histogram {
            println!("   leftover {class}: {n}");
        }
        if let Some(lint) = &report.lint {
            println!(
                "   lint [{}]: {} error(s), {} warning(s), {} untestable, \
                 {} PODEM searches skipped",
                lint.gate,
                lint.report.errors(),
                lint.report.warnings(),
                lint.report.untestable.len(),
                report.result.stats.lint_pruned,
            );
        }
        let q = report.delay_quality.as_ref().expect("timing stage ran");
        let window = q.windows.iter().map(|w| w.window_ps).min().unwrap_or(0);
        println!(
            "   delay quality: window {} ps, weighted coverage {:.2}%, SDQL {:.3}",
            window, q.weighted_coverage_pct, q.sdql
        );
        rows.push((
            label,
            report.coverage_pct(),
            report.patterns(),
            q.weighted_coverage_pct,
            q.sdql,
        ));
    }

    println!("\nsummary (the paper's Table 1 shape, plus the quality axis):");
    for (label, cov, pats, wcov, sdql) in &rows {
        println!(
            "  {label:<28} coverage {cov:>6.2}%  patterns {pats:<5} \
             weighted {wcov:>6.2}%  SDQL {sdql:>8.3}"
        );
    }
    let ideal = rows[0].1;
    let simple = rows[1].1;
    let enhanced = rows[2].1;
    assert!(
        simple < ideal,
        "on-chip clocking must lose coverage vs the ideal reference"
    );
    assert!(enhanced >= simple, "the enhanced CPF must recover coverage");
    // The paper's quality axis: the external clock detects *more*
    // faults logically, but through a 40 ns tester window — the
    // at-speed CPF screens far more of the functionally relevant delay
    // defects despite its lower logical coverage.
    let (ideal_w, ideal_sdql) = (rows[0].3, rows[0].4);
    let (simple_w, simple_sdql) = (rows[1].3, rows[1].4);
    assert!(
        simple_w > ideal_w,
        "at-speed CPF must beat the slow external clock on weighted coverage"
    );
    assert!(
        simple_sdql < ideal_sdql,
        "at-speed CPF must beat the slow external clock on SDQL"
    );
    let stats = service.cache_stats();
    println!(
        "\nok: simple CPF loses logical coverage but wins the delay-quality \
         axis; enhanced CPF recovers coverage \
         (design compiled once: {} miss / {} hits)",
        stats.design.misses, stats.design.hits,
    );
}
