//! Structural fault grouping — the paper's §6 future work, implemented.
//!
//! "An attempt will be made to classify and group these faults as
//! non-functional scan path, low-speed and other faults that cannot
//! cause the device to fail at-speed operation." For every fault left
//! undetected, a one-frame cone analysis explains *why* the clocking
//! mode could not cover it: only observable through masked POs, only
//! launchable from held PIs, crossing clock domains, or depending on
//! uninitialized non-scan/RAM state.

use occ_fault::{FaultClass, FaultList};
use occ_fsim::CaptureModel;
use occ_netlist::CellKind;

/// Per-cell structural summary used for fault grouping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConeSummary {
    /// Bitmask of domains whose flops appear in the fan-in cone (launch
    /// sources within one frame).
    pub launch_domains: u64,
    /// Bitmask of domains whose *scan* flops appear in the fan-out cone
    /// (capture sinks within one frame).
    pub capture_domains: u64,
    /// A free primary input feeds the cone.
    pub pi_in_fanin: bool,
    /// A non-scan flop feeds the cone.
    pub nonscan_in_fanin: bool,
    /// A RAM read port feeds the cone.
    pub ram_in_fanin: bool,
    /// The fan-out cone reaches a primary output.
    pub reaches_po: bool,
    /// The fan-out cone reaches a non-scan flop (state sink only).
    pub nonscan_sink: bool,
}

/// Computes fan-in/fan-out summaries for every cell (one-frame depth:
/// cones stop at sequential boundaries).
pub fn cone_summaries(model: &CaptureModel<'_>) -> Vec<ConeSummary> {
    let nl = model.netlist();
    let n = nl.len();
    let mut s = vec![ConeSummary::default(); n];

    let free_pi: std::collections::HashSet<_> = model.free_pis().iter().copied().collect();

    // Fan-in pass in topological order.
    for id in nl.ids() {
        let cell = nl.cell(id);
        let idx = id.index();
        match cell.kind() {
            CellKind::Input => {
                s[idx].pi_in_fanin = free_pi.contains(&id);
            }
            CellKind::RamOut { .. } => {
                s[idx].ram_in_fanin = true;
            }
            k if k.is_flop() => {
                if let Some(fi) = model.flop_index(id) {
                    let info = model.flops()[fi];
                    s[idx].launch_domains |= 1 << info.domain;
                    if !info.is_scan {
                        s[idx].nonscan_in_fanin = true;
                    }
                }
            }
            _ => {}
        }
    }
    for &id in nl.levelization().order() {
        let cell = nl.cell(id);
        let mut acc = s[id.index()];
        for &i in cell.inputs() {
            let si = s[i.index()];
            acc.launch_domains |= si.launch_domains;
            acc.pi_in_fanin |= si.pi_in_fanin;
            acc.nonscan_in_fanin |= si.nonscan_in_fanin;
            acc.ram_in_fanin |= si.ram_in_fanin;
        }
        s[id.index()] = acc;
    }

    // Fan-out pass in reverse topological order.
    let mut order: Vec<_> = nl.levelization().order().to_vec();
    order.reverse();
    // Seed sinks.
    for (id, cell) in nl.iter() {
        match cell.kind() {
            CellKind::Output => s[id.index()].reaches_po = true,
            k if k.is_flop() => {
                if let Some(fi) = model.flop_index(id) {
                    let info = model.flops()[fi];
                    // The flop's D pin drives capture into its domain.
                    // Recorded on the flop itself; propagated below via
                    // the D input edge.
                    if info.is_scan {
                        s[id.index()].capture_domains |= 1 << info.domain;
                    } else {
                        s[id.index()].nonscan_sink = true;
                    }
                }
            }
            _ => {}
        }
    }
    // Push sink info backwards: a cell inherits the sinks of every cell
    // it feeds. Iterate a few times to cover comb + flop-D edges (the
    // netlist is levelized, one reverse pass over comb plus one edge
    // hop into flops suffices when applied twice).
    for _ in 0..2 {
        let snapshot = s.clone();
        for (id, cell) in nl.iter() {
            // `id` feeds each of its inputs' fanout sets; equivalently,
            // each input inherits from `id`.
            let kind = cell.kind();
            for (pin, &src) in cell.inputs().iter().enumerate() {
                let inherit = match kind {
                    k if k.is_flop() => {
                        // Only the data-path pins propagate effects.
                        if pin == 0 || (k.is_scan_flop() && pin == 3) {
                            ConeSummary {
                                capture_domains: snapshot[id.index()].capture_domains,
                                reaches_po: false,
                                nonscan_sink: snapshot[id.index()].nonscan_sink,
                                ..ConeSummary::default()
                            }
                        } else {
                            continue;
                        }
                    }
                    CellKind::Output => ConeSummary {
                        reaches_po: true,
                        ..ConeSummary::default()
                    },
                    _ if kind.is_combinational() => ConeSummary {
                        capture_domains: snapshot[id.index()].capture_domains,
                        reaches_po: snapshot[id.index()].reaches_po,
                        nonscan_sink: snapshot[id.index()].nonscan_sink,
                        ..ConeSummary::default()
                    },
                    _ => continue,
                };
                let t = &mut s[src.index()];
                t.capture_domains |= inherit.capture_domains;
                t.reaches_po |= inherit.reaches_po;
                t.nonscan_sink |= inherit.nonscan_sink;
            }
        }
        // Comb backward closure within the snapshot round.
        for &id in &order {
            let cell = nl.cell(id);
            let me = s[id.index()];
            for &src in cell.inputs() {
                let t = &mut s[src.index()];
                t.capture_domains |= me.capture_domains;
                t.reaches_po |= me.reaches_po;
                t.nonscan_sink |= me.nonscan_sink;
            }
        }
    }
    s
}

/// Assigns a [`FaultClass`] to every non-detected fault in `list` based
/// on the cone summaries — the grouping report of the paper's
/// conclusions.
pub fn classify_faults(model: &CaptureModel<'_>, list: &mut FaultList) {
    let summaries = cone_summaries(model);
    let faults: Vec<_> = list
        .iter()
        .filter(|(_, st)| !st.is_detected())
        .map(|(f, _)| f)
        .collect();
    for fault in faults {
        let node = fault.site().effect_cell();
        let s = summaries[node.index()];
        let class = if s.capture_domains == 0 && s.reaches_po {
            FaultClass::PoMaskedOnly
        } else if s.capture_domains != 0
            && s.launch_domains != 0
            && s.capture_domains & s.launch_domains == 0
        {
            FaultClass::CrossDomain
        } else if s.launch_domains == 0 && s.pi_in_fanin {
            FaultClass::PiHeldOnly
        } else if s.nonscan_in_fanin {
            FaultClass::NonScanDependent
        } else if s.ram_in_fanin {
            FaultClass::RamDependent
        } else {
            FaultClass::Plain
        };
        list.set_class(fault, class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_fault::{FaultStatus, FaultUniverse};
    use occ_fsim::ClockBinding;
    use occ_netlist::{Logic, NetlistBuilder};

    #[test]
    fn classes_reflect_structure() {
        // g_po: only reaches a PO. g_x: launches from domain A, captured
        // in domain B only. g_ns: fed by a non-scan flop.
        let mut b = NetlistBuilder::new("t");
        let cka = b.input("cka");
        let ckb = b.input("ckb");
        let se = b.input("se");
        let si = b.input("si");
        let d = b.input("d");
        let fa = b.sdff(d, cka, se, si);
        let nf = b.dff(d, cka);
        let g_po = b.not(fa);
        b.output("po", g_po);
        let g_x = b.buf(fa);
        let _fb = b.sdff(g_x, ckb, se, si);
        let g_ns = b.and2(nf, fa);
        let _fc = b.sdff(g_ns, cka, se, si);
        let nl = b.finish().unwrap();

        let mut binding = ClockBinding::new();
        binding.add_domain("a", cka);
        binding.add_domain("b", ckb);
        binding.constrain(se, Logic::Zero);
        binding.mask(si);
        let model = CaptureModel::new(&nl, binding).unwrap();
        let mut list = FaultList::new(FaultUniverse::transition(&nl));
        classify_faults(&model, &mut list);

        use occ_fault::{Fault, FaultSite, Polarity};
        let f_po = Fault::transition(FaultSite::Output(g_po), Polarity::P0);
        assert_eq!(list.class(f_po), Some(FaultClass::PoMaskedOnly));
        let f_x = Fault::transition(FaultSite::Output(g_x), Polarity::P0);
        assert_eq!(list.class(f_x), Some(FaultClass::CrossDomain));

        // Mark one fault detected: it must not show in the histogram.
        list.set_status(f_po, FaultStatus::Detected { pattern: 0 });
        let report = list.report();
        assert!(report
            .class_histogram
            .get(&FaultClass::PoMaskedOnly)
            .is_none_or(|&n| n < 2));
        assert!(report.class_histogram[&FaultClass::CrossDomain] >= 1);
    }
}
