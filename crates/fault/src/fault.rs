//! Fault model types.

use occ_netlist::CellId;
use std::fmt;

/// Which fault model a fault belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultModel {
    /// Permanent stuck-at fault (static defect).
    StuckAt,
    /// Transition (gate-delay) fault: the node is slow to switch.
    Transition,
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::StuckAt => f.write_str("stuck-at"),
            FaultModel::Transition => f.write_str("transition"),
        }
    }
}

/// The faulted polarity.
///
/// For stuck-at faults this is the stuck value. For transition faults it
/// is the value the node is *stuck near*: a slow-to-rise fault behaves
/// like a temporary stuck-at-0 in the capture cycle, so `P0` ≙
/// slow-to-rise and `P1` ≙ slow-to-fall — the standard broadside
/// mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// Stuck-at-0 / slow-to-rise.
    P0,
    /// Stuck-at-1 / slow-to-fall.
    P1,
}

impl Polarity {
    /// The boolean value of the faulty node.
    pub fn to_bool(self) -> bool {
        matches!(self, Polarity::P1)
    }

    /// The opposite polarity.
    pub fn inverted(self) -> Polarity {
        match self {
            Polarity::P0 => Polarity::P1,
            Polarity::P1 => Polarity::P0,
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::P0 => f.write_str("0"),
            Polarity::P1 => f.write_str("1"),
        }
    }
}

/// A gate terminal: either a cell's output net or one of its input pins
/// (a fanout branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// The output of `cell` (the net it drives, including the stem of a
    /// fanout).
    Output(CellId),
    /// Input pin `pin` of `cell` (one branch of the driver's fanout).
    Input {
        /// The consuming cell.
        cell: CellId,
        /// The pin index on that cell.
        pin: u8,
    },
}

impl FaultSite {
    /// The cell the fault effect propagates *from*: for an output fault
    /// the cell itself, for an input-pin fault the consuming cell.
    pub fn effect_cell(self) -> CellId {
        match self {
            FaultSite::Output(c) => c,
            FaultSite::Input { cell, .. } => cell,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Output(c) => write!(f, "{c}"),
            FaultSite::Input { cell, pin } => write!(f, "{cell}.{pin}"),
        }
    }
}

/// A single fault: model, site and polarity.
///
/// # Examples
///
/// ```
/// use occ_fault::{Fault, FaultModel, FaultSite, Polarity};
/// use occ_netlist::CellId;
///
/// let f = Fault::new(FaultModel::Transition, FaultSite::Output(CellId::from_index(3)), Polarity::P0);
/// assert_eq!(f.to_string(), "transition c3 str"); // slow-to-rise
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    site: FaultSite,
    polarity: Polarity,
    model: FaultModel,
}

impl Fault {
    /// Creates a fault.
    pub fn new(model: FaultModel, site: FaultSite, polarity: Polarity) -> Self {
        Fault {
            site,
            polarity,
            model,
        }
    }

    /// Shorthand for a stuck-at fault.
    pub fn stuck(site: FaultSite, polarity: Polarity) -> Self {
        Fault::new(FaultModel::StuckAt, site, polarity)
    }

    /// Shorthand for a transition fault (`P0` = slow-to-rise).
    pub fn transition(site: FaultSite, polarity: Polarity) -> Self {
        Fault::new(FaultModel::Transition, site, polarity)
    }

    /// The faulted terminal.
    pub fn site(self) -> FaultSite {
        self.site
    }

    /// The fault polarity.
    pub fn polarity(self) -> Polarity {
        self.polarity
    }

    /// The fault model.
    pub fn model(self) -> FaultModel {
        self.model
    }

    /// The same site/polarity reinterpreted under another model — used
    /// to derive the transition list from the collapsed stuck-at list.
    pub fn with_model(self, model: FaultModel) -> Self {
        Fault { model, ..self }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.model {
            FaultModel::StuckAt => write!(f, "stuck-at {} sa{}", self.site, self.polarity),
            FaultModel::Transition => write!(
                f,
                "transition {} {}",
                self.site,
                match self.polarity {
                    Polarity::P0 => "str",
                    Polarity::P1 => "stf",
                }
            ),
        }
    }
}

/// Ordering key used by hash-free data structures; public for reuse in
/// the fault simulator's dense tables.
pub(crate) fn site_key(site: FaultSite) -> (usize, u8, u8) {
    match site {
        FaultSite::Output(c) => (c.index(), 0, 0),
        FaultSite::Input { cell, pin } => (cell.index(), 1, pin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let c = CellId::from_index(7);
        assert_eq!(
            Fault::stuck(FaultSite::Output(c), Polarity::P1).to_string(),
            "stuck-at c7 sa1"
        );
        assert_eq!(
            Fault::transition(FaultSite::Input { cell: c, pin: 2 }, Polarity::P1).to_string(),
            "transition c7.2 stf"
        );
    }

    #[test]
    fn model_reinterpretation_preserves_site() {
        let c = CellId::from_index(1);
        let f = Fault::stuck(FaultSite::Output(c), Polarity::P0);
        let t = f.with_model(FaultModel::Transition);
        assert_eq!(t.site(), f.site());
        assert_eq!(t.polarity(), f.polarity());
        assert_eq!(t.model(), FaultModel::Transition);
    }

    #[test]
    fn polarity_inversion() {
        assert_eq!(Polarity::P0.inverted(), Polarity::P1);
        assert!(!Polarity::P0.to_bool());
        assert!(Polarity::P1.to_bool());
    }

    #[test]
    fn site_keys_are_distinct() {
        let c = CellId::from_index(4);
        let k1 = site_key(FaultSite::Output(c));
        let k2 = site_key(FaultSite::Input { cell: c, pin: 0 });
        assert_ne!(k1, k2);
    }
}
