//! Strongly-typed identifiers for netlist entities.

use std::fmt;

/// Identifier of a cell in a [`Netlist`](crate::Netlist) arena.
///
/// Because every cell drives exactly one output signal, a `CellId` also
/// identifies that signal: "the net driven by cell 42" and "cell 42" are
/// the same handle. Ids are dense indices assigned in creation order.
///
/// # Examples
///
/// ```
/// use occ_netlist::NetlistBuilder;
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// assert_eq!(a.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(u32);

impl CellId {
    /// Crate-internal const constructor (used for sentinels).
    pub(crate) const fn from_raw(raw: u32) -> Self {
        CellId(raw)
    }

    /// Creates an id from a raw index.
    ///
    /// Intended for deserialization and for iteration over dense tables;
    /// an id made from an out-of-range index will cause panics when used
    /// against a netlist.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        CellId(u32::try_from(index).expect("cell index exceeds u32 range"))
    }

    /// Returns the dense index of this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let id = CellId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "c17");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CellId::from_index(1) < CellId::from_index(2));
    }
}
