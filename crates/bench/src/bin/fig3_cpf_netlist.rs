//! Reproduces Figure 3: the clock pulse filter schematic.
//!
//! Prints the gate list; `--verilog` and `--dot` print the structural
//! Verilog and Graphviz form.

use occ_bench::fig3_report;

fn main() {
    let (text, verilog, dot) = fig3_report();
    println!("{text}");
    if std::env::args().any(|a| a == "--verilog") {
        println!("{verilog}");
    }
    if std::env::args().any(|a| a == "--dot") {
        println!("{dot}");
    }
}
