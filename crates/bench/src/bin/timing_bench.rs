//! STA throughput benchmark and regression gate — the timing-side
//! sibling of `fsim_bench` / `atpg_bench`.
//!
//! Runs the retained naive [`occ_timing::reference_arrivals`] and the
//! compiled [`occ_timing::Sta`] over the seeded Table-1 SOC,
//! cross-checks that the arrival tables are identical, and times both;
//! then grades a strided transition-fault sample through the **timed**
//! PPSFP detect path (timing view attached) under the counting
//! allocator. Results land in `BENCH_timing.json` so the perf
//! trajectory is tracked in-repo.
//!
//! ```text
//! timing_bench [--flops N] [--passes N] [--faults N]
//!              [--out PATH] [--check BASELINE.json]
//! ```
//!
//! Two gates:
//!
//! * **Allocation** (hardware-independent, always on): after warm-up
//!   the timed detect path must stay O(1) allocations per fault —
//!   capped at [`MAX_ALLOCS_PER_FAULT`].
//! * **Speedup ratio** (with `--check`): the compiled-vs-reference STA
//!   passes/sec ratio — both engines produce identical arrivals on the
//!   same machine, so the ratio cancels out machine speed — must not
//!   regress more than 20% against the committed baseline.
//!   `TIMING_BENCH_SKIP_CHECK` bypasses it on cold machines; the
//!   arrival cross-check always runs.

#[path = "../alloc_track.rs"]
mod alloc_track;

#[global_allocator]
static ALLOC: alloc_track::CountingAlloc = alloc_track::CountingAlloc;

use occ_fault::FaultUniverse;
use occ_fsim::{simulate_good, CaptureModel, FaultSim, FrameSpec, Pattern, SimTiming};
use occ_netlist::{CellKind, Logic};
use occ_sim::DelayModel;
use occ_soc::{generate, SocConfig};
use occ_timing::{reference_arrivals, CaptureTargets, Sta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Allowed speedup-ratio drop vs the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Hard cap on timed-detect allocations per fault after warm-up. The
/// steady state is 0 — all timed scratch is allocated on attach.
const MAX_ALLOCS_PER_FAULT: f64 = 1.0;

struct Options {
    flops: usize,
    passes: usize,
    faults: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        flops: 96,
        passes: 2_000,
        faults: 2_000,
        out: "BENCH_timing.json".to_owned(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--flops" => {
                opts.flops = value("--flops")?
                    .parse()
                    .map_err(|e| format!("--flops: {e}"))?;
            }
            "--passes" => {
                let n: usize = value("--passes")?
                    .parse()
                    .map_err(|e| format!("--passes: {e}"))?;
                if n == 0 {
                    return Err("--passes must be positive".to_owned());
                }
                opts.passes = n;
            }
            "--faults" => {
                let n: usize = value("--faults")?
                    .parse()
                    .map_err(|e| format!("--faults: {e}"))?;
                if n == 0 {
                    return Err("--faults must be positive".to_owned());
                }
                opts.faults = n;
            }
            "--out" => opts.out = value("--out")?,
            "--check" => opts.check = Some(value("--check")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("timing_bench: {e}");
            return ExitCode::from(2);
        }
    };

    let soc = generate(&SocConfig::paper_like(20050307, opts.flops));
    let model =
        CaptureModel::new(soc.netlist(), soc.binding(true)).expect("generated SOC always binds");
    let graph = model.graph();
    let n = graph.cells();
    // A library-like delay model with per-kind and per-cell overrides:
    // the realistic case the compiled flat table exists for (every
    // uncompiled lookup pays mnemonic-keyed HashMap probes).
    let mut delay_model = DelayModel::default();
    delay_model
        .set_kind(CellKind::Nand, 12)
        .set_kind(CellKind::Nor, 14)
        .set_kind(CellKind::Xor, 18)
        .set_kind(CellKind::Xnor, 18)
        .set_kind(CellKind::Mux2, 16)
        .set_kind(CellKind::Not, 6);
    for id in soc.netlist().ids().step_by(17) {
        delay_model.set_cell(id, 11);
    }
    let table = delay_model.compile(soc.netlist());
    let n_domains = model.domain_count();
    let targets = CaptureTargets::all(n_domains);
    println!(
        "timing_bench: {} — {} cells, {} passes, {} faults",
        soc.netlist().name(),
        n,
        opts.passes,
        opts.faults,
    );

    // Correctness gate: compiled arrivals must equal the naive oracle.
    let mut sta = Sta::new(n);
    sta.compute_arrivals(graph, table.as_slice());
    let oracle = reference_arrivals(soc.netlist(), &delay_model);
    if sta.arrivals() != oracle.as_slice() {
        let at = sta.arrivals().iter().zip(&oracle).position(|(a, b)| a != b);
        eprintln!(
            "timing_bench: FATAL — compiled STA arrivals diverge from the \
             reference (first at cell {at:?})"
        );
        return ExitCode::FAILURE;
    }

    // Reference STA throughput (allocates per pass, HashMap lookups).
    let t0 = Instant::now();
    for _ in 0..opts.passes {
        let a = reference_arrivals(soc.netlist(), &delay_model);
        std::hint::black_box(&a);
    }
    let ref_secs = t0.elapsed().as_secs_f64().max(1e-9);

    // Compiled STA throughput (reused buffers, flat delay table) —
    // the identical arrival pass the reference just ran.
    let t0 = Instant::now();
    for _ in 0..opts.passes {
        sta.compute_arrivals(graph, table.as_slice());
        std::hint::black_box(sta.max_arrival());
    }
    let sta_secs = t0.elapsed().as_secs_f64().max(1e-9);
    // The full compute (arrival + departure) feeds the flow; keep the
    // departure pass warm so its cost shows in profiles too.
    sta.compute(graph, table.as_slice(), &targets);

    let ref_passes = opts.passes as f64 / ref_secs;
    let sta_passes = opts.passes as f64 / sta_secs;
    let speedup = sta_passes / ref_passes.max(1e-9);
    println!(
        "  reference STA {ref_passes:>10.1} passes/s ({ref_secs:.3}s)\n  compiled  STA {sta_passes:>10.1} passes/s ({sta_secs:.3}s)\n  \
         compiled vs reference speedup: {speedup:.2}x",
    );

    // Timed detect path: strided transition-fault sample, 64 random
    // patterns, timing view attached. Warm up one full sweep, then
    // measure allocations per fault (must be O(1): the cap is the
    // always-on, hardware-independent gate).
    let universe = FaultUniverse::transition(soc.netlist());
    let all = universe.faults();
    let stride = (all.len() / opts.faults).max(1);
    let faults: Vec<occ_fault::Fault> = all.iter().copied().step_by(stride).collect();
    let domains: Vec<usize> = (0..n_domains).collect();
    let spec = FrameSpec::broadside("loc", &domains, 2)
        .hold_pi(true)
        .observe_po(false);
    let mut rng = StdRng::seed_from_u64(0x0CC);
    let pats: Vec<Pattern> = (0..64)
        .map(|_| {
            let mut p = Pattern::empty(&model, &spec, 0);
            p.fill_x(|| Logic::from_bool(rng.gen_bool(0.5)));
            p
        })
        .collect();
    let good = simulate_good(&model, &spec, &pats);
    let mut fsim = FaultSim::new(&model);
    fsim.attach_timing(Arc::new(SimTiming::new(
        table.as_slice().to_vec(),
        sta.arrivals().to_vec(),
    )));
    let mut detected = 0usize;
    for &f in &faults {
        if fsim.detect(&spec, &good, f) != 0 {
            detected += 1;
        }
    }
    let before = alloc_track::snapshot();
    let t0 = Instant::now();
    for &f in &faults {
        std::hint::black_box(fsim.detect(&spec, &good, f));
        std::hint::black_box(fsim.last_path_ps());
    }
    let timed_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let delta = alloc_track::snapshot().since(before);
    let timed_fps = faults.len() as f64 / timed_secs;
    let allocs_per_fault = delta.allocs as f64 / faults.len() as f64;
    println!(
        "  timed detect  {:>10.0} faults/s  ({} of {} detected, {} allocs, \
         {:.4} allocs/fault, cap {MAX_ALLOCS_PER_FAULT})",
        timed_fps,
        detected,
        faults.len(),
        delta.allocs,
        allocs_per_fault,
    );
    if allocs_per_fault > MAX_ALLOCS_PER_FAULT {
        eprintln!(
            "timing_bench: FATAL — timed detect path allocates \
             {allocs_per_fault:.2} per fault (cap {MAX_ALLOCS_PER_FAULT}); \
             the zero-allocation contract is broken"
        );
        return ExitCode::FAILURE;
    }

    let json = to_json(
        &opts,
        &soc,
        n,
        ref_passes,
        sta_passes,
        speedup,
        faults.len(),
        detected,
        timed_fps,
        allocs_per_fault,
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("timing_bench: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("  wrote {}", opts.out);

    if let Some(baseline) = &opts.check {
        return check_regression(baseline, n, speedup);
    }
    ExitCode::SUCCESS
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    opts: &Options,
    soc: &occ_soc::Soc,
    cells: usize,
    ref_passes: f64,
    sta_passes: f64,
    speedup: f64,
    faults: usize,
    detected: usize,
    timed_fps: f64,
    allocs_per_fault: f64,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"design\":\"{}\",\"cells\":{cells},\"flops_per_domain\":{},\
         \"passes\":{},\"sta\":{{\"reference_passes_per_sec\":{ref_passes:.1},\
         \"compiled_passes_per_sec\":{sta_passes:.1}}},\
         \"timed_detect\":{{\"faults\":{faults},\"detected\":{detected},\
         \"faults_per_sec\":{timed_fps:.1},\"allocs_per_fault\":{allocs_per_fault:.4}}},",
        soc.netlist().name(),
        opts.flops,
        opts.passes,
    );
    match alloc_track::peak_rss_kb() {
        Some(kb) => {
            let _ = write!(out, "\"peak_rss_kb\":{kb},");
        }
        None => {
            let _ = write!(out, "\"peak_rss_kb\":null,");
        }
    }
    let _ = writeln!(out, "\"speedup_compiled_vs_reference\":{speedup:.3}}}");
    out
}

/// Compares the fresh speedup ratio against the committed baseline.
/// Both engines compute identical arrivals on the same machine, so the
/// ratio cancels out machine speed and trips only on a genuine
/// compiled-engine regression.
fn check_regression(path: &str, cells: usize, fresh_ratio: f64) -> ExitCode {
    let skip = std::env::var("TIMING_BENCH_SKIP_CHECK").is_ok_and(|v| !v.is_empty());
    if skip {
        println!("  regression check skipped (TIMING_BENCH_SKIP_CHECK set)");
        return ExitCode::SUCCESS;
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("timing_bench: cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base_cells = extract_number(&text, "\"cells\":");
    if base_cells.is_some_and(|b| b as usize != cells) {
        println!(
            "  baseline {path} was produced with a different config \
             ({:?} vs {cells} cells) — regression check skipped; \
             regenerate the baseline",
            base_cells.map(|b| b as usize)
        );
        return ExitCode::SUCCESS;
    }
    let Some(base_ratio) = extract_number(&text, "\"speedup_compiled_vs_reference\":") else {
        eprintln!("timing_bench: no speedup_compiled_vs_reference in baseline {path}");
        return ExitCode::FAILURE;
    };
    let floor = base_ratio * (1.0 - REGRESSION_TOLERANCE);
    println!(
        "  speedup ratio: fresh {fresh_ratio:.2}x vs baseline {base_ratio:.2}x \
         (floor {floor:.2}x)"
    );
    if fresh_ratio < floor {
        eprintln!(
            "timing_bench: REGRESSION — compiled-vs-reference STA speedup \
             dropped more than {:.0}% below the committed baseline (set \
             TIMING_BENCH_SKIP_CHECK=1 to bypass on cold machines)",
            REGRESSION_TOLERANCE * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Parses the number following the first occurrence of `key`.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(key)? + key.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
