//! # occ-timing — slack-aware delay-test quality
//!
//! The repo's fault-simulation and ATPG layers grade transition faults
//! *logically*: every detection counts the same. The source paper's
//! whole point, though, is that different on-chip clock generation
//! designs change the **capture timing** and therefore the *quality*
//! of the very same logical detection — a transition fault detected
//! through a path with slack `s` screens only delay defects larger
//! than `s`. This crate adds that timing axis:
//!
//! * [`Sta`] — a zero-allocation static timing engine riding the
//!   compiled [`SimGraph`](occ_fsim::SimGraph) with a flat
//!   [`CompiledDelays`](occ_sim::CompiledDelays) table: per-cell
//!   arrival (settle) and departure (remaining path to a capture
//!   point) times under a [`CaptureTargets`] set;
//! * [`reference_arrivals`] — the retained naive STA oracle the
//!   compiled engine is cross-checked and benchmarked against;
//! * [`QualityReport`] — SDQL-style aggregation of per-fault
//!   [`FaultSlack`] data (expected test escapes, weighted coverage,
//!   slack histogram) under the exponential delay-defect size model of
//!   [`QualityOptions`];
//! * the timed PPSFP detect path itself lives in `occ-fsim`
//!   ([`FaultSim::attach_timing`](occ_fsim::FaultSim::attach_timing)
//!   consumes an [`occ_fsim::SimTiming`] view built from this crate's
//!   tables); `occ-flow` wires everything into
//!   `TestFlow::timing(..)` and the `delay_quality` report block.
//!
//! `tests/timing_equivalence.rs` (workspace root) pins the STA arrival
//! times against the event-driven simulator's settled waveforms under
//! the same `DelayModel`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod quality;
mod reference;
mod sta;

pub use quality::{FaultSlack, ProcWindow, QualityOptions, QualityReport};
pub use reference::reference_arrivals;
pub use sta::{CaptureTargets, Sta};
