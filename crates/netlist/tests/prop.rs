//! Property-based tests for the netlist kernel: logic algebra laws and
//! structural invariants of randomly built netlists.

use occ_netlist::{CellKind, Logic, NetlistBuilder};
use proptest::prelude::*;

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop_oneof![
        Just(Logic::Zero),
        Just(Logic::One),
        Just(Logic::X),
        Just(Logic::Z),
    ]
}

proptest! {
    /// AND/OR are commutative and associative for all 4 values.
    #[test]
    fn and_or_comm_assoc(a in arb_logic(), b in arb_logic(), c in arb_logic()) {
        prop_assert_eq!(a & b, b & a);
        prop_assert_eq!(a | b, b | a);
        prop_assert_eq!((a & b) & c, a & (b & c));
        prop_assert_eq!((a | b) | c, a | (b | c));
    }

    /// XOR is commutative/associative for all 4 values.
    #[test]
    fn xor_comm_assoc(a in arb_logic(), b in arb_logic(), c in arb_logic()) {
        prop_assert_eq!(a ^ b, b ^ a);
        prop_assert_eq!((a ^ b) ^ c, a ^ (b ^ c));
    }

    /// De Morgan holds in 4-valued logic (with Z read as X).
    #[test]
    fn demorgan(a in arb_logic(), b in arb_logic()) {
        prop_assert_eq!(!(a & b), !a | !b);
        prop_assert_eq!(!(a | b), !a & !b);
    }

    /// Double negation normalizes Z to X but is otherwise the identity.
    #[test]
    fn double_negation(a in arb_logic()) {
        prop_assert_eq!(!!a, a.drive());
    }

    /// Gate-level eval agrees with the scalar fold it documents.
    #[test]
    fn nary_eval_matches_fold(vals in prop::collection::vec(arb_logic(), 2..6)) {
        let and = CellKind::And.eval_comb(&vals).unwrap();
        prop_assert_eq!(and, Logic::and_all(vals.iter().copied()));
        let nor = CellKind::Nor.eval_comb(&vals).unwrap();
        prop_assert_eq!(nor, !Logic::or_all(vals.iter().copied()));
        let xnor = CellKind::Xnor.eval_comb(&vals).unwrap();
        prop_assert_eq!(xnor, !Logic::xor_all(vals.iter().copied()));
    }

    /// Mux with a definite select equals the selected leg (driven).
    #[test]
    fn mux_definite_select(d0 in arb_logic(), d1 in arb_logic()) {
        prop_assert_eq!(Logic::mux2(Logic::Zero, d0, d1), d0.drive());
        prop_assert_eq!(Logic::mux2(Logic::One, d0, d1), d1.drive());
    }
}

/// Builds a random DAG of gates over `n_in` inputs using the op stream,
/// returning the builder (all ops reference already-created cells, so the
/// result must always validate).
fn random_dag(n_in: usize, ops: &[(u8, usize, usize)]) -> NetlistBuilder {
    let mut b = NetlistBuilder::new("rand");
    let mut sigs = Vec::new();
    for i in 0..n_in {
        sigs.push(b.input(&format!("i{i}")));
    }
    for &(op, x, y) in ops {
        let a = sigs[x % sigs.len()];
        let c = sigs[y % sigs.len()];
        let id = match op % 6 {
            0 => b.and2(a, c),
            1 => b.or2(a, c),
            2 => b.xor2(a, c),
            3 => b.nand2(a, c),
            4 => b.not(a),
            _ => b.mux2(a, c, a),
        };
        sigs.push(id);
    }
    let last = *sigs.last().unwrap();
    b.output("o", last);
    b
}

proptest! {
    /// Any program of backwards-referencing ops yields a valid netlist
    /// whose levelization respects dependencies.
    #[test]
    fn random_dags_validate_and_levelize(
        n_in in 1usize..5,
        ops in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..60),
    ) {
        let nl = random_dag(n_in, &ops).finish().unwrap();
        let lev = nl.levelization();
        for (id, cell) in nl.iter() {
            if cell.kind().is_combinational() && !cell.inputs().is_empty() {
                for &src in cell.inputs() {
                    prop_assert!(lev.level(src) < lev.level(id));
                }
            }
        }
        // Fanout symmetry: every input edge appears in the driver's list.
        for (id, cell) in nl.iter() {
            for &src in cell.inputs() {
                prop_assert!(nl.fanouts(src).contains(&id));
            }
        }
    }

    /// Verilog and DOT writers never panic and always produce framed text.
    #[test]
    fn writers_are_total(
        n_in in 1usize..4,
        ops in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..30),
    ) {
        let nl = random_dag(n_in, &ops).finish().unwrap();
        let v = nl.to_verilog();
        prop_assert!(v.contains("module"));
        prop_assert!(v.trim_end().ends_with("endmodule"));
        let d = nl.to_dot();
        prop_assert!(d.starts_with("digraph"));
    }
}
