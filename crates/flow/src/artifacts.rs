//! Precompiled-artifact handles for cache-aware flow runs.
//!
//! Every [`TestFlow`](crate::TestFlow) run compiles three expensive,
//! immutable artifacts before any test generation happens:
//!
//! * the [`SimGraph`] (CSR edges, dense opcodes, levelization,
//!   observability cones) — compiled from the netlist inside
//!   [`CaptureModel::new`](occ_fsim::CaptureModel::new);
//! * the capture procedures ([`FrameSpec`]s) — derived from the
//!   clocking mode, fault model and domain count;
//! * the [`CompiledDelays`] table — compiled from the
//!   [`DelayModel`](occ_sim::DelayModel) when the timing stage runs.
//!
//! A service that runs many flows on the same design (the `occ-server`
//! job daemon, the Table 1 sweep) compiles each artifact once, keeps it
//! behind an `Arc` in a content-addressed cache, and hands the shared
//! handles back to the flow through [`FlowArtifacts`] +
//! [`TestFlow::artifacts`](crate::TestFlow::artifacts): the
//! corresponding compile stages then skip their work entirely and the
//! run clones only `Arc`s. Reports are byte-identical either way — the
//! artifacts are pure functions of the inputs they are keyed by.

use crate::FlowError;
use occ_core::{stuck_at_procedures, transition_procedures, ClockingMode};
use occ_fault::FaultModel;
use occ_fsim::{FrameSpec, SimGraph};
use occ_sim::CompiledDelays;
use std::sync::Arc;

/// Shared handles to precompiled flow artifacts, all optional — a
/// default (empty) value makes the flow compile everything itself,
/// exactly as before the cache layer existed.
///
/// The caller is responsible for keying: a graph must have been
/// compiled for the same netlist (checked — cell/flop count mismatches
/// fail the bind stage), procedures for the same clocking mode, fault
/// model and domain count (checked — the mode/model combination is
/// re-validated), and delays for the same netlist + delay model
/// (unchecked beyond length — the table is positional).
#[derive(Debug, Clone, Default)]
pub struct FlowArtifacts {
    /// The compiled simulation graph of the design, shared across
    /// runs; the bind stage skips [`SimGraph`] compilation when set.
    pub graph: Option<Arc<SimGraph>>,
    /// The capture procedures for (clocking mode, fault model, domain
    /// count); the procedures stage skips construction when set.
    pub procedures: Option<Arc<Vec<FrameSpec>>>,
    /// The compiled per-cell delay table; the timing stage skips
    /// [`occ_sim::DelayModel::compile`] when set.
    pub delays: Option<Arc<CompiledDelays>>,
}

impl FlowArtifacts {
    /// No precompiled artifacts — the flow compiles everything.
    pub fn none() -> Self {
        FlowArtifacts::default()
    }

    /// True when no handle is set.
    pub fn is_empty(&self) -> bool {
        self.graph.is_none() && self.procedures.is_none() && self.delays.is_none()
    }
}

/// Validates the clocking/fault-model combination and builds the
/// capture procedures — the service-facing twin of the flow's
/// procedures stage, exported so artifact caches can compile procedure
/// sets once per (mode, fault model, domain count) key and replay them
/// through [`FlowArtifacts::procedures`].
///
/// # Errors
///
/// Returns [`FlowError::UnsupportedClocking`] when the mode cannot
/// physically deliver the procedures the fault model needs (fewer
/// pulses than a launch + capture pair, or no procedures at all).
///
/// # Examples
///
/// ```
/// use occ_core::ClockingMode;
/// use occ_flow::{build_procedures, FaultKind};
///
/// let procs = build_procedures(ClockingMode::SimpleCpf, FaultKind::Transition, 2).unwrap();
/// assert!(!procs.is_empty());
/// assert!(build_procedures(
///     ClockingMode::ExternalClock { max_pulses: 1 },
///     FaultKind::Transition,
///     2
/// )
/// .is_err());
/// ```
pub fn build_procedures(
    mode: ClockingMode,
    fault_model: FaultModel,
    n_domains: usize,
) -> Result<Vec<FrameSpec>, FlowError> {
    validate_procedures(mode, fault_model)?;
    let procedures = match fault_model {
        FaultModel::Transition => transition_procedures(mode, n_domains),
        FaultModel::StuckAt => stuck_at_procedures(mode, n_domains),
    };
    if procedures.is_empty() {
        return Err(FlowError::UnsupportedClocking {
            mode,
            fault_model,
            reason: "the mode yields no capture procedures",
        });
    }
    Ok(procedures)
}

/// The validation half of [`build_procedures`] alone — what a flow
/// replaying a *cached* procedure set runs, so a mis-keyed cache entry
/// cannot smuggle an unsupported mode/model combination past the
/// procedures stage without paying for reconstruction.
///
/// # Errors
///
/// Returns [`FlowError::UnsupportedClocking`] exactly when
/// [`build_procedures`] would (except the empty-set check, which needs
/// construction).
pub fn validate_procedures(mode: ClockingMode, fault_model: FaultModel) -> Result<(), FlowError> {
    let unsupported = |reason: &'static str| FlowError::UnsupportedClocking {
        mode,
        fault_model,
        reason,
    };
    let max_pulses = match mode {
        ClockingMode::ExternalClock { max_pulses }
        | ClockingMode::EnhancedCpf { max_pulses }
        | ClockingMode::ConstrainedExternal { max_pulses } => max_pulses,
        ClockingMode::SimpleCpf => 2,
    };
    match fault_model {
        FaultModel::Transition if max_pulses < 2 => Err(unsupported(
            "transition tests need launch + capture pulses (max_pulses >= 2)",
        )),
        FaultModel::StuckAt if max_pulses < 1 => Err(unsupported(
            "stuck-at tests need at least one capture pulse",
        )),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_artifacts_report_empty() {
        assert!(FlowArtifacts::none().is_empty());
        let a = FlowArtifacts {
            procedures: Some(Arc::new(Vec::new())),
            ..FlowArtifacts::default()
        };
        assert!(!a.is_empty());
    }

    #[test]
    fn procedure_builder_matches_modes() {
        let p = build_procedures(
            ClockingMode::EnhancedCpf { max_pulses: 4 },
            FaultModel::Transition,
            2,
        )
        .unwrap();
        assert!(p.len() > 1);
        let err = build_procedures(
            ClockingMode::ExternalClock { max_pulses: 0 },
            FaultModel::StuckAt,
            2,
        )
        .unwrap_err();
        assert!(matches!(err, FlowError::UnsupportedClocking { .. }));
    }
}
